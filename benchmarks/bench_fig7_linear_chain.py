"""Bench E4 / Figures 6-7: the linearly connected exponential chain."""

import pytest

from repro.geometry.generators import exponential_chain
from repro.highway.linear import linear_chain
from repro.interference.receiver import node_interference


@pytest.mark.benchmark(group="fig7")
def test_linear_chain_interference(benchmark, chain_512):
    def run():
        return node_interference(linear_chain(chain_512))

    vec = benchmark(run)
    assert vec[0] == 510  # n - 2
    assert int(vec.max()) == 510


@pytest.mark.benchmark(group="fig7")
@pytest.mark.parametrize("n", [64, 256, 1024])
def test_linear_chain_scaling(benchmark, n):
    pos = exponential_chain(n)

    def run():
        return int(node_interference(linear_chain(pos)).max())

    assert benchmark(run) == n - 2
