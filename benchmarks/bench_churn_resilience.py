"""Bench EXT-8: churn engine throughput and lossy-protocol overhead.

Times (a) a full churn run — joins/leaves with local repair and
incremental interference maintenance — over a 120-node network, and
(b) an XTC execution under 20% Bernoulli loss with the ack/retransmit
loop. Both assert the robustness properties they exist to demonstrate.
"""

import math

import numpy as np
import pytest

from repro.distributed import DistributedXtc, SynchronousNetwork, UnreliableNetwork
from repro.faults import ChurnEngine, ChurnSchedule, FaultPlan
from repro.geometry.generators import random_udg_connected, random_uniform_square
from repro.graphs.mst import euclidean_mst_edges
from repro.model.topology import Topology
from repro.model.udg import unit_disk_graph


@pytest.mark.benchmark(group="churn")
def test_churn_engine_run(benchmark):
    n, n_events = 120, 80
    side = math.sqrt(n)
    pos = random_uniform_square(n, side=side, seed=23)
    topo = Topology(pos, euclidean_mst_edges(pos))
    schedule = ChurnSchedule.random(n_events, side=side, seed=24)

    def scenario():
        return ChurnEngine(topo, schedule).run()

    summary = benchmark(scenario)

    assert summary.n_events > 0
    # the paper's robustness property, per join, under randomized churn
    assert summary.max_join_own_disk_delta <= 1
    assert summary.always_connected
    # a straggler's attachment edge covers a Theta(n) fraction of the network
    assert summary.max_sender_delta >= 0.5 * n


@pytest.mark.benchmark(group="churn")
def test_unreliable_xtc_run(benchmark, udg_150):
    lossless = SynchronousNetwork(udg_150).run(DistributedXtc())
    plan = FaultPlan(seed=31, p_drop=0.2, p_duplicate=0.05, p_delay=0.05)
    net = UnreliableNetwork(udg_150, plan)

    result = benchmark(net.run, DistributedXtc())

    assert np.array_equal(result.topology.edges, lossless.topology.edges)
    assert result.messages_total > lossless.messages_total
    assert result.meta["undelivered"] == 0
