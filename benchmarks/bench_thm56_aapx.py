"""Bench E8 / Theorem 5.6: the hybrid A_apx and its certified ratio."""

import pytest

from repro.geometry.generators import (
    exponential_chain,
    random_highway,
    uniform_chain,
)
from repro.highway.a_apx import a_apx
from repro.interference.receiver import graph_interference


@pytest.mark.benchmark(group="thm56")
def test_aapx_uniform_1000(benchmark):
    pos = uniform_chain(1000, spacing=0.002)
    topo, info = benchmark(a_apx, pos, return_info=True)
    assert info.branch == "linear"
    assert graph_interference(topo) <= 2


@pytest.mark.benchmark(group="thm56")
def test_aapx_exponential_512(benchmark):
    pos = exponential_chain(512)
    topo, info = benchmark(a_apx, pos, return_info=True)
    assert info.branch == "a_gen"
    ratio = graph_interference(topo) / max(info.lower_bound, 1.0)
    assert ratio <= 4.0 * info.delta**0.25


@pytest.mark.benchmark(group="thm56")
def test_aapx_random_1000(benchmark):
    pos = random_highway(1000, max_gap=0.1, seed=23)
    topo, info = benchmark(a_apx, pos, return_info=True)
    ratio = graph_interference(topo) / max(info.lower_bound, 1.0)
    assert ratio <= 4.0 * max(info.delta, 1) ** 0.25
