"""Ablation: A_gen's hub spacing (the sqrt(Delta) design choice).

The paper nominates every ceil(sqrt(Delta))-th node a hub. Sweeping the
spacing shows the U-shape this choice optimizes: spacing 1 degenerates to
the linear chain (interference gamma — catastrophic on the exponential
chain), spacing ~Delta makes single hubs carry whole segments
(interference ~Delta). sqrt(Delta) balances hub count against interval
size.
"""

import math

import pytest

from repro.geometry.generators import exponential_chain
from repro.highway.a_gen import a_gen
from repro.interference.receiver import graph_interference

N = 256
DELTA = N - 1
ROOT = math.ceil(math.sqrt(DELTA))
SPACINGS = {
    "1 (linear-like)": 1,
    "sqrt/2": max(1, ROOT // 2),
    "sqrt (paper)": ROOT,
    "2*sqrt": 2 * ROOT,
    "delta/2": DELTA // 2,
}


@pytest.mark.benchmark(group="ablation-agen-spacing")
@pytest.mark.parametrize("label", list(SPACINGS))
def test_agen_spacing(benchmark, label):
    pos = exponential_chain(N)
    spacing = SPACINGS[label]

    def run():
        return graph_interference(a_gen(pos, delta=DELTA, spacing=spacing))

    ival = benchmark(run)
    paper_ival = graph_interference(a_gen(pos, delta=DELTA, spacing=ROOT))
    # the paper's choice is never worse than 1.5x the best swept setting,
    # and the extremes are strictly worse than sqrt(Delta)
    if label in ("1 (linear-like)", "delta/2"):
        assert ival > paper_ival
    if label == "sqrt (paper)":
        others = [
            graph_interference(a_gen(pos, delta=DELTA, spacing=s))
            for s in SPACINGS.values()
        ]
        assert ival <= 1.5 * min(others)
