"""Bench: the MAC contention suite and its headline correlation gate.

Times the saturated and queued engines, and asserts the acceptance
criterion of the ``repro.mac`` subsystem: the Spearman rank correlation
between static per-node interference ``I(v)`` and the measured per-node
collision rate is **positive and significant** on the paper's separating
families (NNF on random positions vs A_exp on the exponential chain) at
``n >= 64`` under at least two backoff policies.
"""

import numpy as np
import pytest

from repro.geometry.generators import exponential_chain, random_udg_connected
from repro.highway.a_exp import a_exp
from repro.mac import (
    MacConfig,
    MacSimulator,
    SaturatedAlohaSimulator,
    interference_collision_spearman,
)
from repro.model.udg import unit_disk_graph
from repro.topologies import build

N = 64
SLOTS = 1500
POLICIES = ("beb", "eied")


@pytest.fixture(scope="module")
def nnf_64():
    pos = random_udg_connected(N, side=4.0 * float(np.sqrt(N / 60.0)), seed=3)
    return build("nnf", unit_disk_graph(pos))


@pytest.fixture(scope="module")
def aexp_64():
    return a_exp(exponential_chain(N))


def _gate(topology, policy):
    cfg = MacConfig(traffic="poisson", load=0.08)
    res = MacSimulator(topology, policy=policy, config=cfg).run(SLOTS, seed=3)
    rho, pval = interference_collision_spearman(topology, res)
    assert res.conservation_ok
    assert rho > 0, f"{policy}: rho={rho}"
    assert pval < 0.05, f"{policy}: p={pval}"
    return res


@pytest.mark.benchmark(group="mac")
@pytest.mark.parametrize("policy", POLICIES)
def test_interference_predicts_collisions_nnf(benchmark, nnf_64, policy):
    benchmark(_gate, nnf_64, policy)


@pytest.mark.benchmark(group="mac")
@pytest.mark.parametrize("policy", POLICIES)
def test_interference_predicts_collisions_aexp(benchmark, aexp_64, policy):
    benchmark(_gate, aexp_64, policy)


@pytest.mark.benchmark(group="mac")
def test_saturated_engine_throughput(benchmark, nnf_64):
    sim = SaturatedAlohaSimulator(nnf_64, policy="beb")
    res = benchmark(sim.run, SLOTS, seed=7)
    assert res.deliveries.sum() > 0


@pytest.mark.benchmark(group="mac")
def test_queued_engine_csma_sinr(benchmark, nnf_64):
    cfg = MacConfig(
        mode="csma", tx_slots=3, capture="sinr", traffic="poisson", load=0.05
    )
    sim = MacSimulator(nnf_64, policy="fibonacci", config=cfg)
    res = benchmark(sim.run, 800, seed=7)
    assert res.conservation_ok
    assert res.delivered.sum() > 0
