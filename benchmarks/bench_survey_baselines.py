"""Bench E9 / Section 4: every baseline algorithm on a 150-node UDG.

One benchmark per registered algorithm (construction + interference
evaluation), regenerating the survey table's rows.
"""

import pytest

from repro.interference.receiver import graph_interference
from repro.topologies import ALGORITHMS, build


@pytest.mark.benchmark(group="survey")
@pytest.mark.parametrize("name", sorted(ALGORITHMS))
def test_baseline_algorithm(benchmark, name, udg_150):
    def run():
        topo = build(name, udg_150)
        return topo, graph_interference(topo)

    topo, ival = benchmark(run)
    assert topo.is_subgraph_of(udg_150)
    assert ival <= udg_150.max_degree()
    if name not in ("nnf", "knn3"):
        assert topo.is_connected()
