"""P7: the fused batch interference tier — speedup gate and memory gate.

Two hard gates ride with the throughput numbers:

1. **Speedup**: the batch tier must be >= 10x faster than the scalar
   grid kernel at ``n >= 1e4``, with the attribution read from obs spans
   (``interference.node`` with ``method`` attrs), not hand-placed
   timers — the measurement and the production telemetry are the same
   code path.
2. **Peak allocation**: the 2-D tiled brute/coverage kernels must never
   materialize an ``(chunk, n, 2)`` temporary again. At ``n = 4096``
   the old 3-D broadcast peaked around 400 MB; the tiled kernels stay
   under ~48 MB (a few ``(1024, n)`` float64 tiles).

Run via ``python -m pytest benchmarks/bench_batch_kernels.py``.
"""

from __future__ import annotations

import tracemalloc

import numpy as np
import pytest

from repro import obs
from repro.geometry.generators import random_udg_connected
from repro.interference.batch import node_interference_many
from repro.interference.receiver import (
    coverage_counts,
    node_interference,
)
from repro.model.udg import unit_disk_graph
from repro.topologies import build

#: Speedup the batch tier must hold over the scalar grid kernel at
#: ``SPEEDUP_N`` (ISSUE acceptance: >= 10x at n >= 1e4; measured 17-18x).
SPEEDUP_FLOOR = 10.0
SPEEDUP_N = 10_000
SPEEDUP_ROUNDS = 3

#: Peak-allocation ceiling for the tiled O(n^2) kernels at n = 4096.
#: A resurrected (chunk, n, 2) float64 temporary alone would be ~400 MB.
PEAK_ALLOC_N = 4096
PEAK_ALLOC_CEILING_MB = 48.0


def _instance(n, seed=0):
    side = 4.0 * float(np.sqrt(n / 150.0))
    pos = random_udg_connected(n, side=side, seed=seed)
    return build("emst", unit_disk_graph(pos))


def _span_seconds(trace, method):
    """Total wall time of ``interference.node`` spans for one kernel."""
    total = 0.0
    hits = 0
    for span, _ in trace.snapshot().iter_spans():
        if span.name == "interference.node" and span.attrs.get("method") == method:
            total += span.duration_s
            hits += 1
    assert hits > 0, f"no interference.node span for method={method!r}"
    return total


@pytest.fixture(scope="module")
def speedup_topology():
    return _instance(SPEEDUP_N, seed=41)


def test_batch_speedup_gate(speedup_topology):
    """Batch tier >= 10x over scalar grid at n = 1e4, span-attributed."""
    # warm both kernels (first-touch allocations, index build)
    node_interference(speedup_topology, method="grid")
    node_interference(speedup_topology, method="batch")

    best = 0.0
    for _ in range(SPEEDUP_ROUNDS):
        with obs.capture() as trace:
            want = node_interference(speedup_topology, method="grid")
            got = node_interference(speedup_topology, method="batch")
        np.testing.assert_array_equal(got, want)
        grid_s = _span_seconds(trace, "grid")
        batch_s = _span_seconds(trace, "batch")
        best = max(best, grid_s / batch_s)
    assert best >= SPEEDUP_FLOOR, (
        f"batch tier only {best:.1f}x over grid at n={SPEEDUP_N} "
        f"(floor {SPEEDUP_FLOOR}x)"
    )


@pytest.mark.benchmark(group="kernel-batch")
def test_batch_kernel_throughput(benchmark, speedup_topology):
    vec = benchmark(node_interference, speedup_topology, method="batch")
    assert vec.shape == (SPEEDUP_N,)


@pytest.mark.benchmark(group="kernel-batch")
def test_many_instance_fusion(benchmark):
    topos = [_instance(512, seed=s) for s in range(8)]
    results = benchmark(node_interference_many, topos)
    for topo, vec in zip(topos, results):
        np.testing.assert_array_equal(
            vec, node_interference(topo, method="brute")
        )


@pytest.mark.parametrize(
    "kernel",
    [
        pytest.param(
            lambda t: node_interference(t, method="brute"), id="brute"
        ),
        pytest.param(lambda t: coverage_counts(t), id="coverage_counts"),
    ],
)
def test_peak_allocation_gate(kernel):
    """The tiled kernels must stay far below the old 3-D-temporary peak."""
    topo = _instance(PEAK_ALLOC_N, seed=43)
    kernel(topo)  # warm: exclude first-touch imports/caches from the peak

    tracemalloc.start()
    try:
        kernel(topo)
        _, peak = tracemalloc.get_traced_memory()
    finally:
        tracemalloc.stop()
    peak_mb = peak / 1e6
    assert peak_mb < PEAK_ALLOC_CEILING_MB, (
        f"kernel peaked at {peak_mb:.1f} MB for n={PEAK_ALLOC_N} "
        f"(ceiling {PEAK_ALLOC_CEILING_MB} MB — did a (chunk, n, 2) "
        f"temporary come back?)"
    )
