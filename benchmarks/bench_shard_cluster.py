"""P8: shard cluster — scatter/gather scaling and merge exactness.

Two acceptance bars for the spatially sharded serve cluster:

- **exactness** (always asserted, any machine): a cluster's merged
  answer on an n=1e5 instance — uniform and clustered — must be
  *bit-identical* to the in-process ground truth
  (``node_interference_many``), node vector included. The spatial
  decomposition, ghost replication and scatter/gather merge are
  implementation details that may never change a single count.
- **scaling** (gated on >= 4 CPUs; the compute must actually have cores
  to spread over): 4 shards must deliver >= 3x the single-shard
  throughput at p99 <= 2x the single-shard p99, on both instance
  families. Requests travel as seeded generator params, so each worker
  materializes the instance locally and computes only its tile's
  partial — the wire carries per-shard partial vectors, not positions.

Workers are real ``repro serve`` subprocesses (own GIL each); the
single-shard baseline is the same cluster machinery with k=1, so the
ratio isolates the spatial decomposition rather than protocol overhead.
"""

import asyncio
import os
import time

import numpy as np
import pytest

from repro.cluster import TileGrid
from repro.geometry.generators import random_blobs, random_uniform_square
from repro.interference.batch import node_interference_many
from repro.model import unit_disk_graph
from repro.serve.client import ServeClient
from repro.serve.loadgen import percentile
from repro.serve.shard import ClusterConfig, ShardCluster

N_NODES = 100_000
SIDE = 120.0
UNIT = 1.0
GHOST = 2.5
THROUGHPUT_REQUESTS = 4

FAMILIES = {
    "uniform": {
        "generator": "random_uniform_square",
        "args": {"n": N_NODES, "side": SIDE},
        "materialize": lambda seed: random_uniform_square(
            N_NODES, side=SIDE, seed=seed
        ),
    },
    "clustered": {
        "generator": "random_blobs",
        "args": {"n": N_NODES, "side": SIDE, "blobs": 40, "spread": 6.0},
        "materialize": lambda seed: random_blobs(
            N_NODES, side=SIDE, blobs=40, spread=6.0, seed=seed
        ),
    },
}


def _cluster_config(shards: int, family: str, seed: int) -> ClusterConfig:
    kwargs = dict(
        shards=shards,
        worker_mode="subprocess",
        worker_workers=1,
        worker_executor="thread",
        bounds=(0.0, 0.0, SIDE, SIDE),
        ghost=GHOST,
    )
    if family == "clustered" and shards > 1:
        # quantile cuts keep blob mass balanced across shards
        pos = FAMILIES[family]["materialize"](seed)
        kwargs["grid"] = TileGrid.balanced(pos, shards, ghost=GHOST).to_jsonable()
        kwargs.pop("bounds")
    return ClusterConfig(**kwargs)


def _request_params(family: str, seed: int, measure: str) -> dict:
    spec = FAMILIES[family]
    return {
        "generator": spec["generator"],
        "args": dict(spec["args"], seed=seed),
        "unit": UNIT,
        "measure": measure,
    }


async def _drive(cluster: ShardCluster, family: str, seeds) -> tuple[float, float]:
    """Sequential seeded requests -> (throughput_rps, p99_ms)."""
    client = await ServeClient.connect(
        port=cluster.port, limit=cluster.config.max_line_bytes
    )
    latencies = []
    try:
        started = time.perf_counter()
        for seed in seeds:
            t0 = time.perf_counter()
            result = await client.request(
                "interference", _request_params(family, seed, "average")
            )
            latencies.append((time.perf_counter() - t0) * 1e3)
            assert result["n"] == N_NODES
        wall = time.perf_counter() - started
    finally:
        await client.close()
    latencies.sort()
    return len(latencies) / wall, percentile(latencies, 99)


async def _exactness(family: str, seed: int) -> None:
    pos = FAMILIES[family]["materialize"](seed)
    topo = unit_disk_graph(pos, unit=UNIT)
    vec = node_interference_many([topo])[0]
    async with ShardCluster(_cluster_config(4, family, seed)) as cluster:
        client = await ServeClient.connect(
            port=cluster.port, limit=cluster.config.max_line_bytes
        )
        try:
            result = await client.request(
                "interference", _request_params(family, seed, "node")
            )
        finally:
            await client.close()
        stats = cluster.stats()
    assert stats["frontend"]["fanout"] == 1, stats["frontend"]
    assert result["n"] == N_NODES
    assert result["n_edges"] == len(topo.edges)
    merged = np.asarray(result["value"], dtype=np.int64)
    np.testing.assert_array_equal(merged, vec)


async def _scaling(family: str) -> dict:
    seeds = list(range(1, 1 + THROUGHPUT_REQUESTS))
    out = {}
    for shards in (1, 4):
        async with ShardCluster(
            _cluster_config(shards, family, seeds[0])
        ) as cluster:
            # one warmup request per deployment: numpy/module import cost
            # in fresh workers must not bill to the measured round
            await _drive(cluster, family, seeds[:1])
            out[shards] = await _drive(cluster, family, seeds)
    return out


@pytest.mark.benchmark(group="shard-cluster")
@pytest.mark.parametrize("family", list(FAMILIES))
def test_cluster_merge_bit_identical_at_scale(benchmark, family):
    benchmark.pedantic(
        lambda: asyncio.run(_exactness(family, seed=9)), rounds=1, iterations=1
    )


@pytest.mark.benchmark(group="shard-cluster")
@pytest.mark.parametrize("family", list(FAMILIES))
def test_four_shards_scale_throughput(benchmark, family):
    if (os.cpu_count() or 1) < 4:
        pytest.skip("scaling gate needs >= 4 CPUs to spread shards over")

    def measure():
        best = None
        for _ in range(2):
            out = asyncio.run(_scaling(family))
            ratio = out[4][0] / out[1][0]
            if best is None or ratio > best[0]:
                best = (ratio, out)
        return best

    ratio, out = benchmark.pedantic(measure, rounds=1, iterations=1)
    (tp1, p99_1), (tp4, p99_4) = out[1], out[4]
    assert ratio >= 3.0, (
        f"{family}: 4-shard speedup {ratio:.2f}x < 3x "
        f"(4 shards {tp4:.3f} rps p99 {p99_4:.0f} ms, "
        f"single {tp1:.3f} rps p99 {p99_1:.0f} ms)"
    )
    assert p99_4 <= 2.0 * p99_1, (
        f"{family}: 4-shard p99 {p99_4:.0f} ms exceeds 2x single-shard "
        f"p99 {p99_1:.0f} ms"
    )
