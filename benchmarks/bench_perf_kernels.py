"""P1: performance benchmarks of the computational kernels.

Compares the vectorized interference kernel against the grid variant and
the pure-Python reference, and the two UDG construction kernels — the
profile-then-vectorize workflow of the HPC guides, kept honest over time.
"""

import numpy as np
import pytest

from repro.geometry.generators import random_udg_connected, random_uniform_square
from repro.geometry.points import distance_matrix
from repro.interference.receiver import node_interference, node_interference_naive
from repro.model.udg import unit_disk_graph
from repro.topologies import build


@pytest.fixture(scope="module")
def kernel_topology():
    pos = random_udg_connected(400, side=8.0, seed=31)
    return build("emst", unit_disk_graph(pos))


@pytest.mark.benchmark(group="kernel-interference")
def test_interference_brute(benchmark, kernel_topology):
    vec = benchmark(node_interference, kernel_topology, method="brute")
    assert vec.shape == (400,)


@pytest.mark.benchmark(group="kernel-interference")
def test_interference_grid(benchmark, kernel_topology):
    vec = benchmark(node_interference, kernel_topology, method="grid")
    np.testing.assert_array_equal(
        vec, node_interference(kernel_topology, method="brute")
    )


@pytest.mark.benchmark(group="kernel-interference")
def test_interference_naive_reference(benchmark):
    """The pure-Python baseline, at reduced n (it is ~100x slower)."""
    pos = random_udg_connected(120, side=4.5, seed=32)
    topo = build("emst", unit_disk_graph(pos))
    vec = benchmark(node_interference_naive, topo)
    np.testing.assert_array_equal(vec, node_interference(topo, method="brute"))


@pytest.mark.benchmark(group="kernel-udg")
@pytest.mark.parametrize("method", ["brute", "grid"])
def test_udg_construction(benchmark, method):
    pos = random_uniform_square(2000, side=20.0, seed=33)
    udg = benchmark(unit_disk_graph, pos, unit=1.0, method=method)
    assert udg.n == 2000


@pytest.mark.benchmark(group="kernel-geometry")
def test_distance_matrix_2000(benchmark):
    pos = random_uniform_square(2000, side=10.0, seed=34)
    d = benchmark(distance_matrix, pos)
    assert d.shape == (2000, 2000)
