"""P5: serving layer — micro-batching throughput and overload behaviour.

Two acceptance bars from the serving-layer design:

- **batching**: on small interference requests, coalescing into
  micro-batches must deliver >= 3x the throughput of per-request
  process-pool dispatch, at equal-or-better p99 latency (the batch
  amortizes one socket+IPC round trip over up to 64 requests). The
  server runs *out of process* (spawned through the CLI) so the client
  and server event loops don't share a thread — per-request dispatch
  then pays its real cross-process cost, exactly what batching removes;
- **overload**: a burst past capacity must be shed with explicit
  ``overloaded`` rejections while the p99 of *accepted* requests stays
  within 2x of the unloaded baseline (bounded queues keep queueing delay
  bounded; without admission control p99 would grow with the backlog).

Each measurement takes best-of-N rounds — these are capacity numbers, and
the container's scheduling noise is on the order of the effect otherwise.
Single-round pedantic benchmarks: each round spawns process pools.
"""

import asyncio
import contextlib
import os
import random
import re
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

import repro
from repro.geometry.generators import exponential_chain
from repro.serve import InterferenceServer, ServeClient, ServeConfig
from repro.serve.loadgen import percentile

#: One small fixed instance; every request identical, maximally batchable.
SMALL_POSITIONS = exponential_chain(6).tolist()

N_REQUESTS = 512
CONCURRENCY = 64


def _config(**overrides) -> ServeConfig:
    base = dict(
        port=0, workers=2, executor="process",
        queue_limit=N_REQUESTS, batch_linger_ms=5.0,
    )
    base.update(overrides)
    return ServeConfig(**base)


@contextlib.contextmanager
def _spawned_server(batch_max: int):
    """``repro serve`` in a child process -> bound port; SIGINT to drain."""
    env = dict(os.environ)
    src_root = str(Path(repro.__file__).resolve().parents[1])
    env["PYTHONPATH"] = os.pathsep.join(
        p for p in (src_root, env.get("PYTHONPATH")) if p
    )
    proc = subprocess.Popen(
        [
            sys.executable, "-u", "-c",
            "import sys; from repro.cli import main; sys.exit(main(sys.argv[1:]))",
            "serve", "--port", "0", "--workers", "2",
            "--executor", "process", "--batch-max", str(batch_max),
            "--linger-ms", "5.0", "--queue-limit", str(N_REQUESTS),
        ],
        stdout=subprocess.PIPE, text=True, env=env,
    )
    try:
        banner = proc.stdout.readline()
        match = re.search(r"listening on [\d.]+:(\d+)", banner)
        assert match, f"no listening banner from repro serve: {banner!r}"
        yield int(match.group(1))
    finally:
        proc.send_signal(signal.SIGINT)
        try:
            proc.wait(timeout=15)
        except subprocess.TimeoutExpired:
            proc.kill()
            proc.wait()


async def _drive_closed(port: int) -> tuple[float, float]:
    """Closed-loop small-interference storm -> (throughput_rps, p99_ms)."""
    latencies: list[float] = []
    cursor = iter(range(N_REQUESTS))

    async def worker() -> None:
        client = await ServeClient.connect(port=port)
        try:
            for _ in cursor:
                t0 = time.perf_counter()
                await client.interference(positions=SMALL_POSITIONS)
                latencies.append((time.perf_counter() - t0) * 1e3)
        finally:
            await client.close()

    started = time.perf_counter()
    await asyncio.gather(*(worker() for _ in range(CONCURRENCY)))
    wall = time.perf_counter() - started
    latencies.sort()
    return N_REQUESTS / wall, percentile(latencies, 99)


@pytest.mark.benchmark(group="serve")
def test_batching_speedup_on_small_requests(benchmark):
    # Both servers stay resident and each round measures them back to
    # back: container slowdowns then hit both sides of the ratio instead
    # of deflating whichever config happened to run during a bad epoch.
    def measure():
        best = None
        with _spawned_server(batch_max=64) as batched_port, \
                _spawned_server(batch_max=1) as unbatched_port:
            for _ in range(4):
                batched = asyncio.run(_drive_closed(batched_port))
                unbatched = asyncio.run(_drive_closed(unbatched_port))
                ratio = batched[0] / unbatched[0]
                if best is None or ratio > best[0]:
                    best = (ratio, batched, unbatched)
        return best

    _, (batched_tp, batched_p99), (unbatched_tp, unbatched_p99) = (
        benchmark.pedantic(measure, rounds=1, iterations=1)
    )
    speedup = batched_tp / unbatched_tp
    assert speedup >= 3.0, (
        f"micro-batching speedup {speedup:.2f}x < 3x "
        f"(batched {batched_tp:.0f} rps p99 {batched_p99:.1f} ms, "
        f"unbatched {unbatched_tp:.0f} rps p99 {unbatched_p99:.1f} ms)"
    )
    # "at equal p99": the speedup must not be bought with latency — the
    # batched p99 has to be at least as good as the per-request one.
    assert batched_p99 <= unbatched_p99, (
        f"batched p99 {batched_p99:.1f} ms worse than "
        f"unbatched {unbatched_p99:.1f} ms"
    )


#: Overload scenario sizes. The burst fires identical small requests so
#: service time is near-deterministic: the comparison then isolates
#: *queueing* delay, which is what admission control bounds. (Randomized
#: instances would sum several slow topology generations into one batch
#: and measure generator variance instead.)
BASELINE_N = 150
BURST_N = 600
BURST_RATE_RPS = 2000.0


async def _drive_baseline(server: InterferenceServer) -> float:
    """Unloaded closed loop (2 clients, fixed request) -> p99_ms."""
    latencies: list[float] = []
    cursor = iter(range(BASELINE_N))

    async def worker() -> None:
        client = await ServeClient.connect(port=server.port)
        try:
            for _ in cursor:
                t0 = time.perf_counter()
                await client.interference(positions=SMALL_POSITIONS)
                latencies.append((time.perf_counter() - t0) * 1e3)
        finally:
            await client.close()

    await asyncio.gather(worker(), worker())
    latencies.sort()
    return percentile(latencies, 99)


async def _drive_burst(server: InterferenceServer) -> tuple[float, int]:
    """Open-loop Poisson burst past capacity -> (accepted p99_ms, shed).

    Requests fire at seeded-exponential arrivals regardless of
    completions (a closed loop cannot overload a server); every
    rejection must be an explicit ``overloaded``.
    """
    rng = random.Random(0)
    offsets, t = [], 0.0
    for _ in range(BURST_N):
        t += rng.expovariate(BURST_RATE_RPS)
        offsets.append(t)

    client = await ServeClient.connect(port=server.port)
    loop = asyncio.get_running_loop()
    started = loop.time()
    latencies: list[float] = []
    shed = 0

    async def fire(delay: float) -> None:
        nonlocal shed
        remaining = started + delay - loop.time()
        if remaining > 0:
            await asyncio.sleep(remaining)
        t0 = time.perf_counter()
        response = await client.request_raw(
            "interference", {"positions": SMALL_POSITIONS}
        )
        if response.get("ok"):
            latencies.append((time.perf_counter() - t0) * 1e3)
        else:
            assert response["error"]["code"] == "overloaded", response
            shed += 1

    try:
        await asyncio.gather(*(fire(offset) for offset in offsets))
    finally:
        await client.close()
    latencies.sort()
    return percentile(latencies, 99), shed


@pytest.mark.benchmark(group="serve")
def test_overload_sheds_while_accepted_p99_stays_bounded(benchmark):
    # A queue shorter than the worker count keeps an accepted request's
    # wait below one batch service time — the structural reason accepted
    # p99 stays near the unloaded baseline while excess load is shed.
    server_config = _config(
        batch_max_size=8, batch_linger_ms=1.0, queue_limit=2
    )

    async def scenario():
        async with InterferenceServer(server_config) as server:
            baseline_p99 = await _drive_baseline(server)
            burst_p99, shed = await _drive_burst(server)
            return baseline_p99, burst_p99, shed

    def measure():
        best = None
        for _ in range(4):
            baseline_p99, burst_p99, shed = asyncio.run(scenario())
            ratio = burst_p99 / baseline_p99
            if best is None or ratio < best[0]:
                best = (ratio, baseline_p99, burst_p99, shed)
        return best

    ratio, baseline_p99, burst_p99, shed = benchmark.pedantic(
        measure, rounds=1, iterations=1
    )
    assert shed > 0, "the burst must overload the server"
    assert shed < BURST_N, "some requests must still be accepted"
    # The admission-control bar: accepted requests keep bounded latency
    # because excess load was rejected instead of queued.
    assert ratio <= 2.0, (
        f"accepted-request p99 {burst_p99:.1f} ms exceeds 2x the "
        f"unloaded baseline {baseline_p99:.1f} ms ({shed}/{BURST_N} shed)"
    )
