"""Benches EXT-5/EXT-6: gathering trees and distributed protocols."""

import numpy as np
import pytest

from repro.distributed import DistributedLmst, DistributedXtc, SynchronousNetwork
from repro.extensions.gathering import (
    low_interference_gather_tree,
    shortest_path_tree,
)
from repro.geometry.generators import random_udg_connected
from repro.interference.receiver import graph_interference
from repro.model.udg import unit_disk_graph
from repro.topologies import build


@pytest.fixture(scope="module")
def gather_udg():
    pos = random_udg_connected(80, side=4.2, seed=71)
    return unit_disk_graph(pos, unit=1.0)


@pytest.mark.benchmark(group="gathering")
def test_shortest_path_tree(benchmark, gather_udg):
    t = benchmark(shortest_path_tree, gather_udg, 0)
    assert t.is_connected()


@pytest.mark.benchmark(group="gathering")
def test_low_interference_tree(benchmark, gather_udg):
    t = benchmark(low_interference_gather_tree, gather_udg, 0)
    spt_i = graph_interference(shortest_path_tree(gather_udg, 0))
    assert graph_interference(t) <= spt_i


@pytest.mark.benchmark(group="distributed")
@pytest.mark.parametrize("proto_cls,name", [(DistributedXtc, "xtc"), (DistributedLmst, "lmst")])
def test_distributed_protocol(benchmark, gather_udg, proto_cls, name):
    net = SynchronousNetwork(gather_udg)

    def run():
        return net.run(proto_cls())

    result = benchmark(run)
    assert np.array_equal(result.topology.edges, build(name, gather_udg).edges)
