"""P1: the observability layer must be ~free when disabled.

The acceptance bar is <5% overhead on the interference kernels of
``bench_perf_kernels.py`` with ``repro.obs`` disabled (the default).
Direct A/B wall-clock comparison of two short runs is noisy on shared
CI hosts, so the hard assertion here is an *implied-overhead* bound:

    1. count how many obs events (spans + counter bumps) one kernel
       call emits, by running it once with obs enabled;
    2. measure the per-op cost of the *disabled* primitives in a tight
       loop (this is deterministic: one attribute check and return);
    3. implied overhead = events-per-call x per-op cost / kernel time.

A direct A/B timing is also performed with a generous margin as a
backstop, using the median of repeated runs.
"""

import time

import pytest

from repro import obs
from repro.geometry.generators import random_udg_connected
from repro.interference.receiver import node_interference
from repro.model.udg import unit_disk_graph
from repro.topologies import build

OVERHEAD_BUDGET = 0.05  # the <5% acceptance bar


@pytest.fixture(scope="module")
def kernel_topology():
    # same instance as bench_perf_kernels.py::kernel_topology
    pos = random_udg_connected(400, side=8.0, seed=31)
    return build("emst", unit_disk_graph(pos))


@pytest.fixture(autouse=True)
def obs_disabled():
    obs.disable()
    obs.reset()
    yield
    obs.disable()
    obs.reset()


def _per_op_seconds(fn, n=100_000):
    start = time.perf_counter()
    for _ in range(n):
        fn()
    return (time.perf_counter() - start) / n


def _events_per_call(topology, method):
    """Spans + counter bumps one kernel call emits (measured, not guessed)."""
    with obs.capture():
        node_interference(topology, method=method)
        snap = obs.snapshot()
        # every counter bump is +1 in the instrumented kernels, so the
        # totals equal the number of obs.count() calls
        n_counts = sum(snap.counters.values())
    return snap.n_spans + n_counts


def _kernel_seconds(topology, method, repeats=5):
    times = []
    for _ in range(repeats):
        start = time.perf_counter()
        node_interference(topology, method=method)
        times.append(time.perf_counter() - start)
    return sorted(times)[len(times) // 2]


@pytest.mark.parametrize("method", ["brute", "grid"])
def test_disabled_overhead_under_budget(kernel_topology, method):
    """Hard gate: implied disabled-obs overhead on the kernels is <5%."""
    span_cost = _per_op_seconds(lambda: obs.span("x", n=1).__exit__(None, None, None))
    count_cost = _per_op_seconds(lambda: obs.count("c"))
    per_op = max(span_cost, count_cost)

    events = _events_per_call(kernel_topology, method)
    assert not obs.enabled()  # capture() restored the disabled default
    kernel = _kernel_seconds(kernel_topology, method)

    implied = events * per_op / kernel
    assert implied < OVERHEAD_BUDGET, (
        f"method={method}: {events} obs events x {per_op * 1e9:.0f} ns "
        f"= {events * per_op * 1e6:.1f} us against a {kernel * 1e3:.2f} ms "
        f"kernel -> {implied:.2%} implied overhead (budget {OVERHEAD_BUDGET:.0%})"
    )


def test_disabled_primitives_are_nanoseconds_scale():
    """The disabled fast path is one attribute check — no dict writes."""
    assert _per_op_seconds(lambda: obs.count("c")) < 2e-6
    assert _per_op_seconds(lambda: obs.span("s")) < 2e-6
    # the disabled span is a shared singleton: no per-call allocation
    assert obs.span("a") is obs.span("b", attr=1)


def test_direct_ab_backstop(kernel_topology):
    """Median-of-repeats A/B: enabled-vs-disabled sanity, generous margin.

    Not the acceptance gate (wall-clock A/B flakes on loaded hosts) —
    this catches gross regressions like accidentally enabling obs by
    default or putting allocation on the disabled path.
    """
    disabled = _kernel_seconds(kernel_topology, "brute", repeats=9)
    obs.enable()
    try:
        enabled = _kernel_seconds(kernel_topology, "brute", repeats=9)
    finally:
        obs.disable()
        obs.reset()
    # enabled tracing must not blow up the kernel either
    assert enabled < disabled * 3.0, (enabled, disabled)


@pytest.mark.benchmark(group="obs-overhead")
def test_kernel_with_obs_disabled(benchmark, kernel_topology):
    vec = benchmark(node_interference, kernel_topology, method="brute")
    assert vec.shape == (400,)


@pytest.mark.benchmark(group="obs-overhead")
def test_kernel_with_obs_enabled(benchmark, kernel_topology):
    def run():
        with obs.capture():
            return node_interference(kernel_topology, method="brute")

    vec = benchmark(run)
    assert vec.shape == (400,)
