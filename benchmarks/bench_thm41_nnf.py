"""Bench E3 / Theorem 4.1, Figures 3-5: the NNF separation instance."""

import pytest

from repro.geometry.generators import two_exponential_chains
from repro.interference.receiver import graph_interference
from repro.model.udg import unit_disk_graph
from repro.topologies import build
from repro.topologies.constructions import two_chains_optimal_tree


@pytest.mark.benchmark(group="thm41")
def test_emst_on_two_chains(benchmark):
    m = 32
    pos, groups = two_exponential_chains(m)
    udg = unit_disk_graph(pos, unit=float(2.0 ** (m + 1)))

    def run():
        emst = build("emst", udg)
        return graph_interference(emst)

    emst_i = benchmark(run)
    opt_i = graph_interference(two_chains_optimal_tree(pos, groups))
    # paper shape: Omega(n) vs O(1)
    assert emst_i >= m
    assert opt_i <= 6


@pytest.mark.benchmark(group="thm41")
def test_optimal_tree_construction(benchmark):
    m = 64
    pos, groups = two_exponential_chains(m)

    def run():
        t = two_chains_optimal_tree(pos, groups)
        return graph_interference(t)

    assert benchmark(run) <= 6
