"""Bench E11: incremental-arrival robustness sweep."""

import math

import numpy as np
import pytest

from repro.graphs.mst import euclidean_mst_edges
from repro.interference.robustness import addition_report, removal_report
from repro.model.topology import Topology
from repro.utils import as_generator


@pytest.mark.benchmark(group="robustness")
def test_incremental_arrivals(benchmark):
    """Time one full 60-node growth with per-arrival reports."""

    def run():
        rng = as_generator(5)
        topo = Topology(rng.uniform(0, 1.5, size=(2, 2)), [(0, 1)])
        worst_recv, worst_send = 0, 0.0
        for k in range(2, 60):
            side = math.sqrt(k + 1.0)
            arrival = rng.uniform(0.0, side, size=2)
            d = np.hypot(*(topo.positions - arrival).T)
            rep = addition_report(topo, arrival, [int(np.argmin(d))])
            worst_recv = max(worst_recv, rep.max_receiver_delta)
            worst_send = max(worst_send, rep.sender_delta)
            topo = rep.after
        return worst_recv, worst_send

    worst_recv, _ = benchmark(run)
    assert worst_recv <= 2


@pytest.mark.benchmark(group="robustness")
def test_removal_report(benchmark):
    rng = as_generator(9)
    pos = rng.uniform(0, 6, size=(80, 2))
    topo = Topology(pos, euclidean_mst_edges(pos))
    out = benchmark(removal_report, topo, 40)
    assert out["receiver_before"].shape == (79,)
