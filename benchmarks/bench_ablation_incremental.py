"""Ablation: incremental interference maintenance vs recompute-from-scratch.

The local-search extension relies on O(n) radius updates; this benchmark
shows the tracker's update loop against recomputing ``node_interference``
after every change — the difference that makes edge-swap search feasible.
"""

import numpy as np
import pytest

from repro.geometry.generators import random_udg_connected
from repro.interference.incremental import InterferenceTracker
from repro.interference.receiver import node_interference
from repro.model.topology import Topology

N = 300
POS = random_udg_connected(N, side=7.0, seed=55)
RNG = np.random.default_rng(2)
UPDATES = [(int(RNG.integers(N)), float(RNG.uniform(0, 1.5))) for _ in range(100)]


@pytest.mark.benchmark(group="ablation-incremental")
def test_incremental_tracker(benchmark):
    def run():
        tracker = InterferenceTracker(POS)
        for u, r in UPDATES:
            tracker.set_radius(u, r)
        return tracker.graph_interference()

    benchmark(run)


@pytest.mark.benchmark(group="ablation-incremental")
def test_recompute_from_scratch(benchmark):
    def run():
        radii = np.zeros(N)
        last = 0
        for u, r in UPDATES:
            radii[u] = r
            # emulate recompute by materialising a topology-equivalent state
            counts = _counts(POS, radii)
            last = int(counts.max())
        return last

    result = benchmark(run)

    tracker = InterferenceTracker(POS)
    for u, r in UPDATES:
        tracker.set_radius(u, r)
    assert result == tracker.graph_interference()


def _counts(pos, radii):
    diff = pos[:, None, :] - pos[None, :, :]
    d = np.hypot(diff[..., 0], diff[..., 1])
    covered = d <= (radii * (1 + 1e-9))[:, None]
    np.fill_diagonal(covered, False)
    # radius-0 inactive nodes cover nobody (coincident points aside)
    covered[radii == 0] = False
    return covered.sum(axis=0)
