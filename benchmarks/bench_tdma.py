"""Bench EXT-2: TDMA conflict-graph colouring."""

import pytest

from repro.geometry.generators import exponential_chain, random_udg_connected
from repro.highway.a_exp import a_exp
from repro.highway.linear import linear_chain
from repro.interference.receiver import graph_interference
from repro.model.udg import unit_disk_graph
from repro.sim.scheduling import greedy_tdma_schedule, schedule_length
from repro.topologies import build


@pytest.mark.benchmark(group="tdma")
def test_schedule_random_150(benchmark, udg_150):
    topo = build("emst", udg_150)
    colors = benchmark(greedy_tdma_schedule, topo)
    from repro.sim.scheduling import validate_schedule

    assert validate_schedule(topo, colors)
    # adjacent nodes always conflict, so at least two slots are needed
    assert int(colors.max()) + 1 >= 2


@pytest.mark.benchmark(group="tdma")
def test_schedule_contrast_on_chain(benchmark):
    pos = exponential_chain(60)
    aex = a_exp(pos)
    length = benchmark(schedule_length, aex)
    assert length < schedule_length(linear_chain(pos))
