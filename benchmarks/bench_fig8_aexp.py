"""Bench E5 / Theorem 5.1, Figure 8: algorithm A_exp.

Times the scan-line construction and asserts the O(sqrt(n)) shape against
both the linear chain and the closed-form bound.
"""

import math

import pytest

from repro.geometry.generators import exponential_chain
from repro.highway.a_exp import a_exp
from repro.highway.bounds import aexp_interference_bound
from repro.interference.receiver import graph_interference


@pytest.mark.benchmark(group="fig8")
def test_aexp_512(benchmark, chain_512):
    topo = benchmark(a_exp, chain_512)
    ival = graph_interference(topo)
    assert topo.is_connected()
    assert ival <= aexp_interference_bound(512) + 4
    assert ival < (512 - 2) / 10  # exponentially better than linear


@pytest.mark.benchmark(group="fig8")
@pytest.mark.parametrize("n", [64, 256, 1024])
def test_aexp_scaling(benchmark, n):
    pos = exponential_chain(n)
    topo = benchmark(a_exp, pos)
    ival = graph_interference(topo)
    assert math.sqrt(n) - 1 <= ival <= 1.25 * math.sqrt(2 * n)
