"""Bench EXT-1: the 2-D future-work heuristics."""

import pytest

from repro.extensions import a_gen_2d, reduce_interference
from repro.geometry.generators import random_udg_connected, two_exponential_chains
from repro.interference.receiver import graph_interference
from repro.model.udg import unit_disk_graph
from repro.topologies import build


@pytest.mark.benchmark(group="ext-2d")
def test_a_gen_2d_random_300(benchmark):
    pos = random_udg_connected(300, side=7.5, seed=61)
    topo = benchmark(a_gen_2d, pos)
    assert topo.is_connected()


@pytest.mark.benchmark(group="ext-2d")
def test_local_search_random_60(benchmark):
    pos = random_udg_connected(60, side=3.5, seed=62)
    udg = unit_disk_graph(pos)
    emst_i = graph_interference(build("emst", udg))

    def run():
        return reduce_interference(udg, seed=0, max_rounds=1)

    out = benchmark.pedantic(run, rounds=3, iterations=1)
    assert graph_interference(out) <= emst_i


@pytest.mark.benchmark(group="ext-2d")
def test_local_search_adversarial(benchmark):
    pos, _ = two_exponential_chains(10)
    unit = float(2.0**11)
    udg = unit_disk_graph(pos, unit=unit)
    emst_i = graph_interference(build("emst", udg))

    def run():
        return reduce_interference(udg, seed=0, max_rounds=2)

    out = benchmark.pedantic(run, rounds=3, iterations=1)
    # the headline: escape the Omega(n) trap
    assert graph_interference(out) <= emst_i // 2
