"""Bench the certified-optimum machinery (repro.opt) and the OPT gaps it
proves.

Two headline claims get *certified* evidence here, not heuristic proxies:

- exponential chains up to n=32: OPT <= 2*sqrt(n), witnessed by the best
  of A_exp and the annealing heuristic wrapped into a verified
  certificate (Theorem 5.1's upper bound anchored to checkable
  artifacts);
- two exponential chains: every NNF-containing topology measures
  Omega(m) while the certified upper bound from the Figure 5 tree stays
  O(1) (Theorem 4.1 against a certified optimum bracket).
"""

import math

import pytest

from repro.geometry.generators import exponential_chain, two_exponential_chains
from repro.highway.a_exp import a_exp
from repro.interference.receiver import graph_interference
from repro.model.udg import unit_disk_graph
from repro.opt import (
    OptConfig,
    certify_topology,
    heuristic_opt,
    solve_opt,
    verify_certificate,
)
from repro.topologies import build
from repro.topologies.constructions import two_chains_optimal_tree


@pytest.mark.benchmark(group="opt")
@pytest.mark.parametrize("n", [8, 10, 12])
def test_exact_solver_exponential_chain(benchmark, n):
    """Full certified solve (search lower bound meets the witness)."""
    pos = exponential_chain(n)
    outcome = benchmark(solve_opt, pos)
    assert outcome.exact and outcome.status == "optimal"
    assert verify_certificate(pos, outcome.certificate)
    # Theorem 5.2: OPT = Omega(sqrt(n)) on the exponential chain
    assert outcome.value >= math.sqrt(n / 2.0) - 1e-9


@pytest.mark.benchmark(group="opt")
@pytest.mark.parametrize("n", [16, 24, 32])
def test_certified_sqrt_upper_bound(benchmark, n):
    """OPT <= 2*sqrt(n) on exponential chains, via verified certificates."""
    pos = exponential_chain(n)

    def certify():
        hval, htopo = heuristic_opt(pos, config=OptConfig(seed=0))
        atopo = a_exp(pos)
        witness = min(
            (htopo, atopo), key=lambda t: int(graph_interference(t))
        )
        return certify_topology(pos, witness)

    cert = benchmark(certify)
    assert verify_certificate(pos, cert)
    assert cert.value <= 2.0 * math.sqrt(n), (
        f"certified OPT upper bound {cert.value} exceeds 2*sqrt({n})"
    )
    assert cert.lower_bound >= 1


@pytest.mark.benchmark(group="opt")
def test_budgeted_bracket_exp16(benchmark):
    """Anytime mode: a node budget yields a certified [lb, ub] bracket."""
    pos = exponential_chain(16)
    cfg = OptConfig(node_budget=50_000)
    outcome = benchmark(solve_opt, pos, config=cfg)
    assert outcome.status in ("budget", "optimal")
    assert outcome.lower_bound <= outcome.value
    assert verify_certificate(pos, outcome.certificate)


@pytest.mark.benchmark(group="opt")
@pytest.mark.parametrize("m", [8, 16, 32])
def test_nnf_gap_vs_certified_bound(benchmark, m):
    """Theorem 4.1 anchored to certificates: NNF-containing topologies
    measure >= m-2 while the certified upper bound stays O(1)."""
    pos, groups = two_exponential_chains(m)
    unit = float(2.0 ** (m + 1))

    def measure():
        udg = unit_disk_graph(pos, unit=unit)
        nnf_val = int(graph_interference(build("nnf", udg)))
        emst_val = int(graph_interference(build("emst", udg)))
        cert = certify_topology(pos, two_chains_optimal_tree(pos, groups), unit=unit)
        return nnf_val, emst_val, cert

    nnf_val, emst_val, cert = benchmark(measure)
    assert verify_certificate(pos, cert)
    # the gap claim: linear growth vs a constant certified upper bound
    assert max(nnf_val, emst_val) >= m - 2
    assert cert.value <= 6
