"""Ablation: the exact solver's isolation pruning.

Quantifies the branch-and-bound design choice of
``repro.exact.radii_search``: pruning subtrees where some assigned node can
no longer acquire any partner. On the exponential chain's infeasibility
proof this is a ~20x speedup.
"""

import pytest

from repro.exact.radii_search import feasible_with_interference
from repro.geometry.generators import exponential_chain

POS = exponential_chain(8)  # OPT = 4, so k=3 is the infeasible frontier


@pytest.mark.benchmark(group="ablation-exact-pruning")
def test_with_isolation_pruning(benchmark):
    out = benchmark(feasible_with_interference, POS, 3, isolation_pruning=True)
    assert out is None


@pytest.mark.benchmark(group="ablation-exact-pruning")
def test_without_isolation_pruning(benchmark):
    out = benchmark(feasible_with_interference, POS, 3, isolation_pruning=False)
    assert out is None
