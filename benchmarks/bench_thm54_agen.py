"""Bench E7 / Theorem 5.4, Figure 9: algorithm A_gen at scale."""

import math

import pytest

from repro.geometry.generators import exponential_chain, random_highway
from repro.highway.a_gen import a_gen
from repro.interference.receiver import graph_interference
from repro.model.udg import unit_disk_graph


@pytest.mark.benchmark(group="thm54")
def test_agen_2000_nodes(benchmark, highway_2000):
    udg = unit_disk_graph(highway_2000)
    delta = udg.max_degree()
    topo = benchmark(a_gen, highway_2000, delta=delta)
    assert topo.is_connected() == udg.is_connected()
    assert graph_interference(topo) <= 3.0 * math.sqrt(delta)


@pytest.mark.benchmark(group="thm54")
@pytest.mark.parametrize("max_gap", [0.02, 0.2, 0.8])
def test_agen_density_sweep(benchmark, max_gap):
    """Interference tracks sqrt(Delta) across densities (the Fig. 9 sweep)."""
    pos = random_highway(500, max_gap=max_gap, seed=3)
    delta = unit_disk_graph(pos).max_degree()

    def run():
        return graph_interference(a_gen(pos, delta=delta))

    assert benchmark(run) <= 3.0 * math.sqrt(delta)


@pytest.mark.benchmark(group="thm54")
def test_agen_exponential_chain(benchmark):
    pos = exponential_chain(512)
    topo = benchmark(a_gen, pos, delta=511)
    ival = graph_interference(topo)
    assert ival <= 3.0 * math.sqrt(511)
    assert ival < 510 / 4  # far below the linear chain
