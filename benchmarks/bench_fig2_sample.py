"""Bench E2 / Figure 2: the definition example plus the interference kernel
it exercises, at definition scale (5 nodes) and at survey scale (1000)."""

import numpy as np
import pytest

from repro.geometry.generators import random_udg_connected
from repro.interference.receiver import node_interference
from repro.model.udg import unit_disk_graph
from repro.topologies.constructions import fig2_sample_topology


@pytest.mark.benchmark(group="fig2")
def test_fig2_definition_example(benchmark):
    topo = fig2_sample_topology()
    vec = benchmark(node_interference, topo)
    assert vec[0] == 2  # the paper's I(u) = 2
    assert np.all(vec >= topo.degrees)


@pytest.mark.benchmark(group="fig2")
def test_definition_kernel_n1000(benchmark):
    pos = random_udg_connected(1000, side=14.0, seed=5)
    udg = unit_disk_graph(pos)
    vec = benchmark(node_interference, udg)
    assert vec.max() <= udg.max_degree()
