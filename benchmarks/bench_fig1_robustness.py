"""Bench E1 / Figure 1: the single-node-addition robustness contrast.

Regenerates the Figure 1 comparison at n = 100 while timing the full
addition report (both interference measures, before and after).
"""

import math

import numpy as np
import pytest

from repro.geometry.generators import random_uniform_square
from repro.graphs.mst import euclidean_mst_edges
from repro.interference.robustness import addition_report
from repro.model.topology import Topology


@pytest.mark.benchmark(group="fig1")
def test_fig1_addition_report(benchmark):
    n = 100
    side = math.sqrt(n)
    pos = random_uniform_square(n - 1, side=side, seed=7)
    before = Topology(pos, euclidean_mst_edges(pos))
    remote = np.array([3.0 * side, 0.5 * side])
    anchor = int(np.argmin(np.hypot(*(pos - remote).T)))

    report = benchmark(addition_report, before, remote, [anchor])

    # paper shape: receiver-centric moves by <= 2, sender-centric jumps to ~n
    assert report.max_receiver_delta <= 2
    assert report.sender_after >= n - 3
    assert report.sender_before <= 12
