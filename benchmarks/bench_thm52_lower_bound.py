"""Bench E6 / Theorem 5.2: the exact branch-and-bound solver."""

import math

import pytest

from repro.exact.radii_search import feasible_with_interference, minimum_interference
from repro.geometry.generators import exponential_chain, random_uniform_square


@pytest.mark.benchmark(group="thm52")
@pytest.mark.parametrize("n", [7, 9])
def test_exact_optimum_exponential_chain(benchmark, n):
    pos = exponential_chain(n)
    opt, topo = benchmark(minimum_interference, pos)
    assert opt >= math.sqrt(n) - 1e-9  # Theorem 5.2
    assert topo.is_connected()


@pytest.mark.benchmark(group="thm52")
def test_exact_optimum_random_2d(benchmark):
    pos = random_uniform_square(9, side=0.8, seed=11)
    opt, topo = benchmark(minimum_interference, pos)
    assert topo.is_connected()
    assert opt >= 1


@pytest.mark.benchmark(group="thm52")
def test_infeasibility_proof(benchmark):
    """The hard direction: proving no topology achieves I < sqrt(n)."""
    pos = exponential_chain(9)
    assert benchmark(feasible_with_interference, pos, 3) is None
