"""Bench E10: the packet-level simulation substrate.

Times the slotted-ALOHA, gather and CSMA simulators while re-asserting the
model-validation shape (I(v) predicts collisions; low-I topologies lose
fewer packets).
"""

import numpy as np
import pytest

from repro.geometry.generators import exponential_chain, random_udg_connected
from repro.highway.a_exp import a_exp
from repro.highway.linear import linear_chain
from repro.model.udg import unit_disk_graph
from repro.sim.csma import CsmaSimulator
from repro.sim.metrics import collision_interference_correlation
from repro.sim.slotted import GatherSimulator, SlottedAlohaSimulator
from repro.sim.traffic import gather_tree


@pytest.mark.benchmark(group="sim")
def test_slotted_aloha_linear_chain(benchmark):
    topo = linear_chain(exponential_chain(40))
    sim = SlottedAlohaSimulator(topo, p=0.15)
    res = benchmark(sim.run, 2000, seed=11)
    corr, _ = collision_interference_correlation(topo, res.collision_rate)
    assert corr > 0.85


@pytest.mark.benchmark(group="sim")
def test_slotted_aloha_aexp_beats_linear(benchmark):
    pos = exponential_chain(40)
    aexp_t = a_exp(pos)
    sim = SlottedAlohaSimulator(aexp_t, p=0.15)
    res = benchmark(sim.run, 2000, seed=11)
    lin_res = SlottedAlohaSimulator(linear_chain(pos), p=0.15).run(2000, seed=11)
    assert np.nanmean(res.collision_rate) < np.nanmean(lin_res.collision_rate)


@pytest.mark.benchmark(group="sim")
def test_gather_workload(benchmark):
    pos = random_udg_connected(40, side=3.0, seed=13)
    from repro.topologies import build

    topo = build("emst", unit_disk_graph(pos))
    parent = gather_tree(topo, sink=0)
    sim = GatherSimulator(topo, parent, p=0.2, source_period=100)
    out = benchmark(sim.run, 2000, seed=13)
    assert out["delivered"] > 0
    assert out["retransmission_overhead"] >= 1.0


@pytest.mark.benchmark(group="sim")
def test_csma_event_driven(benchmark):
    pos = random_udg_connected(30, side=3.0, seed=17)
    udg = unit_disk_graph(pos)

    def run():
        sim = CsmaSimulator(udg, arrival_rate=0.05, seed=17)
        return sim.run_for(1000.0)

    res = benchmark(run)
    assert res.rx_ok.sum() > 0
