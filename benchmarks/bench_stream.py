"""P6: durable streaming engine — ingest throughput and recovery time.

The acceptance bar from the streaming-engine design: sustained ingest of
**>= 1e5 applied updates/sec on a 1e5-node universe with snapshotting
enabled**, WAL framing included (length + SHA-256 per record), plus a
report of recovery wall time for the log the ingest run produced.

Workload: 3e5 membership events (50/20/30 join/leave/move mix, uniform
positions over a 1200-unit square, radii in [0.2, 1.0] of r_max) applied
through :meth:`DurableStreamEngine.apply_batch` — the WAL path the
`repro stream ingest` CLI and the serving lane use. Snapshots fire at
the 150k cadence, so the measured window pays for two full-state
snapshot serializations on top of per-record framing.

Each measurement takes best-of-N rounds — these are capacity numbers,
and the container's scheduling noise is on the order of the effect
otherwise (the same defense the serving benchmarks use). Event
generation happens once, outside the timed region.

Recovery is timed once against the final stream directory: scan + verify
all 3e5 frames, load the newest snapshot, bulk-replay the tail. The wall
time lands in ``extra_info`` next to the ingest rate.
"""

from __future__ import annotations

import time

import pytest

from repro.stream import (
    DurableStreamEngine,
    StreamConfig,
    random_stream_events,
)

N_EVENTS = 300_000
CAPACITY = 100_000
SIDE = 1200.0
R_MAX = 1.0

FLOOR_EVENTS_PER_SEC = 1e5
ROUNDS = 4


def _config() -> StreamConfig:
    return StreamConfig(
        capacity=CAPACITY,
        r_max=R_MAX,
        snapshot_every=150_000,
        fsync_every=4096,
        fsync=False,  # measure framing + buffered appends, not the disk
    )


@pytest.fixture(scope="module")
def event_stream():
    return random_stream_events(
        N_EVENTS,
        capacity=CAPACITY,
        side=SIDE,
        r_max=R_MAX,
        seed=0,
        family="uniform",
    )


@pytest.mark.benchmark(group="stream")
def test_durable_ingest_sustains_throughput_floor(
    benchmark, event_stream, tmp_path
):
    def measure():
        best = 0.0
        for round_no in range(ROUNDS):
            directory = tmp_path / f"round-{round_no}"
            engine = DurableStreamEngine.create(directory, _config())
            started = time.perf_counter()
            applied = engine.apply_batch(event_stream)
            wall = time.perf_counter() - started
            engine.close()
            assert applied == N_EVENTS
            snapshots = list(directory.glob("snapshot-*.json"))
            assert snapshots, "snapshotting must fire inside the window"
            best = max(best, applied / wall)

        # recovery of the last round's directory: full scan (every frame
        # re-verified), snapshot load, bulk tail replay
        started = time.perf_counter()
        recovered = DurableStreamEngine.open(directory)
        recovery_wall = time.perf_counter() - started
        info = recovered.recovery
        assert recovered.last_seq == N_EVENTS
        assert info.snapshot_seq > 0, "recovery must start from a snapshot"
        assert not info.torn_tail
        recovered.close()
        return best, recovery_wall

    rate, recovery_wall = benchmark.pedantic(measure, rounds=1, iterations=1)
    benchmark.extra_info["events_per_sec"] = round(rate)
    benchmark.extra_info["recovery_wall_s"] = round(recovery_wall, 3)
    benchmark.extra_info["wal_records"] = N_EVENTS
    assert rate >= FLOOR_EVENTS_PER_SEC, (
        f"durable ingest {rate:,.0f} events/sec under the "
        f"{FLOOR_EVENTS_PER_SEC:,.0f}/sec floor "
        f"(capacity {CAPACITY:,}, snapshotting enabled; "
        f"recovery {recovery_wall:.2f}s)"
    )
