"""P6: durable streaming engine — ingest throughput and recovery time.

The acceptance bar from the streaming-engine design: sustained ingest of
**>= 1e5 applied updates/sec on a 1e5-node universe with snapshotting
enabled**, WAL framing included (length + SHA-256 per record), plus a
report of recovery wall time for the log the ingest run produced.

Workload: 3e5 membership events (50/20/30 join/leave/move mix, uniform
positions over a 1200-unit square, radii in [0.2, 1.0] of r_max) applied
through :meth:`DurableStreamEngine.apply_batch` — the WAL path the
`repro stream ingest` CLI and the serving lane use. Snapshots fire at
the 150k cadence, so the measured window pays for two full-state
snapshot serializations on top of per-record framing.

Each measurement takes best-of-N rounds — these are capacity numbers,
and the container's scheduling noise is on the order of the effect
otherwise (the same defense the serving benchmarks use). Event
generation happens once, outside the timed region.

Recovery is timed once against the final stream directory: seek to the
segment holding ``snapshot.seq + 1``, load the newest snapshot, scan +
verify only the tail frames, bulk-replay them. The wall time lands in
``extra_info`` next to the ingest rate.

The second benchmark asserts the *bounded recovery* property the
segmented log buys: with the snapshot cadence fixed, recovery after a
~10x longer stream must cost at most 1.5x the short stream's recovery
(pre-segmentation, a full-log scan made it ~10x).
"""

from __future__ import annotations

import time

import pytest

from repro.stream import (
    DurableStreamEngine,
    StreamConfig,
    random_stream_events,
)

N_EVENTS = 300_000
CAPACITY = 100_000
SIDE = 1200.0
R_MAX = 1.0

FLOOR_EVENTS_PER_SEC = 1e5
ROUNDS = 4


def _config() -> StreamConfig:
    return StreamConfig(
        capacity=CAPACITY,
        r_max=R_MAX,
        snapshot_every=150_000,
        fsync_every=4096,
        fsync=False,  # measure framing + buffered appends, not the disk
    )


@pytest.fixture(scope="module")
def event_stream():
    return random_stream_events(
        N_EVENTS,
        capacity=CAPACITY,
        side=SIDE,
        r_max=R_MAX,
        seed=0,
        family="uniform",
    )


@pytest.mark.benchmark(group="stream")
def test_durable_ingest_sustains_throughput_floor(
    benchmark, event_stream, tmp_path
):
    def measure():
        best = 0.0
        for round_no in range(ROUNDS):
            directory = tmp_path / f"round-{round_no}"
            engine = DurableStreamEngine.create(directory, _config())
            started = time.perf_counter()
            applied = engine.apply_batch(event_stream)
            wall = time.perf_counter() - started
            engine.close()
            assert applied == N_EVENTS
            snapshots = list(directory.glob("snapshot-*.json"))
            assert snapshots, "snapshotting must fire inside the window"
            best = max(best, applied / wall)

        # recovery of the last round's directory: full scan (every frame
        # re-verified), snapshot load, bulk tail replay
        started = time.perf_counter()
        recovered = DurableStreamEngine.open(directory)
        recovery_wall = time.perf_counter() - started
        info = recovered.recovery
        assert recovered.last_seq == N_EVENTS
        assert info.snapshot_seq > 0, "recovery must start from a snapshot"
        assert not info.torn_tail
        recovered.close()
        return best, recovery_wall

    rate, recovery_wall = benchmark.pedantic(measure, rounds=1, iterations=1)
    benchmark.extra_info["events_per_sec"] = round(rate)
    benchmark.extra_info["recovery_wall_s"] = round(recovery_wall, 3)
    benchmark.extra_info["wal_records"] = N_EVENTS
    assert rate >= FLOOR_EVENTS_PER_SEC, (
        f"durable ingest {rate:,.0f} events/sec under the "
        f"{FLOOR_EVENTS_PER_SEC:,.0f}/sec floor "
        f"(capacity {CAPACITY:,}, snapshotting enabled; "
        f"recovery {recovery_wall:.2f}s)"
    )


@pytest.mark.benchmark(group="stream")
def test_recovery_stays_flat_as_the_stream_grows(benchmark, tmp_path):
    """Recovery cost tracks data-since-last-snapshot, not stream length.

    Both directories end with the same-size replay tail (10k events past
    their last snapshot) under the same 20k cadence; the long stream is
    ~10x the short one. A recovery that scanned the whole log — the
    pre-segmentation behaviour — would pay ~10x here; seeking to the
    snapshot's segment must keep the ratio near 1 (gate: <= 1.5, with a
    best-of-rounds measurement to shed scheduler noise).
    """
    cadence = 20_000
    short_n = 30_000   # snapshots at 20k; 10k-event tail
    long_n = 290_000   # snapshots at ...280k; 10k-event tail
    # a universe the churn saturates within the short stream, so both
    # directories snapshot a comparably-sized live state and the ratio
    # isolates the log-scan term (a bigger *state* rightly costs more to
    # load — that is not the property under test)
    capacity = 10_000
    cfg = StreamConfig(
        capacity=capacity,
        r_max=R_MAX,
        snapshot_every=cadence,
        fsync_every=4096,
        fsync=False,
        # segment granularity well under the snapshot cadence (~4.7k
        # records per 256 KiB segment), so seeking to the snapshot's
        # segment wastes at most one segment of pre-snapshot scan
        segment_bytes=256 * 1024,
        compact="manual",  # keep the full log: the point is *not* reading it
    )
    events = random_stream_events(
        long_n,
        capacity=capacity,
        side=SIDE,
        r_max=R_MAX,
        seed=1,
        family="uniform",
    )

    def build(directory, n):
        engine = DurableStreamEngine.create(directory, cfg)
        engine.apply_batch(events[:n])
        engine.close()

    def time_recovery(directory):
        best = float("inf")
        info = None
        for _ in range(ROUNDS):
            started = time.perf_counter()
            recovered = DurableStreamEngine.open(directory)
            best = min(best, time.perf_counter() - started)
            info = recovered.recovery
            recovered.close()
        return best, info

    def measure():
        build(tmp_path / "short", short_n)
        build(tmp_path / "long", long_n)
        short_wall, short_info = time_recovery(tmp_path / "short")
        long_wall, long_info = time_recovery(tmp_path / "long")
        return short_wall, short_info, long_wall, long_info

    short_wall, short_info, long_wall, long_info = benchmark.pedantic(
        measure, rounds=1, iterations=1
    )
    # both recoveries replay the same-size tail from their snapshot
    assert short_info.snapshot_seq == short_n - 10_000
    assert long_info.snapshot_seq == long_n - 10_000
    assert (short_info.replayed_to - short_info.replayed_from) == (
        long_info.replayed_to - long_info.replayed_from
    )
    # and scan a comparable number of bytes — the structural reason the
    # wall-clock ratio below can hold at any stream length
    assert long_info.bytes_scanned <= 2 * short_info.bytes_scanned
    ratio = long_wall / short_wall
    benchmark.extra_info["short_recovery_s"] = round(short_wall, 4)
    benchmark.extra_info["long_recovery_s"] = round(long_wall, 4)
    benchmark.extra_info["recovery_ratio_10x_stream"] = round(ratio, 3)
    benchmark.extra_info["short_bytes_scanned"] = short_info.bytes_scanned
    benchmark.extra_info["long_bytes_scanned"] = long_info.bytes_scanned
    assert ratio <= 1.5, (
        f"recovery of a ~10x stream cost {ratio:.2f}x "
        f"({long_wall:.3f}s vs {short_wall:.3f}s) — bounded recovery "
        f"requires <= 1.5x at fixed snapshot cadence"
    )
