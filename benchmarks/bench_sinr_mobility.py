"""Benches EXT-3/EXT-4: SINR physical layer and mobility timeline."""

import numpy as np
import pytest

from repro.geometry.generators import exponential_chain
from repro.highway.a_exp import a_exp
from repro.highway.linear import linear_chain
from repro.mobility import RandomWaypointModel, TopologyTimeline
from repro.sim.backoff import BebAlohaSimulator
from repro.sim.sinr import SinrSlottedSimulator
from repro.topologies import build


@pytest.mark.benchmark(group="sinr")
def test_sinr_slotted(benchmark):
    pos = exponential_chain(40)
    sim = SinrSlottedSimulator(linear_chain(pos), p=0.15)
    res = benchmark(sim.run, 1500, seed=3)
    assert res.rx_ok.sum() > 0


@pytest.mark.benchmark(group="sinr")
def test_sinr_ranking(benchmark):
    pos = exponential_chain(40)
    aex = a_exp(pos)
    lin = linear_chain(pos)

    def run():
        a = SinrSlottedSimulator(aex, p=0.15).run(1000, seed=4)
        b = SinrSlottedSimulator(lin, p=0.15).run(1000, seed=4)
        return float(np.nanmean(a.loss_rate)), float(np.nanmean(b.loss_rate))

    a_loss, b_loss = benchmark(run)
    assert a_loss < b_loss


@pytest.mark.benchmark(group="beb")
def test_beb_saturation(benchmark):
    pos = exponential_chain(40)
    sim = BebAlohaSimulator(a_exp(pos))
    res = benchmark(sim.run, 2000, seed=5)
    assert res.deliveries.sum() > 0


@pytest.mark.benchmark(group="mobility")
def test_mobility_timeline_emst(benchmark):
    model = RandomWaypointModel(40, side=4.5, seed=6)
    frames = model.trajectory(15, dt=1.0)

    def run():
        return TopologyTimeline(lambda udg: build("emst", udg)).run(frames)

    result = benchmark(run)
    assert result.connected.all()
