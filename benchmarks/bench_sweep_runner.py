"""P2: sweep runner — serial vs parallel vs warm-cache execution.

Measures the same fixed task set three ways:

- ``serial``: one process, no cache (the pre-runner ``run_all`` regime);
- ``parallel``: two workers, no cache (pure process-pool speedup);
- ``warm-cache``: one process against a fully-populated cache (every task
  a hit — the target regime for repeated report/sweep invocations, which
  the acceptance criterion requires to be >= 10x faster than serial).

Single-round pedantic benchmarks: spawning pools and populating caches
inside the default calibration loop would swamp the signal.
"""

import pytest

from repro.runner import ResultCache, SweepTask, run_sweep

#: A representative slice of the registry: mixed cost, deterministic.
SWEEP_TASKS = [
    SweepTask("fig2_sample"),
    SweepTask("fig7_linear_chain", {"sizes": (4, 16, 64)}),
    SweepTask("fig1_robustness", {"sizes": (10, 20, 40)}),
    SweepTask("thm41_nnf", {"ms": (4, 8, 16)}),
    SweepTask("thm54_agen"),
    SweepTask("tdma_scheduling"),
]


@pytest.mark.benchmark(group="sweep-runner")
def test_sweep_serial(benchmark):
    outcome = benchmark.pedantic(
        lambda: run_sweep(SWEEP_TASKS, workers=1), rounds=3, iterations=1
    )
    assert outcome.manifest.n_misses == len(SWEEP_TASKS)


@pytest.mark.benchmark(group="sweep-runner")
def test_sweep_parallel_two_workers(benchmark):
    outcome = benchmark.pedantic(
        lambda: run_sweep(SWEEP_TASKS, workers=2), rounds=3, iterations=1
    )
    assert outcome.manifest.n_misses == len(SWEEP_TASKS)


@pytest.mark.benchmark(group="sweep-runner")
def test_sweep_warm_cache(benchmark, tmp_path):
    cache = ResultCache(tmp_path / "cache")
    cold = run_sweep(SWEEP_TASKS, workers=1, cache=cache)
    assert cold.manifest.n_misses == len(SWEEP_TASKS)

    outcome = benchmark.pedantic(
        lambda: run_sweep(SWEEP_TASKS, workers=1, cache=cache),
        rounds=5,
        iterations=1,
    )
    assert outcome.manifest.n_hits == len(SWEEP_TASKS)
    # the acceptance bar: a warm sweep is >= 10x faster than computing
    warm_wall = outcome.manifest.wall_time_s
    assert warm_wall * 10 <= cold.manifest.wall_time_s, (
        f"warm sweep {warm_wall:.3f}s not 10x faster than "
        f"cold {cold.manifest.wall_time_s:.3f}s"
    )


@pytest.mark.benchmark(group="sweep-runner")
def test_sweep_seed_grid_parallel(benchmark):
    """Seed-replicated grid (the Devroye-Morin random-instance pattern)."""
    from repro.runner import expand_grid

    tasks = expand_grid(
        ["fig1_robustness"],
        params={"sizes": [[10, 20]]},
        n_seeds=6,
        base_seed=42,
    )
    outcome = benchmark.pedantic(
        lambda: run_sweep(tasks, workers=2), rounds=3, iterations=1
    )
    assert outcome.manifest.n_tasks == 6
