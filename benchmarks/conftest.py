"""Benchmark fixtures: pre-built instances shared across bench files."""

from __future__ import annotations

import pytest

from repro.geometry.generators import (
    exponential_chain,
    random_highway,
    random_udg_connected,
)
from repro.model.udg import unit_disk_graph


@pytest.fixture(scope="session")
def chain_512():
    return exponential_chain(512)


@pytest.fixture(scope="session")
def highway_2000():
    return random_highway(2000, max_gap=0.05, seed=101)


@pytest.fixture(scope="session")
def udg_150():
    pos = random_udg_connected(150, side=5.0, seed=77)
    return unit_disk_graph(pos, unit=1.0)
