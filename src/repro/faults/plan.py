"""Seeded fault schedules: per-link message faults, crashes and churn.

The central design constraint is *order independence*: the outcome of every
fault query is a pure function of the plan's seed and the query coordinates
``(round, attempt, sender, receiver)``, never of how many draws happened
before. Executors may therefore iterate links in any order, retry, or
re-run a round without perturbing the rest of the schedule — the property
that makes fault scenarios replayable artifacts.

Draws are implemented by seeding a fresh PCG64 generator with the tuple
``(seed, tag, round, attempt, sender, receiver)``; NumPy hashes the whole
tuple into the stream state, so distinct coordinates give independent
streams while identical coordinates always reproduce the same outcome.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from repro.utils import as_generator

#: Query tags keeping independent fault dimensions on independent streams.
_TAG_LINK = 0
_TAG_ACK = 1
_TAG_CHAOS = 2

#: Possible outcomes of :meth:`FaultPlan.link_outcome`.
LINK_OUTCOMES = ("deliver", "drop", "duplicate", "delay")


class FaultPlan:
    """Deterministic per-link message faults plus a node-crash schedule.

    Parameters
    ----------
    seed:
        Integer seed; the plan is a pure function of it.
    p_drop, p_duplicate, p_delay:
        Bernoulli rates for the three link fault modes (must sum to <= 1;
        the remainder is clean delivery). Acks are dropped with the same
        ``p_drop`` as data messages.
    max_delay:
        Delayed messages arrive 1..``max_delay`` attempt slots late.
    crashes:
        Mapping ``node -> round``; the node is silent (sends nothing, acks
        nothing, receives nothing) from that round onward.
    """

    def __init__(
        self,
        *,
        seed: int = 0,
        p_drop: float = 0.0,
        p_duplicate: float = 0.0,
        p_delay: float = 0.0,
        max_delay: int = 2,
        crashes: dict[int, int] | None = None,
    ):
        for name, p in (
            ("p_drop", p_drop),
            ("p_duplicate", p_duplicate),
            ("p_delay", p_delay),
        ):
            if not 0.0 <= p <= 1.0:
                raise ValueError(f"{name} must lie in [0, 1]")
        if p_drop + p_duplicate + p_delay > 1.0 + 1e-12:
            raise ValueError("fault probabilities must sum to at most 1")
        if max_delay < 1:
            raise ValueError("max_delay must be >= 1")
        self.seed = int(seed)
        self.p_drop = float(p_drop)
        self.p_duplicate = float(p_duplicate)
        self.p_delay = float(p_delay)
        self.max_delay = int(max_delay)
        self.crashes = {int(u): int(r) for u, r in (crashes or {}).items()}
        for u, r in self.crashes.items():
            if u < 0 or r < 0:
                raise ValueError("crash entries must be non-negative")

    # -- convenience constructors -----------------------------------------
    @classmethod
    def lossless(cls, *, crashes: dict[int, int] | None = None) -> "FaultPlan":
        """A perfect network (optionally still with crashes)."""
        return cls(seed=0, crashes=crashes)

    @classmethod
    def bernoulli(cls, p: float, *, seed: int = 0, **kwargs) -> "FaultPlan":
        """Pure Bernoulli loss at rate ``p`` (the paper-adjacent lossy model)."""
        return cls(seed=seed, p_drop=p, **kwargs)

    # -- crash queries -----------------------------------------------------
    def crash_round(self, node: int) -> int | None:
        """Round from which ``node`` is crashed, or None if it never is."""
        return self.crashes.get(int(node))

    def is_crashed(self, node: int, round_idx: int) -> bool:
        r = self.crashes.get(int(node))
        return r is not None and round_idx >= r

    # -- link queries ------------------------------------------------------
    def _rng(self, tag: int, round_idx: int, attempt: int, u: int, v: int):
        return np.random.default_rng(
            (self.seed, tag, int(round_idx), int(attempt), int(u), int(v))
        )

    def link_outcome(
        self, round_idx: int, attempt: int, sender: int, receiver: int
    ) -> tuple[str, int]:
        """Fate of one directed transmission attempt.

        Returns ``(outcome, delay)`` where ``outcome`` is one of
        :data:`LINK_OUTCOMES` and ``delay`` (attempt slots, >= 1) is only
        meaningful for ``"delay"``.
        """
        if self.p_drop == self.p_duplicate == self.p_delay == 0.0:
            return "deliver", 0
        rng = self._rng(_TAG_LINK, round_idx, attempt, sender, receiver)
        x = float(rng.random())
        if x < self.p_drop:
            return "drop", 0
        if x < self.p_drop + self.p_duplicate:
            return "duplicate", 0
        if x < self.p_drop + self.p_duplicate + self.p_delay:
            return "delay", 1 + int(rng.integers(self.max_delay))
        return "deliver", 0

    def ack_dropped(
        self, round_idx: int, attempt: int, sender: int, receiver: int
    ) -> bool:
        """Whether the ack for this delivery is lost on the way back."""
        if self.p_drop == 0.0:
            return False
        rng = self._rng(_TAG_ACK, round_idx, attempt, sender, receiver)
        return bool(rng.random() < self.p_drop)

    # -- chaos queries -----------------------------------------------------
    def chaos_uniform(self, run: int, draw: int = 0) -> float:
        """An order-independent U[0, 1) draw on the chaos stream.

        The stream-engine chaos harness uses these to pick kill points
        (run ``run``, draw index ``draw``) with the same replayability
        contract as link faults: the value depends only on the plan seed
        and the coordinates, never on prior draws.
        """
        rng = self._rng(_TAG_CHAOS, run, draw, 0, 0)
        return float(rng.random())

    def __repr__(self) -> str:
        return (
            f"FaultPlan(seed={self.seed}, p_drop={self.p_drop}, "
            f"p_duplicate={self.p_duplicate}, p_delay={self.p_delay}, "
            f"crashes={len(self.crashes)})"
        )


@dataclass(frozen=True)
class ChurnEvent:
    """One membership event applied to a running topology.

    ``kind`` is ``"join"`` (with a concrete ``position``) or ``"leave"``.
    Leaves carry a ``salt`` instead of a node id: the engine picks the
    victim as ``alive[salt % len(alive)]`` over the currently-alive nodes,
    which keeps the schedule independent of engine state while remaining
    fully deterministic.
    """

    kind: str
    position: tuple[float, float] | None = None
    salt: int = 0
    #: joins only: this node arrives far outside the deployment area
    straggler: bool = False

    def __post_init__(self):
        if self.kind not in ("join", "leave"):
            raise ValueError(f"unknown churn event kind {self.kind!r}")
        if self.kind == "join" and self.position is None:
            raise ValueError("join events need a position")


@dataclass(frozen=True)
class ChurnSchedule:
    """An ordered, seeded sequence of :class:`ChurnEvent`.

    Build with :meth:`random` for the standard randomized workload, or
    construct the event list directly for hand-crafted scenarios.
    """

    events: tuple[ChurnEvent, ...]
    meta: dict = field(default_factory=dict)

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self):
        return iter(self.events)

    @property
    def join_positions(self) -> np.ndarray:
        """``(k, 2)`` positions of all scheduled joins, in event order.

        The churn engine pre-allocates its interference tracker over the
        initial nodes plus exactly these points.
        """
        pts = [e.position for e in self.events if e.kind == "join"]
        return np.asarray(pts, dtype=np.float64).reshape(-1, 2)

    @classmethod
    def random(
        cls,
        n_events: int,
        *,
        side: float,
        seed=None,
        leave_fraction: float = 0.35,
        straggler_every: int = 5,
        straggler_distance: tuple[float, float] = (2.5, 3.5),
    ) -> "ChurnSchedule":
        """Randomized churn: local joins, periodic stragglers, random leaves.

        Joins land uniformly in ``[0, side]^2``; every ``straggler_every``-th
        join is instead a *straggler* far outside the deployment area (at
        ``side * U(straggler_distance)`` from the centre) — the Figure 1
        situation whose attachment edge covers the whole network under the
        sender-centric measure. Roughly ``leave_fraction`` of events are
        leaves.
        """
        if n_events < 1:
            raise ValueError("n_events must be >= 1")
        if side <= 0:
            raise ValueError("side must be positive")
        if not 0.0 <= leave_fraction < 1.0:
            raise ValueError("leave_fraction must lie in [0, 1)")
        if straggler_every < 1:
            raise ValueError("straggler_every must be >= 1")
        lo, hi = straggler_distance
        if not 0 < lo <= hi:
            raise ValueError("straggler_distance must satisfy 0 < lo <= hi")
        rng = as_generator(seed)
        events: list[ChurnEvent] = []
        n_joins = 0
        for _ in range(n_events):
            if rng.random() < leave_fraction:
                events.append(ChurnEvent("leave", salt=int(rng.integers(2**31))))
                continue
            n_joins += 1
            straggler = n_joins % straggler_every == 0
            if straggler:
                angle = float(rng.uniform(0.0, 2.0 * math.pi))
                radius = float(side * rng.uniform(lo, hi))
                pos = (
                    side / 2.0 + radius * math.cos(angle),
                    side / 2.0 + radius * math.sin(angle),
                )
            else:
                pos = (float(rng.uniform(0.0, side)), float(rng.uniform(0.0, side)))
            events.append(ChurnEvent("join", position=pos, straggler=straggler))
        return cls(
            events=tuple(events),
            meta={
                "side": side,
                "leave_fraction": leave_fraction,
                "straggler_every": straggler_every,
                "n_joins": n_joins,
            },
        )
