"""Fault injection: lossy links, node crashes, and topology churn.

A real ad-hoc deployment sees exactly the failures the paper's robustness
argument is about: nodes arrive and depart, and the wireless medium drops,
duplicates and delays messages. This package makes those failure modes
first-class and reproducible:

- :class:`FaultPlan` — a seeded, order-independent schedule of per-link
  message faults (Bernoulli drop/duplicate/delay) and node crashes,
  consumed by :class:`repro.distributed.UnreliableNetwork`.
- :class:`ChurnSchedule` / :class:`ChurnEvent` — a seeded sequence of
  node join/leave events over a built topology.
- :class:`ChurnEngine` — applies a churn schedule to a topology with
  local repair (nearest-neighbour re-patching), maintaining interference
  incrementally via :class:`repro.interference.InterferenceTracker` and
  recording per-event receiver-/sender-centric deltas
  (:class:`repro.interference.robustness.StabilityRecord`).

Everything is deterministic given its seed, so fault scenarios are exact
reproducible artifacts rather than flaky one-offs.
"""

from repro.faults.plan import ChurnEvent, ChurnSchedule, FaultPlan
from repro.faults.churn import ChurnEngine

__all__ = [
    "FaultPlan",
    "ChurnSchedule",
    "ChurnEvent",
    "ChurnEngine",
]
