"""Churn engine: node joins/leaves over a built topology with local repair.

The engine turns the paper's static Figure 1 argument into a dynamic one.
It applies a :class:`repro.faults.ChurnSchedule` to a topology event by
event:

- **join** — the new node attaches to its ``attach_k`` nearest alive nodes
  (nearest-neighbour attachment, the natural greedy a deployed node would
  use); attachment nodes grow their radii as needed.
- **leave** — the node and its edges vanish; former neighbours shrink their
  radii. If the survivors disconnect, the engine *repairs locally*: removal
  of one node can only split the network into components each containing a
  former neighbour of the departed node, so re-patching the nearest pair of
  former neighbours across components restores connectivity. (A global
  nearest-pair fallback covers topologies that were already disconnected —
  connectivity of survivors is restored, never silently lost.)

Interference is maintained incrementally through
:class:`repro.interference.InterferenceTracker` over the *universe* of
nodes (initial + every scheduled join), with dead/not-yet-joined nodes
deactivated; every event yields a
:class:`repro.interference.robustness.StabilityRecord` with the
receiver-centric delta split into the provably-bounded own-disk part and
the attachment-growth part, plus the sender-centric jump — the empirical
Figure 1 separation under randomized churn.
"""

from __future__ import annotations

import math
from collections import deque

import numpy as np

from repro.faults.plan import ChurnEvent, ChurnSchedule
from repro.interference.incremental import InterferenceTracker
from repro.interference.receiver import ATOL, RTOL
from repro.interference.robustness import (
    StabilityRecord,
    StabilitySummary,
    stability_summary,
)
from repro.interference.sender import sender_interference
from repro.model.topology import Topology


class ChurnEngine:
    """Apply churn events to a topology, tracking interference stability.

    Parameters
    ----------
    initial:
        Starting topology (should be connected for the repair guarantee to
        be purely local).
    schedule:
        The churn events to apply; join positions are pre-allocated into
        the tracker's point universe, so the whole run is O(n) per radius
        update instead of O(n^2) rebuilds.
    attach_k:
        Number of nearest alive nodes a joining node connects to.
    min_alive:
        Leaves that would drop the alive count below this are skipped
        (recorded in :attr:`skipped`).
    """

    def __init__(
        self,
        initial: Topology,
        schedule: ChurnSchedule,
        *,
        attach_k: int = 1,
        min_alive: int = 2,
        rtol: float = RTOL,
        atol: float = ATOL,
    ):
        if attach_k < 1:
            raise ValueError("attach_k must be >= 1")
        if min_alive < 2:
            raise ValueError("min_alive must be >= 2")
        self.schedule = schedule
        self.attach_k = int(attach_k)
        self.min_alive = int(min_alive)
        self._rtol = float(rtol)
        self._atol = float(atol)

        join_pos = schedule.join_positions
        self.n_initial = initial.n
        self.positions = np.concatenate([initial.positions, join_pos], axis=0)
        self.n_universe = self.positions.shape[0]
        self.alive = np.zeros(self.n_universe, dtype=bool)
        self.alive[: initial.n] = True
        self._adj: list[set[int]] = [set() for _ in range(self.n_universe)]
        for u, v in initial.edges:
            self._adj[int(u)].add(int(v))
            self._adj[int(v)].add(int(u))
        self.tracker = InterferenceTracker(self.positions, rtol=rtol, atol=atol)
        for u in range(initial.n):
            if self._adj[u]:
                self.tracker.set_radius(u, self._radius_of(u))
        self._next_join = initial.n
        self.records: list[StabilityRecord] = []
        #: indices (into the schedule) of events skipped by the guard rails
        self.skipped: list[int] = []
        self._applied = 0

    # -- geometry helpers --------------------------------------------------
    def _dist(self, u: int, v: int) -> float:
        du = self.positions[u] - self.positions[v]
        return float(math.hypot(du[0], du[1]))

    def _radius_of(self, u: int) -> float:
        return max((self._dist(u, v) for v in self._adj[u]), default=0.0)

    def _refresh_radius(self, u: int) -> None:
        if self._adj[u]:
            self.tracker.set_radius(u, self._radius_of(u))
        else:
            self.tracker.deactivate(u)

    def _add_edge(self, u: int, v: int) -> None:
        self._adj[u].add(v)
        self._adj[v].add(u)
        # grow_to both grows active radii and activates edge-less nodes
        # (whose only edge is now this one, so its length is the radius)
        d = self._dist(u, v)
        self.tracker.grow_to(u, d)
        self.tracker.grow_to(v, d)

    # -- state views -------------------------------------------------------
    @property
    def alive_nodes(self) -> np.ndarray:
        return np.flatnonzero(self.alive)

    def current_topology(self) -> Topology:
        """Survivor topology in compact numbering (universe order kept)."""
        alive_idx = self.alive_nodes
        remap = -np.ones(self.n_universe, dtype=np.int64)
        remap[alive_idx] = np.arange(alive_idx.size)
        edges = [
            (int(remap[u]), int(remap[v]))
            for u in alive_idx
            for v in self._adj[u]
            if u < v
        ]
        return Topology(
            self.positions[alive_idx],
            np.array(edges, dtype=np.int64).reshape(-1, 2),
        )

    def is_connected(self) -> bool:
        alive_idx = self.alive_nodes
        if alive_idx.size <= 1:
            return True
        seen = {int(alive_idx[0])}
        frontier = deque(seen)
        while frontier:
            u = frontier.popleft()
            for v in self._adj[u]:
                if v not in seen:
                    seen.add(v)
                    frontier.append(v)
        return len(seen) == alive_idx.size

    def _components(self) -> list[set[int]]:
        comps: list[set[int]] = []
        seen: set[int] = set()
        for start in map(int, self.alive_nodes):
            if start in seen:
                continue
            comp = {start}
            frontier = deque([start])
            while frontier:
                u = frontier.popleft()
                for v in self._adj[u]:
                    if v not in comp:
                        comp.add(v)
                        frontier.append(v)
            seen |= comp
            comps.append(comp)
        return comps

    # -- event application -------------------------------------------------
    def run(self) -> StabilitySummary:
        """Apply every scheduled event; returns the aggregate summary."""
        for event in self.schedule:
            self.apply(event)
        return self.summary()

    def summary(self) -> StabilitySummary:
        return stability_summary(self.records)

    def apply(self, event: ChurnEvent) -> StabilityRecord | None:
        """Apply one event; returns its record (None if guarded/skipped)."""
        index = self._applied
        self._applied += 1
        if event.kind == "join":
            record = self._apply_join(index, event)
        else:
            record = self._apply_leave(index, event)
        if record is None:
            self.skipped.append(index)
        else:
            self.records.append(record)
        return record

    def _snapshot(self):
        counts = self.tracker.node_interference()
        sender = sender_interference(
            self.current_topology(), rtol=self._rtol, atol=self._atol
        )
        return counts, sender, self.alive.copy()

    def _record(
        self,
        index: int,
        kind: str,
        node: int,
        before,
        *,
        own_disk: np.ndarray | None = None,
        repaired: tuple = (),
        straggler: bool = False,
    ) -> StabilityRecord:
        counts_before, sender_before, alive_before = before
        counts_after = self.tracker.node_interference()
        victims = alive_before & self.alive
        victims[node] = False
        delta = counts_after[victims] - counts_before[victims]
        delta_max = int(delta.max()) if delta.size else 0
        own_vec = (
            own_disk[victims]
            if own_disk is not None
            else np.zeros(int(victims.sum()), dtype=np.int64)
        )
        own = int(own_vec.max()) if own_vec.size else 0
        growth = delta - own_vec
        return StabilityRecord(
            index=index,
            kind=kind,
            node=int(node),
            receiver_delta_max=delta_max,
            own_disk_delta_max=own,
            growth_delta_max=int(growth.max()) if growth.size else 0,
            sender_before=float(sender_before),
            sender_after=float(
                sender_interference(
                    self.current_topology(), rtol=self._rtol, atol=self._atol
                )
            ),
            connected=self.is_connected(),
            n_alive=int(self.alive.sum()),
            repaired_edges=repaired,
            straggler=straggler,
        )

    def _apply_join(self, index: int, event: ChurnEvent) -> StabilityRecord:
        if self._next_join >= self.n_universe:
            raise RuntimeError("more join events than pre-allocated positions")
        j = self._next_join
        self._next_join += 1
        before = self._snapshot()
        alive_idx = self.alive_nodes
        d = np.hypot(*(self.positions[alive_idx] - self.positions[j]).T)
        order = np.argsort(d, kind="stable")
        anchors = [int(alive_idx[i]) for i in order[: self.attach_k]]
        self.alive[j] = True
        for a in anchors:
            self._add_edge(j, a)
        # the new node's own-disk coverage over the universe (paper: <= 1
        # per victim by construction — it is one disk)
        r_j = self._radius_of(j)
        d_all = np.hypot(*(self.positions - self.positions[j]).T)
        own_disk = (d_all <= r_j * (1.0 + self._rtol) + self._atol).astype(np.int64)
        own_disk[j] = 0
        return self._record(
            index, "join", j, before, own_disk=own_disk, straggler=event.straggler
        )

    def _apply_leave(self, index: int, event: ChurnEvent) -> StabilityRecord | None:
        alive_idx = self.alive_nodes
        if alive_idx.size <= self.min_alive:
            return None
        victim = int(alive_idx[event.salt % alive_idx.size])
        before = self._snapshot()
        was_connected = self.is_connected()
        former = sorted(self._adj[victim])
        for nb in former:
            self._adj[nb].discard(victim)
        self._adj[victim].clear()
        self.alive[victim] = False
        self.tracker.deactivate(victim)
        for nb in former:
            self._refresh_radius(nb)
        repaired = self._repair(former)
        if was_connected and not self.is_connected():  # pragma: no cover
            raise RuntimeError("repair failed to restore survivor connectivity")
        return self._record(index, "leave", victim, before, repaired=tuple(repaired))

    def _repair(self, former: list[int]) -> list[tuple[int, int]]:
        """Re-patch survivors into one component; returns the added edges.

        Prefers pairs among ``former`` (the departed node's neighbours —
        every component split off by the removal contains at least one),
        falling back to all alive nodes only if the graph was disconnected
        for some other reason.
        """
        added: list[tuple[int, int]] = []
        while True:
            comps = self._components()
            if len(comps) <= 1:
                return added
            pair = self._nearest_cross_pair(comps, [u for u in former if self.alive[u]])
            if pair is None:
                pair = self._nearest_cross_pair(comps, list(map(int, self.alive_nodes)))
            if pair is None:  # pragma: no cover — single-node components only
                return added
            u, v = pair
            self._add_edge(u, v)
            added.append((min(u, v), max(u, v)))

    def _nearest_cross_pair(self, comps, candidates) -> tuple[int, int] | None:
        comp_of = {}
        for i, comp in enumerate(comps):
            for u in comp:
                comp_of[u] = i
        best = None
        best_d = math.inf
        cands = [u for u in candidates if u in comp_of]
        for i, u in enumerate(cands):
            for v in cands[i + 1 :]:
                if comp_of[u] == comp_of[v]:
                    continue
                d = self._dist(u, v)
                if d < best_d:
                    best_d = d
                    best = (u, v)
        return best
