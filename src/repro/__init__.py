"""repro — reproduction of *A Robust Interference Model for Wireless Ad-Hoc
Networks* (von Rickenbach, Schmid, Wattenhofer & Zollinger, IPPS 2005).

The package implements the paper's receiver-centric interference measure,
the highway-model algorithms A_exp / A_gen / A_apx with their bounds, the
sender-centric baseline of Burkhart et al., a dozen classical topology-
control algorithms, an exact small-instance solver, and a packet-level
simulation substrate — plus an experiment harness regenerating every figure
and theorem of the paper (see DESIGN.md and EXPERIMENTS.md).

Quickstart::

    from repro import exponential_chain, a_exp, graph_interference
    topo = a_exp(exponential_chain(100))
    print(graph_interference(topo))   # ~ sqrt(2 * 100)

The curated stable surface lives in :mod:`repro.api` (one ``__all__``,
deprecation shims, CI-checked snapshot); the observability layer (spans,
counters, ``repro trace``) lives in :mod:`repro.obs`. See ``docs/API.md``.
"""

from repro.geometry.generators import (
    cluster_with_remote,
    exponential_chain,
    random_highway,
    random_udg_connected,
    random_uniform_square,
    two_exponential_chains,
    uniform_chain,
)
from repro import obs
from repro.faults import ChurnEngine, ChurnSchedule, FaultPlan
from repro.model.topology import Topology
from repro.model.udg import unit_disk_graph
from repro.interference.receiver import (
    average_interference,
    coverage_counts,
    graph_interference,
    node_interference,
)
from repro.interference.sender import sender_interference
from repro.highway.a_apx import a_apx
from repro.highway.a_exp import a_exp
from repro.highway.a_gen import a_gen
from repro.highway.linear import linear_chain
from repro.opt import OptConfig, solve_opt, verify_certificate
from repro.runner import ResultCache, SweepTask, expand_grid, run_sweep

__version__ = "1.0.0"

__all__ = [
    "Topology",
    "unit_disk_graph",
    "node_interference",
    "graph_interference",
    "average_interference",
    "coverage_counts",
    "sender_interference",
    "obs",
    "a_exp",
    "a_gen",
    "a_apx",
    "linear_chain",
    "exponential_chain",
    "uniform_chain",
    "random_highway",
    "two_exponential_chains",
    "cluster_with_remote",
    "random_uniform_square",
    "random_udg_connected",
    "FaultPlan",
    "ChurnSchedule",
    "ChurnEngine",
    "ResultCache",
    "SweepTask",
    "expand_grid",
    "run_sweep",
    "OptConfig",
    "solve_opt",
    "verify_certificate",
    "__version__",
]
