"""Extensions beyond the paper: the stated future work.

The paper closes with "Adaptation of our approach to higher dimensions
remains an open problem and is left for future work." This package
supplies two such adaptations, evaluated by experiment ``ext_2d``:

- :func:`a_gen_2d` — the natural 2-D generalization of Algorithm A_gen:
  unit-diameter cells, sqrt(Delta)-spaced hubs per cell, shortest
  inter-cell links. Heuristic: no proven bound, but empirically
  O(sqrt(Delta))-like on random instances.
- :func:`reduce_interference` — spanning-tree local search (edge swaps
  evaluated with the incremental tracker) that improves *any* starting
  topology, typically beating every classical baseline.
"""

from repro.extensions.a_gen_2d import a_gen_2d
from repro.extensions.local_search import reduce_interference
from repro.extensions.gathering import (
    low_interference_gather_tree,
    shortest_path_tree,
    tree_depth,
)

__all__ = [
    "a_gen_2d",
    "reduce_interference",
    "low_interference_gather_tree",
    "shortest_path_tree",
    "tree_depth",
]
