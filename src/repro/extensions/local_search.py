"""Spanning-tree local search for minimum interference (2-D heuristic).

Starts from any connected subtopology of the UDG (default: the Euclidean
MST), then repeatedly tries *edge swaps*: insert a non-tree UDG edge,
remove an edge of the created cycle, keep the swap if it lowers the
lexicographic objective ``(I(G), sum of I(v))``. The secondary sum term
lets the search traverse plateaus of equal maximum interference, which is
where most of the improvement on random instances comes from.

Candidate evaluation uses :class:`repro.interference.incremental.
InterferenceTracker` so one swap trial costs O(k * n) for a cycle of
length k instead of an O(n^2) recompute.
"""

from __future__ import annotations

from collections import deque

import numpy as np

from repro.interference.incremental import InterferenceTracker
from repro.model.topology import Topology
from repro.utils import as_generator


def tree_path(adj: list[set[int]], a: int, b: int) -> list[int]:
    """Unique a-b path in a tree given its adjacency sets.

    Shared with the simulated-annealing heuristic of
    :mod:`repro.opt.heuristic`, which proposes the same edge-swap moves.
    """
    parent = {a: -1}
    q = deque([a])
    while q:
        u = q.popleft()
        if u == b:
            break
        for v in adj[u]:
            if v not in parent:
                parent[v] = u
                q.append(v)
    path = [b]
    while parent[path[-1]] != -1:
        path.append(parent[path[-1]])
    path.reverse()
    return path


def node_radius(adj: list[set[int]], pos: np.ndarray, u: int) -> float:
    """Distance from ``u`` to its farthest neighbour in ``adj`` (0 if none)."""
    if not adj[u]:
        return 0.0
    return max(float(np.hypot(*(pos[u] - pos[v]))) for v in adj[u])


def reduce_interference(
    udg: Topology,
    start: Topology | None = None,
    *,
    max_rounds: int = 30,
    seed=None,
) -> Topology:
    """Hill-climb edge swaps over spanning trees of ``udg``.

    Parameters
    ----------
    udg:
        The unit disk graph (candidate edge pool).
    start:
        Connected spanning subtopology to improve; defaults to the
        Euclidean MST of ``udg``. Non-tree starts are first pruned to a
        spanning tree (extra edges only ever add interference).
    max_rounds:
        Full passes over the candidate edges without improvement before
        stopping.

    Returns a topology with ``I(G)`` no worse than the start's.
    """
    from repro.graphs.mst import euclidean_mst_edges

    pos = udg.positions
    n = udg.n
    if start is None:
        tree_edges = euclidean_mst_edges(pos, candidate_edges=udg.edges)
    else:
        if not start.is_subgraph_of(udg):
            raise ValueError("start must be a subtopology of the UDG")
        if not start.is_connected():
            raise ValueError("start must be connected")
        tree_edges = euclidean_mst_edges(pos, candidate_edges=start.edges)
    adj: list[set[int]] = [set() for _ in range(n)]
    for u, v in tree_edges:
        adj[u].add(int(v))
        adj[v].add(int(u))

    tracker = InterferenceTracker.from_topology(Topology(pos, tree_edges))
    rng = as_generator(seed)
    candidates = [tuple(map(int, e)) for e in udg.edges]

    def objective() -> tuple[int, int]:
        counts = tracker.node_interference()
        return int(counts.max()), int(counts.sum())

    def apply_edge_change(u, v, *, add: bool):
        if add:
            adj[u].add(v)
            adj[v].add(u)
        else:
            adj[u].discard(v)
            adj[v].discard(u)
        for w in (u, v):
            r = node_radius(adj, pos, w)
            if adj[w]:
                tracker.set_radius(w, r)
            else:
                tracker.deactivate(w)

    best = objective()
    stale = 0
    while stale < max_rounds:
        improved = False
        order = rng.permutation(len(candidates))
        for idx in order:
            a, b = candidates[idx]
            if b in adj[a]:
                continue
            path = tree_path(adj, a, b)
            apply_edge_change(a, b, add=True)
            swap_done = False
            for x, y in zip(path, path[1:]):
                apply_edge_change(x, y, add=False)
                cand = objective()
                if cand < best:
                    best = cand
                    swap_done = True
                    break
                apply_edge_change(x, y, add=True)
            if not swap_done:
                apply_edge_change(a, b, add=False)
            else:
                improved = True
        stale = 0 if improved else stale + 1
        if not improved:
            break

    edges = sorted(
        (min(u, v), max(u, v)) for u in range(n) for v in adj[u] if u < v
    )
    return Topology(pos, np.array(edges, dtype=np.int64).reshape(-1, 2))
