"""Low-interference data-gathering trees.

The paper's measure originates in the data-gathering setting of Fussen et
al. [4] — all sensor readings flow to one sink. This module builds
sink-rooted spanning trees of the UDG with interference as the objective:

- :func:`shortest_path_tree` — the standard Dijkstra gathering tree
  (latency-optimal, interference-oblivious baseline);
- :func:`low_interference_gather_tree` — Prim-style growth that always
  attaches the node whose attachment edge minimizes the *resulting*
  interference (evaluated exactly with the incremental tracker), ties
  broken by edge length.

The ``gathering`` experiment compares them under the packet-level
:class:`repro.sim.slotted.GatherSimulator`.
"""

from __future__ import annotations

import math

import numpy as np

from repro.interference.incremental import InterferenceTracker
from repro.model.topology import Topology


def shortest_path_tree(udg: Topology, sink: int) -> Topology:
    """Dijkstra tree toward ``sink`` (Euclidean edge weights)."""
    from repro.graphs.paths import dijkstra

    if not (0 <= sink < udg.n):
        raise ValueError("sink out of range")
    _, parent = dijkstra(udg.as_graph(weighted=True), sink)
    edges = [
        (v, int(parent[v])) for v in range(udg.n) if parent[v] >= 0
    ]
    return Topology(udg.positions, np.array(edges, dtype=np.int64).reshape(-1, 2))


def low_interference_gather_tree(
    udg: Topology, sink: int, *, depth_limit: int | None = None
) -> Topology:
    """Grow a sink-rooted tree, greedily minimizing interference.

    At each step, every frontier edge (tree node -> non-tree UDG neighbour)
    is scored by the topology interference after adding it; the best
    ``(I(G), edge length)`` attachment wins. Exact incremental evaluation
    via :meth:`InterferenceTracker.peek_max_after` keeps this polynomial —
    fine for the n <= a few hundred gathering scenarios.

    ``depth_limit`` trades interference against latency: attachments whose
    depth would exceed it are avoided whenever any alternative exists, and
    among within-limit candidates shallower attachments win ties — so the
    resulting depth stays close to (though, for spanning's sake, not hard-
    bounded by) the limit. Only the sink's UDG component is spanned
    (matching the baseline).
    """
    if not (0 <= sink < udg.n):
        raise ValueError("sink out of range")
    if depth_limit is not None and depth_limit < 1:
        raise ValueError("depth_limit must be >= 1")
    pos = udg.positions
    in_tree = np.zeros(udg.n, dtype=bool)
    in_tree[sink] = True
    hops = np.zeros(udg.n, dtype=np.int64)
    tracker = InterferenceTracker(pos)
    radii = np.zeros(udg.n, dtype=np.float64)
    edges: list[tuple[int, int]] = []

    def attach_cost(u: int, v: int) -> tuple[int, float]:
        """Interference after adding edge {u, v}; u in tree, v outside."""
        d = float(np.hypot(*(pos[u] - pos[v])))
        changes = [(v, d)]
        if d > radii[u]:
            changes.append((u, d))
        return tracker.peek_max_after(changes), d

    while True:
        best = None
        best_over_limit = None
        for u in np.nonzero(in_tree)[0]:
            for v in udg.neighbors(int(u)):
                if in_tree[v]:
                    continue
                cost = attach_cost(int(u), int(v))
                depth_rank = int(hops[u]) + 1 if depth_limit is not None else 0
                key = (cost[0], depth_rank, cost[1], int(u), int(v))
                over = depth_limit is not None and hops[u] + 1 > depth_limit
                if over:
                    if best_over_limit is None or key < best_over_limit:
                        best_over_limit = key
                elif best is None or key < best:
                    best = key
        if best is None:
            best = best_over_limit  # spanning beats the depth cap
        if best is None:
            break
        _, _, d, u, v = best
        edges.append((u, v))
        in_tree[v] = True
        hops[v] = hops[u] + 1
        if d > radii[u]:
            radii[u] = d
            tracker.set_radius(u, d)
        radii[v] = d
        tracker.set_radius(v, d)
    return Topology(pos, np.array(edges, dtype=np.int64).reshape(-1, 2))


def tree_depth(topology: Topology, sink: int) -> int:
    """Maximum hop distance from the sink within its component."""
    from repro.graphs.paths import hop_distances

    hops = hop_distances(topology.as_graph(weighted=False), sink)
    reachable = hops[hops >= 0]
    return int(reachable.max()) if reachable.size else 0
