"""A_gen in two dimensions (the paper's future-work direction).

Generalizes the Section 5.2 construction:

1. Partition the plane into square cells of side ``unit / sqrt(2)`` so any
   two nodes sharing a cell are UDG-adjacent (cell diameter = unit).
2. Within each cell, nominate every ``ceil(sqrt(Delta))``-th node a hub
   (plus the last node), connect the hubs linearly, and attach every
   regular node to its nearest hub — exactly the intra-segment rule of
   A_gen.
3. For every pair of cells joined by at least one UDG edge, add the
   *shortest* such edge, preserving UDG connectivity with one link per
   cell pair.

No worst-case bound is proven here (that is the open problem); the
``ext_2d`` experiment measures its behaviour against the classical
baselines and the local-search optimizer.
"""

from __future__ import annotations

import math

import numpy as np

from repro.model.topology import Topology
from repro.model.udg import unit_disk_graph
from repro.utils import check_positions


def a_gen_2d(positions, *, unit: float = 1.0, delta: int | None = None) -> Topology:
    """Run the 2-D A_gen generalization; returns a UDG subtopology."""
    pos = check_positions(positions)
    n = pos.shape[0]
    if unit <= 0:
        raise ValueError("unit must be positive")
    if n <= 1:
        return Topology(pos, ())
    udg = unit_disk_graph(pos, unit=unit)
    if delta is None:
        delta = udg.max_degree()
    if delta <= 0:
        return Topology(pos, ())
    spacing = max(1, math.ceil(math.sqrt(delta)))

    cell_side = unit / math.sqrt(2.0)
    origin = pos.min(axis=0)
    cells = np.floor((pos - origin) / cell_side).astype(np.int64)
    cell_ids = [tuple(c) for c in cells]

    members_of: dict[tuple[int, int], list[int]] = {}
    for v, cid in enumerate(cell_ids):
        members_of.setdefault(cid, []).append(v)

    edges: list[tuple[int, int]] = []
    # intra-cell: A_gen's segment rule, nodes ordered by x (ties by y/index)
    for cid, members in members_of.items():
        members = sorted(
            members, key=lambda v: (pos[v, 0], pos[v, 1], v)
        )
        hubs = members[::spacing]
        if members[-1] != hubs[-1]:
            hubs.append(members[-1])
        edges.extend(zip(hubs, hubs[1:]))
        for k in range(len(hubs) - 1):
            left, right = hubs[k], hubs[k + 1]
            lo = members.index(left)
            hi = members.index(right)
            for v in members[lo + 1 : hi]:
                d_left = float(np.hypot(*(pos[v] - pos[left])))
                d_right = float(np.hypot(*(pos[v] - pos[right])))
                edges.append((v, left if d_left <= d_right else right))

    # inter-cell: the shortest UDG edge per cell pair
    best: dict[tuple, tuple[float, int, int]] = {}
    lengths = udg.edge_lengths
    for k, (u, v) in enumerate(udg.edges):
        cu, cv = cell_ids[u], cell_ids[v]
        if cu == cv:
            continue
        key = (cu, cv) if cu < cv else (cv, cu)
        cand = (float(lengths[k]), int(u), int(v))
        if key not in best or cand < best[key]:
            best[key] = cand
    edges.extend((u, v) for _, u, v in best.values())

    return Topology(pos, np.array(edges, dtype=np.int64).reshape(-1, 2))
