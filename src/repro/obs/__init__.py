"""Zero-dependency observability: spans, counters, gauges, trace export.

The measurement substrate of the roadmap's "measure, don't guess" pillar.
Hot paths across the library are instrumented against the process-wide
registry in this package; with the registry *disabled* (the default) every
instrumentation site costs a single attribute check (<5% end-to-end,
asserted by ``benchmarks/bench_obs_overhead.py``), and with it *enabled*
you get a nested span tree with monotonic timings plus typed counters:

    from repro import obs

    with obs.capture() as registry:
        graph_interference(topology)
    snap = registry.snapshot()
    print(obs.render_span_tree(snap))
    print(snap.counters)          # {'interference.method.brute': 1, ...}

``repro trace <experiment>`` and ``repro sweep --trace-out trace.jsonl``
expose the same data from the CLI. Counter families and the stability
policy are documented in ``docs/API.md``.
"""

from repro.obs.core import (
    OBS,
    Observability,
    ObsSnapshot,
    Span,
    capture,
    count,
    counters,
    disable,
    enable,
    enabled,
    gauge,
    gauges,
    record_span,
    reset,
    snapshot,
    span,
)
from repro.obs.report import (
    read_trace_jsonl,
    render_counters,
    render_span_tree,
    spans_to_jsonable,
    write_trace_jsonl,
)

__all__ = [
    "OBS",
    "Observability",
    "ObsSnapshot",
    "Span",
    "capture",
    "count",
    "counters",
    "disable",
    "enable",
    "enabled",
    "gauge",
    "gauges",
    "read_trace_jsonl",
    "record_span",
    "render_counters",
    "render_span_tree",
    "reset",
    "snapshot",
    "span",
    "spans_to_jsonable",
    "write_trace_jsonl",
]
