"""Span tracer, counters and gauges — the process-wide observability state.

Design constraints (see ``docs/API.md``):

- **Zero cost when off.** The registry is *disabled* by default and every
  entry point (:func:`span`, :func:`count`, :func:`gauge`) starts with a
  single attribute check. A disabled :func:`span` returns one shared no-op
  context manager; a disabled :func:`count` is a check-and-return. The
  instrumented hot paths therefore regress by well under 5% — asserted by
  ``benchmarks/bench_obs_overhead.py``.
- **Zero dependencies.** Pure stdlib: ``time.perf_counter`` for monotonic
  timings, plain dicts for counters/gauges, a list stack for span nesting.
- **Single registry.** One process-wide :class:`Observability` instance
  (:data:`OBS`) so instrumentation sites never thread a handle through
  call chains; workers in a process pool each get their own fresh copy
  (module state is per-interpreter), which is the semantics the sweep
  runner wants — parent-side spans describe parent-side work.

Counter names are dotted paths (``interference.method.grid``,
``protocol.messages``, ``runner.cache.hit``); span names follow the same
convention. Both are free-form — the registry does not enforce a schema —
but the instrumented layers stick to the families documented in
``docs/API.md`` so dashboards and tests can rely on them.
"""

from __future__ import annotations

import json
import time
from collections.abc import Iterator
from contextlib import contextmanager
from dataclasses import dataclass, field


class Span:
    """One timed, attributed, possibly-nested region of work.

    Spans are created through :func:`span` (live timing) or
    :func:`record_span` (pre-measured work, e.g. a task executed in a
    worker process). ``start_s``/``end_s`` are ``time.perf_counter``
    readings — monotonic, comparable only within one process run.
    """

    __slots__ = ("name", "attrs", "start_s", "end_s", "children", "_registry")

    def __init__(self, name: str, attrs: dict, registry: "Observability"):
        self.name = name
        self.attrs = attrs
        self.start_s = 0.0
        self.end_s = 0.0
        self.children: list[Span] = []
        self._registry = registry

    @property
    def duration_s(self) -> float:
        return self.end_s - self.start_s

    def set(self, **attrs) -> None:
        """Attach/override attributes after the span has started."""
        self.attrs.update(attrs)

    def __enter__(self) -> "Span":
        self._registry._push(self)
        self.start_s = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.end_s = time.perf_counter()
        if exc_type is not None:
            self.attrs.setdefault("error", exc_type.__name__)
        self._registry._pop(self)
        return False

    def walk(self, depth: int = 0) -> Iterator[tuple["Span", int]]:
        """Depth-first ``(span, depth)`` traversal of this subtree."""
        yield self, depth
        for child in self.children:
            yield from child.walk(depth + 1)

    def __repr__(self) -> str:
        return (
            f"Span({self.name!r}, {self.duration_s * 1e3:.3f}ms, "
            f"{len(self.children)} child(ren))"
        )


class _NullSpan:
    """Shared no-op stand-in returned by :func:`span` while disabled."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False

    def set(self, **attrs) -> None:
        pass


_NULL_SPAN = _NullSpan()


@dataclass
class ObsSnapshot:
    """Immutable-ish view of the registry at one instant (JSON-exportable)."""

    spans: list[Span] = field(default_factory=list)
    counters: dict[str, int] = field(default_factory=dict)
    gauges: dict[str, float] = field(default_factory=dict)

    def iter_spans(self) -> Iterator[tuple[Span, int]]:
        for root in self.spans:
            yield from root.walk()

    @property
    def n_spans(self) -> int:
        return sum(1 for _ in self.iter_spans())

    def max_depth(self) -> int:
        """Number of nesting levels (1 = flat; 0 = no spans at all)."""
        return max((d + 1 for _, d in self.iter_spans()), default=0)

    def to_jsonable(self) -> dict:
        from repro.obs.report import spans_to_jsonable

        return {
            "spans": spans_to_jsonable(self.spans),
            "counters": dict(sorted(self.counters.items())),
            "gauges": dict(sorted(self.gauges.items())),
        }

    def to_json(self) -> str:
        return json.dumps(self.to_jsonable(), indent=2, allow_nan=False)


class Observability:
    """Process-wide tracer + counter/gauge registry.

    Not thread-safe by design: the reproduction's hot paths are
    single-threaded per process (parallelism happens across *processes*
    in the sweep runner), and keeping the enabled path lock-free is what
    makes the disabled path one attribute check.
    """

    def __init__(self) -> None:
        self.enabled = False
        self.counters: dict[str, int] = {}
        self.gauges: dict[str, float] = {}
        self.roots: list[Span] = []
        self._stack: list[Span] = []

    # -- span plumbing (called by Span.__enter__/__exit__) -----------------
    def _push(self, s: Span) -> None:
        self._stack.append(s)

    def _pop(self, s: Span) -> None:
        # tolerate enable()/reset() mid-span: the span simply isn't recorded
        if self._stack and self._stack[-1] is s:
            self._stack.pop()
            self._attach(s)

    def _attach(self, s: Span) -> None:
        if self._stack:
            self._stack[-1].children.append(s)
        else:
            self.roots.append(s)

    # -- control -----------------------------------------------------------
    def enable(self) -> None:
        self.enabled = True

    def disable(self) -> None:
        self.enabled = False

    def reset(self) -> None:
        """Drop all recorded spans, counters and gauges (keeps enablement)."""
        self.counters.clear()
        self.gauges.clear()
        self.roots.clear()
        self._stack.clear()

    def snapshot(self) -> ObsSnapshot:
        """Copy out the current state (span trees are shared, not deep-copied)."""
        return ObsSnapshot(
            spans=list(self.roots),
            counters=dict(self.counters),
            gauges=dict(self.gauges),
        )


#: The process-wide registry used by all instrumentation sites.
OBS = Observability()


def enabled() -> bool:
    """Is the global registry currently recording?"""
    return OBS.enabled


def enable() -> None:
    """Turn the global registry on (idempotent)."""
    OBS.enable()


def disable() -> None:
    """Turn the global registry off (idempotent; recorded data is kept)."""
    OBS.disable()


def reset() -> None:
    """Clear all recorded spans/counters/gauges on the global registry."""
    OBS.reset()


def snapshot() -> ObsSnapshot:
    """Snapshot the global registry (spans + counters + gauges)."""
    return OBS.snapshot()


def span(name: str, **attrs):
    """Context manager timing a named region; nests under any open span.

    Disabled fast path: returns a shared no-op object (one attribute
    check, no allocation beyond the caller's ``attrs`` dict).
    """
    if not OBS.enabled:
        return _NULL_SPAN
    return Span(name, attrs, OBS)


def record_span(name: str, duration_s: float, **attrs) -> None:
    """Record an already-measured region as a completed span.

    Used where the work was timed elsewhere — e.g. a sweep task executed
    in a worker process whose wall time comes back over the pipe. The
    span is attached at the current nesting position with a synthetic
    ``[now - duration, now]`` window, so tree renders and JSONL exports
    treat it uniformly.
    """
    if not OBS.enabled:
        return
    s = Span(name, attrs, OBS)
    s.end_s = time.perf_counter()
    s.start_s = s.end_s - duration_s
    OBS._attach(s)


def count(name: str, n: int = 1) -> None:
    """Add ``n`` to counter ``name`` (created at 0 on first use)."""
    if OBS.enabled:
        counters = OBS.counters
        counters[name] = counters.get(name, 0) + n


def gauge(name: str, value: float) -> None:
    """Set gauge ``name`` to ``value`` (last-write-wins)."""
    if OBS.enabled:
        OBS.gauges[name] = value


def counters() -> dict[str, int]:
    """Copy of the global counter map."""
    return dict(OBS.counters)


def gauges() -> dict[str, float]:
    """Copy of the global gauge map."""
    return dict(OBS.gauges)


@contextmanager
def capture(*, reset_first: bool = True):
    """Enable the registry for a block, restoring the previous state after.

    ::

        with obs.capture() as registry:
            run_workload()
        print(registry.snapshot().counters)

    ``reset_first=False`` accumulates into whatever is already recorded.
    """
    previous = OBS.enabled
    if reset_first:
        OBS.reset()
    OBS.enable()
    try:
        yield OBS
    finally:
        OBS.enabled = previous
