"""Rendering and serialisation of observability data.

Two output formats:

- **Human**: :func:`render_span_tree` draws the nested spans as a unicode
  tree with millisecond durations and attributes; :func:`render_counters`
  tabulates counters and gauges. Both are what ``repro trace`` prints.
- **Machine**: :func:`write_trace_jsonl` emits one JSON object per line —
  every span in depth-first order (with ``depth`` and ``parent`` index),
  then one ``counters`` record and one ``gauges`` record. JSONL so huge
  traces stream and partial files stay parseable; :func:`read_trace_jsonl`
  is the inverse used by tests and tooling.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.obs.core import ObsSnapshot, Span


def spans_to_jsonable(roots: list[Span]) -> list[dict]:
    """Flatten span trees depth-first into JSON-safe records.

    ``parent`` is the index (into the returned list) of the enclosing
    span, or ``None`` for roots — enough to rebuild the tree exactly.
    """
    records: list[dict] = []

    def visit(s: Span, depth: int, parent: int | None) -> None:
        index = len(records)
        records.append(
            {
                "name": s.name,
                "start_s": s.start_s,
                "end_s": s.end_s,
                "duration_s": s.duration_s,
                "depth": depth,
                "parent": parent,
                "attrs": dict(s.attrs),
            }
        )
        for child in s.children:
            visit(child, depth + 1, index)

    for root in roots:
        visit(root, 0, None)
    return records


def write_trace_jsonl(path: Path | str, snap: ObsSnapshot) -> Path:
    """Write a snapshot as JSONL: span records, then counters, then gauges."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    lines = []
    for record in spans_to_jsonable(snap.spans):
        lines.append(json.dumps({"type": "span", **record}, allow_nan=False))
    lines.append(
        json.dumps(
            {"type": "counters", "counters": dict(sorted(snap.counters.items()))},
            allow_nan=False,
        )
    )
    lines.append(
        json.dumps(
            {"type": "gauges", "gauges": dict(sorted(snap.gauges.items()))},
            allow_nan=False,
        )
    )
    path.write_text("\n".join(lines) + "\n")
    return path


def read_trace_jsonl(path: Path | str) -> dict:
    """Parse a :func:`write_trace_jsonl` file.

    Returns ``{"spans": [record, ...], "counters": {...}, "gauges": {...}}``
    (span records as emitted, tree encoded via ``depth``/``parent``).
    """
    spans: list[dict] = []
    counters: dict[str, int] = {}
    gauges: dict[str, float] = {}
    for line in Path(path).read_text().splitlines():
        if not line.strip():
            continue
        record = json.loads(line)
        kind = record.pop("type", "span")
        if kind == "span":
            spans.append(record)
        elif kind == "counters":
            counters.update(record.get("counters", {}))
        elif kind == "gauges":
            gauges.update(record.get("gauges", {}))
    return {"spans": spans, "counters": counters, "gauges": gauges}


def _format_attrs(attrs: dict) -> str:
    if not attrs:
        return ""
    inner = ", ".join(f"{k}={v!r}" for k, v in attrs.items())
    return f"  {{{inner}}}"


def render_span_tree(snap: ObsSnapshot, *, max_spans: int = 400) -> str:
    """Unicode tree of all recorded spans with durations and attributes.

    Traces larger than ``max_spans`` are truncated with an ellipsis line —
    ``repro trace`` output stays terminal-sized even for big experiments
    (the full data is always available via ``--trace-out``).
    """
    lines: list[str] = []
    total = 0

    def visit(s: Span, prefix: str, is_last: bool, is_root: bool) -> None:
        nonlocal total
        total += 1
        if total > max_spans:
            return
        if is_root:
            head, child_prefix = "", ""
        else:
            head = prefix + ("└─ " if is_last else "├─ ")
            child_prefix = prefix + ("   " if is_last else "│  ")
        lines.append(
            f"{head}{s.name}  {s.duration_s * 1e3:.3f} ms{_format_attrs(s.attrs)}"
        )
        for i, child in enumerate(s.children):
            visit(child, child_prefix, i == len(s.children) - 1, False)

    for root in snap.spans:
        visit(root, "", True, True)
    if total > max_spans:
        lines.append(f"… ({total - max_spans} more span(s) truncated)")
    if not lines:
        return "(no spans recorded)"
    return "\n".join(lines)


def render_counters(snap: ObsSnapshot) -> str:
    """Two-column table of counters, then gauges, sorted by name."""
    if not snap.counters and not snap.gauges:
        return "(no counters recorded)"
    width = max(len(k) for k in list(snap.counters) + list(snap.gauges))
    lines = ["counters:"]
    for name in sorted(snap.counters):
        lines.append(f"  {name:<{width}}  {snap.counters[name]}")
    if snap.gauges:
        lines.append("gauges:")
        for name in sorted(snap.gauges):
            lines.append(f"  {name:<{width}}  {snap.gauges[name]:g}")
    return "\n".join(lines)
