"""E10 / Section 1 motivation — the static measure predicts packet loss.

Runs slotted ALOHA over the linear chain vs the A_exp topology on the
exponential chain, and over EMST vs UDG on a random 2-D network, reporting:

- the Spearman correlation between static ``I(v)`` and observed per-node
  collision rate (model validity), and
- mean collision rate plus retransmission overhead of a data-gathering
  workload (the energy story: fewer collisions => fewer retransmissions).
"""

from __future__ import annotations

import numpy as np

from repro.experiments.registry import ExperimentResult, register
from repro.geometry.generators import exponential_chain, random_udg_connected
from repro.highway.a_exp import a_exp
from repro.highway.linear import linear_chain
from repro.interference.receiver import graph_interference
from repro.model.udg import unit_disk_graph
from repro.sim.metrics import collision_interference_correlation, transmit_energy
from repro.sim.slotted import GatherSimulator, SlottedAlohaSimulator
from repro.sim.traffic import gather_tree
from repro.topologies import build


def _cases(seed: int):
    pos = exponential_chain(40)
    yield "exp40/linear", linear_chain(pos)
    yield "exp40/a_exp", a_exp(pos)
    pos2 = random_udg_connected(60, side=4.0, seed=seed)
    udg = unit_disk_graph(pos2)
    yield "rand60/udg", udg
    yield "rand60/emst", build("emst", udg)
    yield "rand60/lmst", build("lmst", udg)


@register(
    "sim_collisions",
    "Slotted ALOHA: I(v) predicts collision rates; low-I topologies lose fewer packets",
    "Section 1 motivation (simulation substrate)",
)
def run_sim(seed: int = 3, n_slots: int = 4000, p: float = 0.15) -> ExperimentResult:
    rows = []
    data = {"cases": [], "corr": [], "mean_collision": []}
    for name, topo in _cases(seed):
        sim = SlottedAlohaSimulator(topo, p=p)
        res = sim.run(n_slots, seed=seed)
        corr, pval = collision_interference_correlation(topo, res.collision_rate)
        parent = gather_tree(topo, sink=0)
        g = GatherSimulator(topo, parent, p=0.1, source_period=150)
        gout = g.run(3000, seed=seed + 1)
        rows.append(
            [
                name,
                graph_interference(topo),
                round(float(np.nanmean(res.collision_rate)), 3),
                round(corr, 3),
                f"{pval:.1e}",
                round(gout["retransmission_overhead"], 2),
                round(transmit_energy(topo, res.attempts), 3),
            ]
        )
        data["cases"].append(name)
        data["corr"].append(corr)
        data["mean_collision"].append(float(np.nanmean(res.collision_rate)))
    linear_vs_aexp = data["mean_collision"][0] > data["mean_collision"][1]
    return ExperimentResult(
        experiment_id="sim_collisions",
        title="Model validation by packet simulation (slotted ALOHA)",
        headers=[
            "case",
            "I(G)",
            "mean collision rate",
            "spearman(I, coll)",
            "p-value",
            "gather retx overhead",
            "tx energy",
        ],
        rows=rows,
        notes=[
            f"static I(v) strongly predicts per-node collision rates "
            f"(min correlation {min(data['corr']):.2f})",
            f"A_exp's low-interference topology collides less than the linear "
            f"chain on the same nodes: {linear_vs_aexp}",
        ],
        data=data,
    )
