"""E8 / Theorem 5.6 — A_apx approximates the optimum within O(Delta^(1/4)).

Measures the certified approximation ratio I(A_apx) / max(lower bound, OPT)
across regimes: the uniform chain (linear branch), the exponential chain
(A_gen branch) and random highways. For tiny instances the true optimum
from the branch-and-bound solver replaces the Lemma 5.5 bound.
"""

from __future__ import annotations

import math

from repro.exact.radii_search import minimum_interference
from repro.experiments.registry import ExperimentResult, register
from repro.geometry.generators import (
    exponential_chain,
    fragmented_exponential_chain,
    random_highway,
    uniform_chain,
)
from repro.highway.a_apx import a_apx
from repro.interference.receiver import graph_interference


def _instances(seed: int):
    yield "uniform n=9", uniform_chain(9, spacing=0.1), True
    yield "exp chain n=9", exponential_chain(9), True
    yield "random n=9", random_highway(9, max_gap=0.1, seed=seed), True
    yield "uniform n=200", uniform_chain(200, spacing=0.004), False
    yield "exp chain n=256", exponential_chain(256), False
    yield "fragmented 6x20", fragmented_exponential_chain(6, 20), False
    yield "random dense n=300", random_highway(300, max_gap=0.05, seed=seed + 1), False
    yield "random sparse n=150", random_highway(150, max_gap=0.9, seed=seed + 2), False


@register(
    "thm56_aapx",
    "A_apx approximation ratio across highway regimes",
    "Theorem 5.6",
)
def run_thm56(seed: int = 13) -> ExperimentResult:
    rows = []
    worst_certified = 0.0
    data = {"instances": [], "ratio": []}
    for name, pos, exact in _instances(seed):
        topo, info = a_apx(pos, return_info=True)
        ival = graph_interference(topo)
        if exact:
            opt, _ = minimum_interference(pos)
            baseline = float(opt)
            baseline_kind = "OPT"
        else:
            baseline = max(info.lower_bound, 1.0)
            baseline_kind = "LB 5.5"
        ratio = ival / baseline
        worst_certified = max(worst_certified, ratio)
        budget = max(info.delta, 1) ** 0.25
        rows.append(
            [
                name,
                info.gamma,
                info.delta,
                info.branch,
                ival,
                round(baseline, 2),
                baseline_kind,
                round(ratio, 2),
                round(budget, 2),
            ]
        )
        data["instances"].append(name)
        data["ratio"].append(ratio)
    return ExperimentResult(
        experiment_id="thm56_aapx",
        title="Theorem 5.6: hybrid algorithm A_apx",
        headers=[
            "instance",
            "gamma",
            "Delta",
            "branch",
            "I(A_apx)",
            "baseline",
            "kind",
            "ratio",
            "Delta^1/4",
        ],
        rows=rows,
        notes=[
            f"worst certified ratio {worst_certified:.2f}; the paper guarantees "
            "O(Delta^(1/4)) against the true optimum",
            "the linear branch fires exactly on low-gamma (uniform-like) "
            "instances where A_gen would be wasteful.",
        ],
        data=data,
    )
