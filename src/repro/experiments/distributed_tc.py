"""EXT-6 — distributed topology control: rounds, messages, equivalence.

Runs the message-passing implementations of NNF, XTC and LMST over random
UDGs, verifying exact equivalence with the centralized algorithms and
reporting the communication cost (constant rounds, Theta(m) messages per
round) alongside the resulting interference — locality is what makes these
baselines deployable, and is precisely why Theorem 4.1's negative result
about them matters.
"""

from __future__ import annotations

import numpy as np

from repro.distributed import (
    DistributedLmst,
    DistributedNnf,
    DistributedXtc,
    SynchronousNetwork,
)
from repro.experiments.registry import ExperimentResult, register
from repro.geometry.generators import random_udg_connected
from repro.interference.receiver import graph_interference
from repro.model.udg import unit_disk_graph
from repro.topologies import build


@register(
    "distributed_tc",
    "Message-passing NNF/XTC/LMST: equivalence and communication cost",
    "Section 2 context (local algorithms)",
)
def run_distributed(n: int = 60, seed: int = 53) -> ExperimentResult:
    pos = random_udg_connected(n, side=0.5 * n**0.5, seed=seed)
    udg = unit_disk_graph(pos)
    net = SynchronousNetwork(udg)
    protocols = {
        "nnf": DistributedNnf(),
        "xtc": DistributedXtc(),
        "lmst": DistributedLmst(),
    }
    rows = []
    data = {"matches": {}, "messages": {}}
    for name, proto in protocols.items():
        result = net.run(proto)
        central = build(name, udg)
        match = bool(np.array_equal(result.topology.edges, central.edges))
        rows.append(
            [
                name,
                result.rounds,
                result.messages_total,
                2 * udg.n_edges * result.rounds,
                graph_interference(result.topology),
                match,
            ]
        )
        data["matches"][name] = match
        data["messages"][name] = result.messages_total
    all_match = all(data["matches"].values())
    return ExperimentResult(
        experiment_id="distributed_tc",
        title=f"Distributed topology control (n={n}, m={udg.n_edges})",
        headers=[
            "protocol",
            "rounds",
            "messages",
            "2m x rounds",
            "I(G)",
            "matches centralized",
        ],
        rows=rows,
        notes=[
            f"every protocol reproduces its centralized topology exactly: {all_match}",
            "constant rounds, Theta(m) messages per round — the locality that "
            "makes these algorithms practical, and Theorem 4.1's target.",
        ],
        data=data,
    )
