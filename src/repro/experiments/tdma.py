"""EXT-2 — TDMA schedule length tracks the receiver-centric measure.

A collision-free counterpart to the ALOHA experiment: if links are
scheduled so no receiver can be disturbed, the number of slots needed is
an operational cost of interference. Across topologies, the greedy
schedule length sits within a small constant of I(G) + 1 — topology
control pays off directly in medium-access capacity.
"""

from __future__ import annotations

from scipy import stats

from repro.experiments.registry import ExperimentResult, register
from repro.geometry.generators import exponential_chain, random_udg_connected
from repro.highway.a_exp import a_exp
from repro.highway.linear import linear_chain
from repro.interference.receiver import graph_interference
from repro.model.udg import unit_disk_graph
from repro.sim.scheduling import greedy_tdma_schedule, validate_schedule
from repro.topologies import build


def _cases(seed: int):
    pos = exponential_chain(40)
    yield "exp40/linear", linear_chain(pos)
    yield "exp40/a_exp", a_exp(pos)
    pos2 = random_udg_connected(60, side=4.0, seed=seed)
    udg = unit_disk_graph(pos2)
    for name in ("emst", "lmst", "rng", "yao6", "cbtc"):
        yield f"rand60/{name}", build(name, udg)


@register(
    "tdma_scheduling",
    "Greedy TDMA schedule length vs the interference measure",
    "Section 1 motivation (scheduling substrate)",
)
def run_tdma(seed: int = 19) -> ExperimentResult:
    rows = []
    ivals, slots = [], []
    for name, topo in _cases(seed):
        colors = greedy_tdma_schedule(topo)
        length = int(colors.max()) + 1
        ival = graph_interference(topo)
        assert validate_schedule(topo, colors)
        rows.append([name, ival, length, round(length / (ival + 1), 2)])
        ivals.append(ival)
        slots.append(length)
    corr = float(stats.spearmanr(ivals, slots)[0])
    return ExperimentResult(
        experiment_id="tdma_scheduling",
        title="TDMA slots needed vs receiver-centric interference",
        headers=["case", "I(G)", "TDMA slots", "slots/(I+1)"],
        rows=rows,
        notes=[
            f"schedule length tracks I(G): spearman = {corr:.3f}",
            "every schedule validated conflict-free; lowering interference "
            "buys medium-access capacity one-for-one.",
        ],
        data={"I": ivals, "slots": slots, "spearman": corr},
    )
