"""E5 / Theorem 5.1, Figure 8 — A_exp achieves O(sqrt(n)) on the chain.

Sweeps the chain size, compares against the closed-form bound of
Theorem 5.1 and against the linear chain, fits the growth exponent, and
renders the Figure 8 arc diagram.
"""

from __future__ import annotations

import math

from repro.analysis.fitting import fit_power_law
from repro.experiments.registry import ExperimentResult, register
from repro.geometry.generators import exponential_chain
from repro.highway.a_exp import a_exp
from repro.highway.bounds import aexp_interference_bound
from repro.interference.receiver import graph_interference
from repro.render.ascii_art import render_highway_arcs


@register(
    "fig8_aexp",
    "A_exp on the exponential chain: I = O(sqrt(n))",
    "Theorem 5.1 / Figure 8",
)
def run_fig8(sizes=(16, 32, 64, 128, 256, 512, 1024)) -> ExperimentResult:
    rows = []
    data = {"n": [], "I": [], "bound": []}
    for n in sizes:
        pos = exponential_chain(n)
        topo = a_exp(pos)
        ival = graph_interference(topo)
        linear_i = n - 2
        bound = aexp_interference_bound(n)
        rows.append(
            [
                n,
                ival,
                round(bound, 2),
                round(math.sqrt(2 * n), 2),
                linear_i,
                topo.is_connected(),
            ]
        )
        data["n"].append(n)
        data["I"].append(ival)
        data["bound"].append(bound)
    fit = fit_power_law(data["n"], data["I"])
    art = render_highway_arcs(a_exp(exponential_chain(30)), width=96)
    return ExperimentResult(
        experiment_id="fig8_aexp",
        title="Theorem 5.1 / Figure 8: algorithm A_exp",
        headers=["n", "I(A_exp)", "Thm 5.1 bound", "sqrt(2n)", "I(linear)=n-2", "connected"],
        rows=rows,
        notes=[
            f"fitted growth exponent {fit.exponent:.3f} (paper: 0.5), "
            f"R^2 = {fit.r_squared:.4f}",
            "A_exp beats the linear chain exponentially while staying connected.",
        ],
        figures=["Figure 8 reproduction (exponential chain, n=30, log-scaled axis):\n" + art],
        data={**data, "fit_exponent": fit.exponent},
    )
