"""Experiment harness: one registered experiment per paper figure/theorem.

Importing this package registers all experiments; use
``repro.experiments.run("fig8_aexp")`` programmatically or
``python -m repro.cli run fig8_aexp`` from a shell.
"""

from repro.experiments.registry import (
    REGISTRY,
    Experiment,
    ExperimentResult,
    get,
    run,
    run_all,
)

# importing the modules registers the experiments
from repro.experiments import (  # noqa: F401  (import for side effects)
    fig1_robustness,
    fig2_sample,
    thm41_nnf,
    fig7_linear_chain,
    fig8_aexp,
    thm52_lower_bound,
    thm54_agen,
    thm56_aapx,
    survey_baselines,
    sim_collisions,
    robustness_sweep,
    ext_2d,
    tdma,
    sinr_validation,
    mobility_timeline,
    gathering,
    mac_contention,
    distributed_tc,
    ablation_spacing,
    churn_resilience,
    opt_gap,
    stream_consistency,
    diagnostics,
)

__all__ = [
    "REGISTRY",
    "Experiment",
    "ExperimentResult",
    "get",
    "run",
    "run_all",
]
