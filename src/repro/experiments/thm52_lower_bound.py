"""E6 / Theorem 5.2 — sqrt(n) lower bound, checked against exact optima.

For small chains the branch-and-bound solver computes the true optimum;
Theorem 5.2 says it can never dip below sqrt(n), and A_exp should track it
within a small constant factor.
"""

from __future__ import annotations

import math

from repro.exact.radii_search import minimum_interference
from repro.experiments.registry import ExperimentResult, register
from repro.geometry.generators import exponential_chain
from repro.highway.a_exp import a_exp
from repro.highway.bounds import exp_chain_lower_bound
from repro.interference.receiver import graph_interference


@register(
    "thm52_lower_bound",
    "Exact optimum vs the sqrt(n) lower bound on the exponential chain",
    "Theorem 5.2",
)
def run_thm52(sizes=(3, 4, 5, 6, 7, 8, 9, 10)) -> ExperimentResult:
    rows = []
    respected = True
    data = {"n": [], "opt": [], "aexp": []}
    for n in sizes:
        pos = exponential_chain(n)
        opt, topo = minimum_interference(pos)
        aexp_i = graph_interference(a_exp(pos))
        lb = exp_chain_lower_bound(n)
        ok = opt >= lb - 1e-9 or opt >= math.floor(lb)
        # Theorem 5.2's bound is asymptotic; the hard guarantee checked here
        # is opt >= ceil(sqrt(n)) - 1 at worst and never below sqrt(n) - 1
        respected &= opt + 1e-9 >= math.sqrt(n) - 1
        rows.append([n, round(lb, 2), opt, aexp_i, topo.is_connected(), ok])
        data["n"].append(n)
        data["opt"].append(opt)
        data["aexp"].append(aexp_i)
    ratio = max(a / o for a, o in zip(data["aexp"], data["opt"]))
    return ExperimentResult(
        experiment_id="thm52_lower_bound",
        title="Theorem 5.2: exact optima on the exponential chain",
        headers=["n", "sqrt(n)", "OPT (B&B)", "I(A_exp)", "opt connected", "OPT >= sqrt(n)"],
        rows=rows,
        notes=[
            f"optimum never falls below sqrt(n) (within rounding): {respected}",
            f"A_exp / OPT ratio stays <= {ratio:.2f} on these sizes "
            "(Theorems 5.1 + 5.2: A_exp is asymptotically optimal)",
        ],
        data=data,
    )
