"""Crash-consistency matrix for the durable streaming engine.

Not a figure from the paper — it is the paper's robustness theorem run as
an executable claim (ROADMAP item 1): per-event interference deltas are
small and bounded, so an event-sourced engine can be killed at an
arbitrary byte of its write-ahead log and recover, via snapshot +
tail-replay, to a state *bit-identical* to a from-scratch recompute of
the surviving event prefix.

The experiment runs a seeded in-process chaos matrix — kill points drawn
byte-uniform over the ingest via :class:`repro.faults.FaultPlan` (so
mid-record torn tails occur), crossed with the three workload topology
families — and reports, per run: the kill fraction, the surviving seqno,
whether the tail was torn, and the three exactness checks
(prefix-identical, counts-exact, resume-exact). The suite passes only if
every run converges exactly with zero undetected corruptions.
"""

from __future__ import annotations

import tempfile
from pathlib import Path

from repro.experiments.registry import ExperimentResult, register
from repro.stream.chaos import chaos_suite


@register(
    "stream_consistency",
    "Streaming engine: chaos-tested crash consistency (WAL + snapshot replay)",
    "Thm. 3.1 made executable; ROADMAP item 1",
)
def stream_consistency(
    *,
    runs: int = 9,
    n_events: int = 500,
    capacity: int = 400,
    side: float = 10.0,
    r_max: float = 1.0,
    seed: int = 0,
) -> ExperimentResult:
    """Seeded kill/recover/resume matrix over the three topology families."""
    if runs < 1:
        raise ValueError("runs must be >= 1")
    with tempfile.TemporaryDirectory(prefix="repro-stream-chaos-") as tmp:
        results = chaos_suite(
            Path(tmp),
            runs,
            seed=seed,
            n_events=n_events,
            capacity=capacity,
            side=side,
            r_max=r_max,
            mode="inprocess",
        )
    rows = [
        [
            r.run,
            r.family,
            r.crash_kind,
            round(r.kill_fraction, 4),
            r.survived_seq,
            r.n_events,
            r.torn_tail,
            r.exact_prefix,
            r.counts_exact,
            r.resumed_exact,
        ]
        for r in results
    ]
    n_ok = sum(1 for r in results if r.ok)
    n_torn = sum(1 for r in results if r.torn_tail)
    return ExperimentResult(
        experiment_id="stream_consistency",
        title="Streaming engine crash consistency",
        headers=[
            "run", "family", "crash", "kill_fraction", "survived_seq",
            "n_events", "torn_tail", "exact_prefix", "counts_exact",
            "resumed_exact",
        ],
        rows=rows,
        notes=[
            f"{n_ok}/{len(results)} runs recovered bit-identically "
            f"({n_torn} with mid-record torn tails); kill points are "
            "byte-uniform over the WAL via FaultPlan seeding",
            "exact_prefix: recovered state == from-scratch replay of the "
            "surviving prefix; counts_exact: independent vectorized "
            "recount matches; resumed_exact: finishing the stream "
            "converges to the full-stream reference",
        ],
        data={
            "seed": seed,
            "runs": runs,
            "n_events": n_events,
            "all_exact": n_ok == len(results),
            "divergences": len(results) - n_ok,
            "detected_corruptions": sum(
                1 for r in results if r.detected_corruption
            ),
        },
    )
