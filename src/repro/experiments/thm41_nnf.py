"""E3 / Theorem 4.1, Figures 3-5 — the Nearest Neighbor Forest separation.

On the two-exponential-chains instance, any topology containing the NNF
(here: the Euclidean MST, which always does, and the NNF itself) has
interference Omega(n), while the explicit Figure 5 tree achieves O(1).
Known baselines are also evaluated to show they all sit on the wrong side.
"""

from __future__ import annotations

from repro.experiments.registry import ExperimentResult, register
from repro.geometry.generators import two_exponential_chains
from repro.interference.receiver import graph_interference, node_interference
from repro.model.udg import unit_disk_graph
from repro.topologies import build
from repro.topologies.constructions import two_chains_optimal_tree
from repro.topologies.nnf import nearest_neighbor_edges


@register(
    "thm41_nnf",
    "NNF-containing topologies are Omega(n) vs O(1) optimum",
    "Theorem 4.1 / Figures 3-5",
)
def run_thm41(ms=(4, 8, 16, 32, 64)) -> ExperimentResult:
    rows = []
    data = {"n": [], "nnf_I": [], "emst_I": [], "opt_I": [], "Ih0": []}
    for m in ms:
        pos, groups = two_exponential_chains(m)
        n = pos.shape[0]
        # the instance is scale-free: evaluate on the complete graph (every
        # node may connect to every other), mirroring the paper's setting
        udg = unit_disk_graph(pos, unit=float(2.0 ** (m + 1)))
        nnf = build("nnf", udg)
        emst = build("emst", udg)
        opt = two_chains_optimal_tree(pos, groups)
        emst_vec = node_interference(emst)
        contains = emst.contains_edges(nearest_neighbor_edges(udg))
        rows.append(
            [
                m,
                n,
                graph_interference(nnf),
                int(emst_vec.max()),
                int(emst_vec[groups["h"][0]]),
                graph_interference(opt),
                contains,
                opt.is_connected(),
            ]
        )
        data["n"].append(n)
        data["nnf_I"].append(graph_interference(nnf))
        data["emst_I"].append(int(emst_vec.max()))
        data["opt_I"].append(graph_interference(opt))
        data["Ih0"].append(int(emst_vec[groups["h"][0]]))
    grows = all(b > a for a, b in zip(data["emst_I"], data["emst_I"][1:]))
    const = max(data["opt_I"]) - min(data["opt_I"]) <= 1
    return ExperimentResult(
        experiment_id="thm41_nnf",
        title="Theorem 4.1: two exponential chains",
        headers=[
            "m",
            "n",
            "I(NNF)",
            "I(EMST)",
            "I(h0) in EMST",
            "I(optimal tree)",
            "EMST contains NNF",
            "opt connected",
        ],
        rows=rows,
        notes=[
            f"EMST interference grows linearly with n: {grows} "
            "(h0 is covered by every horizontal node that connects rightwards)",
            f"Figure 5 tree stays constant: {const} "
            f"(I in {sorted(set(data['opt_I']))})",
            "paper claim: NNF-containing algorithms can be Omega(n) times worse "
            "than the optimum.",
        ],
        data=data,
    )
