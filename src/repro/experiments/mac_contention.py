"""MAC contention: does static I(v) predict *dynamic* contention?

The paper's receiver-centric interference measure is a static proxy; this
experiment closes the loop (ROADMAP item 4) by running the
:mod:`repro.mac` contention engine — traffic sources, bounded queues,
pluggable backoff, optional SINR capture — over the paper's separating
topology families and reporting the Spearman rank correlation between
static per-node interference ``I(v)`` and the measured per-node collision
rate, alongside throughput, fairness and coordinated-omission-free delay
percentiles. The headline claim: the correlation is positive and
significant across backoff regimes, i.e. the static measure predicts the
dynamic collision rank order.
"""

from __future__ import annotations

import numpy as np

from repro.experiments.registry import ExperimentResult, register
from repro.geometry.generators import exponential_chain, random_udg_connected
from repro.highway.a_exp import a_exp
from repro.highway.linear import linear_chain
from repro.interference.receiver import graph_interference
from repro.mac import MacConfig, MacSimulator, summarize
from repro.model.udg import unit_disk_graph
from repro.topologies import build

#: Families resolvable without a random instance: 1-D highway
#: constructions over the exponential chain of Section 5.1.
_HIGHWAY = {"a_exp": a_exp, "linear": linear_chain}


def _cases(topologies, n: int, seed: int):
    """Yield ``(case_name, topology)`` per requested family.

    Highway names build on the exponential chain of the same length;
    every other name is a registered topology-control algorithm run on a
    connected random UDG instance with constant density (the
    Khabbazian-style random-position setting), ``"udg"`` meaning the
    instance itself.
    """
    udg = None
    for name in topologies:
        if name in _HIGHWAY:
            yield f"exp{n}/{name}", _HIGHWAY[name](exponential_chain(n))
            continue
        if udg is None:
            side = 4.0 * float(np.sqrt(n / 60.0))
            pos = random_udg_connected(n, side=side, seed=seed)
            udg = unit_disk_graph(pos)
        if name == "udg":
            yield f"rand{n}/udg", udg
        else:
            yield f"rand{n}/{name}", build(name, udg)


@register(
    "mac_contention",
    "MAC contention: static I(v) predicts collision/delay rank order across backoff policies",
    "ROADMAP item 4 (dynamic workloads; physical-model capture per Aslanyan)",
)
def run_mac_contention(
    seed: int = 3,
    n: int = 64,
    n_slots: int = 1500,
    load: float = 0.08,
    topologies=("nnf", "a_exp"),
    policies=("beb", "eied"),
    traffic: str = "poisson",
    mode: str = "aloha",
    capture: str = "disk",
    tx_slots: int = 1,
    queue_limit: int = 8,
    max_retries: int = 7,
) -> ExperimentResult:
    cfg = MacConfig(
        traffic=traffic,
        load=load,
        queue_limit=queue_limit,
        mode=mode,
        tx_slots=tx_slots,
        max_retries=max_retries,
        capture=capture,
    )
    rows = []
    data: dict = {"grid": [], "spearman": {}, "config": {
        "traffic": traffic, "load": load, "mode": mode, "capture": capture,
        "tx_slots": tx_slots, "queue_limit": queue_limit,
        "max_retries": max_retries, "n_slots": n_slots, "seed": seed,
    }}
    rhos = []
    for case, topo in _cases(tuple(topologies), n, seed):
        i_graph = graph_interference(topo)
        for policy in tuple(policies):
            sim = MacSimulator(topo, policy=policy, config=cfg)
            result = sim.run(n_slots, seed=seed)
            summary = summarize(topo, result)
            key = f"{case}|{policy}"
            data["grid"].append({"case": case, "policy": policy, **summary})
            data["spearman"][key] = summary["spearman_rho"]
            if summary["spearman_rho"] is not None:
                rhos.append(summary["spearman_rho"])
            rows.append(
                [
                    case,
                    policy,
                    i_graph,
                    summary["delivered"],
                    _fmt(summary["mean_collision_rate"], 3),
                    _fmt(summary["fairness"], 3),
                    _fmt(summary["delay_p50"], 0),
                    _fmt(summary["delay_p95"], 0),
                    _fmt(summary["spearman_rho"], 3),
                    "-" if summary["spearman_p"] is None
                    else f"{summary['spearman_p']:.1e}",
                    "ok" if summary["conservation_ok"] else "VIOLATED",
                ]
            )
    notes = []
    if rhos:
        notes.append(
            f"interference -> collision Spearman rho in "
            f"[{min(rhos):.2f}, {max(rhos):.2f}] across "
            f"{len(rhos)} topology x policy combinations "
            f"(all positive: {all(r > 0 for r in rhos)})"
        )
    notes.append(
        "delays are coordinated-omission-free (measured from source "
        "arrival, nearest-rank percentiles)"
    )
    return ExperimentResult(
        experiment_id="mac_contention",
        title="MAC-layer contention vs static interference",
        headers=[
            "case",
            "policy",
            "I(G)",
            "delivered",
            "coll rate",
            "fairness",
            "p50",
            "p95",
            "spearman(I, coll)",
            "p-value",
            "conservation",
        ],
        rows=rows,
        notes=notes,
        data=data,
    )


def _fmt(x, digits: int):
    if x is None:
        return "-"
    return round(float(x), digits) if digits else int(x)
