"""AB-1 — ablating A_gen's hub spacing (the sqrt(Delta) design choice).

A_gen nominates every ceil(sqrt(Delta))-th node a hub. Sweeping the
spacing exposes the U-curve this balances: spacing 1 degenerates toward
the linear chain (every node a hub — catastrophic on exponential-type
instances), spacing near Delta makes single hubs carry whole segments.
"""

from __future__ import annotations

import math

from repro.experiments.registry import ExperimentResult, register
from repro.geometry.generators import exponential_chain, random_highway
from repro.highway.a_gen import a_gen
from repro.interference.receiver import graph_interference
from repro.model.udg import unit_disk_graph


@register(
    "ablation_agen_spacing",
    "A_gen hub-spacing sweep: sqrt(Delta) sits at the U-curve's bottom",
    "Section 5.2 design choice",
)
def run_ablation(seed: int = 67) -> ExperimentResult:
    instances = {
        "exp chain n=256": (exponential_chain(256), 255),
        "random dense n=300": (random_highway(300, max_gap=0.05, seed=seed), None),
    }
    rows = []
    data = {}
    ok = True
    for name, (pos, delta) in instances.items():
        if delta is None:
            delta = unit_disk_graph(pos).max_degree()
        root = max(1, math.ceil(math.sqrt(delta)))
        spacings = {
            "1": 1,
            "sqrt/2": max(1, root // 2),
            "sqrt (paper)": root,
            "2*sqrt": 2 * root,
            "delta/2": max(1, delta // 2),
        }
        values = {
            label: graph_interference(a_gen(pos, delta=delta, spacing=s))
            for label, s in spacings.items()
        }
        rows.append([name, delta] + [values[k] for k in spacings])
        data[name] = values
    exp_values = data["exp chain n=256"]
    # worst-case instance: sqrt(Delta) is the U-curve's bottom
    ok = exp_values["sqrt (paper)"] == min(exp_values.values())
    rnd_values = data["random dense n=300"]
    linear_wins_easy = rnd_values["1"] <= rnd_values["sqrt (paper)"]
    return ExperimentResult(
        experiment_id="ablation_agen_spacing",
        title="Ablation: A_gen hub spacing",
        headers=["instance", "Delta", "s=1", "s=sqrt/2", "s=sqrt (paper)", "s=2*sqrt", "s=delta/2"],
        rows=rows,
        notes=[
            f"on the worst-case exponential chain sqrt(Delta) is exactly the "
            f"U-curve's minimum: {ok} "
            f"(I = {exp_values['1']} / {exp_values['sqrt/2']} / "
            f"{exp_values['sqrt (paper)']} / {exp_values['2*sqrt']} / "
            f"{exp_values['delta/2']})",
            f"on the benign random instance spacing 1 (the linear chain) "
            f"wins: {linear_wins_easy} — exactly the observation that "
            "motivates the hybrid A_apx (Section 5.3).",
        ],
        data=data,
    )
