"""EXT-3 — validating the disk abstraction against SINR physics.

The receiver-centric measure counts disturbers under the protocol (disk)
model. This experiment re-runs the slotted simulation under an SINR
physical layer (minimum-power transmitters, path-loss alpha, threshold
beta) and checks the two facts that make the abstraction sound: the
per-node loss still correlates with I(v), and the topology *ranking* the
measure induces (A_exp < linear, EMST < UDG) is preserved.
"""

from __future__ import annotations

import numpy as np

from repro.experiments.registry import ExperimentResult, register
from repro.geometry.generators import exponential_chain, random_udg_connected
from repro.highway.a_exp import a_exp
from repro.highway.linear import linear_chain
from repro.interference.receiver import graph_interference
from repro.model.udg import unit_disk_graph
from repro.sim.metrics import collision_interference_correlation
from repro.sim.sinr import SinrSlottedSimulator
from repro.sim.slotted import SlottedAlohaSimulator
from repro.topologies import build


def _cases(seed: int):
    pos = exponential_chain(40)
    yield "exp40/linear", linear_chain(pos)
    yield "exp40/a_exp", a_exp(pos)
    pos2 = random_udg_connected(50, side=3.5, seed=seed)
    udg = unit_disk_graph(pos2)
    yield "rand50/udg", udg
    yield "rand50/emst", build("emst", udg)


@register(
    "sinr_validation",
    "Disk-model interference predicts SINR physical-layer loss",
    "Section 3 model (physical-layer substitution)",
)
def run_sinr(seed: int = 31, n_slots: int = 3000, p: float = 0.15) -> ExperimentResult:
    rows = []
    data = {"cases": [], "disk_loss": [], "sinr_loss": [], "corr": []}
    for name, topo in _cases(seed):
        disk = SlottedAlohaSimulator(topo, p=p).run(n_slots, seed=seed)
        sinr = SinrSlottedSimulator(topo, p=p).run(n_slots, seed=seed)
        corr, _ = collision_interference_correlation(topo, sinr.loss_rate)
        rows.append(
            [
                name,
                graph_interference(topo),
                round(float(np.nanmean(disk.collision_rate)), 3),
                round(float(np.nanmean(sinr.loss_rate)), 3),
                round(corr, 3),
            ]
        )
        data["cases"].append(name)
        data["disk_loss"].append(float(np.nanmean(disk.collision_rate)))
        data["sinr_loss"].append(float(np.nanmean(sinr.loss_rate)))
        data["corr"].append(corr)
    # ranking preserved within each instance pair
    ranking_ok = (
        data["sinr_loss"][0] > data["sinr_loss"][1]
        and data["sinr_loss"][2] > data["sinr_loss"][3]
    )
    return ExperimentResult(
        experiment_id="sinr_validation",
        title="SINR physical layer vs the disk abstraction",
        headers=["case", "I(G)", "disk loss", "SINR loss", "spearman(I, SINR loss)"],
        rows=rows,
        notes=[
            f"topology ranking under SINR matches the disk model: {ranking_ok}",
            f"I(v) still positively predicts physical-layer loss "
            f"(min corr {min(data['corr']):.2f}) — weaker than under the disk "
            "model, as SINR aggregates power rather than counting coverers",
        ],
        data=data,
    )
