"""EXT-8 — churn & loss resilience: the robustness claim, dynamically.

Two halves, one claim. **Churn**: a constant-density EMST network endures a
randomized join/leave schedule (with periodic far-away stragglers — the
Figure 1 situation); per join we record the receiver-centric interference
delta split into the new node's own-disk part (paper: <= 1 at any victim)
and the attachment-growth part, against the sender-centric jump, which a
single straggler pushes to the order of the network size. **Loss**: the
distributed protocols (NNF/XTC/LMST) run over an unreliable medium with
Bernoulli message loss up to ``p = 0.3`` plus duplication/delay, and must
converge to exactly the lossless topology, paying only a measured
retransmission/slot overhead.

Together they exercise what Section 3 only argues: the receiver-centric
measure is *robust* — node churn moves it by a constant while the
sender-centric measure of [2] swings by Theta(n) — and the local protocols
that realise it tolerate a realistically lossy medium.
"""

from __future__ import annotations

import math

import numpy as np

from repro.distributed import (
    DistributedLmst,
    DistributedNnf,
    DistributedXtc,
    SynchronousNetwork,
    UnreliableNetwork,
)
from repro.experiments.registry import ExperimentResult, register
from repro.faults import ChurnEngine, ChurnSchedule, FaultPlan
from repro.geometry.generators import random_udg_connected, random_uniform_square
from repro.graphs.mst import euclidean_mst_edges
from repro.model.topology import Topology
from repro.model.udg import unit_disk_graph


def _churn_run(n: int, n_events: int, seed: int):
    """One churn scenario: EMST over a unit-density cluster + random churn."""
    side = math.sqrt(n)
    pos = random_uniform_square(n, side=side, seed=seed)
    topo = Topology(pos, euclidean_mst_edges(pos))
    schedule = ChurnSchedule.random(n_events, side=side, seed=seed + 1)
    engine = ChurnEngine(topo, schedule)
    summary = engine.run()
    return engine, summary


def _loss_run(n: int, p: float, seed: int):
    """All three protocols under Bernoulli loss ``p`` (+ dup/delay noise)."""
    pos = random_udg_connected(n, side=0.4 * n**0.5, seed=seed)
    udg = unit_disk_graph(pos)
    out = []
    for name, proto_cls in (
        ("nnf", DistributedNnf),
        ("xtc", DistributedXtc),
        ("lmst", DistributedLmst),
    ):
        lossless = SynchronousNetwork(udg).run(proto_cls())
        plan = FaultPlan(
            seed=seed, p_drop=p, p_duplicate=min(0.05, p), p_delay=min(0.05, p)
        )
        lossy = UnreliableNetwork(udg, plan).run(proto_cls())
        out.append(
            {
                "protocol": name,
                "p": p,
                "match": bool(
                    np.array_equal(lossy.topology.edges, lossless.topology.edges)
                ),
                "messages_lossless": lossless.messages_total,
                "messages_lossy": lossy.messages_total,
                "overhead": lossy.messages_total / max(lossless.messages_total, 1),
                "slots": lossy.meta["slots_per_round"],
                "retransmissions": lossy.meta["retransmissions"],
                "undelivered": lossy.meta["undelivered"],
            }
        )
    return out


@register(
    "churn_resilience",
    "Churn & loss resilience: dynamic verification of the robustness claim",
    "Section 1 / Figure 1 under churn; Section 2 protocols under loss",
)
def run_churn_resilience(
    sizes=(20, 40, 80),
    n_events: int = 40,
    loss_rates=(0.1, 0.2, 0.3),
    loss_n: int = 40,
    seed: int = 17,
) -> ExperimentResult:
    rows = []
    data = {"churn": [], "loss": [], "sizes": list(sizes)}

    for n in sizes:
        engine, summary = _churn_run(n, n_events, seed)
        stragglers = [r for r in engine.records if r.straggler]
        straggler_rel = max(
            (r.sender_delta / r.n_alive for r in stragglers), default=0.0
        )
        rows.append(
            [
                f"churn n={n}",
                summary.n_events,
                summary.max_join_own_disk_delta,
                summary.max_join_receiver_delta,
                f"{summary.max_sender_delta:.0f}",
                f"{straggler_rel:.0%}",
                summary.always_connected,
            ]
        )
        data["churn"].append(
            {
                "n": n,
                "n_events": summary.n_events,
                "n_joins": summary.n_joins,
                "n_leaves": summary.n_leaves,
                "max_join_own_disk_delta": summary.max_join_own_disk_delta,
                "max_join_receiver_delta": summary.max_join_receiver_delta,
                "max_leave_receiver_delta": summary.max_leave_receiver_delta,
                "max_sender_delta": summary.max_sender_delta,
                "max_sender_delta_relative": summary.max_sender_delta_relative,
                "always_connected": summary.always_connected,
                "n_repaired_edges": summary.n_repaired_edges,
                "straggler_sender_relative": straggler_rel,
            }
        )

    for p in loss_rates:
        for entry in _loss_run(loss_n, p, seed + 100):
            rows.append(
                [
                    f"loss {entry['protocol']} p={p}",
                    "-",
                    "-",
                    "-",
                    f"x{entry['overhead']:.2f}",
                    entry["retransmissions"],
                    entry["match"],
                ]
            )
            data["loss"].append(entry)

    own_disk_bounded = all(
        c["max_join_own_disk_delta"] <= 1 for c in data["churn"]
    )
    sender_deltas = [c["max_sender_delta"] for c in data["churn"]]
    sender_grows = all(
        b > a for a, b in zip(sender_deltas, sender_deltas[1:])
    ) and all(
        c["max_sender_delta"] >= 0.5 * c["n"] for c in data["churn"]
    )
    all_converge = all(e["match"] for e in data["loss"])
    all_connected = all(c["always_connected"] for c in data["churn"])
    return ExperimentResult(
        experiment_id="churn_resilience",
        title=(
            f"Churn & loss resilience ({n_events} events/network, "
            f"loss up to p={max(loss_rates)})"
        ),
        headers=[
            "scenario",
            "events",
            "max recv delta (own disk)",
            "max recv delta (total)",
            "max sender delta / msg overhead",
            "straggler jump / retransmissions",
            "connected / converged",
        ],
        rows=rows,
        notes=[
            f"per-join receiver-centric own-disk delta <= 1 across all runs: "
            f"{own_disk_bounded} (the paper's robustness property, now under "
            "randomized churn)",
            f"sender-centric jump grows with n "
            f"({', '.join(f'{d:.0f}' for d in sender_deltas)} for n = "
            f"{', '.join(map(str, sizes))}): {sender_grows} — the Figure 1 "
            "separation",
            f"survivor connectivity restored after every leave (local repair): "
            f"{all_connected}",
            f"all protocols converge to the lossless topology at every loss "
            f"rate <= {max(loss_rates)}: {all_converge}, paying only "
            "retransmission overhead",
        ],
        data=data,
    )
