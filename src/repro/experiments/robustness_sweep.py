"""E11 — incremental node arrivals: delta distributions under both measures.

Generalizes Figure 1: a constant-density network grows one node at a time
(arrival ``k`` lands uniformly in a square of area ``k``, each attaching to
its nearest existing node). After every tenth arrival we additionally
evaluate a *straggler* — a node far outside the cluster, the Figure 1
situation — as a counterfactual single addition to the current network.

For every addition we record the worst per-node receiver-centric increase
(theory: at most 1 from the new disk plus at most 1 from the attachment
node's grown disk) and the sender-centric jump (unbounded: a straggler's
attachment edge covers the whole cluster).
"""

from __future__ import annotations

import math

import numpy as np

from repro.experiments.registry import ExperimentResult, register
from repro.interference.robustness import addition_report
from repro.model.topology import Topology
from repro.utils import as_generator


@register(
    "robustness_sweep",
    "Incremental arrivals: receiver-centric deltas stay O(1), sender-centric spikes",
    "Section 1 / Figure 1 generalized",
)
def run_sweep(n_total: int = 50, n_seeds: int = 5, seed: int = 29) -> ExperimentResult:
    rng = as_generator(seed)
    recv_local: list[int] = []
    recv_straggler: list[int] = []
    new_disk: list[int] = []
    send_local: list[float] = []
    send_straggler: list[float] = []
    send_straggler_rel: list[float] = []  # jump relative to network size
    for _ in range(n_seeds):
        topo = Topology(rng.uniform(0.0, 1.5, size=(2, 2)), [(0, 1)])
        for k in range(2, n_total):
            side = math.sqrt(k + 1.0)  # keep density at ~1 node per unit area
            arrival = rng.uniform(0.0, side, size=2)
            d = np.hypot(*(topo.positions - arrival).T)
            anchor = int(np.argmin(d))
            report = addition_report(topo, arrival, [anchor])
            recv_local.append(report.max_receiver_delta)
            new_disk.append(int(report.new_node_contribution.max(initial=0)))
            send_local.append(report.sender_delta)
            topo = report.after

            if (k + 1) % 10 == 0:
                # counterfactual straggler far outside the cluster
                angle = rng.uniform(0.0, 2.0 * math.pi)
                radius = side * rng.uniform(2.5, 3.5)
                straggler = np.array(
                    [side / 2 + radius * math.cos(angle), side / 2 + radius * math.sin(angle)]
                )
                d = np.hypot(*(topo.positions - straggler).T)
                anchor = int(np.argmin(d))
                rep = addition_report(topo, straggler, [anchor])
                recv_straggler.append(rep.max_receiver_delta)
                new_disk.append(int(rep.new_node_contribution.max(initial=0)))
                send_straggler.append(rep.sender_delta)
                send_straggler_rel.append(rep.sender_after / topo.n)

    def _row(label, values):
        arr = np.asarray(values, dtype=np.float64)
        return [label, float(arr.min()), float(np.median(arr)), float(arr.max())]

    rows = [
        _row("receiver delta, local arrivals", recv_local),
        _row("receiver delta, straggler arrivals", recv_straggler),
        _row("  new node's own-disk contribution (all)", new_disk),
        _row("sender delta, local arrivals", send_local),
        _row("sender delta, straggler arrivals", send_straggler),
        _row("sender-after / n, straggler arrivals", send_straggler_rel),
    ]
    return ExperimentResult(
        experiment_id="robustness_sweep",
        title=f"Incremental arrivals ({n_seeds} networks, {n_total} nodes each)",
        headers=["quantity", "min", "median", "max"],
        rows=rows,
        notes=[
            f"the new node's own disk never adds more than 1 anywhere: "
            f"{max(new_disk) <= 1} (the paper's robustness property)",
            f"receiver-centric deltas stay <= 2 even for stragglers: "
            f"{max(recv_straggler) <= 2}",
            f"sender-centric straggler jumps reach {max(send_straggler):.0f} "
            f"(~{max(send_straggler_rel):.0%} of the whole network) — "
            "the [2] measure is not robust.",
        ],
        data={
            "receiver_local": np.asarray(recv_local),
            "receiver_straggler": np.asarray(recv_straggler),
            "sender_local": np.asarray(send_local),
            "sender_straggler": np.asarray(send_straggler),
        },
    )
