"""Harness-diagnostic experiments: tiny, predictable workloads.

These are not paper reproductions — they exist so the execution layers
(sweep runner, serving pool, load generator) have registered workloads
with *known* cost profiles:

- ``diag_echo`` returns immediately (framing/dispatch overhead floor);
- ``diag_sleep`` blocks for a requested duration (timeout enforcement,
  admission-control back-pressure, drain behaviour).

Both are registered like any other experiment so they resolve by id in
worker processes regardless of the multiprocessing start method, and both
are cheap enough (default 1 ms sleep) to ride along in full-registry
sweeps without distorting reports.
"""

from __future__ import annotations

import os
import time

from repro.experiments.registry import ExperimentResult, register


@register("diag_echo", "Diagnostics: echo payload (dispatch-overhead floor)",
          "harness")
def diag_echo(*, payload=None, seed: int | None = None) -> ExperimentResult:
    """Return ``payload`` untouched; measures pure dispatch overhead."""
    return ExperimentResult(
        experiment_id="diag_echo",
        title="Diagnostics: echo",
        headers=["worker_pid", "payload"],
        rows=[[os.getpid(), payload]],
        notes=["harness diagnostic; not a paper artifact"],
        data={"payload": payload, "seed": seed},
    )


@register("diag_sleep", "Diagnostics: sleep for a fixed duration", "harness")
def diag_sleep(*, seconds: float = 0.001, seed: int | None = None) -> ExperimentResult:
    """Sleep ``seconds`` then return; a deterministic-cost slow task."""
    if seconds < 0:
        raise ValueError("seconds must be >= 0")
    time.sleep(seconds)
    return ExperimentResult(
        experiment_id="diag_sleep",
        title="Diagnostics: sleep",
        headers=["seconds", "worker_pid"],
        rows=[[seconds, os.getpid()]],
        notes=["harness diagnostic; not a paper artifact"],
        data={"seconds": seconds, "seed": seed},
    )
