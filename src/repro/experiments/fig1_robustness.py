"""E1 / Figure 1 — one added node: sender-centric jumps to n, receiver stays O(1).

A *constant-density* cluster (the paper's "roughly homogeneously
distributed nodes") is connected by its Euclidean MST — short local edges,
so both measures start at a small, n-independent constant. Then the remote
node arrives and attaches to its nearest cluster node with one long edge.
The sender-centric measure of [2] counts the nodes covered by that edge —
the whole cluster — while the receiver-centric measure rises by at most the
two disks that changed (the new node's and its attachment point's).
"""

from __future__ import annotations

import math

import numpy as np

from repro.experiments.registry import ExperimentResult, register
from repro.geometry.generators import random_uniform_square
from repro.graphs.mst import euclidean_mst_edges
from repro.interference.receiver import graph_interference
from repro.interference.robustness import addition_report
from repro.model.topology import Topology


def _cluster_instance(n: int, seed: int) -> tuple[Topology, np.ndarray]:
    """EMST-connected unit-density cluster plus the remote node's position."""
    side = math.sqrt(n)  # keeps density at ~1 node per unit area
    pos = random_uniform_square(n - 1, side=side, seed=seed)
    before = Topology(pos, euclidean_mst_edges(pos))
    remote = np.array([3.0 * side, 0.5 * side])
    return before, remote


@register(
    "fig1_robustness",
    "Adding one node: sender-centric vs receiver-centric interference",
    "Figure 1 / Section 1",
)
def run_fig1(sizes=(10, 20, 40, 80, 160), seed: int = 7) -> ExperimentResult:
    rows = []
    data = {"sizes": list(sizes), "receiver_delta": [], "sender_after": [],
            "sender_before": [], "receiver_before": []}
    for n in sizes:
        before, remote = _cluster_instance(n, seed)
        anchor = int(np.argmin(np.hypot(*(before.positions - remote).T)))
        report = addition_report(before, remote, [anchor])
        rows.append(
            [
                n,
                graph_interference(before),
                graph_interference(report.after),
                report.max_receiver_delta,
                report.sender_before,
                report.sender_after,
            ]
        )
        data["receiver_delta"].append(report.max_receiver_delta)
        data["sender_after"].append(report.sender_after)
        data["sender_before"].append(report.sender_before)
        data["receiver_before"].append(graph_interference(before))
    receiver_bounded = all(d <= 2 for d in data["receiver_delta"])
    sender_linear = all(s >= n - 3 for s, n in zip(data["sender_after"], sizes))
    before_constant = max(data["sender_before"]) <= 4 * max(data["sender_before"][:1] + [3.0])
    return ExperimentResult(
        experiment_id="fig1_robustness",
        title="Figure 1: robustness under single-node addition",
        headers=[
            "n",
            "I_recv before",
            "I_recv after",
            "max recv delta",
            "I_send before",
            "I_send after",
        ],
        rows=rows,
        notes=[
            f"before the arrival both measures are small constants "
            f"(I_send <= {max(data['sender_before']):.0f} across sizes: {before_constant})",
            f"receiver-centric per-node increase stays <= 2 for all n: {receiver_bounded}"
            " (new node's disk + attachment node's grown disk)",
            f"sender-centric measure jumps to ~n after the addition: {sender_linear}",
            "paper claim: one added node pushes the [2] measure from a small "
            "constant to the maximum possible value, the number of nodes.",
        ],
        data=data,
    )
