"""EXT-4 — interference under mobility.

Nodes move by random waypoint; the topology-control algorithm re-runs at
each sampling instant. A useful measure must stay stable while the
geometry drifts: the receiver-centric interference of maintained
low-interference topologies varies within a small band, while the full
UDG's tracks the (much larger) local density. Edge churn is reported as
the maintenance cost.
"""

from __future__ import annotations

import numpy as np

from repro.experiments.registry import ExperimentResult, register
from repro.mobility import RandomWaypointModel, TopologyTimeline
from repro.topologies import build


@register(
    "mobility_timeline",
    "Interference stability and topology churn under random-waypoint mobility",
    "Section 1 setting (mobile nodes)",
)
def run_mobility(
    n: int = 40, n_steps: int = 25, seed: int = 47
) -> ExperimentResult:
    model = RandomWaypointModel(n, side=4.5, v_min=0.1, v_max=0.4, seed=seed)
    frames = model.trajectory(n_steps, dt=1.0)

    algorithms = {
        "udg": lambda udg: udg,
        "emst": lambda udg: build("emst", udg),
        "lmst": lambda udg: build("lmst", udg),
        "rng": lambda udg: build("rng", udg),
    }
    rows = []
    data = {}
    for name, fn in algorithms.items():
        result = TopologyTimeline(fn).run(frames)
        series = result.receiver_interference
        rows.append(
            [
                name,
                int(series.min()),
                float(np.median(series)),
                int(series.max()),
                int(series.max() - series.min()),
                float(result.churn.mean()),
                bool(result.connected.all()),
            ]
        )
        data[name] = {
            "series": series,
            "churn_mean": float(result.churn.mean()),
        }
    controlled = [r for r in rows if r[0] != "udg"]
    udg_row = next(r for r in rows if r[0] == "udg")
    bounded = all(r[3] <= udg_row[3] for r in controlled)
    return ExperimentResult(
        experiment_id="mobility_timeline",
        title=f"Random waypoint mobility ({n} nodes, {n_steps} steps)",
        headers=[
            "algorithm",
            "I min",
            "I median",
            "I max",
            "I range",
            "mean churn/step",
            "connectivity kept",
        ],
        rows=rows,
        notes=[
            f"maintained topologies keep interference below the raw UDG at "
            f"every instant: {bounded}",
            "churn (edges rewired per step) is the price of maintenance — "
            "sparser topologies rewire less.",
        ],
        data=data,
    )
