"""Experiment registration and execution plumbing."""

from __future__ import annotations

import json
import time
from collections.abc import Callable
from dataclasses import dataclass, field

from repro.analysis.tables import format_table


@dataclass
class ExperimentResult:
    """Output of one experiment run: a table, free-form notes and raw data."""

    experiment_id: str
    title: str
    headers: list[str]
    rows: list[list]
    notes: list[str] = field(default_factory=list)
    #: extra preformatted blocks (e.g. ASCII figures) appended verbatim
    figures: list[str] = field(default_factory=list)
    #: machine-readable payload for JSON export
    data: dict = field(default_factory=dict)
    elapsed_s: float = 0.0

    def render(self) -> str:
        parts = [format_table(self.headers, self.rows, title=f"[{self.experiment_id}] {self.title}")]
        for note in self.notes:
            parts.append(f"  - {note}")
        for fig in self.figures:
            parts.append("")
            parts.append(fig)
        parts.append(f"  (elapsed: {self.elapsed_s:.2f}s)")
        return "\n".join(parts)

    def to_json(self) -> str:
        return json.dumps(
            {
                "experiment_id": self.experiment_id,
                "title": self.title,
                "headers": self.headers,
                "rows": self.rows,
                "notes": self.notes,
                "data": self.data,
                "elapsed_s": self.elapsed_s,
            },
            default=_jsonable,
            indent=2,
        )


def _jsonable(obj):
    try:
        import numpy as np

        if isinstance(obj, np.integer):
            return int(obj)
        if isinstance(obj, np.floating):
            return float(obj)
        if isinstance(obj, np.ndarray):
            return obj.tolist()
    except ImportError:  # pragma: no cover
        pass
    return str(obj)


@dataclass(frozen=True)
class Experiment:
    """A registered, runnable reproduction of one paper artifact."""

    experiment_id: str
    title: str
    paper_ref: str
    fn: Callable[..., ExperimentResult]

    def run(self, **kwargs) -> ExperimentResult:
        start = time.perf_counter()
        result = self.fn(**kwargs)
        result.elapsed_s = time.perf_counter() - start
        return result


REGISTRY: dict[str, Experiment] = {}


def register(experiment_id: str, title: str, paper_ref: str):
    """Decorator registering an experiment function."""

    def deco(fn):
        if experiment_id in REGISTRY:
            raise ValueError(f"experiment {experiment_id!r} already registered")
        REGISTRY[experiment_id] = Experiment(
            experiment_id=experiment_id, title=title, paper_ref=paper_ref, fn=fn
        )
        return fn

    return deco


def get(experiment_id: str) -> Experiment:
    try:
        return REGISTRY[experiment_id]
    except KeyError:
        raise KeyError(
            f"unknown experiment {experiment_id!r}; known: {sorted(REGISTRY)}"
        ) from None


def run(experiment_id: str, **kwargs) -> ExperimentResult:
    return get(experiment_id).run(**kwargs)


def run_all(**kwargs) -> list[ExperimentResult]:
    return [exp.run(**kwargs) for _, exp in sorted(REGISTRY.items())]
