"""Experiment registration and execution plumbing.

Results are JSON round-trip safe: ``ExperimentResult.to_jsonable`` /
``from_jsonable`` use the strict encoding of
:mod:`repro.experiments.serialize` (numpy arrays and non-finite floats
survive the round trip; unknown types raise instead of being stringified).
The sweep runner (:mod:`repro.runner`) relies on this to ship results
across process boundaries and through the on-disk cache, and dispatches
work to subprocesses by *experiment id* via :func:`run_payload` — the
registered function itself never needs to cross a pickle boundary.
"""

from __future__ import annotations

import json
import time
from collections.abc import Callable
from dataclasses import dataclass, field

from repro import obs
from repro.analysis.tables import format_table
from repro.experiments.serialize import decode_jsonable, encode_jsonable


@dataclass
class ExperimentResult:
    """Output of one experiment run: a table, free-form notes and raw data."""

    experiment_id: str
    title: str
    headers: list[str]
    rows: list[list]
    notes: list[str] = field(default_factory=list)
    #: extra preformatted blocks (e.g. ASCII figures) appended verbatim
    figures: list[str] = field(default_factory=list)
    #: machine-readable payload for JSON export
    data: dict = field(default_factory=dict)
    elapsed_s: float = 0.0

    def render(self) -> str:
        parts = [format_table(self.headers, self.rows, title=f"[{self.experiment_id}] {self.title}")]
        for note in self.notes:
            parts.append(f"  - {note}")
        for fig in self.figures:
            parts.append("")
            parts.append(fig)
        parts.append(f"  (elapsed: {self.elapsed_s:.2f}s)")
        return "\n".join(parts)

    def to_jsonable(self) -> dict:
        """Strictly-JSON-safe payload; inverse of :meth:`from_jsonable`."""
        return {
            "experiment_id": self.experiment_id,
            "title": self.title,
            "headers": encode_jsonable(self.headers),
            "rows": encode_jsonable(self.rows),
            "notes": encode_jsonable(self.notes),
            "figures": encode_jsonable(self.figures),
            "data": encode_jsonable(self.data),
            "elapsed_s": float(self.elapsed_s),
        }

    def to_json(self) -> str:
        return json.dumps(self.to_jsonable(), indent=2, allow_nan=False)

    @classmethod
    def from_jsonable(cls, payload: dict) -> "ExperimentResult":
        """Rebuild a result from :meth:`to_jsonable` output.

        Numpy arrays and non-finite floats are restored exactly; tuples
        come back as lists (the one documented asymmetry of the encoding).
        """
        decoded = decode_jsonable(payload)
        return cls(
            experiment_id=decoded["experiment_id"],
            title=decoded["title"],
            headers=decoded["headers"],
            rows=decoded["rows"],
            notes=decoded.get("notes", []),
            figures=decoded.get("figures", []),
            data=decoded.get("data", {}),
            elapsed_s=decoded.get("elapsed_s", 0.0),
        )

    @classmethod
    def from_json(cls, text: str) -> "ExperimentResult":
        return cls.from_jsonable(json.loads(text))


@dataclass(frozen=True)
class Experiment:
    """A registered, runnable reproduction of one paper artifact."""

    experiment_id: str
    title: str
    paper_ref: str
    fn: Callable[..., ExperimentResult]

    def run(self, **kwargs) -> ExperimentResult:
        with obs.span(f"experiment.{self.experiment_id}") as sp:
            obs.count("experiment.runs")
            start = time.perf_counter()
            result = self.fn(**kwargs)
            result.elapsed_s = time.perf_counter() - start
            sp.set(elapsed_s=round(result.elapsed_s, 6))
        return result


REGISTRY: dict[str, Experiment] = {}


def register(experiment_id: str, title: str, paper_ref: str):
    """Decorator registering an experiment function."""

    def deco(fn):
        if experiment_id in REGISTRY:
            raise ValueError(f"experiment {experiment_id!r} already registered")
        REGISTRY[experiment_id] = Experiment(
            experiment_id=experiment_id, title=title, paper_ref=paper_ref, fn=fn
        )
        return fn

    return deco


def get(experiment_id: str) -> Experiment:
    try:
        return REGISTRY[experiment_id]
    except KeyError:
        raise KeyError(
            f"unknown experiment {experiment_id!r}; known: {sorted(REGISTRY)}"
        ) from None


def run(experiment_id: str, **kwargs) -> ExperimentResult:
    return get(experiment_id).run(**kwargs)


def run_payload(experiment_id: str, kwargs: dict | None = None) -> dict:
    """Run one experiment and return its JSON-safe payload.

    This is the worker entry point of the sweep runner: it is a plain
    module-level function (picklable by reference, spawn-safe), it imports
    the experiments package itself so a fresh interpreter has the registry
    populated, and it returns only strictly-JSON-safe data so the parent
    can cache it byte-for-byte.
    """
    import repro.experiments  # noqa: F401  (side effect: fills REGISTRY)

    result = get(experiment_id).run(**(kwargs or {}))
    return result.to_jsonable()


def run_all(*, workers: int | None = None, **kwargs) -> list[ExperimentResult]:
    """Run every registered experiment (sorted by id) through the runner.

    ``workers=None``/``0``/``1`` executes serially in-process (results are
    the original in-memory objects); ``workers >= 2`` fans tasks out to a
    process pool, in which case results are reconstructed from their JSON
    payloads (identical ``rows``/``data`` by the round-trip guarantee).
    """
    from repro.runner import SweepTask, run_sweep

    tasks = [SweepTask(eid, dict(kwargs)) for eid in sorted(REGISTRY)]
    outcome = run_sweep(tasks, workers=workers, cache=None)
    return outcome.results
