"""E4 / Figures 6-7 — the linearly connected exponential chain has I = n - 2.

Every node connecting rightwards covers all nodes to its left, so the
leftmost node is disturbed by all but the rightmost — the high-interference
strawman that A_exp then beats exponentially.
"""

from __future__ import annotations

from repro.experiments.registry import ExperimentResult, register
from repro.geometry.generators import exponential_chain
from repro.highway.linear import linear_chain
from repro.interference.receiver import node_interference


@register(
    "fig7_linear_chain",
    "Linearly connected exponential chain: I(G) = n - 2",
    "Figures 6-7 / Section 5.1",
)
def run_fig7(sizes=(4, 8, 16, 32, 64, 128, 256)) -> ExperimentResult:
    rows = []
    exact = True
    data = {"n": [], "I": []}
    for n in sizes:
        topo = linear_chain(exponential_chain(n))
        ivec = node_interference(topo)
        imax = int(ivec.max())
        i_left = int(ivec[0])
        ok = imax == n - 2 and i_left == n - 2
        exact &= ok
        rows.append([n, i_left, imax, n - 2, ok])
        data["n"].append(n)
        data["I"].append(imax)
    return ExperimentResult(
        experiment_id="fig7_linear_chain",
        title="Figures 6-7: linear exponential chain",
        headers=["n", "I(leftmost)", "I(G)", "paper n-2", "match"],
        rows=rows,
        notes=[
            f"I(G) = n - 2 exactly for every size: {exact}",
            "paper claim: all but the rightmost disk cover the leftmost node.",
        ],
        data=data,
    )
