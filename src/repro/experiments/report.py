"""Report generation: consolidated output of all experiments.

``python -m repro.cli report --out report.md`` regenerates the full
measured section of EXPERIMENTS.md; ``--csv-dir`` exports every
experiment's table as CSV for downstream plotting.
"""

from __future__ import annotations

import csv
import io
from pathlib import Path

from repro.experiments.registry import ExperimentResult


def result_to_csv(result: ExperimentResult) -> str:
    """The experiment's table as CSV text (header row included)."""
    buf = io.StringIO()
    writer = csv.writer(buf)
    writer.writerow(result.headers)
    for row in result.rows:
        writer.writerow(row)
    return buf.getvalue()


def write_csvs(results: list[ExperimentResult], directory: Path) -> list[Path]:
    """Write one ``<id>.csv`` per experiment; returns the paths."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    paths = []
    for result in results:
        path = directory / f"{result.experiment_id}.csv"
        path.write_text(result_to_csv(result))
        paths.append(path)
    return paths


def render_report(results: list[ExperimentResult], *, title: str | None = None) -> str:
    """Markdown report: every experiment's table, notes and figures."""
    parts = []
    if title:
        parts.append(f"# {title}\n")
    for result in sorted(results, key=lambda r: r.experiment_id):
        parts.append(f"## {result.experiment_id} — {result.title}\n")
        parts.append("```")
        parts.append(result.render())
        parts.append("```\n")
    return "\n".join(parts)


def write_report(results: list[ExperimentResult], path: Path, **kwargs) -> Path:
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(render_report(results, **kwargs))
    return path
