"""E2 / Figure 2 — the definition example: interference exceeds degree.

Five nodes where node ``u`` has degree 1 but interference 2: it is covered
by its direct neighbour *and* by a non-neighbouring node whose radius
(reaching its own farthest neighbour) sweeps over ``u``.
"""

from __future__ import annotations

from repro.experiments.registry import ExperimentResult, register
from repro.interference.receiver import node_interference
from repro.topologies.constructions import fig2_sample_topology


@register(
    "fig2_sample",
    "Definition example: node interference vs degree",
    "Figure 2 / Definitions 3.1-3.2",
)
def run_fig2() -> ExperimentResult:
    topo = fig2_sample_topology()
    ivec = node_interference(topo)
    rows = [
        [v, float(topo.positions[v, 0]), topo.degrees[v], int(ivec[v])]
        for v in range(topo.n)
    ]
    return ExperimentResult(
        experiment_id="fig2_sample",
        title="Figure 2: sample five-node topology",
        headers=["node", "x", "degree", "I(v)"],
        rows=rows,
        notes=[
            f"node u (=0) has degree {topo.degrees[0]} but interference "
            f"{int(ivec[0])}: covered by its neighbour and by node v (=2) whose "
            "radius reaches back over it",
            "degree lower-bounds interference at every node: "
            f"{bool((ivec >= topo.degrees).all())}",
        ],
        data={"interference": ivec, "degrees": topo.degrees},
    )
