"""E7 / Theorem 5.4, Figure 9 — A_gen is O(sqrt(Delta)) on any highway.

Random and adversarial highway instances; the measured interference is
compared against c * sqrt(Delta) and against the linear chain.
"""

from __future__ import annotations

import math

from repro.experiments.registry import ExperimentResult, register
from repro.geometry.generators import (
    exponential_chain,
    fragmented_exponential_chain,
    random_highway,
    uniform_chain,
)
from repro.highway.a_gen import a_gen
from repro.highway.critical import gamma
from repro.highway.linear import linear_chain
from repro.interference.receiver import graph_interference
from repro.model.udg import unit_disk_graph
from repro.render.ascii_art import render_highway_arcs


def _instances(seed: int):
    yield "uniform n=200", uniform_chain(200, spacing=0.01)
    yield "exp chain n=128", exponential_chain(128)
    yield "fragmented 8x16", fragmented_exponential_chain(8, 16)
    for i, n in enumerate((100, 300, 600)):
        yield f"random dense n={n}", random_highway(n, max_gap=0.05, seed=seed + i)
    for i, n in enumerate((100, 300)):
        yield f"random sparse n={n}", random_highway(n, max_gap=0.8, seed=seed + 10 + i)


@register(
    "thm54_agen",
    "A_gen yields O(sqrt(Delta)) interference on arbitrary highways",
    "Theorem 5.4 / Figure 9",
)
def run_thm54(seed: int = 21) -> ExperimentResult:
    rows = []
    worst_ratio = 0.0
    data = {"instances": [], "I": [], "delta": []}
    for name, pos in _instances(seed):
        udg = unit_disk_graph(pos)
        delta = udg.max_degree()
        topo = a_gen(pos, delta=delta)
        ival = graph_interference(topo)
        ratio = ival / math.sqrt(delta) if delta > 0 else float("nan")
        worst_ratio = max(worst_ratio, ratio)
        rows.append(
            [
                name,
                pos.shape[0],
                delta,
                ival,
                graph_interference(linear_chain(pos, unit=1.0)),
                round(math.sqrt(delta), 2),
                round(ratio, 2),
                topo.is_connected() == udg.is_connected(),
            ]
        )
        data["instances"].append(name)
        data["I"].append(ival)
        data["delta"].append(delta)
    art = render_highway_arcs(
        a_gen(random_highway(40, max_gap=0.12, seed=seed)), width=96, log_scale=False
    )
    return ExperimentResult(
        experiment_id="thm54_agen",
        title="Theorem 5.4: algorithm A_gen on general highways",
        headers=[
            "instance",
            "n",
            "Delta",
            "I(A_gen)",
            "I(linear)",
            "sqrt(Delta)",
            "I/sqrt(Delta)",
            "connectivity preserved",
        ],
        rows=rows,
        notes=[
            f"I(A_gen) <= c * sqrt(Delta) with c = {worst_ratio:.2f} across all instances",
            "on the uniform chain A_gen is deliberately wasteful (hubs carry "
            "sqrt(Delta) spokes) — the case A_apx exists to fix.",
        ],
        figures=["Figure 9 style segment/hub structure (random highway, n=40):\n" + art],
        data=data,
    )


@register(
    "thm56_gamma_check",
    "gamma = I(G_lin): the A_apx criterion agrees with Definition 5.2",
    "Definition 5.2 / Lemma 5.5",
)
def run_gamma_check(seed: int = 5) -> ExperimentResult:
    from repro.highway.critical import critical_set

    rows = []
    all_match = True
    for name, pos in (
        ("exp chain n=24", exponential_chain(24)),
        ("uniform n=30", uniform_chain(30, spacing=0.02)),
        ("random n=40", random_highway(40, max_gap=0.4, seed=seed)),
    ):
        g = gamma(pos)
        literal = max(
            critical_set(pos, v).size for v in range(pos.shape[0])
        )
        match = g == literal
        all_match &= match
        rows.append([name, g, literal, match])
    return ExperimentResult(
        experiment_id="thm56_gamma_check",
        title="Definition 5.2: literal critical sets vs fast gamma",
        headers=["instance", "gamma (fast)", "max |C_v| (literal)", "match"],
        rows=rows,
        notes=[f"both formulations agree on every instance: {all_match}"],
        data={},
    )
