"""EXT-1 — two-dimensional topology control (the paper's future work).

"Adaptation of our approach to higher dimensions remains an open problem."
This experiment evaluates the two heuristics of :mod:`repro.extensions` —
the 2-D A_gen generalization and spanning-tree local search — against the
classical baselines, on random deployments (where the EMST is already
good) and on the adversarial two-exponential-chains instance (where every
NNF-containing baseline collapses to Omega(n)).
"""

from __future__ import annotations

import math

from repro.experiments.registry import ExperimentResult, register
from repro.extensions import a_gen_2d, reduce_interference
from repro.geometry.generators import random_udg_connected, two_exponential_chains
from repro.interference.receiver import graph_interference
from repro.model.udg import unit_disk_graph
from repro.topologies import build


@register(
    "ext_2d",
    "2-D extension: A_gen generalization and local search vs baselines",
    "Section 6 future work",
)
def run_ext_2d(seed: int = 41, adversarial_ms=(8, 16)) -> ExperimentResult:
    rows = []
    data = {"instances": [], "emst": [], "a_gen_2d": [], "local_search": []}

    def record(name, udg, unit):
        emst = build("emst", udg)
        g2 = a_gen_2d(udg.positions, unit=unit)
        ls = reduce_interference(udg, seed=seed, max_rounds=3)
        row = [
            name,
            udg.n,
            udg.max_degree(),
            graph_interference(emst),
            graph_interference(g2),
            graph_interference(ls),
            g2.is_connected() and ls.is_connected(),
        ]
        rows.append(row)
        data["instances"].append(name)
        data["emst"].append(row[3])
        data["a_gen_2d"].append(row[4])
        data["local_search"].append(row[5])

    for n, side in ((50, 3.2), (100, 4.5)):
        pos = random_udg_connected(n, side=side, seed=seed)
        record(f"random n={n}", unit_disk_graph(pos), 1.0)
    for m in adversarial_ms:
        pos, _ = two_exponential_chains(m)
        unit = float(2.0 ** (m + 1))
        record(f"two-chains m={m}", unit_disk_graph(pos, unit=unit), unit)

    adv = [(e, l) for name, e, l in zip(
        data["instances"], data["emst"], data["local_search"]
    ) if name.startswith("two-chains")]
    escape = all(l < e for e, l in adv)
    return ExperimentResult(
        experiment_id="ext_2d",
        title="Future work: topology control in two dimensions",
        headers=[
            "instance",
            "n",
            "Delta",
            "I(EMST)",
            "I(A_gen 2D)",
            "I(local search)",
            "connected",
        ],
        rows=rows,
        notes=[
            "on random deployments the EMST is already near-optimal and the "
            "2-D A_gen pays its hub overhead for nothing — mirroring the "
            "uniform-chain story of Section 5.3",
            f"on the adversarial instance local search escapes the Omega(n) "
            f"EMST trap toward the Figure 5 optimum: {escape}",
            "no worst-case bound is claimed for either heuristic — that "
            "remains the paper's open problem.",
        ],
        data=data,
    )
