"""Strict, loss-free JSON encoding for experiment payloads.

The sweep runner round-trips every :class:`ExperimentResult` through JSON
(worker -> parent, parent -> cache, cache -> warm run), so serialization
must be *exact* and *strict*:

- exact: a payload decoded from JSON must reconstruct the original values,
  including numpy arrays (dtype preserved) and non-finite floats, so that a
  cache hit is indistinguishable from a fresh run;
- strict: an object we do not know how to round-trip raises ``TypeError``
  at encode time instead of being silently stringified, and non-finite
  floats are encoded explicitly instead of relying on the non-standard
  ``NaN``/``Infinity`` tokens ``json.dumps`` emits by default (which many
  parsers reject and which do not round-trip through strict readers).

Encoding rules
--------------
- ``None``, ``bool``, ``int``, ``str`` and finite ``float`` pass through;
- non-finite floats become ``{"__nonfinite__": "nan" | "inf" | "-inf"}``;
- numpy scalars become the equivalent Python scalar;
- numpy arrays become ``{"__ndarray__": <nested list>, "dtype": <str>}``;
- ``list``/``tuple`` become JSON lists (tuples decode as lists — document
  payloads accordingly);
- ``dict`` keys must be strings and must not collide with the reserved
  sentinel keys above;
- anything else raises ``TypeError``.
"""

from __future__ import annotations

import json
import math

import numpy as np

#: Reserved sentinel keys; user dicts must not contain them.
RESERVED_KEYS = frozenset({"__nonfinite__", "__ndarray__"})

_NONFINITE_ENCODE = {math.inf: "inf", -math.inf: "-inf"}
_NONFINITE_DECODE = {
    "nan": math.nan,
    "inf": math.inf,
    "-inf": -math.inf,
}


def _encode_float(value: float):
    if math.isfinite(value):
        return float(value)
    if math.isnan(value):
        return {"__nonfinite__": "nan"}
    return {"__nonfinite__": _NONFINITE_ENCODE[value]}


def encode_jsonable(obj):
    """Recursively convert ``obj`` to a strictly-JSON-safe structure.

    Raises ``TypeError`` for any value that cannot be round-tripped.
    """
    if obj is None:
        return None
    if isinstance(obj, (bool, np.bool_)):
        return bool(obj)
    if isinstance(obj, str):
        return obj
    if isinstance(obj, (int, np.integer)):
        return int(obj)
    if isinstance(obj, (float, np.floating)):
        return _encode_float(float(obj))
    if isinstance(obj, np.ndarray):
        return {
            "__ndarray__": encode_jsonable(obj.tolist()),
            "dtype": str(obj.dtype),
        }
    if isinstance(obj, (list, tuple)):
        return [encode_jsonable(item) for item in obj]
    if isinstance(obj, dict):
        out = {}
        for key, value in obj.items():
            if not isinstance(key, str):
                raise TypeError(
                    f"dict keys must be str for JSON round-tripping, got "
                    f"{type(key).__name__}: {key!r}"
                )
            if key in RESERVED_KEYS:
                raise TypeError(f"dict key {key!r} is reserved for encoding")
            out[key] = encode_jsonable(value)
        return out
    raise TypeError(
        f"cannot serialize object of type {type(obj).__name__} ({obj!r}); "
        "experiment payloads must consist of None/bool/int/float/str, "
        "lists/tuples, str-keyed dicts, and numpy scalars/arrays"
    )


def decode_jsonable(obj):
    """Inverse of :func:`encode_jsonable` (tuples come back as lists)."""
    if isinstance(obj, dict):
        if set(obj) == {"__nonfinite__"}:
            return _NONFINITE_DECODE[obj["__nonfinite__"]]
        if set(obj) == {"__ndarray__", "dtype"}:
            return np.array(
                decode_jsonable(obj["__ndarray__"]), dtype=np.dtype(obj["dtype"])
            )
        return {key: decode_jsonable(value) for key, value in obj.items()}
    if isinstance(obj, list):
        return [decode_jsonable(item) for item in obj]
    return obj


def dumps_strict(obj, **kwargs) -> str:
    """``json.dumps`` of the strict encoding (``allow_nan=False`` enforced)."""
    kwargs.setdefault("allow_nan", False)
    return json.dumps(encode_jsonable(obj), **kwargs)


def canonical_dumps(obj) -> str:
    """Deterministic compact encoding used for cache keys."""
    return json.dumps(
        encode_jsonable(obj),
        allow_nan=False,
        sort_keys=True,
        separators=(",", ":"),
    )


def loads_strict(text: str):
    """Parse JSON and decode the sentinel encodings back to Python values."""
    return decode_jsonable(json.loads(text))
