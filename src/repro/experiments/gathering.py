"""EXT-5 — low-interference data gathering (the measure's [4] origin).

All nodes periodically report to a sink over a routing tree. Compares the
latency-optimal shortest-path tree against the interference-greedy tree
and its depth-bounded variant, both statically (I, depth) and under the
packet-level gather simulator (delivery, retransmission overhead) — the
interference-vs-latency trade-off, quantified.
"""

from __future__ import annotations

from repro.experiments.registry import ExperimentResult, register
from repro.extensions.gathering import (
    low_interference_gather_tree,
    shortest_path_tree,
    tree_depth,
)
from repro.geometry.generators import random_udg_connected
from repro.interference.receiver import graph_interference
from repro.model.udg import unit_disk_graph
from repro.sim.slotted import GatherSimulator
from repro.sim.traffic import gather_tree


@register(
    "gathering",
    "Low-interference data-gathering trees vs the shortest-path tree",
    "Model origin [4] / Section 2",
)
def run_gathering(
    n: int = 60, seed: int = 15, n_slots: int = 4000
) -> ExperimentResult:
    pos = random_udg_connected(n, side=0.465 * n**0.5, seed=seed)
    udg = unit_disk_graph(pos)
    sink = 0
    spt = shortest_path_tree(udg, sink)
    d_spt = tree_depth(spt, sink)
    trees = {
        "shortest-path tree": spt,
        "interference-greedy": low_interference_gather_tree(udg, sink),
        f"greedy, depth <= {2 * d_spt}": low_interference_gather_tree(
            udg, sink, depth_limit=2 * d_spt
        ),
    }
    rows = []
    data = {"names": [], "I": [], "depth": [], "overhead": [], "delivered": []}
    for name, tree in trees.items():
        parent = gather_tree(tree, sink)
        out = GatherSimulator(tree, parent, p=0.15, source_period=150).run(
            n_slots, seed=seed + 1
        )
        ival = graph_interference(tree)
        depth = tree_depth(tree, sink)
        rows.append(
            [
                name,
                ival,
                depth,
                out["delivered"],
                out["sourced"],
                round(out["retransmission_overhead"], 2),
            ]
        )
        data["names"].append(name)
        data["I"].append(ival)
        data["depth"].append(depth)
        data["overhead"].append(out["retransmission_overhead"])
        data["delivered"].append(out["delivered"])
    improves = data["I"][1] < data["I"][0] and data["overhead"][1] < data["overhead"][0]
    balanced = (
        data["I"][2] < data["I"][0]
        and data["delivered"][2] > 0.8 * data["delivered"][0]
    )
    return ExperimentResult(
        experiment_id="gathering",
        title=f"Data gathering to a sink (n={n})",
        headers=["tree", "I(G)", "depth", "delivered", "sourced", "retx/packet"],
        rows=rows,
        notes=[
            f"the interference-greedy tree cuts both I and retransmissions: {improves} "
            "— but pays in depth (latency)",
            f"the depth-bounded variant keeps most of the interference win at "
            f"near-SPT delivery: {balanced}",
        ],
        data=data,
    )
