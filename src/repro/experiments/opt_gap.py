"""OPT-gap: measured heuristics against the *certified* optimum.

Earlier experiments compare the constructions against each other or
against asymptotic bounds; this one anchors them to ground truth. For
each instance the certified solver (:mod:`repro.opt`) produces a bracket
``lb <= OPT <= ub`` whose certificate is independently re-verified, and
the classical NNF / XTC baselines plus the paper's A_exp / A_apx highway
constructions are measured against it. On highway instances A_exp should
land within a small factor of OPT (Theorem 5.1 vs Theorem 5.2), while the
NNF sits Omega(n) off on the two-chains family (Theorem 4.1) — here that
gap is against a *proven* optimum, not a heuristic proxy.

Instance sizes default small enough that the solver proves optimality
outright (``status=optimal``); the node budget is a terminating backstop,
and budget-limited rows still report a valid certified bracket.
"""

from __future__ import annotations

from repro.experiments.registry import ExperimentResult, register
from repro.geometry.generators import (
    exponential_chain,
    random_udg_connected,
    two_exponential_chains,
)
from repro.interference.receiver import graph_interference
from repro.model.udg import unit_disk_graph
from repro.opt import OptConfig, solve_opt, verify_certificate
from repro.topologies import build


def _measure(name: str, udg) -> int | None:
    """Interference of ``build(name, udg)``; None when the construction
    does not apply (disconnected result on a non-highway instance)."""
    topo = build(name, udg)
    if not topo.is_connected():
        return None
    return int(graph_interference(topo))


@register(
    "opt_gap",
    "NNF/XTC/A_exp/A_apx interference vs certified OPT",
    "Theorems 4.1, 5.1, 5.2 / repro.opt",
)
def run_opt_gap(
    exp_ns=(7, 8, 10),
    two_chain_ms=(3, 4),
    random_ns=(8,),
    node_budget=60_000,
    seed=0,
) -> ExperimentResult:
    instances = []
    for n in exp_ns:
        instances.append((f"exp_chain({n})", exponential_chain(n), 1.0, True))
    for m in two_chain_ms:
        pos, _ = two_exponential_chains(m)
        instances.append((f"two_chain(m={m})", pos, float(2.0 ** (m + 1)), False))
    for i, n in enumerate(random_ns):
        pos = random_udg_connected(n, side=1.0, seed=seed + i)
        instances.append((f"random({n},s={seed + i})", pos, 1.0, False))

    cfg = OptConfig(node_budget=node_budget, seed=seed)
    rows = []
    data = {
        "label": [], "n": [], "nnf": [], "xtc": [], "a_exp": [], "a_apx": [],
        "opt_lb": [], "opt_ub": [], "exact": [],
    }
    for label, pos, unit, is_highway_instance in instances:
        udg = unit_disk_graph(pos, unit=unit)
        outcome = solve_opt(pos, unit=unit, config=cfg)
        verify_certificate(pos, outcome.certificate)
        measured = {
            # the NNF is a forest; its interference is measured regardless of
            # connectivity because it lower-bounds every NNF-containing
            # connected topology (Theorem 4.1's comparison)
            "nnf": int(graph_interference(build("nnf", udg))),
            "xtc": _measure("xtc", udg),
            # the highway constructions only make sense on 1-D instances
            "a_exp": _measure("a_exp", udg) if is_highway_instance else None,
            "a_apx": _measure("a_apx", udg) if is_highway_instance else None,
        }
        fmt = {k: ("-" if v is None else v) for k, v in measured.items()}
        bracket = (
            str(outcome.value)
            if outcome.exact
            else f"[{outcome.lower_bound},{outcome.value}]"
        )
        rows.append(
            [
                label,
                pos.shape[0],
                fmt["nnf"],
                fmt["xtc"],
                fmt["a_exp"],
                fmt["a_apx"],
                bracket,
                outcome.status,
            ]
        )
        data["label"].append(label)
        data["n"].append(int(pos.shape[0]))
        for k in ("nnf", "xtc", "a_exp", "a_apx"):
            data[k].append(measured[k])
        data["opt_lb"].append(outcome.lower_bound)
        data["opt_ub"].append(outcome.value)
        data["exact"].append(outcome.exact)

    # worst certified gap per algorithm: measured / certified upper bound
    # (>= true ratio denominator, so this never overstates the gap)
    gaps = {}
    for k in ("nnf", "xtc", "a_exp", "a_apx"):
        ratios = [
            v / ub
            for v, ub in zip(data[k], data["opt_ub"])
            if v is not None and ub > 0
        ]
        gaps[k] = max(ratios) if ratios else None
    gap_notes = ", ".join(
        f"{k} {gaps[k]:.2f}x" for k in sorted(gaps) if gaps[k] is not None
    )
    n_exact = sum(data["exact"])
    return ExperimentResult(
        experiment_id="opt_gap",
        title="Interference of known constructions vs certified optimum",
        headers=["instance", "n", "I(NNF)", "I(XTC)", "I(A_exp)", "I(A_apx)",
                 "OPT (certified)", "status"],
        rows=rows,
        notes=[
            f"{n_exact}/{len(instances)} instance(s) solved to proven "
            "optimality; remaining rows report certified [lb,ub] brackets",
            f"worst measured/OPT gap: {gap_notes}",
            "every certificate re-verified independently "
            "(repro.opt.verify_certificate)",
        ],
        data=data,
    )
