"""E9 / Section 4 — known topology-control algorithms under the new measure.

Runs every registered baseline on (a) random 2-D UDGs and (b) the
adversarial two-exponential-chains instance, reporting receiver-centric
interference, the sender-centric measure, degree and energy. The paper's
point: sparseness/low degree does not imply low receiver-centric
interference, and on adversarial instances every NNF-containing algorithm
collapses.
"""

from __future__ import annotations

from repro.experiments.registry import ExperimentResult, register
from repro.geometry.generators import random_udg_connected, two_exponential_chains
from repro.interference.receiver import graph_interference
from repro.interference.sender import sender_interference
from repro.model.energy import total_transmit_energy
from repro.model.udg import unit_disk_graph
from repro.topologies import ALGORITHMS, build
from repro.topologies.constructions import two_chains_optimal_tree


@register(
    "survey_baselines",
    "Known topology-control algorithms under the receiver-centric measure",
    "Section 4",
)
def run_survey(n: int = 80, seed: int = 17, m_adversarial: int = 24) -> ExperimentResult:
    pos = random_udg_connected(n, side=4.5, seed=seed)
    udg = unit_disk_graph(pos)
    adv_pos, adv_groups = two_exponential_chains(m_adversarial)
    adv_udg = unit_disk_graph(adv_pos, unit=float(2.0 ** (m_adversarial + 1)))
    adv_n = adv_pos.shape[0]

    rows = []
    data = {"random_I": {}, "adversarial_I": {}}
    for name in sorted(ALGORITHMS):
        sub = build(name, udg)
        adv = build(name, adv_udg)
        rows.append(
            [
                name,
                graph_interference(sub),
                sub.max_degree(),
                round(sender_interference(sub), 1),
                round(total_transmit_energy(sub), 3),
                sub.is_connected() or name == "nnf",
                graph_interference(adv),
            ]
        )
        data["random_I"][name] = graph_interference(sub)
        data["adversarial_I"][name] = graph_interference(adv)
    opt = two_chains_optimal_tree(adv_pos, adv_groups)
    rows.append(
        [
            "fig5-optimal",
            float("nan"),
            opt.max_degree(),
            float("nan"),
            float("nan"),
            opt.is_connected(),
            graph_interference(opt),
        ]
    )
    adv_opt = graph_interference(opt)
    all_collapse = all(
        v >= adv_n // 4 for k, v in data["adversarial_I"].items() if k not in ("life", "lise2")
    )
    return ExperimentResult(
        experiment_id="survey_baselines",
        title=f"Section 4 survey (random 2-D n={n}; adversarial n={adv_n})",
        headers=[
            "algorithm",
            "I_recv (random)",
            "max degree",
            "I_send (random)",
            "energy",
            "connected",
            "I_recv (adversarial)",
        ],
        rows=rows,
        notes=[
            f"on the adversarial instance every NNF-containing baseline is "
            f">= n/4 while the Figure 5 tree is {adv_opt}: {all_collapse}",
            "LIFE/LISE (the [2] exception) are also far from the optimum, as "
            "the paper remarks.",
        ],
        data=data,
    )
