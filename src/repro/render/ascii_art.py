"""ASCII arc diagrams and scatter plots.

:func:`render_highway_arcs` reproduces the style of the paper's Figure 8:
1-D nodes on a (log-scaled, if requested) axis with edges drawn as arcs
above, hubs marked hollow, and per-node interference printed underneath.
"""

from __future__ import annotations

import numpy as np

from repro.highway.hubs import hub_indices
from repro.highway.linear import highway_order
from repro.interference.receiver import node_interference
from repro.model.topology import Topology


def render_highway_arcs(
    topology: Topology, *, width: int = 100, log_scale: bool = True
) -> str:
    """Arc diagram of a 1-D topology (Figure 8 style).

    Nodes are marked ``o`` (``O`` for hubs, Definition 5.1); each edge is an
    arc of ``.`` with its span underlined; the bottom row shows each node's
    receiver-centric interference (mod 10, for alignment).
    """
    if topology.n == 0:
        return "(empty topology)"
    if width < 10:
        raise ValueError("width must be >= 10")
    order = highway_order(topology.positions)
    x = topology.positions[order, 0]
    if log_scale:
        gaps = np.diff(x)
        pos1d = np.zeros(len(x))
        tiny = gaps[gaps > 0].min() if np.any(gaps > 0) else 1.0
        pos1d[1:] = np.cumsum(np.log2(1.0 + gaps / tiny))
    else:
        pos1d = x - x[0]
    span = pos1d[-1] if pos1d[-1] > 0 else 1.0
    cols = np.round(pos1d / span * (width - 1)).astype(int)
    # nudge collisions apart where possible
    for i in range(1, len(cols)):
        if cols[i] <= cols[i - 1]:
            cols[i] = min(cols[i - 1] + 1, width - 1)

    col_of = {int(order[i]): int(cols[i]) for i in range(len(order))}
    arcs = sorted(
        (min(col_of[u], col_of[v]), max(col_of[u], col_of[v]))
        for u, v in topology.edges
    )
    # assign each arc a row so that overlapping arcs stack
    rows: list[list[tuple[int, int]]] = []
    for a, b in sorted(arcs, key=lambda ab: ab[1] - ab[0]):
        placed = False
        for row in rows:
            if all(b < c or a > d for c, d in row):
                row.append((a, b))
                placed = True
                break
        if not placed:
            rows.append([(a, b)])

    canvas = []
    for row in reversed(rows):
        line = [" "] * width
        for a, b in row:
            line[a] = "/"
            line[b] = "\\"
            for c in range(a + 1, b):
                line[c] = "_"
        canvas.append("".join(line))

    hubs = set(map(int, hub_indices(topology)))
    node_line = [" "] * width
    for i, node in enumerate(order):
        node_line[cols[i]] = "O" if int(node) in hubs else "o"
    canvas.append("".join(node_line))

    ivec = node_interference(topology)
    int_line = [" "] * width
    for i, node in enumerate(order):
        int_line[cols[i]] = str(int(ivec[node]) % 10)
    canvas.append("".join(int_line))
    canvas.append(f"(bottom row: I(v) mod 10; hubs marked 'O'; I(G) = {ivec.max()})")
    return "\n".join(canvas)


def render_scatter(topology: Topology, *, width: int = 60, height: int = 24) -> str:
    """Coarse ASCII scatter of a 2-D topology: nodes ``o``, edge midpoints ``.``."""
    if topology.n == 0:
        return "(empty topology)"
    pos = topology.positions
    mins = pos.min(axis=0)
    spans = np.maximum(pos.max(axis=0) - mins, 1e-12)
    grid = [[" "] * width for _ in range(height)]

    def cell(p):
        cx = int(round((p[0] - mins[0]) / spans[0] * (width - 1)))
        cy = int(round((p[1] - mins[1]) / spans[1] * (height - 1)))
        return height - 1 - cy, cx

    for u, v in topology.edges:
        for t in np.linspace(0.15, 0.85, 8):
            r, c = cell(pos[u] * (1 - t) + pos[v] * t)
            if grid[r][c] == " ":
                grid[r][c] = "."
    for p in pos:
        r, c = cell(p)
        grid[r][c] = "o"
    return "\n".join("".join(row) for row in grid)
