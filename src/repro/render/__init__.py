"""ASCII rendering of topologies (figure reproduction without matplotlib)."""

from repro.render.ascii_art import render_highway_arcs, render_scatter

__all__ = ["render_highway_arcs", "render_scatter"]
