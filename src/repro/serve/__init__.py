"""``repro.serve`` — the long-lived serving layer of the reproduction.

A zero-dependency asyncio JSON-over-TCP service exposing the project's
core computations as request types (``interference``, ``build_topology``,
``opt``, ``experiment``, ``ping``) behind a micro-batching scheduler,
bounded admission queues with explicit load shedding, per-request
deadlines, and graceful drain — plus the matching async client and a
seeded SLO-instrumented load generator. Protocol and operational
semantics are specified in ``docs/SERVING.md``; ``repro serve`` /
``repro loadgen`` are the CLI entry points.
"""

from repro.serve.client import (
    RetryPolicy,
    ServeClient,
    ServeError,
    ServeRetryError,
)
from repro.serve.config import ServeConfig
from repro.serve.handlers import GENERATORS, MEASURES, run_request
from repro.serve.loadgen import (
    LoadGenConfig,
    LoadGenReport,
    build_requests,
    percentile,
    run_loadgen,
)
from repro.serve.protocol import (
    BATCHABLE_TYPES,
    ERROR_CODES,
    IDEMPOTENT_TYPES,
    MAX_LINE_BYTES,
    PROTOCOL_VERSION,
    REQUEST_TYPES,
    ProtocolError,
    decode_message,
    encode_message,
    error_response,
    ok_response,
    parse_request,
)
from repro.serve.routing import LaneRouter, RouteKey, Router
from repro.serve.server import InterferenceServer
from repro.serve.shard import ClusterConfig, ShardCluster
from repro.serve.stream import StreamService

__all__ = [
    "BATCHABLE_TYPES",
    "ClusterConfig",
    "ERROR_CODES",
    "GENERATORS",
    "IDEMPOTENT_TYPES",
    "InterferenceServer",
    "LaneRouter",
    "LoadGenConfig",
    "LoadGenReport",
    "MAX_LINE_BYTES",
    "MEASURES",
    "PROTOCOL_VERSION",
    "ProtocolError",
    "REQUEST_TYPES",
    "RetryPolicy",
    "RouteKey",
    "Router",
    "ServeClient",
    "ServeConfig",
    "ServeError",
    "ServeRetryError",
    "ShardCluster",
    "StreamService",
    "build_requests",
    "decode_message",
    "encode_message",
    "error_response",
    "ok_response",
    "parse_request",
    "percentile",
    "run_loadgen",
    "run_request",
]
