"""The routing API: where a request runs, and with whom it may share.

``InterferenceServer``'s dispatcher used to key micro-batches on a
hardcoded ``(type, measure, method)`` tuple built inline. That implicit
tuple is now a public, frozen :class:`RouteKey` produced by a
:class:`Router` — the seam both the single-process micro-batcher
(:class:`LaneRouter`) and the multi-process shard router
(:class:`repro.cluster.ClusterRouter`) implement, so "which lane
coalesces" and "which shard owns this region" are answers to the same
question asked of different routers.

Semantics
---------
Two requests may share one executor dispatch iff their route keys are
equal. :class:`RouteKey` equality is plain dataclass equality, so the
contract is visible in the fields:

- ``kind`` — the request type; batches never mix kinds.
- ``measure`` / ``method`` — the kernel options a fused interference
  batch must agree on (``None`` for kinds without them).
- ``token`` — a unique serial for non-batchable requests; a non-``None``
  token makes the key equal to nothing else, which *is* the
  "dispatch individually" behavior.
- ``shard`` — owning shard index in a cluster (``None`` single-process).
  Keys for different shards never compare equal, so a shard router gets
  per-shard batching for free.
"""

from __future__ import annotations

import itertools
from abc import ABC, abstractmethod
from dataclasses import dataclass

from repro.serve.protocol import BATCHABLE_TYPES


@dataclass(frozen=True, kw_only=True)
class RouteKey:
    """Batching/shard-compatibility key (see module docstring).

    Frozen and hashable: route keys are dict keys and set members in
    dispatcher internals, and equal keys *mean* "may share a dispatch".
    """

    kind: str
    measure: str | None = None
    method: str | None = None
    token: int | None = None
    shard: int | None = None

    @property
    def batchable(self) -> bool:
        """Whether this key can ever match another request's key."""
        return self.token is None


class Router(ABC):
    """Maps a request to its :class:`RouteKey` (and, for clusters, to the
    shard(s) that must execute it)."""

    @abstractmethod
    def route(self, kind: str, params: dict) -> RouteKey:
        """The dispatch-compatibility key for one request."""

    def targets(self, kind: str, params: dict) -> tuple[int, ...]:
        """Shard indices that must participate in this request.

        The single-process default is the one implicit shard, ``(0,)``.
        Cluster routers return every owner of the query region.
        """
        return (0,)


class LaneRouter(Router):
    """The single-shard router: exactly the dispatcher's old lane law.

    Batchable kinds key on ``(kind, measure, method)`` — requests whose
    kernel options agree may fuse into one ``node_interference_many``
    dispatch. Everything else gets a unique ``token`` and is dispatched
    alone. Differential-tested against the legacy tuple in
    ``tests/test_serve_routing.py``.
    """

    def __init__(self) -> None:
        self._tokens = itertools.count()

    def route(self, kind: str, params: dict) -> RouteKey:
        if kind in BATCHABLE_TYPES:
            return RouteKey(
                kind=kind,
                measure=params.get("measure", "graph"),
                method=params.get("method", "auto"),
            )
        return RouteKey(kind=kind, token=next(self._tokens))
