"""The multi-process shard cluster: front-end + one worker per tile.

Topology::

    client ──> ShardCluster front-end (router, scatter/gather, merge)
                  │ fan-out: one sub-request per owner shard
                  ├──> worker 0 (InterferenceServer, tile 0 + ghosts)
                  ├──> worker 1
                  └──> ...

The front-end speaks the ordinary newline-delimited JSON protocol on its
public port, so every existing client — :class:`ServeClient`, the load
generator, ``repro loadgen`` — works against a cluster unchanged.
Internally it plans each request with
:class:`repro.cluster.ClusterRouter`: eligible ``interference`` requests
scatter to the shards owning their query region (each worker computes
the partial for the nodes its tile owns, from owned + ghost nodes only)
and the gathered partials merge *exactly* (ghost dedup by node id —
ownership is a partition, so each count has one reporter). Everything
else forwards to one shard round-robin.

Worker modes
------------
``inprocess`` runs the workers as :class:`InterferenceServer` instances
on the front-end's own event loop (thread executors) — no true
parallelism, but identical routing/merge semantics; this is what the
differential tests exercise. ``subprocess`` spawns each worker through
``repro serve`` in its own Python process (the CLI and benchmark mode):
k worker processes give k-way CPU parallelism without sharing a GIL.

Failure semantics: a worker that cannot be reached maps to
``shard_unavailable``; per-item worker errors keep their code (a
``bad_request`` from any shard is the request's ``bad_request``).
"""

from __future__ import annotations

import asyncio
import os
import re
import signal
import sys
from collections import deque
from dataclasses import dataclass

# NB: only the numpy-only tiles module at import time — the router
# module imports repro.serve.routing, which would cycle back into this
# package when ``repro.cluster`` is the first thing imported.
from repro.cluster.tiles import TileGrid
from repro.serve.client import ServeClient, ServeError
from repro.serve.config import ServeConfig
from repro.serve.protocol import (
    ERR_BAD_REQUEST,
    ERR_INTERNAL,
    ERR_SHARD_UNAVAILABLE,
    MAX_LINE_BYTES,
    ProtocolError,
    decode_message,
    encode_message,
    error_response,
    ok_response,
    parse_request,
)
from repro.serve.server import InterferenceServer

_BANNER_RE = re.compile(r"listening on [\d.]+:(\d+)")

#: Lines of each subprocess worker's output retained for diagnostics.
_WORKER_LOG_LINES = 400


@dataclass(frozen=True, kw_only=True)
class ClusterConfig:
    """Options for :class:`ShardCluster`.

    Parameters
    ----------
    shards:
        Worker (= tile) count; factored into a near-square grid.
    host, port:
        Front-end bind address (``port=0`` picks an ephemeral port).
    bounds:
        ``(x0, y0, x1, y1)`` plane rectangle tiled uniformly. Instances
        outside it still work — edge tiles own everything beyond their
        cuts — but balance degrades; set it to the instance envelope.
    ghost:
        Ghost-margin width. Must be >= ``required_ghost(unit)`` of the
        requests to fan out; smaller margins demote requests to
        single-shard forwards (correct, just not parallel).
    grid:
        Explicit :meth:`TileGrid.to_jsonable` wire form; overrides
        ``bounds``/``ghost`` when given (``shards`` must match its tile
        count).
    worker_mode:
        ``"inprocess"`` or ``"subprocess"`` (module docstring).
    worker_workers, worker_executor:
        Executor shape of each worker server. The defaults (one thread)
        put the parallelism between worker processes, not inside them.
    batch_max_size, batch_linger_ms, queue_limit, default_deadline_ms:
        Passed through to each worker's :class:`ServeConfig`.
    max_line_bytes:
        Frame limit for the cluster's links *and* the front-end's public
        port. Whole-shard partials (ids + counts for ~n/k nodes) blow
        past the single-server default, hence the 16 MB default here.
    drain_timeout_s:
        Worker drain budget at :meth:`ShardCluster.stop`.
    """

    shards: int = 4
    host: str = "127.0.0.1"
    port: int = 0
    bounds: tuple[float, float, float, float] = (0.0, 0.0, 1.0, 1.0)
    ghost: float = 2.5
    grid: dict | None = None
    worker_mode: str = "inprocess"
    worker_workers: int = 1
    worker_executor: str = "thread"
    batch_max_size: int = 32
    batch_linger_ms: float = 2.0
    queue_limit: int = 256
    default_deadline_ms: float | None = None
    max_line_bytes: int = 16 * MAX_LINE_BYTES
    drain_timeout_s: float = 5.0

    def __post_init__(self) -> None:
        if self.shards < 1:
            raise ValueError("shards must be >= 1")
        if self.worker_mode not in ("inprocess", "subprocess"):
            raise ValueError("worker_mode must be 'inprocess' or 'subprocess'")
        if len(tuple(self.bounds)) != 4:
            raise ValueError("bounds must be (x0, y0, x1, y1)")
        if self.worker_workers < 1:
            raise ValueError("worker_workers must be >= 1")
        if self.worker_executor not in ("process", "thread"):
            raise ValueError("worker_executor must be 'process' or 'thread'")
        if self.max_line_bytes < 1024:
            raise ValueError("max_line_bytes must be >= 1024")
        if self.drain_timeout_s < 0:
            raise ValueError("drain_timeout_s must be >= 0")

    def tile_grid(self) -> TileGrid:
        if self.grid is not None:
            grid = TileGrid.from_jsonable(self.grid)
            if grid.k != self.shards:
                raise ValueError(
                    f"explicit grid has {grid.k} tiles for {self.shards} shards"
                )
            return grid
        return TileGrid.uniform(self.bounds, self.shards, ghost=self.ghost)

    def worker_config(self) -> ServeConfig:
        return ServeConfig(
            host=self.host,
            port=0,
            workers=self.worker_workers,
            executor=self.worker_executor,
            batch_max_size=self.batch_max_size,
            batch_linger_ms=self.batch_linger_ms,
            queue_limit=self.queue_limit,
            default_deadline_ms=self.default_deadline_ms,
            max_line_bytes=self.max_line_bytes,
            drain_timeout_s=self.drain_timeout_s,
        )


class ShardCluster:
    """Spatially sharded serve cluster (see the module docstring).

    Usage::

        async with ShardCluster(ClusterConfig(shards=4)) as cluster:
            client = await ServeClient.connect(port=cluster.port)
            ...
    """

    def __init__(self, config: ClusterConfig | None = None):
        self.config = config or ClusterConfig()
        self.grid = self.config.tile_grid()
        self.router = None  # ClusterRouter, bound at start()
        self._workers: list[InterferenceServer] = []
        self._procs: list[asyncio.subprocess.Process] = []
        self._log_tasks: list[asyncio.Task] = []
        self._clients: list[ServeClient] = []
        self._endpoints: list[tuple[str, int]] = []
        self._server: asyncio.base_events.Server | None = None
        self._connections: set[asyncio.StreamWriter] = set()
        self.worker_logs: list[deque[str]] = []
        self._stats = {
            "requests": 0,
            "pings": 0,
            "fanout": 0,
            "forwarded": 0,
            "bad_request": 0,
            "errors": 0,
            "shard_unavailable": 0,
        }

    # -- lifecycle ----------------------------------------------------------

    async def start(self) -> None:
        if self._server is not None:
            raise RuntimeError("cluster already started")
        from repro.cluster.router import ClusterRouter

        cfg = self.config
        if cfg.worker_mode == "inprocess":
            await self._start_inprocess_workers()
        else:
            await self._start_subprocess_workers()
        self.router = ClusterRouter(self.grid, endpoints=self._endpoints)
        for host, port in self._endpoints:
            self._clients.append(
                await ServeClient.connect(
                    host, port, limit=cfg.max_line_bytes
                )
            )
        self._server = await asyncio.start_server(
            self._on_connection, cfg.host, cfg.port, limit=cfg.max_line_bytes
        )

    async def _start_inprocess_workers(self) -> None:
        cfg = self.config
        worker_cfg = cfg.worker_config()
        for _ in range(cfg.shards):
            worker = InterferenceServer(worker_cfg)
            await worker.start()
            self._workers.append(worker)
            self._endpoints.append((cfg.host, worker.port))
        endpoints = [list(e) for e in self._endpoints]
        for index, worker in enumerate(self._workers):
            worker.set_shard_info({"index": index, "endpoints": endpoints})

    async def _start_subprocess_workers(self) -> None:
        cfg = self.config
        env = dict(os.environ)
        src_root = os.path.dirname(os.path.dirname(os.path.dirname(
            os.path.abspath(__file__)
        )))
        env["PYTHONPATH"] = os.pathsep.join(
            p for p in (src_root, env.get("PYTHONPATH")) if p
        )
        for index in range(cfg.shards):
            proc = await asyncio.create_subprocess_exec(
                sys.executable, "-u", "-m", "repro.cli", "serve",
                "--host", cfg.host, "--port", "0",
                "--workers", str(cfg.worker_workers),
                "--executor", cfg.worker_executor,
                "--batch-max", str(cfg.batch_max_size),
                "--linger-ms", str(cfg.batch_linger_ms),
                "--queue-limit", str(cfg.queue_limit),
                "--max-line-bytes", str(cfg.max_line_bytes),
                "--shard-index", str(index),
                "--drain-timeout", str(cfg.drain_timeout_s),
                stdout=asyncio.subprocess.PIPE,
                stderr=asyncio.subprocess.STDOUT,
                env=env,
            )
            self._procs.append(proc)
            log: deque[str] = deque(maxlen=_WORKER_LOG_LINES)
            self.worker_logs.append(log)
            banner = (await proc.stdout.readline()).decode(
                "utf-8", "replace"
            )
            log.append(banner.rstrip("\n"))
            match = _BANNER_RE.search(banner)
            if not match:
                raise RuntimeError(
                    f"shard {index} printed no listening banner: {banner!r}"
                )
            self._endpoints.append((cfg.host, int(match.group(1))))
            self._log_tasks.append(
                asyncio.create_task(self._pump_log(proc, log))
            )

    @staticmethod
    async def _pump_log(proc, log: deque) -> None:
        while True:
            line = await proc.stdout.readline()
            if not line:
                return
            log.append(line.decode("utf-8", "replace").rstrip("\n"))

    @property
    def port(self) -> int:
        if self._server is None or not self._server.sockets:
            raise RuntimeError("cluster not started")
        return self._server.sockets[0].getsockname()[1]

    @property
    def host(self) -> str:
        return self.config.host

    @property
    def endpoints(self) -> list[tuple[str, int]]:
        """Per-shard worker ``(host, port)`` endpoints."""
        return list(self._endpoints)

    def stats(self) -> dict:
        """Front-end counters plus per-shard worker stats (inprocess)."""
        out = {"frontend": dict(self._stats), "shards": []}
        for worker in self._workers:
            out["shards"].append(worker.stats())
        return out

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        for writer in list(self._connections):
            try:
                writer.close()
            except Exception:
                pass
        for client in self._clients:
            await client.close()
        self._clients = []
        for worker in self._workers:
            await worker.stop()
        self._workers = []
        for proc in self._procs:
            if proc.returncode is None:
                try:
                    proc.send_signal(signal.SIGINT)
                except ProcessLookupError:
                    continue
        for proc in self._procs:
            try:
                await asyncio.wait_for(
                    proc.wait(), self.config.drain_timeout_s + 5.0
                )
            except asyncio.TimeoutError:
                proc.kill()
                await proc.wait()
        self._procs = []
        for task in self._log_tasks:
            task.cancel()
        for task in self._log_tasks:
            try:
                await task
            except (asyncio.CancelledError, Exception):
                pass
        self._log_tasks = []

    async def __aenter__(self) -> "ShardCluster":
        await self.start()
        return self

    async def __aexit__(self, exc_type, exc, tb) -> None:
        await self.stop()

    # -- front-end protocol -------------------------------------------------

    async def _on_connection(self, reader, writer) -> None:
        self._connections.add(writer)
        wlock = asyncio.Lock()
        tasks: set[asyncio.Task] = set()
        loop = asyncio.get_running_loop()
        try:
            while True:
                try:
                    line = await reader.readline()
                except ValueError:
                    await self._write(
                        writer, wlock,
                        error_response(None, ERR_BAD_REQUEST, "frame too long"),
                    )
                    break
                except (ConnectionError, OSError):
                    break
                if not line:
                    break
                t0 = loop.time()
                req_id = None
                try:
                    message = decode_message(
                        line, limit=self.config.max_line_bytes
                    )
                    req_id = message.get("id")
                    if not isinstance(req_id, (int, str)):
                        req_id = None
                    req_id, kind, params, deadline_ms = parse_request(message)
                except ProtocolError as exc:
                    self._stats["bad_request"] += 1
                    await self._write(
                        writer, wlock,
                        error_response(req_id, ERR_BAD_REQUEST, str(exc)),
                    )
                    continue
                self._stats["requests"] += 1
                if kind == "ping":
                    self._stats["pings"] += 1
                    await self._write(
                        writer, wlock,
                        ok_response(req_id, {"pong": True},
                                    ms=(loop.time() - t0) * 1e3),
                    )
                    continue
                if kind.startswith("stream_"):
                    self._stats["bad_request"] += 1
                    await self._write(
                        writer, wlock,
                        error_response(
                            req_id, ERR_BAD_REQUEST,
                            "the stream lane is stateful per-server and not "
                            "available through a cluster front-end; connect "
                            "to a worker directly",
                        ),
                    )
                    continue
                task = asyncio.create_task(
                    self._relay(req_id, kind, params, deadline_ms,
                                writer, wlock, t0)
                )
                tasks.add(task)
                task.add_done_callback(tasks.discard)
        finally:
            for task in tasks:
                task.cancel()
            self._connections.discard(writer)
            try:
                writer.close()
                await writer.wait_closed()
            except Exception:
                pass

    async def _write(self, writer, wlock, response: dict) -> None:
        try:
            async with wlock:
                writer.write(
                    encode_message(response, limit=self.config.max_line_bytes)
                )
                if writer.transport.get_write_buffer_size() > 64 * 1024:
                    await writer.drain()
        except (ConnectionError, OSError):
            pass

    async def _relay(
        self, req_id, kind, params, deadline_ms, writer, wlock, t0
    ) -> None:
        loop = asyncio.get_running_loop()
        response = await self._execute(req_id, kind, params, deadline_ms, t0)
        if response is not None:
            if not response.get("ok"):
                code = (response.get("error") or {}).get("code")
                if code == ERR_SHARD_UNAVAILABLE:
                    self._stats["shard_unavailable"] += 1
                elif code == ERR_BAD_REQUEST:
                    self._stats["bad_request"] += 1
                else:
                    self._stats["errors"] += 1
            await self._write(writer, wlock, response)
        del loop

    async def _execute(self, req_id, kind, params, deadline_ms, t0) -> dict:
        loop = asyncio.get_running_loop()
        parts = self.router.plan(kind, params)
        if len(parts) == 1 and "shard" not in parts[0][1]:
            # singleton forward: pass the worker's envelope through
            # verbatim (codes, ms) under the caller's correlation id
            self._stats["forwarded"] += 1
            shard, sub = parts[0]
            try:
                raw = await self._clients[shard].request_raw(
                    kind, sub, deadline_ms=deadline_ms
                )
            except (ConnectionError, OSError) as exc:
                return error_response(
                    req_id, ERR_SHARD_UNAVAILABLE,
                    f"shard {shard} unreachable: {exc}",
                    ms=(loop.time() - t0) * 1e3,
                )
            response = dict(raw)
            response["id"] = req_id
            return response
        self._stats["fanout"] += 1
        results = await asyncio.gather(
            *(
                self._clients[shard].request(
                    kind, sub, deadline_ms=deadline_ms
                )
                for shard, sub in parts
            ),
            return_exceptions=True,
        )
        ms = (loop.time() - t0) * 1e3
        for (shard, _), result in zip(parts, results):
            if isinstance(result, ServeError):
                return error_response(
                    req_id, result.code, result.message, ms=ms,
                    details=result.details or None,
                )
            if isinstance(result, (ConnectionError, OSError)):
                return error_response(
                    req_id, ERR_SHARD_UNAVAILABLE,
                    f"shard {shard} unreachable: {result}", ms=ms,
                )
            if isinstance(result, BaseException):
                return error_response(
                    req_id, ERR_INTERNAL,
                    f"scatter failed: {result!r}", ms=ms,
                )
        try:
            merged = self.router.merge(params, list(results))
        except ValueError as exc:
            return error_response(
                req_id, ERR_INTERNAL, f"merge failed: {exc}", ms=ms
            )
        return ok_response(req_id, merged, ms=(loop.time() - t0) * 1e3)
