"""Serving options — one frozen keyword-only dataclass, like ``OptConfig``.

Every option is named, a misspelled keyword raises ``TypeError`` at
construction, and instances are frozen so one config can parameterize a
server, appear in logs and be asserted on in tests without defensive
copying. See ``docs/SERVING.md`` for how the knobs interact.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.serve.protocol import MAX_LINE_BYTES


@dataclass(frozen=True, kw_only=True)
class ServeConfig:
    """Options accepted by :class:`repro.serve.InterferenceServer`.

    Parameters
    ----------
    host, port:
        Bind address. ``port=0`` picks an ephemeral port (read it back
        from ``server.port`` after ``start()``).
    workers:
        Worker processes (or threads) executing request payloads.
    executor:
        ``"process"`` (default; true parallelism, the production mode) or
        ``"thread"`` (cheap startup; used by tests and tiny deployments —
        NumPy kernels release the GIL for part of the work, but CPU-bound
        load should use processes).
    batch_max_size, batch_linger_ms:
        Micro-batching knobs for batchable request types: a dispatch
        coalesces up to ``batch_max_size`` compatible requests, waiting at
        most ``batch_linger_ms`` (measured from the oldest queued request)
        for the batch to fill. ``batch_max_size=1`` disables coalescing —
        the per-request-dispatch regime ``benchmarks/bench_serve.py``
        compares against.
    queue_limit:
        Admission bound: requests beyond this many queued (not yet
        dispatched) are rejected immediately with ``overloaded`` instead
        of growing an unbounded backlog (load shedding, not collapse).
    max_inflight_batches:
        Concurrent executor dispatches. ``None`` defaults to ``workers``
        so the pool stays busy while admission control still sees the
        queue (hidden executor backlogs would defeat it).
    default_deadline_ms:
        Deadline applied to requests that do not carry their own.
        ``None`` means no implicit deadline.
    opt_time_budget_cap_s, opt_node_budget_cap:
        Server-side caps on ``opt`` request budgets: a client deadline is
        translated into ``OptConfig.time_budget_s`` (so an over-deadline
        solve returns its certified bracket instead of an error), and
        both budgets are clamped to these caps so one request cannot
        monopolize a worker.
    drain_timeout_s:
        Graceful-shutdown budget: ``stop()`` waits this long for queued
        and in-flight work to finish before force-terminating the pool.
    max_line_bytes:
        Per-frame size limit (both directions).
    stream_max_capacity:
        Largest node universe a ``stream_init`` may allocate.
    stream_max_apply:
        Most events one ``stream_apply`` request may carry.
    stream_max_subscriptions:
        Concurrent region subscriptions across all connections.
    stream_read_wait_s:
        How long a bounded-staleness ``stream_read`` may wait for the
        ingest lag to drop to its ``max_lag`` before answering
        ``deadline_exceeded``.
    """

    host: str = "127.0.0.1"
    port: int = 0
    workers: int = 2
    executor: str = "process"
    batch_max_size: int = 32
    batch_linger_ms: float = 2.0
    queue_limit: int = 256
    max_inflight_batches: int | None = None
    default_deadline_ms: float | None = None
    opt_time_budget_cap_s: float = 5.0
    opt_node_budget_cap: int = 200_000
    drain_timeout_s: float = 5.0
    max_line_bytes: int = MAX_LINE_BYTES
    stream_max_capacity: int = 1_000_000
    stream_max_apply: int = 10_000
    stream_max_subscriptions: int = 64
    stream_read_wait_s: float = 5.0

    def __post_init__(self) -> None:
        if self.workers < 1:
            raise ValueError("workers must be >= 1")
        if self.executor not in ("process", "thread"):
            raise ValueError("executor must be 'process' or 'thread'")
        if self.batch_max_size < 1:
            raise ValueError("batch_max_size must be >= 1")
        if self.batch_linger_ms < 0:
            raise ValueError("batch_linger_ms must be >= 0")
        if self.queue_limit < 1:
            raise ValueError("queue_limit must be >= 1")
        if self.max_inflight_batches is not None and self.max_inflight_batches < 1:
            raise ValueError("max_inflight_batches must be >= 1 (or None)")
        if self.default_deadline_ms is not None and self.default_deadline_ms <= 0:
            raise ValueError("default_deadline_ms must be positive (or None)")
        if self.opt_time_budget_cap_s <= 0:
            raise ValueError("opt_time_budget_cap_s must be positive")
        if self.opt_node_budget_cap < 1:
            raise ValueError("opt_node_budget_cap must be >= 1")
        if self.drain_timeout_s < 0:
            raise ValueError("drain_timeout_s must be >= 0")
        if self.max_line_bytes < 1024:
            raise ValueError("max_line_bytes must be >= 1024")
        if self.stream_max_capacity < 1:
            raise ValueError("stream_max_capacity must be >= 1")
        if self.stream_max_apply < 1:
            raise ValueError("stream_max_apply must be >= 1")
        if self.stream_max_subscriptions < 1:
            raise ValueError("stream_max_subscriptions must be >= 1")
        if self.stream_read_wait_s <= 0:
            raise ValueError("stream_read_wait_s must be positive")

    @property
    def inflight_limit(self) -> int:
        return (
            self.workers
            if self.max_inflight_batches is None
            else self.max_inflight_batches
        )
