"""The ``stream`` lane: stateful event ingest inside the serve loop.

Unlike the pool-dispatched request kinds (pure functions of their
params), the stream lane owns mutable state — one
:class:`~repro.stream.engine.StreamEngine` (optionally durable) — so it
runs *inline on the event loop*, never on the worker pool. Request kinds:

- ``stream_init``   — create the engine (in-memory, or durable when a
  ``dir`` is given: recovered via snapshot + tail replay if it exists);
- ``stream_apply``  — submit a batch of events. Events are *accepted*
  synchronously (ordering fixed) and *applied* asynchronously by the
  ingest task; ``ack`` selects what the response waits for:
  ``"accepted"`` (default, fire-and-forget ordering guarantee),
  ``"applied"`` (events are live for reads), or ``"durable"`` (the
  segmented log flushed — durable engines only; ``stream_init`` accepts
  ``segment_bytes`` / ``compact`` passthrough to
  :class:`~repro.stream.config.StreamConfig`).
- ``stream_read``   — bounded-staleness read. ``max_lag`` is the maximum
  number of accepted-but-unapplied events the caller tolerates; the read
  waits (up to ``ServeConfig.stream_read_wait_s``) until the lag is at
  most that, then answers from the engine. ``max_lag=0`` is
  read-your-writes with respect to everything accepted so far.
- ``stream_subscribe`` / ``stream_unsubscribe`` — per-region delta push:
  after each applied event the subscriber's connection receives a
  ``{"push": "stream_delta", "sub": ..., "seq": ..., ...}`` frame (no
  ``"id"`` key, so pipelined response matching is unaffected) carrying
  the ``(node, count)`` changes inside its rectangle.

The accepted/applied split is what makes the staleness contract honest:
acceptance is the cheap, ordered admission step; application is where
per-event interference deltas happen, amortized by the ingest task.
"""

from __future__ import annotations

import asyncio
from itertools import count

from repro import obs
from repro.serve.protocol import (
    ERR_BAD_REQUEST,
    ERR_DEADLINE,
    ERR_INTERNAL,
    error_response,
    ok_response,
)
from repro.stream.config import StreamConfig
from repro.stream.durable import DurableStreamEngine
from repro.stream.engine import StreamEngine, StreamStateError
from repro.stream.events import StreamEvent

__all__ = ["StreamService"]

#: Yield to the event loop after this many inline event applications, so
#: one big stream_apply cannot starve other connections.
_APPLY_YIELD_EVERY = 1000


class _Sub:
    __slots__ = ("sub_id", "region", "writer", "wlock")

    def __init__(self, sub_id, region, writer, wlock):
        self.sub_id = sub_id
        self.region = region
        self.writer = writer
        self.wlock = wlock


class StreamService:
    """Stream-lane state + request handling for one server instance."""

    def __init__(self, serve_config, write_fn):
        self.config = serve_config
        # the server's connection-safe frame writer: (writer, wlock, dict)
        self._write = write_fn
        self._durable: DurableStreamEngine | None = None
        self._engine: StreamEngine | None = None
        self._queue: asyncio.Queue | None = None
        self._ingest_task: asyncio.Task | None = None
        self._cond: asyncio.Condition | None = None
        self.accepted = 0  # events accepted (ordered) so far
        self.processed = 0  # events the ingest task has consumed
        self._subs: dict[int, _Sub] = {}
        self._sub_ids = count(1)
        self.stats = {
            "stream_accepted": 0,
            "stream_applied": 0,
            "stream_rejected_events": 0,
            "stream_reads": 0,
            "stream_read_timeouts": 0,
            "stream_pushes": 0,
            "stream_subscriptions": 0,
        }

    @property
    def lag(self) -> int:
        return self.accepted - self.processed

    # -- lifecycle ---------------------------------------------------------

    async def close(self) -> None:
        if self._ingest_task is not None:
            self._ingest_task.cancel()
            try:
                await self._ingest_task
            except asyncio.CancelledError:
                pass
            self._ingest_task = None
        if self._durable is not None:
            self._durable.close()
            self._durable = None
        self._subs.clear()

    def drop_connection(self, writer) -> None:
        """Forget subscriptions owned by a closed connection."""
        for sub_id in [s for s, sub in self._subs.items() if sub.writer is writer]:
            del self._subs[sub_id]

    # -- request entry point -----------------------------------------------

    async def handle(
        self, kind: str, req_id, params: dict, writer, wlock, *, t0: float
    ) -> dict:
        """Handle one stream_* request; returns the response envelope."""
        loop = asyncio.get_running_loop()

        def ok(result):
            return ok_response(req_id, result, ms=(loop.time() - t0) * 1e3)

        def err(code, message):
            return error_response(
                req_id, code, message, ms=(loop.time() - t0) * 1e3
            )

        try:
            if kind == "stream_init":
                return ok(await self._init(params))
            if self._engine is None:
                return err(
                    ERR_BAD_REQUEST, "stream lane not initialized (stream_init)"
                )
            if kind == "stream_apply":
                return ok(await self._apply(params))
            if kind == "stream_read":
                result = await self._read(params)
                if result is None:
                    self.stats["stream_read_timeouts"] += 1
                    return err(
                        ERR_DEADLINE,
                        f"lag {self.lag} did not reach max_lag within "
                        f"{self.config.stream_read_wait_s}s",
                    )
                return ok(result)
            if kind == "stream_subscribe":
                return ok(self._subscribe(params, writer, wlock))
            if kind == "stream_unsubscribe":
                return ok(self._unsubscribe(params))
            return err(ERR_BAD_REQUEST, f"unknown stream kind {kind!r}")
        except (ValueError, KeyError, TypeError, StreamStateError) as exc:
            return err(ERR_BAD_REQUEST, f"{type(exc).__name__}: {exc}")
        except Exception as exc:  # pragma: no cover - defensive
            return err(ERR_INTERNAL, f"{type(exc).__name__}: {exc}")

    # -- handlers ----------------------------------------------------------

    async def _init(self, params: dict) -> dict:
        if self._engine is not None and not params.get("reset"):
            raise ValueError("stream lane already initialized (pass reset)")
        capacity = int(params["capacity"])
        if capacity > self.config.stream_max_capacity:
            raise ValueError(
                f"capacity {capacity} exceeds server cap "
                f"{self.config.stream_max_capacity}"
            )
        extra = {}
        if "segment_bytes" in params:
            extra["segment_bytes"] = int(params["segment_bytes"])
        if "compact" in params:
            extra["compact"] = str(params["compact"])
        stream_config = StreamConfig(
            capacity=capacity,
            r_max=float(params["r_max"]),
            snapshot_every=int(params.get("snapshot_every", 10_000)),
            fsync_every=int(params.get("fsync_every", 256)),
            fsync=bool(params.get("fsync", True)),
            **extra,
        )
        await self.close()  # tear down any previous engine + task
        recovery = None
        directory = params.get("dir")
        if directory:
            from pathlib import Path

            if (Path(directory) / "meta.json").exists():
                self._durable = DurableStreamEngine.open(directory)
                recovery = self._durable.recovery.to_jsonable()
            else:
                self._durable = DurableStreamEngine.create(
                    directory, stream_config
                )
            self._engine = self._durable.engine
        else:
            self._engine = StreamEngine(stream_config)
        self.accepted = self.processed = self._engine.seq
        self._queue = asyncio.Queue()
        self._cond = asyncio.Condition()
        self._ingest_task = asyncio.create_task(
            self._ingest_loop(), name="serve-stream-ingest"
        )
        obs.count("stream.serve.init")
        return {
            "seq": self._engine.seq,
            "n_active": self._engine.n_active,
            "durable": self._durable is not None,
            "recovery": recovery,
        }

    async def _apply(self, params: dict) -> dict:
        raw = params.get("events")
        if not isinstance(raw, list) or not raw:
            raise ValueError("stream_apply needs a non-empty 'events' list")
        if len(raw) > self.config.stream_max_apply:
            raise ValueError(
                f"{len(raw)} events exceed the per-request cap "
                f"{self.config.stream_max_apply}"
            )
        ack = params.get("ack", "accepted")
        if ack not in ("accepted", "applied", "durable"):
            raise ValueError("ack must be 'accepted', 'applied' or 'durable'")
        if ack == "durable" and self._durable is None:
            raise ValueError("ack='durable' needs a durable stream (init with dir)")
        events = [StreamEvent.from_jsonable(e) for e in raw]
        self.accepted += len(events)
        self.stats["stream_accepted"] += len(events)
        obs.count("stream.serve.accepted", len(events))
        token = self.accepted
        future: asyncio.Future | None = None
        if ack != "accepted":
            future = asyncio.get_running_loop().create_future()
        self._queue.put_nowait((events, ack, future))
        if future is None:
            return {"accepted_to": token, "lag": self.lag}
        applied_seq, rejected = await future
        return {
            "accepted_to": token,
            "applied_seq": applied_seq,
            "rejected": rejected,
            "lag": self.lag,
        }

    async def _read(self, params: dict) -> dict | None:
        max_lag = params.get("max_lag", 0)
        if not isinstance(max_lag, int) or isinstance(max_lag, bool) or max_lag < 0:
            raise ValueError("max_lag must be a non-negative integer")
        if self.lag > max_lag:
            loop = asyncio.get_running_loop()
            deadline = loop.time() + self.config.stream_read_wait_s
            async with self._cond:
                while self.lag > max_lag:
                    remaining = deadline - loop.time()
                    if remaining <= 0:
                        return None
                    try:
                        await asyncio.wait_for(self._cond.wait(), remaining)
                    except asyncio.TimeoutError:
                        return None
        engine = self._engine
        self.stats["stream_reads"] += 1
        obs.count("stream.serve.reads")
        out: dict = {"seq": engine.seq, "lag": self.lag}
        node = params.get("node")
        region = params.get("region")
        if node is not None:
            out["node"] = int(node)
            out["value"] = engine.interference_of(int(node))
        elif region is not None:
            xmin, ymin, xmax, ymax = (float(c) for c in region)
            out["nodes"] = [
                [v, c] for v, c in engine.region_read(xmin, ymin, xmax, ymax)
            ]
        else:
            out["n_active"] = engine.n_active
            out["max_interference"] = engine.max_interference()
        return out

    def _subscribe(self, params: dict, writer, wlock) -> dict:
        region = params.get("region")
        if not isinstance(region, (list, tuple)) or len(region) != 4:
            raise ValueError(
                "stream_subscribe needs 'region': [xmin, ymin, xmax, ymax]"
            )
        if len(self._subs) >= self.config.stream_max_subscriptions:
            raise ValueError(
                f"subscription cap {self.config.stream_max_subscriptions} reached"
            )
        xmin, ymin, xmax, ymax = (float(c) for c in region)
        if not (xmin <= xmax and ymin <= ymax):
            raise ValueError("region must satisfy xmin <= xmax and ymin <= ymax")
        sub_id = next(self._sub_ids)
        self._subs[sub_id] = _Sub(sub_id, (xmin, ymin, xmax, ymax), writer, wlock)
        self.stats["stream_subscriptions"] += 1
        obs.count("stream.serve.subscriptions")
        # the starting snapshot: counts in-region as of the current seq,
        # so the subscriber can maintain exact state from deltas alone
        return {
            "sub": sub_id,
            "seq": self._engine.seq,
            "nodes": [
                [v, c]
                for v, c in self._engine.region_read(xmin, ymin, xmax, ymax)
            ],
        }

    def _unsubscribe(self, params: dict) -> dict:
        sub_id = params.get("sub")
        removed = self._subs.pop(sub_id, None) is not None
        return {"sub": sub_id, "removed": removed}

    # -- ingest ------------------------------------------------------------

    async def _ingest_loop(self) -> None:
        applier = self._durable if self._durable is not None else self._engine
        since_yield = 0
        while True:
            events, ack, future = await self._queue.get()
            rejected = 0
            for ev in events:
                collect = bool(self._subs)
                # capture the position a leave/move vacates, so region
                # subscribers hear about nodes that left their rectangle
                old_pos = None
                if (
                    collect
                    and ev.kind in ("leave", "move")
                    and 0 <= ev.node < self._engine.config.capacity
                    and self._engine.active[ev.node]
                ):
                    old_pos = (self._engine.xs[ev.node], self._engine.ys[ev.node])
                try:
                    applied = applier.apply(ev, collect=collect)
                except StreamStateError:
                    rejected += 1
                    self.stats["stream_rejected_events"] += 1
                    obs.count("stream.serve.rejected_events")
                    continue
                self.stats["stream_applied"] += 1
                if collect:
                    await self._push_deltas(applied, old_pos)
                since_yield += 1
                if since_yield >= _APPLY_YIELD_EVERY:
                    since_yield = 0
                    await asyncio.sleep(0)
            self.processed += len(events)
            obs.count("stream.serve.applied", len(events) - rejected)
            if ack == "durable":
                self._durable.flush()
            async with self._cond:
                self._cond.notify_all()
            if future is not None and not future.done():
                future.set_result((self._engine.seq, rejected))

    async def _push_deltas(self, applied, old_pos) -> None:
        engine = self._engine
        ev = applied.event
        xs, ys, act = engine.xs, engine.ys, engine.active
        for sub in list(self._subs.values()):
            xmin, ymin, xmax, ymax = sub.region
            changed = [
                [v, c]
                for v, c in applied.changed
                if act[v] and xmin <= xs[v] <= xmax and ymin <= ys[v] <= ymax
            ]
            left = (
                [ev.node]
                if old_pos is not None
                and xmin <= old_pos[0] <= xmax
                and ymin <= old_pos[1] <= ymax
                and (
                    ev.kind == "leave"
                    or not (xmin <= xs[ev.node] <= xmax and ymin <= ys[ev.node] <= ymax)
                )
                else []
            )
            if not changed and not left:
                continue
            frame = {
                "push": "stream_delta",
                "sub": sub.sub_id,
                "seq": applied.seq,
                "kind": ev.kind,
                "node": ev.node,
                "changed": changed,
            }
            if left:
                frame["left"] = left
            self.stats["stream_pushes"] += 1
            obs.count("stream.serve.pushes")
            await self._write(sub.writer, sub.wlock, frame)
