"""Wire protocol for :mod:`repro.serve`: newline-delimited JSON over TCP.

Framing
-------
One message per line, UTF-8 JSON, terminated by ``\\n``; no message may
contain a raw newline (``json.dumps`` guarantees this) or exceed
:data:`MAX_LINE_BYTES`. Requests and responses are plain objects:

Request::

    {"id": 7, "type": "interference", "params": {...}, "deadline_ms": 250}

- ``id`` — client-chosen correlation token (int or string); echoed back
  verbatim. Responses may arrive out of request order (batching and
  per-type scheduling reorder freely), so clients match on ``id``.
- ``type`` — one of :data:`REQUEST_TYPES`.
- ``params`` — type-specific payload (see :mod:`repro.serve.handlers`);
  optional, defaults to ``{}``.
- ``deadline_ms`` — optional wall-clock budget measured from admission.

Response (success / failure)::

    {"id": 7, "ok": true,  "result": {...}, "ms": 3.2, "v": 1}
    {"id": 7, "ok": false, "error": {"code": "overloaded", "message": "..."},
     "ms": 0.1, "v": 1}

``ms`` is the server-side latency from admission to response. Error
``code`` is one of the ``ERR_*`` constants below; anything else a client
sees is a protocol violation. An error object may additionally carry a
structured ``details`` member (e.g. ``wrong_shard`` reports the owning
shards and their endpoints so a client can redirect).

Versioning
----------
Envelopes may carry ``"v": 1`` (:data:`PROTOCOL_VERSION`). A request
*without* ``v`` is treated as version 1 — pre-versioning clients keep
working against any server — but a request carrying an *unknown* version
is rejected with ``bad_request`` instead of being half-understood.
Responses always carry ``v``.

This module is shared by server, client and load generator, and has no
dependencies beyond the stdlib.
"""

from __future__ import annotations

import json

#: Upper bound on one framed message (request or response), in bytes.
#: ``encode_message``/``decode_message`` accept a per-call override so
#: cluster-internal links (whole-shard interference vectors) can raise it.
MAX_LINE_BYTES = 1_000_000

#: Envelope version this module speaks. Requests without a ``v`` field
#: are treated as this version; unknown versions are rejected.
PROTOCOL_VERSION = 1

#: The request types the server understands. ``ping`` and the
#: ``stream_*`` kinds are answered inline on the event loop (the stream
#: lane is stateful, so it can never run on the worker pool); the rest
#: run on the worker pool.
REQUEST_TYPES = (
    "ping",
    "interference",
    "build_topology",
    "opt",
    "experiment",
    "stream_init",
    "stream_apply",
    "stream_read",
    "stream_subscribe",
    "stream_unsubscribe",
)

#: Request types eligible for micro-batching (coalesced into one worker
#: dispatch). Only small, uniform-cost requests benefit; everything else
#: is dispatched individually.
BATCHABLE_TYPES = ("interference",)

#: Request kinds safe to retry after a connection failure: re-executing
#: them cannot change server state. ``stream_apply`` is deliberately
#: absent (a retried apply would double-apply events whose first send
#: actually arrived), as are the subscription kinds (a retried subscribe
#: would leak a subscription on the old connection).
IDEMPOTENT_TYPES = (
    "ping",
    "interference",
    "build_topology",
    "opt",
    "experiment",
    "stream_read",
)

ERR_BAD_REQUEST = "bad_request"
ERR_OVERLOADED = "overloaded"
ERR_DEADLINE = "deadline_exceeded"
ERR_INTERNAL = "internal"
ERR_SHUTTING_DOWN = "shutting_down"
ERR_WRONG_SHARD = "wrong_shard"
ERR_SHARD_UNAVAILABLE = "shard_unavailable"

#: Every error code a response may carry. ``wrong_shard`` additionally
#: carries ``details`` naming the owning shards (and, when known, their
#: endpoints) so clients can redirect; ``shard_unavailable`` means a
#: cluster front-end could not reach a worker shard.
ERROR_CODES = (
    ERR_BAD_REQUEST,
    ERR_OVERLOADED,
    ERR_DEADLINE,
    ERR_INTERNAL,
    ERR_SHUTTING_DOWN,
    ERR_WRONG_SHARD,
    ERR_SHARD_UNAVAILABLE,
)


class ProtocolError(ValueError):
    """A malformed frame or request envelope."""


def encode_message(payload: dict, *, limit: int = MAX_LINE_BYTES) -> bytes:
    """Frame one message: compact JSON + newline (``limit`` bytes max)."""
    line = json.dumps(payload, separators=(",", ":"), allow_nan=False)
    data = line.encode("utf-8") + b"\n"
    if len(data) > limit:
        raise ProtocolError(
            f"message of {len(data)} bytes exceeds the {limit}-byte frame limit"
        )
    return data


def decode_message(line: bytes | str, *, limit: int = MAX_LINE_BYTES) -> dict:
    """Parse one framed line into a message object."""
    if isinstance(line, bytes):
        if len(line) > limit:
            raise ProtocolError("frame exceeds the frame-size limit")
        try:
            line = line.decode("utf-8")
        except UnicodeDecodeError as exc:
            raise ProtocolError(f"frame is not UTF-8: {exc}") from exc
    try:
        payload = json.loads(line)
    except json.JSONDecodeError as exc:
        raise ProtocolError(f"frame is not JSON: {exc}") from exc
    if not isinstance(payload, dict):
        raise ProtocolError("frame must be a JSON object")
    return payload


def parse_request(message: dict) -> tuple[object, str, dict, float | None]:
    """Validate a request envelope -> ``(id, type, params, deadline_ms)``.

    Raises :class:`ProtocolError` with a message safe to echo back.
    """
    req_id = message.get("id")
    if req_id is not None and not isinstance(req_id, (int, str)):
        raise ProtocolError("request 'id' must be an int or string")
    version = message.get("v", PROTOCOL_VERSION)
    if version != PROTOCOL_VERSION or isinstance(version, bool):
        raise ProtocolError(
            f"unsupported protocol version {version!r}; "
            f"this server speaks v{PROTOCOL_VERSION}"
        )
    kind = message.get("type")
    if kind not in REQUEST_TYPES:
        raise ProtocolError(
            f"unknown request type {kind!r}; known: {list(REQUEST_TYPES)}"
        )
    params = message.get("params", {})
    if not isinstance(params, dict):
        raise ProtocolError("request 'params' must be an object")
    deadline_ms = message.get("deadline_ms")
    if deadline_ms is not None:
        if not isinstance(deadline_ms, (int, float)) or isinstance(
            deadline_ms, bool
        ) or deadline_ms <= 0:
            raise ProtocolError("request 'deadline_ms' must be a positive number")
        deadline_ms = float(deadline_ms)
    return req_id, kind, params, deadline_ms


def ok_response(req_id, result: dict, *, ms: float) -> dict:
    return {
        "id": req_id,
        "ok": True,
        "result": result,
        "ms": round(ms, 3),
        "v": PROTOCOL_VERSION,
    }


def error_response(
    req_id, code: str, message: str, *, ms: float = 0.0,
    details: dict | None = None,
) -> dict:
    if code not in ERROR_CODES:
        raise ValueError(f"unknown error code {code!r}")
    error: dict = {"code": code, "message": message}
    if details is not None:
        error["details"] = details
    return {
        "id": req_id,
        "ok": False,
        "error": error,
        "ms": round(ms, 3),
        "v": PROTOCOL_VERSION,
    }
