"""Seeded load generation against a running interference server.

Two driving disciplines, both fully deterministic in the request sequence
given a seed (service times and therefore latencies are of course not):

- **closed loop** — ``concurrency`` virtual clients, each with its own
  connection, each issuing its next request the moment the previous one
  completes. Measures capacity: throughput at a fixed concurrency level.
- **open loop** — requests fire at seeded-exponential (Poisson) arrival
  times at ``rate_rps`` on one pipelined connection, *regardless of
  completions*. Measures behaviour under offered load — including
  overload, where the server's admission control must shed with explicit
  ``overloaded`` rejections while accepted-request latency stays bounded
  (the coordinated-omission-free discipline; a closed loop cannot
  overload a server).

The report separates protocol health (``protocol_errors`` — frames or
envelopes that violate ``docs/SERVING.md``; must be zero) from rejections
(expected under overload) and computes nearest-rank latency percentiles
over *successful* requests only. If ``slo_p99_ms`` is set, ``slo_met``
asserts p99 against it.
"""

from __future__ import annotations

import asyncio
import hashlib
import json
import math
import random
import time
from dataclasses import dataclass, field

from repro import obs
from repro.serve.client import ServeClient
from repro.serve.protocol import ERROR_CODES

#: Registry algorithms cheap enough for per-request construction.
_LOADGEN_ALGORITHMS = ("emst", "xtc", "nnf")

#: Request kinds whose results are a pure function of their (seeded)
#: params — the payload digest covers only these, so two runs of the same
#: stream against different deployments (say, one shard vs. a cluster)
#: must produce equal digests. ``experiment``/``opt`` replies may carry
#: timings or budget-dependent fields and are excluded.
DIGEST_KINDS = ("interference", "build_topology")


@dataclass(frozen=True, kw_only=True)
class LoadGenConfig:
    """Options for :func:`run_loadgen`.

    ``mix`` maps request types to integer weights; the seeded request
    stream samples from it. ``n_nodes`` bounds the instance size of
    generated ``interference``/``build_topology`` requests (each request
    draws n uniformly from ``[n_nodes // 2, n_nodes]``). ``opt_nodes``
    sizes ``opt`` instances (exact-solver territory, keep it small).
    """

    n_requests: int = 200
    mode: str = "closed"
    concurrency: int = 8
    rate_rps: float = 500.0
    seed: int = 0
    mix: tuple[tuple[str, int], ...] = (
        ("interference", 8),
        ("build_topology", 1),
        ("experiment", 1),
    )
    n_nodes: int = 24
    opt_nodes: int = 8
    deadline_ms: float | None = None
    slo_p99_ms: float | None = None

    def __post_init__(self) -> None:
        if self.n_requests < 1:
            raise ValueError("n_requests must be >= 1")
        if self.mode not in ("closed", "open"):
            raise ValueError("mode must be 'closed' or 'open'")
        if self.concurrency < 1:
            raise ValueError("concurrency must be >= 1")
        if self.rate_rps <= 0:
            raise ValueError("rate_rps must be positive")
        if not self.mix:
            raise ValueError("mix must name at least one request type")
        for kind, weight in self.mix:
            if kind not in ("interference", "build_topology", "opt", "experiment"):
                raise ValueError(f"mix names unknown request type {kind!r}")
            if weight <= 0:
                raise ValueError("mix weights must be positive integers")
        if self.n_nodes < 4:
            raise ValueError("n_nodes must be >= 4")
        if not 2 <= self.opt_nodes <= 16:
            raise ValueError("opt_nodes must lie in [2, 16]")
        if self.deadline_ms is not None and self.deadline_ms <= 0:
            raise ValueError("deadline_ms must be positive (or None)")
        if self.slo_p99_ms is not None and self.slo_p99_ms <= 0:
            raise ValueError("slo_p99_ms must be positive (or None)")


def _make_params(kind: str, rng: random.Random, config: LoadGenConfig) -> dict:
    if kind in ("interference", "build_topology"):
        n = rng.randint(max(4, config.n_nodes // 2), config.n_nodes)
        params: dict = {
            "generator": "random_udg_connected",
            "args": {"n": n, "side": 2.0, "seed": rng.randrange(2**31)},
        }
        if kind == "build_topology":
            params["algorithm"] = rng.choice(_LOADGEN_ALGORITHMS)
            params["include_edges"] = False
        return params
    if kind == "opt":
        return {
            "generator": "exponential_chain",
            "args": {"n": config.opt_nodes},
            "node_budget": 50_000,
            "seed": 0,
            "include_certificate": False,
        }
    return {  # experiment
        "experiment_id": "diag_echo",
        "kwargs": {"payload": rng.randrange(2**16)},
    }


def build_requests(config: LoadGenConfig) -> list[tuple[str, dict]]:
    """The deterministic request stream for ``config`` (same seed — same
    list, element for element)."""
    rng = random.Random(config.seed)
    kinds = [k for k, w in config.mix for _ in range(w)]
    return [
        (kind, _make_params(kind, rng, config))
        for kind in (rng.choice(kinds) for _ in range(config.n_requests))
    ]


def percentile(sorted_values: list[float], q: float) -> float:
    """Nearest-rank percentile of an ascending-sorted list (q in [0, 100])."""
    if not sorted_values:
        return math.nan
    if not 0 <= q <= 100:
        raise ValueError("q must lie in [0, 100]")
    rank = max(1, math.ceil(q / 100.0 * len(sorted_values)))
    return sorted_values[rank - 1]


@dataclass
class LoadGenReport:
    """Outcome of one load-generation run (JSON-exportable)."""

    mode: str
    seed: int
    n_requests: int
    n_ok: int = 0
    rejections: dict = field(default_factory=dict)  # error code -> count
    protocol_errors: int = 0
    by_kind: dict = field(default_factory=dict)  # kind -> issued count
    wall_s: float = 0.0
    throughput_rps: float = 0.0
    p50_ms: float = math.nan
    p95_ms: float = math.nan
    p99_ms: float = math.nan
    mean_ms: float = math.nan
    max_ms: float = math.nan
    slo_p99_ms: float | None = None
    #: Order-independent sha256 over the canonical-JSON results of all
    #: successful :data:`DIGEST_KINDS` requests, keyed by request index.
    #: Equal streams against equal deployments -> equal digests; ``None``
    #: when no such request succeeded.
    payload_digest: str | None = None

    @property
    def slo_met(self) -> bool:
        """p99 within the SLO and zero protocol errors (vacuously true
        when no SLO is configured — protocol errors still fail it)."""
        if self.protocol_errors:
            return False
        if self.slo_p99_ms is None:
            return True
        return not math.isnan(self.p99_ms) and self.p99_ms <= self.slo_p99_ms

    def to_jsonable(self) -> dict:
        def _f(x):
            return None if isinstance(x, float) and math.isnan(x) else x

        return {
            "mode": self.mode,
            "seed": self.seed,
            "n_requests": self.n_requests,
            "n_ok": self.n_ok,
            "rejections": dict(sorted(self.rejections.items())),
            "protocol_errors": self.protocol_errors,
            "by_kind": dict(sorted(self.by_kind.items())),
            "wall_s": round(self.wall_s, 6),
            "throughput_rps": round(self.throughput_rps, 3),
            "latency_ms": {
                "p50": _f(self.p50_ms),
                "p95": _f(self.p95_ms),
                "p99": _f(self.p99_ms),
                "mean": _f(self.mean_ms),
                "max": _f(self.max_ms),
            },
            "slo_p99_ms": self.slo_p99_ms,
            "slo_met": self.slo_met,
            "payload_digest": self.payload_digest,
        }

    def render(self) -> str:
        lines = [
            f"loadgen: {self.mode} loop, {self.n_requests} request(s), "
            f"seed {self.seed}",
            f"  ok {self.n_ok}, rejected "
            + (
                ", ".join(f"{k}={v}" for k, v in sorted(self.rejections.items()))
                or "none"
            )
            + f", protocol errors {self.protocol_errors}",
            f"  mix: "
            + ", ".join(f"{k}={v}" for k, v in sorted(self.by_kind.items())),
            f"  wall {self.wall_s:.3f}s, throughput {self.throughput_rps:.1f} req/s",
            f"  latency ms: p50 {self.p50_ms:.2f}  p95 {self.p95_ms:.2f}  "
            f"p99 {self.p99_ms:.2f}  mean {self.mean_ms:.2f}  max {self.max_ms:.2f}",
        ]
        if self.slo_p99_ms is not None:
            verdict = "MET" if self.slo_met else "MISSED"
            lines.append(
                f"  SLO: p99 <= {self.slo_p99_ms:g} ms -> {verdict}"
            )
        return "\n".join(lines)


async def run_loadgen(
    config: LoadGenConfig, *, host: str = "127.0.0.1", port: int
) -> LoadGenReport:
    """Drive a server with the seeded request stream; see module docstring."""
    requests = build_requests(config)
    report = LoadGenReport(
        mode=config.mode, seed=config.seed, n_requests=len(requests)
    )
    for kind, _ in requests:
        report.by_kind[kind] = report.by_kind.get(kind, 0) + 1
    latencies: list[float] = []
    digests: dict[int, str] = {}

    async def issue(
        client: ServeClient, index: int, kind: str, params: dict
    ) -> None:
        t0 = time.perf_counter()
        try:
            response = await client.request_raw(
                kind, params, deadline_ms=config.deadline_ms
            )
        except (ConnectionError, OSError, RuntimeError):
            report.protocol_errors += 1
            return
        ms = (time.perf_counter() - t0) * 1e3
        if response.get("ok"):
            report.n_ok += 1
            latencies.append(ms)
            if kind in DIGEST_KINDS:
                canonical = json.dumps(
                    response.get("result"),
                    sort_keys=True,
                    separators=(",", ":"),
                )
                digests[index] = hashlib.sha256(
                    canonical.encode("utf-8")
                ).hexdigest()
            return
        code = (response.get("error") or {}).get("code")
        if code in ERROR_CODES:
            report.rejections[code] = report.rejections.get(code, 0) + 1
        else:
            report.protocol_errors += 1

    with obs.span("serve.loadgen", mode=config.mode, requests=len(requests)):
        started = time.perf_counter()
        if config.mode == "closed":
            await _closed_loop(config, requests, host, port, issue)
        else:
            await _open_loop(config, requests, host, port, issue)
        report.wall_s = time.perf_counter() - started

    report.throughput_rps = (
        report.n_ok / report.wall_s if report.wall_s > 0 else 0.0
    )
    if latencies:
        latencies.sort()
        report.p50_ms = percentile(latencies, 50)
        report.p95_ms = percentile(latencies, 95)
        report.p99_ms = percentile(latencies, 99)
        report.mean_ms = sum(latencies) / len(latencies)
        report.max_ms = latencies[-1]
    report.slo_p99_ms = config.slo_p99_ms
    if digests:
        lines = "\n".join(
            f"{index}:{digest}" for index, digest in sorted(digests.items())
        )
        report.payload_digest = hashlib.sha256(
            lines.encode("utf-8")
        ).hexdigest()
    return report


async def _closed_loop(config, requests, host, port, issue) -> None:
    n_workers = min(config.concurrency, len(requests))
    cursor = iter(enumerate(requests))

    async def worker() -> None:
        client = await ServeClient.connect(host, port)
        try:
            for index, (kind, params) in cursor:
                await issue(client, index, kind, params)
        finally:
            await client.close()

    await asyncio.gather(*(worker() for _ in range(n_workers)))


async def _open_loop(config, requests, host, port, issue) -> None:
    rng = random.Random(config.seed ^ 0x5EEDED)
    offsets = []
    t = 0.0
    for _ in requests:
        t += rng.expovariate(config.rate_rps)
        offsets.append(t)
    client = await ServeClient.connect(host, port)
    loop = asyncio.get_running_loop()
    started = loop.time()

    async def fire(
        delay: float, index: int, kind: str, params: dict
    ) -> None:
        remaining = started + delay - loop.time()
        if remaining > 0:
            await asyncio.sleep(remaining)
        await issue(client, index, kind, params)

    try:
        await asyncio.gather(
            *(
                fire(offset, index, kind, params)
                for offset, (index, (kind, params)) in zip(
                    offsets, enumerate(requests)
                )
            )
        )
    finally:
        await client.close()
