"""Worker-side request execution for :mod:`repro.serve`.

Every handler is a plain module-level function taking a strictly-JSON-safe
``params`` dict and returning a strictly-JSON-safe result dict, so the
single executor entry point (:func:`run_batch`) is picklable by reference
and spawn-safe — the same dispatch-by-name discipline as
``repro.experiments.registry.run_payload``, which the ``experiment``
handler reuses directly.

Instances are described either inline (``params["positions"]`` as an
``(n, 2)`` or ``(n,)`` list) or by a *seeded generator spec*::

    {"generator": "random_udg_connected", "args": {"n": 24, "seed": 3}}

Generator names resolve against the :data:`GENERATORS` whitelist — the
server never calls arbitrary attributes from a request.

Sharded execution
-----------------
An ``interference`` request may carry two cluster-oriented params:

- ``region`` (``[x0, y0, x1, y1]``): restrict the reported counts to
  nodes inside the closed rectangle (the full instance still determines
  the counts). The result gains ``ids`` (global node indices, sorted).
- ``shard`` (``{"index": i, "grid": TileGrid.to_jsonable()}``): compute
  the *partial* for one tile — counts of the nodes tile ``i`` owns,
  derived from the owned-plus-ghost subset only. Exact by the ghost
  invariant (:func:`repro.cluster.tiles.required_ghost`, validated
  here); the front-end merges partials by concatenation
  (:meth:`repro.cluster.ClusterRouter.merge`).
"""

from __future__ import annotations

import numpy as np

from repro.cluster.tiles import TileGrid, required_ghost
from repro.geometry import generators as _generators
from repro.interference.receiver import (
    average_interference,
    graph_interference,
    node_interference,
)
from repro.interference.sender import sender_interference
from repro.model.udg import unit_disk_graph

#: Maximum instance size a single serving request may describe. Keeps one
#: request from monopolizing a worker; larger studies belong in sweeps.
MAX_REQUEST_NODES = 4096

#: Larger cap for shard partials: a cluster exists precisely to split
#: instances the single-request cap would refuse, and its front-end (not
#: an arbitrary client) sizes the per-shard work.
MAX_SHARD_REQUEST_NODES = 1 << 20

#: name -> positions generator (all return an ``(n, d)`` float array).
GENERATORS = {
    "exponential_chain": _generators.exponential_chain,
    "uniform_chain": _generators.uniform_chain,
    "random_highway": _generators.random_highway,
    "random_uniform_square": _generators.random_uniform_square,
    "random_udg_connected": _generators.random_udg_connected,
    "cluster_with_remote": _generators.cluster_with_remote,
    "random_blobs": _generators.random_blobs,
    "grid_points": _generators.grid_points,
}

#: interference measure name -> (topology -> JSON-safe value)
MEASURES = {
    "graph": lambda topo, **kw: int(graph_interference(topo, **kw)),
    "average": lambda topo, **kw: float(average_interference(topo, **kw)),
    "node": lambda topo, **kw: [int(v) for v in node_interference(topo, **kw)],
    "sender": lambda topo, **kw: float(sender_interference(topo)),
}


def resolve_positions(params: dict, *, max_nodes: int | None = None) -> np.ndarray:
    """Materialize the instance a request describes (see module doc)."""
    has_inline = "positions" in params
    has_spec = "generator" in params
    if has_inline == has_spec:
        raise ValueError(
            "exactly one of 'positions' or 'generator' is required"
        )
    if has_inline:
        pos = np.asarray(params["positions"], dtype=np.float64)
        if pos.ndim not in (1, 2) or pos.size == 0:
            raise ValueError("'positions' must be a non-empty 1-D or (n, d) list")
    else:
        name = params["generator"]
        fn = GENERATORS.get(name)
        if fn is None:
            raise ValueError(
                f"unknown generator {name!r}; known: {sorted(GENERATORS)}"
            )
        args = params.get("args", {})
        if not isinstance(args, dict):
            raise ValueError("'args' must be an object of generator kwargs")
        pos = np.asarray(fn(**args), dtype=np.float64)
    n = pos.shape[0]
    if max_nodes is None:
        max_nodes = MAX_REQUEST_NODES
    if n > max_nodes:
        raise ValueError(
            f"instance of {n} nodes exceeds the per-request cap "
            f"({max_nodes}); use the sweep runner for large studies"
        )
    return pos


def _validate_unit(params: dict) -> float:
    unit = params.get("unit", 1.0)
    # bool is an int subclass: isinstance(True, int) passes, but True is
    # not a meaningful UDG range — reject it explicitly
    if (
        isinstance(unit, bool)
        or not isinstance(unit, (int, float))
        or unit <= 0
    ):
        raise ValueError("'unit' must be a positive number")
    return float(unit)


def _build(params: dict):
    """Shared UDG + optional registry-algorithm construction."""
    from repro.topologies import build

    pos = resolve_positions(params)
    unit = _validate_unit(params)
    topo = unit_disk_graph(pos, unit=unit)
    algorithm = params.get("algorithm")
    if algorithm is not None:
        if not isinstance(algorithm, str):
            raise ValueError("'algorithm' must be a registry name")
        topo = build(algorithm, topo)  # KeyError -> bad_request upstream
    return topo, algorithm


def handle_ping(params: dict) -> dict:
    return {"pong": True}


def _prepare_interference(params: dict):
    """Build + validate one interference request (shared by the scalar
    handler and the fused batch lane, so both reject identically)."""
    topo, algorithm = _build(params)
    measure = params.get("measure", "graph")
    if measure not in MEASURES:
        raise ValueError(
            f"unknown measure {measure!r}; known: {sorted(MEASURES)}"
        )
    method = None
    if measure != "sender":
        method = params.get("method", "auto")
        if method not in ("auto", "brute", "grid", "batch"):
            raise ValueError("'method' must be auto, brute, grid or batch")
    return topo, algorithm, measure, method


def _interference_result(topo, algorithm, measure, value) -> dict:
    return {
        "n": int(topo.n),
        "n_edges": int(len(topo.edges)),
        "algorithm": algorithm,
        "measure": measure,
        "value": value,
    }


def _measure_from_vector(measure: str, vec) -> object:
    """JSON-safe measure value from a per-node interference vector —
    mirrors :data:`MEASURES` exactly (incl. empty-network conventions)."""
    if measure == "graph":
        return int(vec.max()) if vec.size else 0
    if measure == "average":
        return float(vec.mean()) if vec.size else 0.0
    return [int(v) for v in vec]


def _validate_region(region) -> tuple[float, float, float, float]:
    if (
        not isinstance(region, (list, tuple))
        or len(region) != 4
        or any(
            isinstance(b, bool) or not isinstance(b, (int, float))
            for b in region
        )
    ):
        raise ValueError("'region' must be [x0, y0, x1, y1]")
    x0, y0, x1, y1 = (float(b) for b in region)
    if not (x0 <= x1 and y0 <= y1):
        raise ValueError("'region' must satisfy x0 <= x1 and y0 <= y1")
    return x0, y0, x1, y1


def _region_mask(positions: np.ndarray, region) -> np.ndarray:
    """Closed-rectangle membership per node."""
    x0, y0, x1, y1 = _validate_region(region)
    return (
        (positions[:, 0] >= x0)
        & (positions[:, 0] <= x1)
        & (positions[:, 1] >= y0)
        & (positions[:, 1] <= y1)
    )


def handle_interference(params: dict) -> dict:
    """Interference of a (possibly algorithm-reduced) topology.

    params: ``positions``/``generator``(+``args``), ``unit``,
    ``algorithm`` (registry name, optional), ``measure`` (one of
    :data:`MEASURES`, default ``"graph"``), ``method`` (kernel selector,
    default ``"auto"``), plus the cluster params ``region`` / ``shard``
    (module docstring).
    """
    if "shard" in params:
        return _shard_interference(params)
    topo, algorithm, measure, method = _prepare_interference(params)
    kw = {} if method is None else {"method": method}
    region = params.get("region")
    if region is not None:
        if measure == "sender":
            raise ValueError(
                "'region' does not apply to the sender measure (a global "
                "scalar, not a per-node quantity)"
            )
        mask = _region_mask(topo.positions, region)
        vec = node_interference(topo, **kw)
        result = _interference_result(
            topo, algorithm, measure, _measure_from_vector(measure, vec[mask])
        )
        # a region query reports on region nodes only; the global edge
        # count is not its business (and a cluster answers it from the
        # region's owner shards alone, which cannot see all edges)
        result.pop("n_edges", None)
        result["ids"] = [int(i) for i in np.flatnonzero(mask)]
        return result
    return _interference_result(
        topo, algorithm, measure, MEASURES[measure](topo, **kw)
    )


def _shard_interference(params: dict) -> dict:
    """One shard's partial: counts of the nodes its tile owns.

    The worker materializes the *full* instance (deterministically — the
    router only fans out specs every worker resolves identically),
    subsets to owned + ghost nodes, and computes on the sub-UDG alone.
    Exactness of the owned counts follows from the ghost invariant,
    which is validated, not assumed. ``n_edges_owned`` counts sub-UDG
    edges whose smaller global endpoint is owned, so edge totals sum
    exactly across shards.
    """
    from repro.utils import check_positions

    spec = params["shard"]
    if not isinstance(spec, dict):
        raise ValueError("'shard' must be an object with 'index' and 'grid'")
    grid = TileGrid.from_jsonable(spec.get("grid"))
    index = spec.get("index")
    if (
        isinstance(index, bool)
        or not isinstance(index, int)
        or not 0 <= index < grid.k
    ):
        raise ValueError(f"shard 'index' must be an int in [0, {grid.k})")
    if params.get("algorithm") is not None:
        raise ValueError(
            "shard partials cannot apply an 'algorithm' reduction: registry "
            "topologies are globally defined, not computable tile-locally"
        )
    measure = params.get("measure", "graph")
    if measure == "sender" or measure not in MEASURES:
        raise ValueError(
            "shard partials support measures graph, average and node; "
            f"got {measure!r}"
        )
    method = params.get("method", "auto")
    if method not in ("auto", "brute", "grid", "batch"):
        raise ValueError("'method' must be auto, brute, grid or batch")
    unit = _validate_unit(params)
    need = required_ghost(unit)
    if grid.ghost < need:
        raise ValueError(
            f"ghost margin {grid.ghost:g} is below the exactness bound "
            f"{need:g} for unit {unit:g}; owned counts would be truncated"
        )
    pos = check_positions(
        resolve_positions(params, max_nodes=MAX_SHARD_REQUEST_NODES)
    )
    owner = grid.tile_of(pos)
    subset = np.flatnonzero(grid.ghost_mask(pos, index))
    result = {
        "n": int(pos.shape[0]),
        "shard": index,
        "measure": measure,
        "ids": [],
        "counts": [],
        "n_edges_owned": 0,
    }
    if subset.size == 0:
        return result
    subtopo = unit_disk_graph(pos[subset], unit=unit)
    vec = node_interference(subtopo, method=method)
    local_owned = owner[subset] == index
    ids = subset[local_owned]
    counts = vec[local_owned]
    region = params.get("region")
    if region is not None:
        keep = _region_mask(pos[ids], region)
        ids, counts = ids[keep], counts[keep]
    edges = subtopo.edges
    if edges.shape[0]:
        gmin = np.minimum(subset[edges[:, 0]], subset[edges[:, 1]])
        result["n_edges_owned"] = int(np.count_nonzero(owner[gmin] == index))
    result["ids"] = [int(i) for i in ids]
    result["counts"] = [int(c) for c in counts]
    return result


def handle_build_topology(params: dict) -> dict:
    """Build a topology and return its edge set plus summary measures."""
    topo, algorithm = _build(params)
    include_edges = params.get("include_edges", True)
    result = {
        "n": int(topo.n),
        "n_edges": int(len(topo.edges)),
        "algorithm": algorithm,
        "interference": int(graph_interference(topo)),
        "radii": [float(r) for r in topo.radii],
    }
    if include_edges:
        result["edges"] = [[int(u), int(v)] for u, v in topo.edges]
    return result


def handle_opt(params: dict) -> dict:
    """Budgeted certified solve (:func:`repro.opt.solve_opt`).

    params: instance spec (small ``n`` only), ``unit``,
    ``time_budget_s``/``node_budget`` (both clamped server-side; a request
    deadline becomes ``time_budget_s``, so running out of budget yields a
    certified ``[lb, ub]`` bracket, not an error), ``seed``,
    ``include_certificate`` (default True).
    """
    from repro.opt import OptConfig, solve_opt

    pos = resolve_positions(params)
    unit = float(params.get("unit", 1.0))
    config = OptConfig(
        time_budget_s=params.get("time_budget_s"),
        node_budget=params.get("node_budget"),
        seed=params.get("seed", 0),
    )
    outcome = solve_opt(pos, unit=unit, config=config)
    result = {
        "n": int(pos.shape[0]),
        "value": int(outcome.value),
        "lower_bound": int(outcome.lower_bound),
        "status": outcome.status,
        "exact": bool(outcome.exact),
        "stats": {
            k: (float(v) if isinstance(v, float) else int(v))
            for k, v in outcome.stats.items()
        },
    }
    if params.get("include_certificate", True):
        result["certificate"] = outcome.certificate.to_jsonable()
    return result


def handle_experiment(params: dict) -> dict:
    """Run a registered experiment by id (``repro.experiments``)."""
    from repro.experiments.registry import run_payload

    experiment_id = params.get("experiment_id")
    if not isinstance(experiment_id, str):
        raise ValueError("'experiment_id' must be a registry id string")
    kwargs = params.get("kwargs", {})
    if not isinstance(kwargs, dict):
        raise ValueError("'kwargs' must be an object")
    return run_payload(experiment_id, kwargs)


HANDLERS = {
    "ping": handle_ping,
    "interference": handle_interference,
    "build_topology": handle_build_topology,
    "opt": handle_opt,
    "experiment": handle_experiment,
}


def run_request(kind: str, params: dict) -> dict:
    """Execute one request; raises on invalid input (mapped upstream)."""
    handler = HANDLERS.get(kind)
    if handler is None:
        raise ValueError(f"unknown request type {kind!r}")
    return handler(params)


def run_batch(kind: str, params_list: list[dict]) -> list[dict]:
    """Executor entry point: run a batch of same-type requests.

    Items fail independently — a bad request in a batch yields an error
    *item*, never a failed batch. Each item is ``{"ok": True, "result":
    ...}`` or ``{"ok": False, "error": "<repr>"}``.

    A coalesced ``interference`` micro-batch is *fused*: every item whose
    method resolves to the batch tier (``auto``/``batch``) is computed by
    one :func:`repro.interference.batch.node_interference_many` array pass
    instead of a Python loop of scalar kernel calls — same results
    bit-for-bit (the kernels' equivalence contract), same per-item error
    independence.
    """
    import repro.experiments  # noqa: F401  (fresh interpreters: fill REGISTRY)

    if kind == "interference" and len(params_list) > 1:
        return _run_interference_batch(params_list)
    out = []
    for params in params_list:
        try:
            out.append({"ok": True, "result": run_request(kind, params)})
        except Exception as exc:
            out.append({"ok": False, "error": f"{type(exc).__name__}: {exc}"})
    return out


def _run_interference_batch(params_list: list[dict]) -> list[dict]:
    """Fused interference lane (see :func:`run_batch`)."""
    from repro import obs
    from repro.interference.batch import node_interference_many

    out: list[dict | None] = [None] * len(params_list)
    prepared = []
    for i, params in enumerate(params_list):
        if "shard" in params or "region" in params:
            # cluster-shaped items: a different result shape (partials /
            # id-filtered vectors), computed whole rather than fused
            try:
                out[i] = {"ok": True, "result": handle_interference(params)}
            except Exception as exc:
                out[i] = {"ok": False, "error": f"{type(exc).__name__}: {exc}"}
            continue
        try:
            prepared.append((i, *_prepare_interference(params)))
        except Exception as exc:
            out[i] = {"ok": False, "error": f"{type(exc).__name__}: {exc}"}
    fuse = [p for p in prepared if p[4] in ("auto", "batch")]
    vectors: dict[int, object] = {}
    if len(fuse) > 1:
        try:
            many = node_interference_many([p[1] for p in fuse])
            vectors = {p[0]: vec for p, vec in zip(fuse, many)}
            obs.count("serve.interference.fused", len(fuse))
        except Exception:
            # fall back to per-item scalar kernels; results are identical
            obs.count("serve.interference.fuse_fallback")
            vectors = {}
    for i, topo, algorithm, measure, method in prepared:
        if out[i] is not None:
            continue
        try:
            vec = vectors.get(i)
            if vec is not None:
                value = _measure_from_vector(measure, vec)
            else:
                kw = {} if method is None else {"method": method}
                value = MEASURES[measure](topo, **kw)
            out[i] = {
                "ok": True,
                "result": _interference_result(topo, algorithm, measure, value),
            }
        except Exception as exc:
            out[i] = {"ok": False, "error": f"{type(exc).__name__}: {exc}"}
    return out
