"""Worker-side request execution for :mod:`repro.serve`.

Every handler is a plain module-level function taking a strictly-JSON-safe
``params`` dict and returning a strictly-JSON-safe result dict, so the
single executor entry point (:func:`run_batch`) is picklable by reference
and spawn-safe — the same dispatch-by-name discipline as
``repro.experiments.registry.run_payload``, which the ``experiment``
handler reuses directly.

Instances are described either inline (``params["positions"]`` as an
``(n, 2)`` or ``(n,)`` list) or by a *seeded generator spec*::

    {"generator": "random_udg_connected", "args": {"n": 24, "seed": 3}}

Generator names resolve against the :data:`GENERATORS` whitelist — the
server never calls arbitrary attributes from a request.
"""

from __future__ import annotations

import numpy as np

from repro.geometry import generators as _generators
from repro.interference.receiver import (
    average_interference,
    graph_interference,
    node_interference,
)
from repro.interference.sender import sender_interference
from repro.model.udg import unit_disk_graph

#: Maximum instance size a single serving request may describe. Keeps one
#: request from monopolizing a worker; larger studies belong in sweeps.
MAX_REQUEST_NODES = 4096

#: name -> positions generator (all return an ``(n, d)`` float array).
GENERATORS = {
    "exponential_chain": _generators.exponential_chain,
    "uniform_chain": _generators.uniform_chain,
    "random_highway": _generators.random_highway,
    "random_uniform_square": _generators.random_uniform_square,
    "random_udg_connected": _generators.random_udg_connected,
    "cluster_with_remote": _generators.cluster_with_remote,
    "grid_points": _generators.grid_points,
}

#: interference measure name -> (topology -> JSON-safe value)
MEASURES = {
    "graph": lambda topo, **kw: int(graph_interference(topo, **kw)),
    "average": lambda topo, **kw: float(average_interference(topo, **kw)),
    "node": lambda topo, **kw: [int(v) for v in node_interference(topo, **kw)],
    "sender": lambda topo, **kw: float(sender_interference(topo)),
}


def resolve_positions(params: dict) -> np.ndarray:
    """Materialize the instance a request describes (see module doc)."""
    has_inline = "positions" in params
    has_spec = "generator" in params
    if has_inline == has_spec:
        raise ValueError(
            "exactly one of 'positions' or 'generator' is required"
        )
    if has_inline:
        pos = np.asarray(params["positions"], dtype=np.float64)
        if pos.ndim not in (1, 2) or pos.size == 0:
            raise ValueError("'positions' must be a non-empty 1-D or (n, d) list")
    else:
        name = params["generator"]
        fn = GENERATORS.get(name)
        if fn is None:
            raise ValueError(
                f"unknown generator {name!r}; known: {sorted(GENERATORS)}"
            )
        args = params.get("args", {})
        if not isinstance(args, dict):
            raise ValueError("'args' must be an object of generator kwargs")
        pos = np.asarray(fn(**args), dtype=np.float64)
    n = pos.shape[0]
    if n > MAX_REQUEST_NODES:
        raise ValueError(
            f"instance of {n} nodes exceeds the per-request cap "
            f"({MAX_REQUEST_NODES}); use the sweep runner for large studies"
        )
    return pos


def _build(params: dict):
    """Shared UDG + optional registry-algorithm construction."""
    from repro.topologies import build

    pos = resolve_positions(params)
    unit = params.get("unit", 1.0)
    # bool is an int subclass: isinstance(True, int) passes, but True is
    # not a meaningful UDG range — reject it explicitly
    if (
        isinstance(unit, bool)
        or not isinstance(unit, (int, float))
        or unit <= 0
    ):
        raise ValueError("'unit' must be a positive number")
    topo = unit_disk_graph(pos, unit=float(unit))
    algorithm = params.get("algorithm")
    if algorithm is not None:
        if not isinstance(algorithm, str):
            raise ValueError("'algorithm' must be a registry name")
        topo = build(algorithm, topo)  # KeyError -> bad_request upstream
    return topo, algorithm


def handle_ping(params: dict) -> dict:
    return {"pong": True}


def _prepare_interference(params: dict):
    """Build + validate one interference request (shared by the scalar
    handler and the fused batch lane, so both reject identically)."""
    topo, algorithm = _build(params)
    measure = params.get("measure", "graph")
    if measure not in MEASURES:
        raise ValueError(
            f"unknown measure {measure!r}; known: {sorted(MEASURES)}"
        )
    method = None
    if measure != "sender":
        method = params.get("method", "auto")
        if method not in ("auto", "brute", "grid", "batch"):
            raise ValueError("'method' must be auto, brute, grid or batch")
    return topo, algorithm, measure, method


def _interference_result(topo, algorithm, measure, value) -> dict:
    return {
        "n": int(topo.n),
        "n_edges": int(len(topo.edges)),
        "algorithm": algorithm,
        "measure": measure,
        "value": value,
    }


def _measure_from_vector(measure: str, vec) -> object:
    """JSON-safe measure value from a per-node interference vector —
    mirrors :data:`MEASURES` exactly (incl. empty-network conventions)."""
    if measure == "graph":
        return int(vec.max()) if vec.size else 0
    if measure == "average":
        return float(vec.mean()) if vec.size else 0.0
    return [int(v) for v in vec]


def handle_interference(params: dict) -> dict:
    """Interference of a (possibly algorithm-reduced) topology.

    params: ``positions``/``generator``(+``args``), ``unit``,
    ``algorithm`` (registry name, optional), ``measure`` (one of
    :data:`MEASURES`, default ``"graph"``), ``method`` (kernel selector,
    default ``"auto"``).
    """
    topo, algorithm, measure, method = _prepare_interference(params)
    kw = {} if method is None else {"method": method}
    return _interference_result(
        topo, algorithm, measure, MEASURES[measure](topo, **kw)
    )


def handle_build_topology(params: dict) -> dict:
    """Build a topology and return its edge set plus summary measures."""
    topo, algorithm = _build(params)
    include_edges = params.get("include_edges", True)
    result = {
        "n": int(topo.n),
        "n_edges": int(len(topo.edges)),
        "algorithm": algorithm,
        "interference": int(graph_interference(topo)),
        "radii": [float(r) for r in topo.radii],
    }
    if include_edges:
        result["edges"] = [[int(u), int(v)] for u, v in topo.edges]
    return result


def handle_opt(params: dict) -> dict:
    """Budgeted certified solve (:func:`repro.opt.solve_opt`).

    params: instance spec (small ``n`` only), ``unit``,
    ``time_budget_s``/``node_budget`` (both clamped server-side; a request
    deadline becomes ``time_budget_s``, so running out of budget yields a
    certified ``[lb, ub]`` bracket, not an error), ``seed``,
    ``include_certificate`` (default True).
    """
    from repro.opt import OptConfig, solve_opt

    pos = resolve_positions(params)
    unit = float(params.get("unit", 1.0))
    config = OptConfig(
        time_budget_s=params.get("time_budget_s"),
        node_budget=params.get("node_budget"),
        seed=params.get("seed", 0),
    )
    outcome = solve_opt(pos, unit=unit, config=config)
    result = {
        "n": int(pos.shape[0]),
        "value": int(outcome.value),
        "lower_bound": int(outcome.lower_bound),
        "status": outcome.status,
        "exact": bool(outcome.exact),
        "stats": {
            k: (float(v) if isinstance(v, float) else int(v))
            for k, v in outcome.stats.items()
        },
    }
    if params.get("include_certificate", True):
        result["certificate"] = outcome.certificate.to_jsonable()
    return result


def handle_experiment(params: dict) -> dict:
    """Run a registered experiment by id (``repro.experiments``)."""
    from repro.experiments.registry import run_payload

    experiment_id = params.get("experiment_id")
    if not isinstance(experiment_id, str):
        raise ValueError("'experiment_id' must be a registry id string")
    kwargs = params.get("kwargs", {})
    if not isinstance(kwargs, dict):
        raise ValueError("'kwargs' must be an object")
    return run_payload(experiment_id, kwargs)


HANDLERS = {
    "ping": handle_ping,
    "interference": handle_interference,
    "build_topology": handle_build_topology,
    "opt": handle_opt,
    "experiment": handle_experiment,
}


def run_request(kind: str, params: dict) -> dict:
    """Execute one request; raises on invalid input (mapped upstream)."""
    handler = HANDLERS.get(kind)
    if handler is None:
        raise ValueError(f"unknown request type {kind!r}")
    return handler(params)


def run_batch(kind: str, params_list: list[dict]) -> list[dict]:
    """Executor entry point: run a batch of same-type requests.

    Items fail independently — a bad request in a batch yields an error
    *item*, never a failed batch. Each item is ``{"ok": True, "result":
    ...}`` or ``{"ok": False, "error": "<repr>"}``.

    A coalesced ``interference`` micro-batch is *fused*: every item whose
    method resolves to the batch tier (``auto``/``batch``) is computed by
    one :func:`repro.interference.batch.node_interference_many` array pass
    instead of a Python loop of scalar kernel calls — same results
    bit-for-bit (the kernels' equivalence contract), same per-item error
    independence.
    """
    import repro.experiments  # noqa: F401  (fresh interpreters: fill REGISTRY)

    if kind == "interference" and len(params_list) > 1:
        return _run_interference_batch(params_list)
    out = []
    for params in params_list:
        try:
            out.append({"ok": True, "result": run_request(kind, params)})
        except Exception as exc:
            out.append({"ok": False, "error": f"{type(exc).__name__}: {exc}"})
    return out


def _run_interference_batch(params_list: list[dict]) -> list[dict]:
    """Fused interference lane (see :func:`run_batch`)."""
    from repro import obs
    from repro.interference.batch import node_interference_many

    out: list[dict | None] = [None] * len(params_list)
    prepared = []
    for i, params in enumerate(params_list):
        try:
            prepared.append((i, *_prepare_interference(params)))
        except Exception as exc:
            out[i] = {"ok": False, "error": f"{type(exc).__name__}: {exc}"}
    fuse = [p for p in prepared if p[4] in ("auto", "batch")]
    vectors: dict[int, object] = {}
    if len(fuse) > 1:
        try:
            many = node_interference_many([p[1] for p in fuse])
            vectors = {p[0]: vec for p, vec in zip(fuse, many)}
            obs.count("serve.interference.fused", len(fuse))
        except Exception:
            # fall back to per-item scalar kernels; results are identical
            obs.count("serve.interference.fuse_fallback")
            vectors = {}
    for i, topo, algorithm, measure, method in prepared:
        if out[i] is not None:
            continue
        try:
            vec = vectors.get(i)
            if vec is not None:
                value = _measure_from_vector(measure, vec)
            else:
                kw = {} if method is None else {"method": method}
                value = MEASURES[measure](topo, **kw)
            out[i] = {
                "ok": True,
                "result": _interference_result(topo, algorithm, measure, value),
            }
        except Exception as exc:
            out[i] = {"ok": False, "error": f"{type(exc).__name__}: {exc}"}
    return out
