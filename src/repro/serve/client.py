"""Async client for the interference service (newline-delimited JSON).

One :class:`ServeClient` wraps one TCP connection and supports arbitrary
pipelining: many requests may be outstanding at once, responses are
matched to callers by the ``id`` token regardless of arrival order (the
server reorders freely across batches). A background reader task owns the
socket's read side; if the connection drops, every outstanding request
fails with ``ConnectionResetError``.

Usage::

    async with await ServeClient.connect(port=server.port) as client:
        result = await client.interference(
            generator="random_udg_connected", args={"n": 24, "seed": 7}
        )
        print(result["value"])

Error responses raise :class:`ServeError` (``.code`` is one of the
protocol's ``ERR_*`` constants); use :meth:`ServeClient.request_raw` to
get the raw envelope instead — the load generator does, so it can count
rejections without exception overhead.
"""

from __future__ import annotations

import asyncio
import itertools

from repro.serve.protocol import (
    ERR_INTERNAL,
    MAX_LINE_BYTES,
    ProtocolError,
    decode_message,
    encode_message,
)


class ServeError(RuntimeError):
    """An error response from the server (code + human-readable message)."""

    def __init__(self, code: str, message: str, *, request_id=None):
        super().__init__(f"{code}: {message}")
        self.code = code
        self.message = message
        self.request_id = request_id


class ServeClient:
    """One pipelined client connection; see the module docstring."""

    def __init__(self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter):
        self._reader = reader
        self._writer = writer
        self._pending: dict[object, asyncio.Future] = {}
        self._ids = itertools.count(1)
        self._closed = False
        self._reader_task = asyncio.create_task(
            self._read_loop(), name="serve-client-reader"
        )

    @classmethod
    async def connect(
        cls, host: str = "127.0.0.1", port: int = 0, *,
        limit: int = MAX_LINE_BYTES,
    ) -> "ServeClient":
        reader, writer = await asyncio.open_connection(host, port, limit=limit)
        return cls(reader, writer)

    async def _read_loop(self) -> None:
        error: BaseException = ConnectionResetError("server closed the connection")
        try:
            while True:
                line = await self._reader.readline()
                if not line:
                    break
                message = decode_message(line)
                future = self._pending.pop(message.get("id"), None)
                if future is not None and not future.done():
                    future.set_result(message)
        except (ConnectionError, OSError, ProtocolError, ValueError) as exc:
            error = exc
        finally:
            for future in self._pending.values():
                if not future.done():
                    future.set_exception(
                        ConnectionResetError(f"connection lost: {error}")
                    )
            self._pending.clear()

    async def request_raw(
        self, kind: str, params: dict | None = None, *,
        deadline_ms: float | None = None,
    ) -> dict:
        """Send one request, await its raw response envelope (no raise)."""
        if self._closed:
            raise RuntimeError("client is closed")
        req_id = next(self._ids)
        payload: dict = {"id": req_id, "type": kind}
        if params:
            payload["params"] = params
        if deadline_ms is not None:
            payload["deadline_ms"] = deadline_ms
        future = asyncio.get_running_loop().create_future()
        self._pending[req_id] = future
        self._writer.write(encode_message(payload))
        # Backpressure only when the transport buffer actually backs up —
        # an unconditional drain() costs a scheduling round trip per
        # request, which dominates small pipelined requests.
        if self._writer.transport.get_write_buffer_size() > 64 * 1024:
            await self._writer.drain()
        return await future

    async def request(
        self, kind: str, params: dict | None = None, *,
        deadline_ms: float | None = None,
    ) -> dict:
        """Send one request; return its ``result`` or raise :class:`ServeError`."""
        response = await self.request_raw(kind, params, deadline_ms=deadline_ms)
        if response.get("ok"):
            return response["result"]
        err = response.get("error") or {}
        raise ServeError(
            err.get("code", ERR_INTERNAL),
            err.get("message", "unknown error"),
            request_id=response.get("id"),
        )

    # -- typed conveniences --------------------------------------------------

    async def ping(self) -> dict:
        return await self.request("ping")

    async def interference(self, *, deadline_ms: float | None = None, **params) -> dict:
        return await self.request("interference", params, deadline_ms=deadline_ms)

    async def build_topology(self, *, deadline_ms: float | None = None, **params) -> dict:
        return await self.request("build_topology", params, deadline_ms=deadline_ms)

    async def opt(self, *, deadline_ms: float | None = None, **params) -> dict:
        return await self.request("opt", params, deadline_ms=deadline_ms)

    async def experiment(
        self, experiment_id: str, *, deadline_ms: float | None = None, **kwargs
    ) -> dict:
        return await self.request(
            "experiment",
            {"experiment_id": experiment_id, "kwargs": kwargs},
            deadline_ms=deadline_ms,
        )

    async def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        self._reader_task.cancel()
        try:
            await self._reader_task
        except asyncio.CancelledError:
            pass
        try:
            self._writer.close()
            await self._writer.wait_closed()
        except (ConnectionError, OSError):
            pass

    async def __aenter__(self) -> "ServeClient":
        return self

    async def __aexit__(self, exc_type, exc, tb) -> None:
        await self.close()
