"""Async client for the interference service (newline-delimited JSON).

One :class:`ServeClient` wraps one TCP connection and supports arbitrary
pipelining: many requests may be outstanding at once, responses are
matched to callers by the ``id`` token regardless of arrival order (the
server reorders freely across batches). A background reader task owns the
socket's read side; if the connection drops, every outstanding request
fails with ``ConnectionResetError``.

Usage::

    async with await ServeClient.connect(port=server.port) as client:
        result = await client.interference(
            generator="random_udg_connected", args={"n": 24, "seed": 7}
        )
        print(result["value"])

Error responses raise :class:`ServeError` (``.code`` is one of the
protocol's ``ERR_*`` constants); use :meth:`ServeClient.request_raw` to
get the raw envelope instead — the load generator does, so it can count
rejections without exception overhead.

Retries
-------
Pass a :class:`RetryPolicy` to :meth:`ServeClient.connect` and
:meth:`ServeClient.request` transparently retries *idempotent* request
kinds (:data:`repro.serve.protocol.IDEMPOTENT_TYPES`) across transient
connection failures — reconnecting, backing off exponentially with
jitter, and raising :class:`ServeRetryError` (a ``ConnectionError``
subclass carrying the attempt count and last cause) once the budget is
exhausted. ``overloaded`` rejections are retried for *any* kind: the
server rejects before executing, so re-sending cannot double-apply.
Non-idempotent kinds (``stream_apply``, subscriptions) never retry on a
connection error — the first send may have been applied.

Push frames
-----------
Server-initiated frames carry ``"push"`` and no ``"id"`` key, so they
never collide with response matching. The reader routes them to the
per-subscription queue registered by :meth:`stream_subscribe` (unmatched
pushes land in :attr:`ServeClient.pushes`).
"""

from __future__ import annotations

import asyncio
import itertools
import random
from dataclasses import dataclass

from repro.serve.protocol import (
    ERR_INTERNAL,
    ERR_OVERLOADED,
    ERR_WRONG_SHARD,
    IDEMPOTENT_TYPES,
    MAX_LINE_BYTES,
    PROTOCOL_VERSION,
    ProtocolError,
    decode_message,
    encode_message,
)

#: Most ``wrong_shard`` redirects one request() call will follow before
#: giving up — bounds pathological redirect loops between stale routers.
MAX_REDIRECTS = 3


class ServeError(RuntimeError):
    """An error response from the server (code + human-readable message).

    ``details`` is the error's optional structured payload (e.g.
    ``wrong_shard`` carries the owning shards and endpoints).
    """

    def __init__(self, code: str, message: str, *, request_id=None,
                 details: dict | None = None):
        super().__init__(f"{code}: {message}")
        self.code = code
        self.message = message
        self.request_id = request_id
        self.details = details or {}


class ServeRetryError(ConnectionError):
    """Terminal failure after the retry budget is exhausted.

    ``attempts`` is how many sends were tried; ``last`` is the final
    underlying failure (a ``ConnectionError``/``OSError`` or a
    :class:`ServeError` for retryable rejections).
    """

    def __init__(self, kind: str, attempts: int, last: BaseException):
        super().__init__(
            f"{kind!r} failed after {attempts} attempt(s); last error: {last!r}"
        )
        self.kind = kind
        self.attempts = attempts
        self.last = last


@dataclass(frozen=True, kw_only=True)
class RetryPolicy:
    """Bounded exponential backoff with jitter.

    Attempt ``k`` (0-based) sleeps ``base_delay_s * multiplier**(k-1)``
    before sending, clamped to ``max_delay_s``, then scaled by a uniform
    factor in ``[1 - jitter, 1 + jitter]`` (seeded, so tests are
    deterministic). ``attempts`` counts total sends, initial try
    included.
    """

    attempts: int = 4
    base_delay_s: float = 0.05
    max_delay_s: float = 2.0
    multiplier: float = 2.0
    jitter: float = 0.5
    seed: int | None = None

    def __post_init__(self) -> None:
        if self.attempts < 1:
            raise ValueError("attempts must be >= 1")
        if self.base_delay_s < 0 or self.max_delay_s < self.base_delay_s:
            raise ValueError("need 0 <= base_delay_s <= max_delay_s")
        if self.multiplier < 1:
            raise ValueError("multiplier must be >= 1")
        if not 0 <= self.jitter < 1:
            raise ValueError("jitter must lie in [0, 1)")

    def delay_s(self, attempt: int, rng: random.Random) -> float:
        """Backoff before (1-based) retry ``attempt``."""
        raw = min(
            self.base_delay_s * self.multiplier ** (attempt - 1),
            self.max_delay_s,
        )
        return raw * (1.0 + self.jitter * (2.0 * rng.random() - 1.0))


class ServeClient:
    """One pipelined client connection; see the module docstring."""

    def __init__(self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter):
        self._reader = reader
        self._writer = writer
        self._pending: dict[object, asyncio.Future] = {}
        self._ids = itertools.count(1)
        self._closed = False
        self._endpoints: list[tuple[str, int]] = []
        self._endpoint_idx = 0
        self._limit = MAX_LINE_BYTES
        self._retry: RetryPolicy | None = None
        self._rng = random.Random(0)
        #: push frames with no registered subscription queue
        self.pushes: asyncio.Queue = asyncio.Queue()
        self._sub_queues: dict[object, asyncio.Queue] = {}
        self._reader_task = asyncio.create_task(
            self._read_loop(), name="serve-client-reader"
        )

    @classmethod
    async def connect(
        cls, host: str = "127.0.0.1", port: int = 0, *,
        endpoints=None,
        limit: int = MAX_LINE_BYTES,
        retry: RetryPolicy | None = None,
    ) -> "ServeClient":
        """Open a connection. ``endpoints`` (a sequence of ``(host, port)``
        pairs) lists equivalent servers: the first reachable one is used,
        and reconnects cycle through the rest — so one dead router does
        not strand retried requests."""
        if endpoints:
            eps = [(str(h), int(p)) for h, p in endpoints]
        else:
            eps = [(host, port)]
        reader = writer = None
        last: BaseException | None = None
        for i, (h, p) in enumerate(eps):
            try:
                reader, writer = await asyncio.open_connection(h, p, limit=limit)
            except (ConnectionError, OSError) as exc:
                last = exc
                continue
            idx = i
            break
        else:
            raise ConnectionError(
                f"no endpoint reachable out of {len(eps)}; last error: {last!r}"
            )
        client = cls(reader, writer)
        client._endpoints = eps
        client._endpoint_idx = idx
        client._limit = limit
        client._retry = retry
        if retry is not None:
            client._rng = random.Random(retry.seed)
        return client

    @property
    def endpoint(self) -> tuple[str, int]:
        """The ``(host, port)`` this client currently targets."""
        if not self._endpoints:
            raise RuntimeError("client was not built via connect()")
        return self._endpoints[self._endpoint_idx]

    async def _read_loop(self) -> None:
        error: BaseException = ConnectionResetError("server closed the connection")
        try:
            while True:
                line = await self._reader.readline()
                if not line:
                    break
                message = decode_message(line, limit=self._limit)
                if "id" not in message and "push" in message:
                    queue = self._sub_queues.get(message.get("sub"), self.pushes)
                    queue.put_nowait(message)
                    continue
                future = self._pending.pop(message.get("id"), None)
                if future is not None and not future.done():
                    future.set_result(message)
        except (ConnectionError, OSError, ProtocolError, ValueError) as exc:
            error = exc
        finally:
            for future in self._pending.values():
                if not future.done():
                    future.set_exception(
                        ConnectionResetError(f"connection lost: {error}")
                    )
            self._pending.clear()

    async def _reconnect(
        self, target: tuple[str, int] | None = None, *, advance: bool = True,
    ) -> None:
        """Replace a dead (or redirected) connection.

        With no ``target``, advances round-robin through the endpoint
        list — consecutive reconnects try each configured server in turn
        before the retry budget runs out. A ``target`` (shard redirect)
        is adopted into the list and becomes the current endpoint.
        Subscriptions do not survive — the server drops them with the
        old connection.
        """
        if not self._endpoints:
            raise ConnectionResetError(
                "connection lost and client was not built via connect()"
            )
        if target is not None:
            target = (str(target[0]), int(target[1]))
            if target not in self._endpoints:
                self._endpoints.append(target)
            self._endpoint_idx = self._endpoints.index(target)
        elif advance and len(self._endpoints) > 1:
            self._endpoint_idx = (self._endpoint_idx + 1) % len(self._endpoints)
        self._reader_task.cancel()
        try:
            await self._reader_task
        except asyncio.CancelledError:
            pass
        try:
            self._writer.close()
        except Exception:
            pass
        self._sub_queues.clear()
        host, port = self._endpoints[self._endpoint_idx]
        self._reader, self._writer = await asyncio.open_connection(
            host, port, limit=self._limit
        )
        self._reader_task = asyncio.create_task(
            self._read_loop(), name="serve-client-reader"
        )

    async def request_raw(
        self, kind: str, params: dict | None = None, *,
        deadline_ms: float | None = None,
    ) -> dict:
        """Send one request, await its raw response envelope (no raise)."""
        if self._closed:
            raise RuntimeError("client is closed")
        if self._reader_task.done():
            # reader already died: a send now would wait on a future
            # nobody will ever resolve
            raise ConnectionResetError("connection lost")
        req_id = next(self._ids)
        payload: dict = {"id": req_id, "type": kind, "v": PROTOCOL_VERSION}
        if params:
            payload["params"] = params
        if deadline_ms is not None:
            payload["deadline_ms"] = deadline_ms
        future = asyncio.get_running_loop().create_future()
        self._pending[req_id] = future
        self._writer.write(encode_message(payload, limit=self._limit))
        # Backpressure only when the transport buffer actually backs up —
        # an unconditional drain() costs a scheduling round trip per
        # request, which dominates small pipelined requests.
        if self._writer.transport.get_write_buffer_size() > 64 * 1024:
            await self._writer.drain()
        return await future

    @staticmethod
    def _unwrap(response: dict) -> dict:
        if response.get("ok"):
            return response["result"]
        err = response.get("error") or {}
        raise ServeError(
            err.get("code", ERR_INTERNAL),
            err.get("message", "unknown error"),
            request_id=response.get("id"),
            details=err.get("details"),
        )

    async def _send_following_redirects(
        self, kind: str, params: dict | None, deadline_ms: float | None,
    ) -> dict:
        """``request_raw`` plus transparent ``wrong_shard`` redirects.

        A ``wrong_shard`` error names the owning shard's endpoint in its
        ``details``; the client reconnects there (adopting it into the
        endpoint list) and re-sends, at most :data:`MAX_REDIRECTS` hops.
        Safe for any kind: the wrong shard refused before executing.
        """
        for _ in range(MAX_REDIRECTS):
            response = await self.request_raw(
                kind, params, deadline_ms=deadline_ms
            )
            err = (response.get("error") or {}) if not response.get("ok") else {}
            if err.get("code") != ERR_WRONG_SHARD:
                return response
            endpoints = (err.get("details") or {}).get("endpoints") or []
            if not endpoints:
                return response  # nowhere to go: surface the error
            host, port = endpoints[0]
            await self._reconnect((host, port))
        return response

    async def request(
        self, kind: str, params: dict | None = None, *,
        deadline_ms: float | None = None,
    ) -> dict:
        """Send one request; return its ``result`` or raise :class:`ServeError`.

        ``wrong_shard`` redirects are always followed transparently
        (bounded by :data:`MAX_REDIRECTS`). With a :class:`RetryPolicy`
        configured, transient failures are additionally retried per the
        module docstring; the terminal failure is :class:`ServeRetryError`.
        """
        policy = self._retry
        if policy is None:
            return self._unwrap(
                await self._send_following_redirects(kind, params, deadline_ms)
            )
        last: BaseException | None = None
        for attempt in range(policy.attempts):
            if attempt:
                await asyncio.sleep(policy.delay_s(attempt, self._rng))
            try:
                if self._reader_task.done():
                    await self._reconnect()
                response = await self._send_following_redirects(
                    kind, params, deadline_ms
                )
            except (ConnectionError, OSError) as exc:
                if kind not in IDEMPOTENT_TYPES:
                    # the first send may have been applied server-side;
                    # re-sending could double-apply, so surface it
                    raise
                last = exc
                continue
            if (
                not response.get("ok")
                and (response.get("error") or {}).get("code") == ERR_OVERLOADED
            ):
                # rejected before execution: safe to retry any kind
                err = response["error"]
                last = ServeError(
                    err["code"], err.get("message", ""),
                    request_id=response.get("id"),
                )
                continue
            return self._unwrap(response)
        raise ServeRetryError(kind, policy.attempts, last)

    # -- typed conveniences --------------------------------------------------

    async def ping(self) -> dict:
        return await self.request("ping")

    async def interference(self, *, deadline_ms: float | None = None, **params) -> dict:
        return await self.request("interference", params, deadline_ms=deadline_ms)

    async def build_topology(self, *, deadline_ms: float | None = None, **params) -> dict:
        return await self.request("build_topology", params, deadline_ms=deadline_ms)

    async def opt(self, *, deadline_ms: float | None = None, **params) -> dict:
        return await self.request("opt", params, deadline_ms=deadline_ms)

    async def experiment(
        self, experiment_id: str, *, deadline_ms: float | None = None, **kwargs
    ) -> dict:
        return await self.request(
            "experiment",
            {"experiment_id": experiment_id, "kwargs": kwargs},
            deadline_ms=deadline_ms,
        )

    # -- stream lane ---------------------------------------------------------

    async def stream_init(self, *, capacity: int, r_max: float, **params) -> dict:
        return await self.request(
            "stream_init", {"capacity": capacity, "r_max": r_max, **params}
        )

    async def stream_apply(
        self, events, *, ack: str = "accepted",
        deadline_ms: float | None = None,
    ) -> dict:
        """Submit events (dicts or objects with ``to_jsonable``)."""
        payload = [
            e.to_jsonable() if hasattr(e, "to_jsonable") else e for e in events
        ]
        return await self.request(
            "stream_apply", {"events": payload, "ack": ack},
            deadline_ms=deadline_ms,
        )

    async def stream_read(
        self, *, max_lag: int = 0, node: int | None = None,
        region=None, deadline_ms: float | None = None,
    ) -> dict:
        params: dict = {"max_lag": max_lag}
        if node is not None:
            params["node"] = node
        if region is not None:
            params["region"] = list(region)
        return await self.request(
            "stream_read", params, deadline_ms=deadline_ms
        )

    async def stream_subscribe(self, region) -> tuple[dict, asyncio.Queue]:
        """Subscribe to per-region deltas.

        Returns ``(result, queue)``: ``result`` holds the ``sub`` id and
        the starting in-region snapshot; ``queue`` receives each
        subsequent ``stream_delta`` push frame.
        """
        result = await self.request(
            "stream_subscribe", {"region": list(region)}
        )
        queue: asyncio.Queue = asyncio.Queue()
        self._sub_queues[result["sub"]] = queue
        return result, queue

    async def stream_unsubscribe(self, sub_id) -> dict:
        result = await self.request("stream_unsubscribe", {"sub": sub_id})
        self._sub_queues.pop(sub_id, None)
        return result

    async def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        self._reader_task.cancel()
        try:
            await self._reader_task
        except asyncio.CancelledError:
            pass
        try:
            self._writer.close()
            await self._writer.wait_closed()
        except (ConnectionError, OSError):
            pass

    async def __aenter__(self) -> "ServeClient":
        return self

    async def __aexit__(self, exc_type, exc, tb) -> None:
        await self.close()
