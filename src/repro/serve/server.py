"""The asyncio interference server: admission, micro-batching, deadlines.

Request lifecycle
-----------------
::

    conn reader ──> admission ──> FIFO queue ──> dispatcher ──> executor
                      │ overloaded / shutting_down        (micro-batches)
                      └────────────> immediate rejection        │
    conn writer <── per-request future <── batch completion ────┘

- **Admission** — at most ``ServeConfig.queue_limit`` requests may wait in
  the queue; excess load is rejected *immediately* with ``overloaded``
  (explicit load shedding keeps accepted-request latency bounded instead
  of letting the queue collapse under a burst). ``ping`` is answered
  inline and never queued.
- **Micro-batching** — the dispatcher coalesces up to
  ``batch_max_size`` *compatible* requests (equal
  :class:`repro.serve.routing.RouteKey`, produced by the server's
  :class:`~repro.serve.routing.Router`) arriving within
  ``batch_linger_ms`` of the oldest
  queued request into one executor dispatch, amortizing process-pool
  round-trip cost over many small requests. Non-batchable types dispatch
  individually. Items in a batch fail independently.
- **Deadlines** — a request's ``deadline_ms`` starts at admission. A
  queued request that expires before dispatch is cancelled without
  executing; a non-``opt`` request that completes after its deadline gets
  ``deadline_exceeded`` (the promise is the deadline, not the payload).
  ``opt`` requests instead have their remaining deadline translated into
  the solver's ``time_budget_s``, so an over-deadline solve returns its
  best *certified* ``[lb, ub]`` bracket — never an error.
- **Drain** — ``stop()`` stops accepting, lets queued + in-flight work
  finish within ``drain_timeout_s``, then force-terminates the pool via
  the sweep runner's shutdown path (:func:`repro.runner.pool.terminate_pool`).

Instrumentation (:mod:`repro.obs`, when enabled): ``serve.request`` /
``serve.batch`` spans (recorded via ``record_span`` — completions are
concurrent, so live span nesting would lie), counters
``serve.accepted``, ``serve.completed``, ``serve.rejected.overloaded``,
``serve.rejected.shutting_down``, ``serve.deadline_exceeded``,
``serve.error.bad_request``, ``serve.error.internal``, ``serve.batches``,
``serve.batch.requests``, and gauges ``serve.queue_depth`` /
``serve.inflight_batches``. The same totals are always available —
enabled or not — from :meth:`InterferenceServer.stats`.
"""

from __future__ import annotations

import asyncio
from collections import deque
from concurrent.futures import (
    BrokenExecutor,
    ProcessPoolExecutor,
    ThreadPoolExecutor,
)

from repro import obs
from repro.runner.pool import terminate_pool
from repro.serve.config import ServeConfig
from repro.serve.handlers import run_batch
from repro.serve.routing import LaneRouter, Router
from repro.serve.stream import StreamService
from repro.serve.protocol import (
    ERR_BAD_REQUEST,
    ERR_DEADLINE,
    ERR_INTERNAL,
    ERR_OVERLOADED,
    ERR_SHUTTING_DOWN,
    ERR_WRONG_SHARD,
    ProtocolError,
    decode_message,
    encode_message,
    error_response,
    ok_response,
    parse_request,
)

#: Floor on the solver budget handed to an already-expired ``opt`` request:
#: enough to compute the heuristic + combinatorial bracket, tiny enough to
#: honour the spirit of the deadline.
_OPT_MIN_BUDGET_S = 0.005

#: Error-name prefixes from the worker that map to ``bad_request`` (caller
#: error) rather than ``internal`` (server fault).
_CALLER_ERRORS = ("ValueError", "KeyError", "TypeError")


class _Pending:
    """One admitted request waiting for (or undergoing) execution."""

    __slots__ = (
        "req_id", "kind", "params", "lane", "enqueued_at", "deadline_at",
        "future", "abandoned",
    )

    def __init__(self, req_id, kind, params, lane, enqueued_at, deadline_at):
        self.req_id = req_id
        self.kind = kind
        self.params = params
        self.lane = lane
        self.enqueued_at = enqueued_at
        self.deadline_at = deadline_at
        self.future: asyncio.Future = asyncio.get_running_loop().create_future()
        self.abandoned = False


class InterferenceServer:
    """JSON-over-TCP interference service (see the module docstring).

    Usage::

        server = InterferenceServer(ServeConfig(port=0, workers=2))
        await server.start()
        print(server.port)          # ephemeral port resolved
        ...
        await server.stop()         # graceful drain
    """

    def __init__(
        self, config: ServeConfig | None = None, *,
        router: Router | None = None,
    ):
        self.config = config or ServeConfig()
        #: The dispatch router (``RouteKey`` producer). Defaults to the
        #: single-shard :class:`LaneRouter`; a cluster front-end injects
        #: its shard-aware router instead.
        self.router: Router = router if router is not None else LaneRouter()
        self._server: asyncio.base_events.Server | None = None
        self._executor = None
        self._queue: deque[_Pending] = deque()
        self._arrival = asyncio.Event()
        self._dispatcher: asyncio.Task | None = None
        self._inflight = 0
        self._sem = asyncio.Semaphore(self.config.inflight_limit)
        self._draining = False
        self._connections: set[asyncio.StreamWriter] = set()
        self._stream = StreamService(self.config, self._write)
        #: Cluster identity (``{"index": i, "endpoints": [[h, p], ...]}``)
        #: set by a shard front-end; ``None`` for standalone servers.
        self.shard_info: dict | None = None
        self._stats = {
            "pool_respawns": 0,
            "accepted": 0,
            "completed": 0,
            "pings": 0,
            "bad_request": 0,
            "internal_errors": 0,
            "rejected_overloaded": 0,
            "rejected_shutting_down": 0,
            "rejected_wrong_shard": 0,
            "deadline_exceeded": 0,
            "batches": 0,
            "batched_requests": 0,
            "max_batch_size": 0,
        }

    # -- lifecycle ----------------------------------------------------------

    async def start(self) -> None:
        if self._server is not None:
            raise RuntimeError("server already started")
        cfg = self.config
        if cfg.executor == "process":
            self._executor = ProcessPoolExecutor(max_workers=cfg.workers)
            # Warm one worker so the first request doesn't pay the fork.
            loop = asyncio.get_running_loop()
            await loop.run_in_executor(self._executor, run_batch, "ping", [])
        else:
            self._executor = ThreadPoolExecutor(max_workers=cfg.workers)
        self._server = await asyncio.start_server(
            self._on_connection, cfg.host, cfg.port, limit=cfg.max_line_bytes
        )
        self._dispatcher = asyncio.create_task(
            self._dispatch_loop(), name="serve-dispatcher"
        )

    @property
    def port(self) -> int:
        """The bound port (resolves ``port=0`` to the ephemeral choice)."""
        if self._server is None or not self._server.sockets:
            raise RuntimeError("server not started")
        return self._server.sockets[0].getsockname()[1]

    @property
    def host(self) -> str:
        return self.config.host

    def stats(self) -> dict:
        """Always-on counters (a copy), plus live queue/inflight depth."""
        out = dict(self._stats)
        out["queue_depth"] = len(self._queue)
        out["inflight_batches"] = self._inflight
        out.update(self._stream.stats)
        out["stream_lag"] = self._stream.lag
        return out

    async def stop(self, *, drain: bool | None = None) -> None:
        """Stop accepting, drain within ``drain_timeout_s``, shut down.

        ``drain=False`` skips the wait and force-terminates immediately.
        Idempotent.
        """
        cfg = self.config
        if drain is None:
            drain = True
        self._draining = True
        await self._stream.close()
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        drained = True
        if drain and cfg.drain_timeout_s > 0:
            loop = asyncio.get_running_loop()
            deadline = loop.time() + cfg.drain_timeout_s
            while (self._queue or self._inflight) and loop.time() < deadline:
                self._arrival.set()  # keep the dispatcher moving
                await asyncio.sleep(0.005)
            drained = not self._queue and not self._inflight
        if self._dispatcher is not None:
            self._dispatcher.cancel()
            try:
                await self._dispatcher
            except asyncio.CancelledError:
                pass
            self._dispatcher = None
        while self._queue:  # anything left after the drain window
            pending = self._queue.popleft()
            self._resolve_error(
                pending, ERR_SHUTTING_DOWN, "server shutting down"
            )
        if self._executor is not None:
            if drained or isinstance(self._executor, ThreadPoolExecutor):
                self._executor.shutdown(wait=drained, cancel_futures=True)
            else:
                terminate_pool(self._executor)
            self._executor = None
        for writer in list(self._connections):
            try:
                writer.close()
            except Exception:
                pass

    async def __aenter__(self) -> "InterferenceServer":
        await self.start()
        return self

    async def __aexit__(self, exc_type, exc, tb) -> None:
        await self.stop()

    # -- connection handling ------------------------------------------------

    async def _on_connection(self, reader, writer) -> None:
        self._connections.add(writer)
        wlock = asyncio.Lock()
        tasks: set[asyncio.Task] = set()
        owned: list[_Pending] = []
        loop = asyncio.get_running_loop()
        try:
            while True:
                try:
                    line = await reader.readline()
                except ValueError:  # frame longer than the stream limit
                    await self._write(
                        writer, wlock,
                        error_response(None, ERR_BAD_REQUEST, "frame too long"),
                    )
                    break
                except (ConnectionError, OSError):
                    break
                if not line:
                    break
                admitted_at = loop.time()
                req_id = None
                try:
                    message = decode_message(
                        line, limit=self.config.max_line_bytes
                    )
                    req_id = message.get("id")
                    if not isinstance(req_id, (int, str)):
                        req_id = None
                    req_id, kind, params, deadline_ms = parse_request(message)
                except ProtocolError as exc:
                    self._stats["bad_request"] += 1
                    obs.count("serve.error.bad_request")
                    await self._write(
                        writer, wlock,
                        error_response(req_id, ERR_BAD_REQUEST, str(exc)),
                    )
                    continue
                if kind == "ping":
                    self._stats["pings"] += 1
                    await self._write(
                        writer, wlock,
                        ok_response(req_id, {"pong": True},
                                    ms=(loop.time() - admitted_at) * 1e3),
                    )
                    continue
                if kind.startswith("stream_"):
                    # stateful lane: handled inline on the event loop,
                    # never queued for the (stateless) worker pool
                    response = await self._stream.handle(
                        kind, req_id, params, writer, wlock, t0=admitted_at
                    )
                    await self._write(writer, wlock, response)
                    continue
                rejection = self._shard_rejection(req_id, kind, params)
                if rejection is None:
                    rejection = self._admission_error(req_id)
                if rejection is not None:
                    await self._write(writer, wlock, rejection)
                    continue
                pending = self._enqueue(
                    req_id, kind, params, deadline_ms, admitted_at
                )
                owned.append(pending)
                task = asyncio.create_task(
                    self._respond_when_done(pending, writer, wlock)
                )
                tasks.add(task)
                task.add_done_callback(tasks.discard)
        finally:
            # Disconnection cancels this client's queued work: the
            # dispatcher skips abandoned requests instead of computing
            # results nobody will read.
            self._stream.drop_connection(writer)
            for pending in owned:
                pending.abandoned = True
            for task in tasks:
                task.cancel()
            self._connections.discard(writer)
            try:
                writer.close()
                await writer.wait_closed()
            except Exception:
                pass

    def set_shard_info(self, info: dict | None) -> None:
        """Adopt a cluster identity: requests whose ``shard`` spec names a
        different index are refused with ``wrong_shard`` (plus the owner's
        endpoint when known) instead of computing the wrong partial."""
        if info is not None and not isinstance(info.get("index"), int):
            raise ValueError("shard info must carry an int 'index'")
        self.shard_info = info

    def _shard_rejection(self, req_id, kind: str, params: dict) -> dict | None:
        info = self.shard_info
        if info is None or kind != "interference":
            return None
        spec = params.get("shard")
        if not isinstance(spec, dict):
            return None
        want = spec.get("index")
        if (
            isinstance(want, bool)
            or not isinstance(want, int)
            or want == info["index"]
        ):
            return None  # malformed indices get the handler's bad_request
        self._stats["rejected_wrong_shard"] += 1
        obs.count("serve.rejected.wrong_shard")
        endpoints = info.get("endpoints") or []
        details: dict = {"shards": [want]}
        if 0 <= want < len(endpoints):
            details["endpoints"] = [list(endpoints[want])]
        return error_response(
            req_id, ERR_WRONG_SHARD,
            f"shard {want} requested; this worker serves shard "
            f"{info['index']}",
            details=details,
        )

    def _admission_error(self, req_id) -> dict | None:
        if self._draining:
            self._stats["rejected_shutting_down"] += 1
            obs.count("serve.rejected.shutting_down")
            return error_response(
                req_id, ERR_SHUTTING_DOWN, "server shutting down"
            )
        if len(self._queue) >= self.config.queue_limit:
            self._stats["rejected_overloaded"] += 1
            obs.count("serve.rejected.overloaded")
            return error_response(
                req_id, ERR_OVERLOADED,
                f"admission queue full ({self.config.queue_limit} waiting); "
                "retry with backoff",
            )
        return None

    def _enqueue(self, req_id, kind, params, deadline_ms, admitted_at) -> _Pending:
        cfg = self.config
        if deadline_ms is None:
            deadline_ms = cfg.default_deadline_ms
        deadline_at = (
            None if deadline_ms is None else admitted_at + deadline_ms / 1e3
        )
        pending = _Pending(
            req_id, kind, params,
            self.router.route(kind, params),
            admitted_at, deadline_at,
        )
        self._queue.append(pending)
        self._stats["accepted"] += 1
        obs.count("serve.accepted")
        obs.gauge("serve.queue_depth", len(self._queue))
        self._arrival.set()
        return pending

    async def _respond_when_done(self, pending, writer, wlock) -> None:
        response = await pending.future
        if not pending.abandoned:
            await self._write(writer, wlock, response)

    async def _write(self, writer, wlock, response: dict) -> None:
        try:
            async with wlock:
                writer.write(
                    encode_message(response, limit=self.config.max_line_bytes)
                )
                # drain() per response would cost a scheduling round trip
                # each; the transport buffers writes, so only apply
                # backpressure once the buffer actually backs up.
                if writer.transport.get_write_buffer_size() > 64 * 1024:
                    await writer.drain()
        except (ConnectionError, OSError):
            pass  # client went away; nothing to tell it

    # -- request resolution -------------------------------------------------

    def _latency_ms(self, pending) -> float:
        return (asyncio.get_running_loop().time() - pending.enqueued_at) * 1e3

    def _resolve_ok(self, pending, result: dict) -> None:
        if pending.future.done():
            return
        ms = self._latency_ms(pending)
        self._stats["completed"] += 1
        obs.count("serve.completed")
        obs.record_span(
            "serve.request", ms / 1e3, kind=pending.kind, status="ok"
        )
        pending.future.set_result(ok_response(pending.req_id, result, ms=ms))

    def _resolve_error(self, pending, code: str, message: str) -> None:
        if pending.future.done():
            return
        ms = self._latency_ms(pending)
        if code == ERR_DEADLINE:
            self._stats["deadline_exceeded"] += 1
            obs.count("serve.deadline_exceeded")
        elif code == ERR_BAD_REQUEST:
            self._stats["bad_request"] += 1
            obs.count("serve.error.bad_request")
        elif code == ERR_INTERNAL:
            self._stats["internal_errors"] += 1
            obs.count("serve.error.internal")
        obs.record_span(
            "serve.request", ms / 1e3, kind=pending.kind, status=code
        )
        pending.future.set_result(
            error_response(pending.req_id, code, message, ms=ms)
        )

    async def _respawn_pool(self, broken) -> None:
        """Replace a broken executor (guarded so concurrent failing
        batches respawn once, not once each)."""
        if self._executor is not broken or self._draining:
            return
        cfg = self.config
        if cfg.executor == "process":
            fresh = ProcessPoolExecutor(max_workers=cfg.workers)
        else:  # pragma: no cover - threads don't raise BrokenExecutor
            fresh = ThreadPoolExecutor(max_workers=cfg.workers)
        self._executor = fresh
        self._stats["pool_respawns"] += 1
        obs.count("serve.pool.respawns")
        # tear the corpse down off-loop; terminate_pool joins processes
        await asyncio.to_thread(terminate_pool, broken)
        if cfg.executor == "process":
            try:
                await asyncio.get_running_loop().run_in_executor(
                    fresh, run_batch, "ping", []
                )
            except Exception:  # pragma: no cover - warm-up is best effort
                pass

    # -- dispatcher ---------------------------------------------------------

    async def _dispatch_loop(self) -> None:
        while True:
            if not self._queue:
                self._arrival.clear()
                await self._arrival.wait()
                continue
            # Take the executor slot FIRST, then assemble the batch:
            # while all slots are busy the queue keeps filling, so the
            # moment one frees we dispatch the whole accumulated backlog
            # as one batch instead of many small early-collected ones.
            await self._sem.acquire()
            batch = await self._collect_batch()
            if not batch:
                self._sem.release()
                continue
            self._inflight += 1
            obs.gauge("serve.inflight_batches", self._inflight)
            asyncio.create_task(self._execute_batch(batch))

    def _pop_viable(self) -> _Pending | None:
        """Pop the oldest queued request that still deserves execution,
        resolving abandoned/expired ones along the way."""
        loop = asyncio.get_running_loop()
        while self._queue:
            pending = self._queue.popleft()
            obs.gauge("serve.queue_depth", len(self._queue))
            if pending.abandoned:
                continue
            if (
                pending.deadline_at is not None
                and loop.time() >= pending.deadline_at
                and pending.kind != "opt"
            ):
                self._resolve_error(
                    pending, ERR_DEADLINE,
                    "deadline expired before dispatch",
                )
                continue
            return pending
        return None

    async def _collect_batch(self) -> list[_Pending]:
        cfg = self.config
        head = self._pop_viable()
        if head is None:
            return []
        batch = [head]
        if cfg.batch_max_size > 1 and head.lane.batchable:
            loop = asyncio.get_running_loop()
            target = head.enqueued_at + cfg.batch_linger_ms / 1e3
            while len(batch) < cfg.batch_max_size:
                self._take_lane(head.lane, batch, cfg.batch_max_size)
                if len(batch) >= cfg.batch_max_size:
                    break
                remaining = target - loop.time()
                if remaining <= 0:
                    break
                self._arrival.clear()
                try:
                    await asyncio.wait_for(self._arrival.wait(), remaining)
                except asyncio.TimeoutError:
                    self._take_lane(head.lane, batch, cfg.batch_max_size)
                    break
        return batch

    def _take_lane(self, lane, batch: list, limit: int) -> None:
        """Move queued same-lane requests into ``batch`` (up to ``limit``)."""
        if len(batch) >= limit:
            return
        keep: list[_Pending] = []
        while self._queue and len(batch) < limit:
            pending = self._queue.popleft()
            if pending.lane == lane and not pending.abandoned:
                batch.append(pending)
            else:
                keep.append(pending)
        for pending in reversed(keep):
            self._queue.appendleft(pending)
        obs.gauge("serve.queue_depth", len(self._queue))

    def _prepare_params(self, pending) -> dict:
        """Apply server-side budget policy (currently: ``opt`` clamps)."""
        if pending.kind != "opt":
            return pending.params
        cfg = self.config
        loop = asyncio.get_running_loop()
        params = dict(pending.params)
        budget = params.get("time_budget_s")
        if budget is None or budget > cfg.opt_time_budget_cap_s:
            budget = cfg.opt_time_budget_cap_s
        if pending.deadline_at is not None:
            remaining = pending.deadline_at - loop.time()
            budget = min(budget, max(remaining, _OPT_MIN_BUDGET_S))
        params["time_budget_s"] = budget
        node_budget = params.get("node_budget")
        if node_budget is None or node_budget > cfg.opt_node_budget_cap:
            params["node_budget"] = cfg.opt_node_budget_cap
        return params

    async def _execute_batch(self, batch: list[_Pending]) -> None:
        loop = asyncio.get_running_loop()
        kind = batch[0].kind
        try:
            payloads = [self._prepare_params(p) for p in batch]
            t0 = loop.time()
            executor = self._executor
            try:
                items = await loop.run_in_executor(
                    executor, run_batch, kind, payloads
                )
            except Exception as exc:  # pool death, pickling failure, ...
                for pending in batch:
                    self._resolve_error(
                        pending, ERR_INTERNAL, f"dispatch failed: {exc!r}"
                    )
                if isinstance(exc, BrokenExecutor):
                    # a killed worker poisons the whole pool: every later
                    # dispatch would fail too. Replace it so one worker
                    # death costs one batch, not the server.
                    await self._respawn_pool(executor)
                return
            wall = loop.time() - t0
            self._stats["batches"] += 1
            self._stats["batched_requests"] += len(batch)
            self._stats["max_batch_size"] = max(
                self._stats["max_batch_size"], len(batch)
            )
            obs.count("serve.batches")
            obs.count("serve.batch.requests", len(batch))
            obs.record_span("serve.batch", wall, kind=kind, size=len(batch))
            now = loop.time()
            for pending, item in zip(batch, items):
                if (
                    pending.kind != "opt"
                    and pending.deadline_at is not None
                    and now >= pending.deadline_at
                ):
                    self._resolve_error(
                        pending, ERR_DEADLINE, "completed after deadline"
                    )
                elif item["ok"]:
                    self._resolve_ok(pending, item["result"])
                else:
                    message = item["error"]
                    code = (
                        ERR_BAD_REQUEST
                        if message.startswith(_CALLER_ERRORS)
                        else ERR_INTERNAL
                    )
                    self._resolve_error(pending, code, message)
        finally:
            self._inflight -= 1
            obs.gauge("serve.inflight_batches", self._inflight)
            self._sem.release()
