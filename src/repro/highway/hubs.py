"""Hubs (Definition 5.1).

In a 1-D topology, a node is a *hub* iff it maintains an edge to some node
to its right; on the exponential chain only hubs can interfere with the
leftmost node, which is why the algorithms of Section 5 ration them.
"""

from __future__ import annotations

import numpy as np

from repro.model.topology import Topology


def is_hub(topology: Topology, v: int) -> bool:
    """True iff ``v`` has a neighbour with strictly larger x coordinate."""
    x = topology.positions[:, 0]
    return any(x[w] > x[v] for w in topology.neighbors(v))


def hub_indices(topology: Topology) -> np.ndarray:
    """Sorted int64 array of all hub nodes (Definition 5.1)."""
    x = topology.positions[:, 0]
    hubs = []
    for u, v in topology.edges:
        # the endpoint with the smaller x maintains an edge to its right
        if x[u] < x[v]:
            hubs.append(int(u))
        elif x[v] < x[u]:
            hubs.append(int(v))
        else:  # equal x: both point "rightwards" degenerately; count both
            hubs.extend((int(u), int(v)))
    return np.unique(np.array(hubs, dtype=np.int64))
