"""Critical node sets and gamma (Definition 5.2 / Lemma 5.5).

The critical nodes of ``v`` are the nodes that interfere with ``v`` when
the highway is connected linearly: ``u`` is critical for ``v`` iff some
linear-chain edge ``{u, w}`` is at least as long as ``|u, v|`` (that edge
sets ``r_u >= |u, v|``, so ``u``'s disk covers ``v``). The maximum critical
set size gamma both drives the A_apx case split and lower-bounds the
optimal interference by Omega(sqrt(gamma)).
"""

from __future__ import annotations

import numpy as np

from repro.highway.linear import linear_chain
from repro.interference.receiver import ATOL, RTOL, node_interference
from repro.model.topology import Topology
from repro.utils import check_positions


def critical_set(
    positions, v: int, *, unit: float | None = None, rtol: float = RTOL, atol: float = ATOL
) -> np.ndarray:
    """The critical node set ``C_v`` (Definition 5.2), literal form.

    Returns the sorted indices of all ``u != v`` that have a linear-chain
    edge ``{u, w}`` with ``|u, w| >= |u, v|``.
    """
    pos = check_positions(positions)
    chain = linear_chain(pos, unit=unit)
    out = []
    for u in range(pos.shape[0]):
        if u == v:
            continue
        duv = float(np.hypot(*(pos[u] - pos[v])))
        for w in chain.neighbors(u):
            duw = float(np.hypot(*(pos[u] - pos[w])))
            if duw * (1.0 + rtol) + atol >= duv:
                out.append(u)
                break
    return np.array(sorted(out), dtype=np.int64)


def gamma(positions, *, unit: float | None = None) -> int:
    """``gamma = max_v |C_v|`` — equivalently the interference of ``G_lin``.

    A node is critical for ``v`` exactly when its linear-chain disk covers
    ``v``, so gamma equals the receiver-centric interference of the linear
    chain; we compute it with the vectorized kernel (the literal
    Definition 5.2 form is :func:`critical_set`, cross-checked in tests).
    """
    chain = linear_chain(positions, unit=unit)
    vec = node_interference(chain)
    return int(vec.max()) if vec.size else 0


def gamma_of_chain(chain: Topology) -> int:
    """gamma given an already-built linear chain (avoids rebuilding)."""
    vec = node_interference(chain)
    return int(vec.max()) if vec.size else 0
