"""Algorithm A_gen (Section 5.2, Figure 9) — O(sqrt(Delta)) for any highway.

1. Compute the maximum UDG degree Delta and cut the highway into segments
   of unit length (every pair within a segment is UDG-adjacent, so a
   segment holds at most Delta + 1 nodes).
2. Within each segment, every ceil(sqrt(Delta))-th node (in left-to-right
   order, starting with the leftmost) becomes a hub; the rightmost node is
   also made a hub to avoid boundary effects. Hubs are connected linearly;
   every regular node connects to the nearest of its two interval hubs
   (ties to the left).
3. Consecutive non-empty segments are joined by an edge between the
   rightmost node of the left segment and the leftmost node of the right
   segment (present in the UDG whenever the UDG is connected).

Theorem 5.4: the result has interference O(sqrt(Delta)); a node is covered
by at most the O(sqrt(Delta)) hubs and O(sqrt(Delta)) interval-mates of its
own and its two adjacent segments.
"""

from __future__ import annotations

import math

import numpy as np

from repro.highway.linear import highway_order
from repro.model.topology import Topology
from repro.model.udg import unit_disk_graph
from repro.utils import check_positions


def a_gen(
    positions,
    *,
    unit: float = 1.0,
    delta: int | None = None,
    spacing: int | None = None,
) -> Topology:
    """Run A_gen; ``delta`` may be passed to skip recomputing the UDG degree.

    ``spacing`` overrides the hub spacing (paper: ``ceil(sqrt(Delta))``) —
    used only by the ablation benchmarks that sweep this design choice.
    The output is connected whenever the input UDG is connected, and is
    always a subgraph of the UDG.
    """
    pos = check_positions(positions)
    n = pos.shape[0]
    if unit <= 0:
        raise ValueError("unit must be positive")
    if spacing is not None and spacing < 1:
        raise ValueError("spacing must be >= 1")
    if n <= 1:
        return Topology(pos, ())
    if delta is None:
        delta = unit_disk_graph(pos, unit=unit).max_degree()
    if delta <= 0:
        # no UDG edges at all: nothing can be connected
        return Topology(pos, ())
    if spacing is None:
        spacing = max(1, math.ceil(math.sqrt(delta)))

    order = highway_order(pos)
    x = pos[order, 0]
    x0 = x[0]
    seg_of = np.floor((x - x0) / unit).astype(np.int64)

    edges: list[tuple[int, int]] = []  # in sorted-order indices
    segments: list[np.ndarray] = []
    for seg in np.unique(seg_of):
        members = np.nonzero(seg_of == seg)[0]  # already in left-to-right order
        segments.append(members)
        hubs = list(members[::spacing])
        if members[-1] != hubs[-1]:
            hubs.append(members[-1])
        # linear hub backbone
        edges.extend((int(a), int(b)) for a, b in zip(hubs, hubs[1:]))
        # regular nodes -> nearest interval hub
        for k in range(len(hubs) - 1):
            left, right = int(hubs[k]), int(hubs[k + 1])
            for v in members[(members > left) & (members < right)]:
                d_left = x[v] - x[left]
                d_right = x[right] - x[v]
                edges.append((int(v), left if d_left <= d_right else right))
    # join consecutive non-empty segments when the UDG allows it
    for prev, cur in zip(segments, segments[1:]):
        a, b = int(prev[-1]), int(cur[0])
        if x[b] - x[a] <= unit * (1.0 + 1e-12):
            edges.append((a, b))

    mapped = [(int(order[a]), int(order[b])) for a, b in edges]
    return Topology(pos, np.array(mapped, dtype=np.int64).reshape(-1, 2))
