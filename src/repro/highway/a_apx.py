"""Algorithm A_apx (Section 5.3) — O(Delta^(1/4)) approximation.

A_gen is a worst-case algorithm: on a uniformly spaced highway it still
builds sqrt(Delta)-degree hubs although the linear chain would give O(1)
interference. A_apx detects which regime it is in via
``gamma = I(G_lin)`` (the maximum critical-set size, Definition 5.2):

- if ``gamma > sqrt(Delta)`` the instance is inherently hard — run A_gen
  (interference O(sqrt(Delta)), optimum Omega(sqrt(gamma)) by Lemma 5.5);
- else connect linearly (interference gamma, optimum Omega(sqrt(gamma))).

Either way the ratio is O(Delta^(1/4)) (Theorem 5.6).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.highway.a_gen import a_gen
from repro.highway.critical import gamma_of_chain
from repro.highway.linear import linear_chain
from repro.model.topology import Topology
from repro.model.udg import unit_disk_graph
from repro.utils import check_positions


@dataclass(frozen=True)
class ApxInfo:
    """Diagnostics of an A_apx run."""

    gamma: int
    delta: int
    #: which branch was taken: "a_gen" or "linear"
    branch: str
    #: Lemma 5.5 certified lower bound on the optimal interference
    lower_bound: float


def a_apx(
    positions, *, unit: float = 1.0, return_info: bool = False
) -> Topology | tuple[Topology, ApxInfo]:
    """Run A_apx; with ``return_info=True`` also return branch diagnostics."""
    pos = check_positions(positions)
    chain = linear_chain(pos, unit=unit)
    g = gamma_of_chain(chain)
    delta = unit_disk_graph(pos, unit=unit).max_degree()
    if g > math.sqrt(delta):
        topo = a_gen(pos, unit=unit, delta=delta)
        branch = "a_gen"
    else:
        topo = chain
        branch = "linear"
    if not return_info:
        return topo
    info = ApxInfo(
        gamma=g,
        delta=delta,
        branch=branch,
        lower_bound=math.sqrt(g / 2.0),
    )
    return topo, info
