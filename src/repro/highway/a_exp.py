"""Algorithm A_exp (Section 5.1) — scan-line hub construction.

Nodes are processed left to right. The leftmost node starts as the current
hub; each subsequent node is connected to the current hub, and whenever an
insertion raises the topology interference ``I(G_exp)``, the just-connected
node takes over as hub. On the exponential node chain every hub ends up
serving one more node than its predecessor, giving ``I(G_exp) = O(sqrt(n))``
(Theorem 5.1) — an exponential improvement over the linearly connected
chain's ``n - 2``.

The interference bookkeeping is incremental: connecting ``v`` to hub ``h``
only *grows* radii (``h``'s to ``|h, v|``, ``v``'s from 0), so per-node
coverage counts are updated with two vectorized passes per insertion,
O(n^2) overall instead of O(n^3) for recompute-from-scratch.
"""

from __future__ import annotations

import numpy as np

from repro.highway.linear import highway_order
from repro.interference.receiver import ATOL, RTOL
from repro.model.topology import Topology
from repro.utils import check_positions


def a_exp(
    positions, *, rtol: float = RTOL, atol: float = ATOL
) -> Topology:
    """Run A_exp over the nodes in highway order; returns the topology.

    Designed for (and analysed on) the exponential node chain, but runs on
    any instance; the O(sqrt(n)) guarantee only holds for the exponential
    chain. The result is always connected (it is a spanning tree of hub
    stars).
    """
    pos = check_positions(positions)
    n = pos.shape[0]
    if n <= 1:
        return Topology(pos, ())
    order = highway_order(pos)
    x = pos[order]  # scan in sorted geometry, map back at the end

    counts = np.zeros(n, dtype=np.int64)  # I(v) under current radii
    radii = np.zeros(n, dtype=np.float64)
    has_edge = np.zeros(n, dtype=bool)  # radius-0 nodes cover nobody
    edges_sorted: list[tuple[int, int]] = []

    def grow(u: int, new_radius: float) -> None:
        """Raise u's radius; count nodes newly entering u's disk.

        Radii only ever grow, so the set of nodes covered by ``u`` is
        exactly those with ``d <= r_eff`` — the newly covered ones lie in
        the half-open annulus between the old and new effective radius.
        """
        old_eff = radii[u] * (1.0 + rtol) + atol
        new_eff = new_radius * (1.0 + rtol) + atol
        d = np.hypot(x[:, 0] - x[u, 0], x[:, 1] - x[u, 1])
        newly = d <= new_eff
        if has_edge[u]:
            newly &= d > old_eff
        newly[u] = False
        counts[newly] += 1
        radii[u] = new_radius
        has_edge[u] = True

    hub = 0
    current_interference = 0
    for v in range(1, n):
        d_hv = float(np.hypot(*(x[v] - x[hub])))
        edges_sorted.append((hub, v))
        if d_hv > radii[hub]:
            grow(hub, d_hv)
        grow(v, d_hv)
        new_interference = int(counts.max())
        if new_interference > current_interference:
            current_interference = new_interference
            hub = v

    edges = [(int(order[a]), int(order[b])) for a, b in edges_sorted]
    return Topology(pos, np.array(edges, dtype=np.int64).reshape(-1, 2))
