"""Closed-form bounds from Section 5.

- Theorem 5.1: A_exp on the exponential chain reaches interference ``I``
  only after ``n = I^2/2 - I/2 + 2`` nodes, so
  ``I(G_exp) <= (1 + sqrt(8 n - 15)) / 2 = O(sqrt(n))``.
- Theorem 5.2: every connected topology on the exponential chain has
  interference at least ``sqrt(n)``.
- Lemma 5.5: the optimum for any highway instance is ``Omega(sqrt(gamma))``
  — at least half the critical nodes of the worst victim lie on one side
  and form a virtual exponential chain, so Theorem 5.2 applies to
  ``gamma / 2`` of them.
"""

from __future__ import annotations

import math


def exp_chain_lower_bound(n: int) -> float:
    """Theorem 5.2: ``sqrt(n)`` lower-bounds I(G) on the exponential chain."""
    if n < 1:
        raise ValueError("n must be >= 1")
    return math.sqrt(n)


def aexp_interference_bound(n: int) -> float:
    """Theorem 5.1: upper bound on A_exp's interference, from
    ``n >= I^2/2 - I/2 + 2`` solved for ``I``."""
    if n < 1:
        raise ValueError("n must be >= 1")
    if n < 2:
        return 0.0
    return (1.0 + math.sqrt(max(8.0 * n - 15.0, 0.0))) / 2.0


def optimal_lower_bound_from_gamma(gamma: int) -> float:
    """Lemma 5.5: any connected topology has ``I >= sqrt(gamma / 2)``."""
    if gamma < 0:
        raise ValueError("gamma must be >= 0")
    return math.sqrt(gamma / 2.0)
