"""Section 5 — the highway model (nodes on a line) and the paper's algorithms."""

from repro.highway.linear import linear_chain
from repro.highway.hubs import hub_indices, is_hub
from repro.highway.critical import critical_set, gamma
from repro.highway.bounds import (
    aexp_interference_bound,
    exp_chain_lower_bound,
    optimal_lower_bound_from_gamma,
)
from repro.highway.a_exp import a_exp
from repro.highway.a_gen import a_gen
from repro.highway.a_apx import a_apx

__all__ = [
    "linear_chain",
    "hub_indices",
    "is_hub",
    "critical_set",
    "gamma",
    "a_exp",
    "a_gen",
    "a_apx",
    "exp_chain_lower_bound",
    "aexp_interference_bound",
    "optimal_lower_bound_from_gamma",
]
