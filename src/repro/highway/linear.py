"""The linearly connected highway topology ``G_lin``.

Every node (except the extremes) keeps an edge to its nearest neighbour to
the left and to the right — the baseline 1-D topology whose interference
defines the criterion gamma of Algorithm A_apx, and which is the *optimal*
choice on uniformly spaced instances.
"""

from __future__ import annotations

import numpy as np

from repro.model.topology import Topology
from repro.utils import check_positions


def highway_order(positions) -> np.ndarray:
    """Node indices sorted by x (ties by y, then index) — highway order."""
    pos = check_positions(positions)
    return np.lexsort((np.arange(pos.shape[0]), pos[:, 1], pos[:, 0]))


def linear_chain(positions, *, unit: float | None = None) -> Topology:
    """Connect consecutive nodes in highway order.

    With ``unit`` given, edges longer than ``unit`` are omitted (keeping the
    result a valid UDG subgraph; the chain then splits exactly at the UDG's
    component boundaries).
    """
    pos = check_positions(positions)
    order = highway_order(pos)
    rows = []
    for a, b in zip(order, order[1:]):
        if unit is not None:
            d = float(np.hypot(*(pos[a] - pos[b])))
            if d > unit * (1.0 + 1e-12):
                continue
        rows.append((int(min(a, b)), int(max(a, b))))
    return Topology(pos, np.array(rows, dtype=np.int64).reshape(-1, 2))
