"""Parallel sweep runner with content-addressed result caching.

The batching/caching pillar of the roadmap: expand an
experiment/parameter/seed grid into independent tasks
(:func:`expand_grid`), execute them serially or on a process pool
(:func:`run_sweep`), memoize every completed task in an on-disk
content-addressed cache (:class:`ResultCache`) and record a
:class:`RunManifest` per run. See ``docs/PERFORMANCE.md`` for the
architecture, cache-key definition and determinism guarantees, and
``repro sweep --help`` for the CLI.
"""

from repro.runner.cache import (
    DEFAULT_CACHE_DIR,
    ResultCache,
    cache_key,
    code_fingerprint,
    default_cache_dir,
)
from repro.runner.core import (
    MAX_INFLIGHT_PER_WORKER,
    SweepOutcome,
    SweepTask,
    TaskTimeout,
    derive_seeds,
    expand_grid,
    run_sweep,
)
from repro.runner.manifest import RunManifest, TaskRecord
from repro.runner.pool import terminate_pool

__all__ = [
    "DEFAULT_CACHE_DIR",
    "MAX_INFLIGHT_PER_WORKER",
    "ResultCache",
    "RunManifest",
    "SweepOutcome",
    "SweepTask",
    "TaskRecord",
    "TaskTimeout",
    "cache_key",
    "code_fingerprint",
    "default_cache_dir",
    "derive_seeds",
    "expand_grid",
    "run_sweep",
    "terminate_pool",
]
