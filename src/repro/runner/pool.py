"""Forced shutdown for process pools — shared by the sweep runner and server.

``ProcessPoolExecutor`` has no per-task kill switch: a worker stuck in a
long computation keeps ``shutdown(wait=True)`` (and interpreter exit)
blocked until the task returns. Both consumers of pools in this project —
:func:`repro.runner.run_sweep` (task timeouts, Ctrl-C) and the serving
layer (:mod:`repro.serve`, drain timeout) — need a way out that does not
leak workers. :func:`terminate_pool` is that path: cancel everything still
queued, terminate the worker processes, and join them with a bounded
timeout (escalating to ``kill`` for survivors).

It reaches into ``ProcessPoolExecutor._processes`` — a private attribute,
but stable across CPython 3.8–3.13 and the only handle on the workers; the
access is defensive so a future rename degrades to a plain non-blocking
``shutdown`` instead of an AttributeError.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor

#: Per-process join budget after terminate(); survivors are kill()ed.
_JOIN_TIMEOUT_S = 5.0


def terminate_pool(
    pool: ProcessPoolExecutor, *, join_timeout_s: float = _JOIN_TIMEOUT_S
) -> int:
    """Forcefully stop ``pool``, killing worker processes; returns the
    number of processes terminated.

    Safe to call on an already-shut-down pool (no-op) and idempotent: a
    second call finds no live processes. After this the pool object is
    dead — submit raises, and a subsequent ``shutdown()`` returns
    immediately.
    """
    procs = list((getattr(pool, "_processes", None) or {}).values())
    # Stop the feed: nothing queued may start, no new work accepted.
    pool.shutdown(wait=False, cancel_futures=True)
    terminated = 0
    for proc in procs:
        try:
            if proc.is_alive():
                proc.terminate()
                terminated += 1
        except (OSError, ValueError):
            pass
    for proc in procs:
        try:
            proc.join(timeout=join_timeout_s)
            if proc.is_alive():  # ignored SIGTERM: escalate
                proc.kill()
                proc.join(timeout=join_timeout_s)
        except (OSError, ValueError, AssertionError):
            pass
    return terminated
