"""Run manifests: a machine-readable record of one sweep execution.

Every sweep produces a :class:`RunManifest` with one :class:`TaskRecord`
per task — experiment id, resolved kwargs, cache key, whether the task was
served from cache, its wall time and the worker (process id) that executed
it — plus aggregate totals. The CLI writes it as JSON next to the results;
CI uploads it as an artifact and asserts cache behaviour on it.
"""

from __future__ import annotations

import json
import time
from dataclasses import asdict, dataclass, field
from pathlib import Path

from repro.experiments.serialize import encode_jsonable


@dataclass
class TaskRecord:
    """Execution record of one sweep task."""

    index: int
    experiment_id: str
    kwargs: dict
    cache_key: str | None
    cache_hit: bool
    wall_time_s: float
    #: pid of the executing process; "cache" for hits, "main" for inline runs
    worker_id: str
    status: str = "ok"
    error: str | None = None

    def to_jsonable(self) -> dict:
        payload = asdict(self)
        payload["kwargs"] = encode_jsonable(self.kwargs)
        return payload


@dataclass
class RunManifest:
    """Aggregate record of a sweep run (JSON-exportable)."""

    workers: int
    cache_dir: str | None
    created_at: float = field(default_factory=time.time)
    tasks: list[TaskRecord] = field(default_factory=list)
    wall_time_s: float = 0.0

    def add(self, record: TaskRecord) -> None:
        self.tasks.append(record)

    @property
    def n_tasks(self) -> int:
        return len(self.tasks)

    @property
    def n_hits(self) -> int:
        return sum(1 for t in self.tasks if t.cache_hit)

    @property
    def n_misses(self) -> int:
        return sum(1 for t in self.tasks if not t.cache_hit)

    @property
    def n_errors(self) -> int:
        return sum(1 for t in self.tasks if t.status != "ok")

    @property
    def total_task_time_s(self) -> float:
        return sum(t.wall_time_s for t in self.tasks)

    def to_jsonable(self) -> dict:
        return {
            "workers": self.workers,
            "cache_dir": self.cache_dir,
            "created_at": self.created_at,
            "wall_time_s": self.wall_time_s,
            "totals": {
                "tasks": self.n_tasks,
                "cache_hits": self.n_hits,
                "cache_misses": self.n_misses,
                "errors": self.n_errors,
                "task_time_s": self.total_task_time_s,
            },
            "tasks": [t.to_jsonable() for t in sorted(self.tasks, key=lambda t: t.index)],
        }

    def to_json(self) -> str:
        return json.dumps(self.to_jsonable(), indent=2, allow_nan=False)

    def write(self, path: Path | str) -> Path:
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(self.to_json())
        return path

    @classmethod
    def from_jsonable(cls, payload: dict) -> "RunManifest":
        manifest = cls(
            workers=payload["workers"],
            cache_dir=payload.get("cache_dir"),
            created_at=payload.get("created_at", 0.0),
            wall_time_s=payload.get("wall_time_s", 0.0),
        )
        for entry in payload.get("tasks", []):
            manifest.add(
                TaskRecord(
                    index=entry["index"],
                    experiment_id=entry["experiment_id"],
                    kwargs=entry.get("kwargs", {}),
                    cache_key=entry.get("cache_key"),
                    cache_hit=entry.get("cache_hit", False),
                    wall_time_s=entry.get("wall_time_s", 0.0),
                    worker_id=str(entry.get("worker_id", "")),
                    status=entry.get("status", "ok"),
                    error=entry.get("error"),
                )
            )
        return manifest

    @classmethod
    def from_json(cls, text: str) -> "RunManifest":
        return cls.from_jsonable(json.loads(text))
