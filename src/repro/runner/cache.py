"""Content-addressed on-disk cache for experiment results.

A cached entry is keyed by the SHA-256 of a canonical description of the
computation::

    key = sha256({"experiment": id,
                  "kwargs": canonical(kwargs),
                  "code": code_fingerprint(experiment.fn)})

- *kwargs* are canonicalized through the strict JSON encoding (sorted
  keys, tuples as lists), so ``sizes=(10, 20)`` and ``sizes=[10, 20]``
  address the same entry;
- *code fingerprint* is the SHA-256 of the source text of the module that
  defines the experiment function, so editing an experiment invalidates
  exactly its own entries — a cache can never serve results computed by
  code that no longer exists.

Entries are stored as ``<root>/<key[:2]>/<key>.json`` (the payload of
``ExperimentResult.to_jsonable``), written atomically via rename so an
interrupted sweep never leaves a truncated entry behind — re-running the
sweep resumes from the completed tasks.
"""

from __future__ import annotations

import hashlib
import inspect
import json
import os
import sys
from pathlib import Path

from repro.experiments.serialize import canonical_dumps

#: Default cache root (override with the REPRO_CACHE_DIR environment
#: variable or an explicit ``ResultCache(root=...)``).
DEFAULT_CACHE_DIR = ".repro_cache"


def default_cache_dir() -> Path:
    return Path(os.environ.get("REPRO_CACHE_DIR", DEFAULT_CACHE_DIR))


def code_fingerprint(fn) -> str:
    """SHA-256 fingerprint of the code behind a registered experiment.

    Hashes the full source of the module defining ``fn`` (not just the
    function body: experiments lean on module-level helpers and constants).
    Falls back to the compiled bytecode when source is unavailable (frozen
    or REPL-defined functions).
    """
    module = sys.modules.get(fn.__module__)
    try:
        source = inspect.getsource(module) if module is not None else None
    except (OSError, TypeError):
        source = None
    if source is None:
        code = getattr(fn, "__code__", None)
        blob = code.co_code if code is not None else repr(fn).encode()
        return hashlib.sha256(bytes(blob)).hexdigest()
    return hashlib.sha256(source.encode("utf-8")).hexdigest()


def cache_key(experiment_id: str, kwargs: dict, fingerprint: str) -> str:
    canonical = canonical_dumps(
        {"experiment": experiment_id, "kwargs": kwargs or {}, "code": fingerprint}
    )
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


class ResultCache:
    """Filesystem-backed content-addressed store of result payloads."""

    def __init__(self, root: Path | str | None = None):
        self.root = Path(root) if root is not None else default_cache_dir()

    def path_for(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.json"

    def __contains__(self, key: str) -> bool:
        return self.path_for(key).is_file()

    def get(self, key: str) -> dict | None:
        """The stored payload, or ``None`` on miss or corrupt entry."""
        path = self.path_for(key)
        try:
            text = path.read_text()
        except OSError:
            return None
        try:
            payload = json.loads(text)
        except json.JSONDecodeError:
            # a corrupt entry counts as a miss; it will be overwritten
            return None
        return payload if isinstance(payload, dict) else None

    def put(self, key: str, payload: dict) -> Path:
        """Atomically store ``payload`` under ``key``; returns the path."""
        path = self.path_for(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = path.with_name(f".{path.name}.{os.getpid()}.tmp")
        tmp.write_text(json.dumps(payload, allow_nan=False))
        os.replace(tmp, path)
        return path

    def __len__(self) -> int:
        if not self.root.is_dir():
            return 0
        return sum(1 for _ in self.root.glob("??/*.json"))

    def clear(self) -> int:
        """Delete every entry; returns the number removed."""
        removed = 0
        if not self.root.is_dir():
            return removed
        for path in self.root.glob("??/*.json"):
            try:
                path.unlink()
                removed += 1
            except OSError:
                pass
        return removed

    def __repr__(self) -> str:
        return f"ResultCache(root={str(self.root)!r}, entries={len(self)})"
