"""Declarative sweep runner: grid expansion, process-pool execution, cache.

A sweep is a list of :class:`SweepTask` (experiment id + kwargs), usually
produced by :func:`expand_grid` from an experiment/parameter/seed grid.
:func:`run_sweep` executes the tasks

- serially in-process (``workers <= 1``) or on a
  ``concurrent.futures.ProcessPoolExecutor`` with chunked dispatch (at
  most ``workers * max_inflight_per_worker`` tasks in flight, so huge
  grids never materialize their whole future set at once);
- against an optional content-addressed :class:`ResultCache` — warm
  re-runs are pure cache hits, and an interrupted sweep resumes where it
  stopped because every completed task is persisted immediately;
- recording a :class:`RunManifest` entry per task (wall time, cache
  hit/miss, worker id).

Determinism: per-task seeds come from ``numpy.random.SeedSequence(base_seed)
.spawn(n_seeds)`` (:func:`derive_seeds`), so the seed list depends only on
``base_seed`` and ``n_seeds`` — never on worker scheduling — and a parallel
sweep produces byte-identical payloads to a serial one. Workers are
dispatched by experiment *id* (see ``registry.run_payload``) and return
only strictly-JSON-safe payloads, so no experiment closure ever crosses a
pickle boundary.
"""

from __future__ import annotations

import itertools
import os
import time
from collections.abc import Callable, Iterable, Sequence
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from repro import obs
from repro.experiments.registry import ExperimentResult, get, run_payload
from repro.runner.cache import ResultCache, cache_key, code_fingerprint
from repro.runner.manifest import RunManifest, TaskRecord

#: Chunked dispatch: cap on in-flight futures per worker process.
MAX_INFLIGHT_PER_WORKER = 4


@dataclass(frozen=True)
class SweepTask:
    """One unit of sweep work: an experiment id plus resolved kwargs."""

    experiment_id: str
    kwargs: dict = field(default_factory=dict)


@dataclass
class SweepOutcome:
    """Results (in task order) plus the execution manifest."""

    results: list[ExperimentResult]
    manifest: RunManifest


def derive_seeds(base_seed: int, n_seeds: int) -> list[int]:
    """Deterministic per-task seeds via ``SeedSequence.spawn``.

    The k-th seed depends only on ``(base_seed, k)``, so growing a sweep
    from 3 to 5 seeds keeps the first 3 tasks (and their cache entries)
    stable.
    """
    if n_seeds < 0:
        raise ValueError("n_seeds must be >= 0")
    children = np.random.SeedSequence(base_seed).spawn(n_seeds)
    return [int(child.generate_state(1, dtype=np.uint32)[0]) for child in children]


def expand_grid(
    experiment_ids: Iterable[str],
    *,
    params: dict[str, Sequence] | None = None,
    n_seeds: int | None = None,
    base_seed: int = 0,
    seed_kwarg: str = "seed",
) -> list[SweepTask]:
    """Expand an experiment/parameter/seed grid into independent tasks.

    ``params`` maps kwarg names to value lists; the cartesian product over
    sorted kwarg names is taken. With ``n_seeds``, each combination is
    additionally replicated under ``n_seeds`` derived seeds (passed as the
    ``seed_kwarg`` keyword). Task order — and therefore result order — is
    ``experiment x param-combination x seed``, fully deterministic.
    """
    params = params or {}
    names = sorted(params)
    combos = list(itertools.product(*(params[name] for name in names))) or [()]
    seeds: list[int | None] = derive_seeds(base_seed, n_seeds) if n_seeds else [None]
    tasks = []
    for eid in experiment_ids:
        for combo in combos:
            for seed in seeds:
                kwargs = dict(zip(names, combo))
                if seed is not None:
                    kwargs[seed_kwarg] = seed
                tasks.append(SweepTask(eid, kwargs))
    return tasks


def _execute_task(experiment_id: str, kwargs: dict) -> tuple[dict, float, int]:
    """Worker entry point: run one task, return (payload, wall_s, pid)."""
    start = time.perf_counter()
    payload = run_payload(experiment_id, kwargs)
    return payload, time.perf_counter() - start, os.getpid()


def run_sweep(
    tasks: Iterable[SweepTask],
    *,
    workers: int | None = None,
    cache: ResultCache | None = None,
    force: bool = False,
    manifest_path: Path | str | None = None,
    progress: Callable[[TaskRecord], None] | None = None,
    max_inflight_per_worker: int = MAX_INFLIGHT_PER_WORKER,
) -> SweepOutcome:
    """Execute a sweep; see the module docstring for semantics.

    Raises ``RuntimeError`` (chained from the first failure) if any task
    fails — after recording every task in the manifest and persisting all
    successful results, so a re-run resumes rather than recomputes.
    """
    tasks = list(tasks)
    n_workers = max(1, int(workers or 1))
    with obs.span("runner.sweep", tasks=len(tasks), workers=n_workers):
        return _run_sweep(
            tasks,
            n_workers,
            cache=cache,
            force=force,
            manifest_path=manifest_path,
            progress=progress,
            max_inflight_per_worker=max_inflight_per_worker,
        )


def _run_sweep(
    tasks: list[SweepTask],
    n_workers: int,
    *,
    cache: ResultCache | None,
    force: bool,
    manifest_path: Path | str | None,
    progress: Callable[[TaskRecord], None] | None,
    max_inflight_per_worker: int,
) -> SweepOutcome:
    manifest = RunManifest(
        workers=n_workers, cache_dir=str(cache.root) if cache else None
    )
    started = time.perf_counter()

    # Validate ids and fingerprint each experiment's code up front.
    fingerprints: dict[str, str] = {}
    keys: list[str | None] = []
    for task in tasks:
        experiment = get(task.experiment_id)
        if cache is not None:
            fingerprint = fingerprints.get(task.experiment_id)
            if fingerprint is None:
                fingerprint = code_fingerprint(experiment.fn)
                fingerprints[task.experiment_id] = fingerprint
            keys.append(cache_key(task.experiment_id, task.kwargs, fingerprint))
        else:
            keys.append(None)

    payloads: list[dict | None] = [None] * len(tasks)
    errors: list[tuple[SweepTask, BaseException]] = []

    def record(index: int, *, hit: bool, wall: float, worker: str,
               error: BaseException | None = None) -> None:
        entry = TaskRecord(
            index=index,
            experiment_id=tasks[index].experiment_id,
            kwargs=tasks[index].kwargs,
            cache_key=keys[index],
            cache_hit=hit,
            wall_time_s=wall,
            worker_id=worker,
            status="ok" if error is None else "error",
            error=None if error is None else repr(error),
        )
        manifest.add(entry)
        # One span per manifest entry, with the *same* wall time, so a
        # trace export reconciles 1:1 with the manifest (index + duration).
        obs.count("runner.cache.hit" if hit else "runner.cache.miss")
        obs.record_span(
            "runner.task",
            wall,
            index=index,
            experiment_id=tasks[index].experiment_id,
            cache_hit=hit,
            worker=worker,
            status=entry.status,
        )
        if progress is not None:
            progress(entry)

    # Phase 1: serve cache hits.
    pending: list[int] = []
    for index, key in enumerate(keys):
        if cache is not None and not force:
            t0 = time.perf_counter()
            payload = cache.get(key)
            if payload is not None:
                payloads[index] = payload
                record(index, hit=True, wall=time.perf_counter() - t0, worker="cache")
                continue
        pending.append(index)

    # Phase 2: execute the misses.
    def finish(index: int, payload: dict, wall: float, worker: str) -> None:
        payloads[index] = payload
        if cache is not None:
            cache.put(keys[index], payload)
        record(index, hit=False, wall=wall, worker=worker)

    if n_workers == 1:
        for index in pending:
            task = tasks[index]
            t0 = time.perf_counter()
            try:
                payload = run_payload(task.experiment_id, task.kwargs)
            except Exception as exc:  # record, keep going, raise at the end
                errors.append((task, exc))
                record(index, hit=False, wall=time.perf_counter() - t0,
                       worker="main", error=exc)
                continue
            finish(index, payload, time.perf_counter() - t0, worker="main")
    elif pending:
        max_inflight = max(n_workers, n_workers * max_inflight_per_worker)
        with ProcessPoolExecutor(max_workers=n_workers) as pool:
            inflight = {}
            queue = iter(pending)
            exhausted = False
            while inflight or not exhausted:
                while not exhausted and len(inflight) < max_inflight:
                    index = next(queue, None)
                    if index is None:
                        exhausted = True
                        break
                    task = tasks[index]
                    future = pool.submit(_execute_task, task.experiment_id, task.kwargs)
                    inflight[future] = index
                if not inflight:
                    break
                done, _ = wait(inflight, return_when=FIRST_COMPLETED)
                for future in done:
                    index = inflight.pop(future)
                    exc = future.exception()
                    if exc is not None:
                        errors.append((tasks[index], exc))
                        record(index, hit=False, wall=0.0, worker="pool", error=exc)
                        continue
                    payload, wall, pid = future.result()
                    finish(index, payload, wall, worker=str(pid))

    manifest.wall_time_s = time.perf_counter() - started
    if manifest_path is not None:
        manifest.write(manifest_path)

    if errors:
        task, first = errors[0]
        raise RuntimeError(
            f"{len(errors)} sweep task(s) failed; first: "
            f"{task.experiment_id} kwargs={task.kwargs!r}"
        ) from first

    results = [ExperimentResult.from_jsonable(payload) for payload in payloads]
    return SweepOutcome(results=results, manifest=manifest)
