"""Declarative sweep runner: grid expansion, process-pool execution, cache.

A sweep is a list of :class:`SweepTask` (experiment id + kwargs), usually
produced by :func:`expand_grid` from an experiment/parameter/seed grid.
:func:`run_sweep` executes the tasks

- serially in-process (``workers <= 1``) or on a
  ``concurrent.futures.ProcessPoolExecutor`` with chunked dispatch (at
  most ``workers * max_inflight_per_worker`` tasks in flight, so huge
  grids never materialize their whole future set at once);
- against an optional content-addressed :class:`ResultCache` — warm
  re-runs are pure cache hits, and an interrupted sweep resumes where it
  stopped because every completed task is persisted immediately;
- recording a :class:`RunManifest` entry per task (wall time, cache
  hit/miss, worker id).

Determinism: per-task seeds come from ``numpy.random.SeedSequence(base_seed)
.spawn(n_seeds)`` (:func:`derive_seeds`), so the seed list depends only on
``base_seed`` and ``n_seeds`` — never on worker scheduling — and a parallel
sweep produces byte-identical payloads to a serial one. Workers are
dispatched by experiment *id* (see ``registry.run_payload``) and return
only strictly-JSON-safe payloads, so no experiment closure ever crosses a
pickle boundary.

Timeouts and interruption
-------------------------
Tasks may carry a wall-clock budget (``SweepTask.timeout_s``, or the
sweep-wide ``task_timeout_s`` default). In pool mode an expired task is
recorded in the manifest with ``status="timeout"`` and its worker process
is terminated (the pool is respawned and surviving in-flight tasks are
resubmitted), so one runaway task can neither hang the sweep nor leak a
worker. In serial mode the task cannot be preempted; it is marked
``"timeout"`` *post hoc* and its result discarded, keeping the manifest
semantics identical. ``KeyboardInterrupt`` (or any other
``BaseException``) cancels outstanding futures, force-terminates the pool
(:func:`repro.runner.pool.terminate_pool` — the same shutdown path the
serving layer uses), flushes the partial manifest to ``manifest_path``
and re-raises, so Ctrl-C exits promptly with a resumable record on disk.
"""

from __future__ import annotations

import itertools
import os
import time
from collections.abc import Callable, Iterable, Sequence
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from repro import obs
from repro.experiments.registry import ExperimentResult, get, run_payload
from repro.runner.cache import ResultCache, cache_key, code_fingerprint
from repro.runner.manifest import RunManifest, TaskRecord
from repro.runner.pool import terminate_pool

#: Chunked dispatch: cap on in-flight futures per worker process.
MAX_INFLIGHT_PER_WORKER = 4


@dataclass(frozen=True)
class SweepTask:
    """One unit of sweep work: an experiment id plus resolved kwargs.

    ``timeout_s`` is an optional per-task wall-clock budget; ``None``
    defers to ``run_sweep(..., task_timeout_s=...)`` (and ``None`` there
    means unlimited). See the module docstring for enforcement semantics.
    """

    experiment_id: str
    kwargs: dict = field(default_factory=dict)
    timeout_s: float | None = None


@dataclass
class SweepOutcome:
    """Results (in task order) plus the execution manifest."""

    results: list[ExperimentResult]
    manifest: RunManifest


def derive_seeds(base_seed: int, n_seeds: int) -> list[int]:
    """Deterministic per-task seeds via ``SeedSequence.spawn``.

    The k-th seed depends only on ``(base_seed, k)``, so growing a sweep
    from 3 to 5 seeds keeps the first 3 tasks (and their cache entries)
    stable.
    """
    if n_seeds < 0:
        raise ValueError("n_seeds must be >= 0")
    children = np.random.SeedSequence(base_seed).spawn(n_seeds)
    return [int(child.generate_state(1, dtype=np.uint32)[0]) for child in children]


def expand_grid(
    experiment_ids: Iterable[str],
    *,
    params: dict[str, Sequence] | None = None,
    n_seeds: int | None = None,
    base_seed: int = 0,
    seed_kwarg: str = "seed",
) -> list[SweepTask]:
    """Expand an experiment/parameter/seed grid into independent tasks.

    ``params`` maps kwarg names to value lists; the cartesian product over
    sorted kwarg names is taken. With ``n_seeds``, each combination is
    additionally replicated under ``n_seeds`` derived seeds (passed as the
    ``seed_kwarg`` keyword). Task order — and therefore result order — is
    ``experiment x param-combination x seed``, fully deterministic.
    """
    params = params or {}
    names = sorted(params)
    combos = list(itertools.product(*(params[name] for name in names))) or [()]
    seeds: list[int | None] = derive_seeds(base_seed, n_seeds) if n_seeds else [None]
    tasks = []
    for eid in experiment_ids:
        for combo in combos:
            for seed in seeds:
                kwargs = dict(zip(names, combo))
                if seed is not None:
                    kwargs[seed_kwarg] = seed
                tasks.append(SweepTask(eid, kwargs))
    return tasks


def _execute_task(experiment_id: str, kwargs: dict) -> tuple[dict, float, int]:
    """Worker entry point: run one task, return (payload, wall_s, pid)."""
    start = time.perf_counter()
    payload = run_payload(experiment_id, kwargs)
    return payload, time.perf_counter() - start, os.getpid()


class TaskTimeout(RuntimeError):
    """A sweep task exceeded its wall-clock budget."""


def run_sweep(
    tasks: Iterable[SweepTask],
    *,
    workers: int | None = None,
    cache: ResultCache | None = None,
    force: bool = False,
    manifest_path: Path | str | None = None,
    progress: Callable[[TaskRecord], None] | None = None,
    max_inflight_per_worker: int = MAX_INFLIGHT_PER_WORKER,
    task_timeout_s: float | None = None,
) -> SweepOutcome:
    """Execute a sweep; see the module docstring for semantics.

    Raises ``RuntimeError`` (chained from the first failure) if any task
    fails or times out — after recording every task in the manifest and
    persisting all successful results, so a re-run resumes rather than
    recomputes.
    """
    tasks = list(tasks)
    n_workers = max(1, int(workers or 1))
    if task_timeout_s is not None and task_timeout_s <= 0:
        raise ValueError("task_timeout_s must be positive (or None)")
    with obs.span("runner.sweep", tasks=len(tasks), workers=n_workers):
        return _run_sweep(
            tasks,
            n_workers,
            cache=cache,
            force=force,
            manifest_path=manifest_path,
            progress=progress,
            max_inflight_per_worker=max_inflight_per_worker,
            task_timeout_s=task_timeout_s,
        )


def _run_sweep(
    tasks: list[SweepTask],
    n_workers: int,
    *,
    cache: ResultCache | None,
    force: bool,
    manifest_path: Path | str | None,
    progress: Callable[[TaskRecord], None] | None,
    max_inflight_per_worker: int,
    task_timeout_s: float | None = None,
) -> SweepOutcome:
    manifest = RunManifest(
        workers=n_workers, cache_dir=str(cache.root) if cache else None
    )
    started = time.perf_counter()

    def flush_manifest() -> None:
        manifest.wall_time_s = time.perf_counter() - started
        if manifest_path is not None:
            manifest.write(manifest_path)

    # Validate ids and fingerprint each experiment's code up front.
    fingerprints: dict[str, str] = {}
    keys: list[str | None] = []
    for task in tasks:
        experiment = get(task.experiment_id)
        if cache is not None:
            fingerprint = fingerprints.get(task.experiment_id)
            if fingerprint is None:
                fingerprint = code_fingerprint(experiment.fn)
                fingerprints[task.experiment_id] = fingerprint
            keys.append(cache_key(task.experiment_id, task.kwargs, fingerprint))
        else:
            keys.append(None)

    def timeout_for(index: int) -> float | None:
        own = tasks[index].timeout_s
        return own if own is not None else task_timeout_s

    payloads: list[dict | None] = [None] * len(tasks)
    errors: list[tuple[SweepTask, BaseException]] = []

    def record(index: int, *, hit: bool, wall: float, worker: str,
               error: BaseException | None = None,
               status: str | None = None) -> None:
        if status is None:
            status = "ok" if error is None else "error"
        entry = TaskRecord(
            index=index,
            experiment_id=tasks[index].experiment_id,
            kwargs=tasks[index].kwargs,
            cache_key=keys[index],
            cache_hit=hit,
            wall_time_s=wall,
            worker_id=worker,
            status=status,
            error=None if error is None else repr(error),
        )
        manifest.add(entry)
        # One span per manifest entry, with the *same* wall time, so a
        # trace export reconciles 1:1 with the manifest (index + duration).
        obs.count("runner.cache.hit" if hit else "runner.cache.miss")
        if status == "timeout":
            obs.count("runner.task.timeout")
        obs.record_span(
            "runner.task",
            wall,
            index=index,
            experiment_id=tasks[index].experiment_id,
            cache_hit=hit,
            worker=worker,
            status=entry.status,
        )
        if progress is not None:
            progress(entry)

    # Phase 1: serve cache hits.
    pending: list[int] = []
    for index, key in enumerate(keys):
        if cache is not None and not force:
            t0 = time.perf_counter()
            payload = cache.get(key)
            if payload is not None:
                payloads[index] = payload
                record(index, hit=True, wall=time.perf_counter() - t0, worker="cache")
                continue
        pending.append(index)

    # Phase 2: execute the misses.
    def finish(index: int, payload: dict, wall: float, worker: str) -> None:
        payloads[index] = payload
        if cache is not None:
            cache.put(keys[index], payload)
        record(index, hit=False, wall=wall, worker=worker)

    try:
        if n_workers == 1:
            _run_serial(tasks, pending, timeout_for, finish, record, errors)
        elif pending:
            _run_pool(
                tasks,
                pending,
                n_workers,
                max(n_workers, n_workers * max_inflight_per_worker),
                timeout_for,
                finish,
                record,
                errors,
            )
    except BaseException:
        # Ctrl-C (or a raising progress callback): the partial manifest is
        # flushed so the sweep is resumable, then the interrupt propagates
        # for a nonzero exit.
        flush_manifest()
        raise

    flush_manifest()

    if errors:
        task, first = errors[0]
        raise RuntimeError(
            f"{len(errors)} sweep task(s) failed; first: "
            f"{task.experiment_id} kwargs={task.kwargs!r}"
        ) from first

    results = [ExperimentResult.from_jsonable(payload) for payload in payloads]
    return SweepOutcome(results=results, manifest=manifest)


def _run_serial(tasks, pending, timeout_for, finish, record, errors) -> None:
    for index in pending:
        task = tasks[index]
        t0 = time.perf_counter()
        try:
            payload = run_payload(task.experiment_id, task.kwargs)
        except Exception as exc:  # record, keep going, raise at the end
            errors.append((task, exc))
            record(index, hit=False, wall=time.perf_counter() - t0,
                   worker="main", error=exc)
            continue
        wall = time.perf_counter() - t0
        limit = timeout_for(index)
        if limit is not None and wall > limit:
            # Serial execution cannot preempt; mark post hoc and discard
            # the result so the manifest agrees with pool-mode semantics.
            exc = TaskTimeout(
                f"{task.experiment_id} took {wall:.3f}s (budget {limit:g}s)"
            )
            errors.append((task, exc))
            record(index, hit=False, wall=wall, worker="main",
                   error=exc, status="timeout")
            continue
        finish(index, payload, wall, worker="main")


def _run_pool(
    tasks, pending, n_workers, max_inflight, timeout_for, finish, record, errors
) -> None:
    pool = ProcessPoolExecutor(max_workers=n_workers)
    inflight: dict = {}  # future -> index
    deadlines: dict = {}  # future -> absolute perf_counter deadline (or None)
    queue = iter(pending)
    exhausted = False

    def submit(index: int) -> None:
        task = tasks[index]
        future = pool.submit(_execute_task, task.experiment_id, task.kwargs)
        inflight[future] = index
        limit = timeout_for(index)
        deadlines[future] = (
            None if limit is None else time.perf_counter() + limit
        )

    try:
        while inflight or not exhausted:
            while not exhausted and len(inflight) < max_inflight:
                index = next(queue, None)
                if index is None:
                    exhausted = True
                    break
                submit(index)
            if not inflight:
                break
            waits = [d for d in deadlines.values() if d is not None]
            wait_s = (
                None if not waits
                else max(0.0, min(waits) - time.perf_counter())
            )
            done, _ = wait(inflight, timeout=wait_s, return_when=FIRST_COMPLETED)
            for future in done:
                index = inflight.pop(future)
                deadlines.pop(future, None)
                exc = future.exception()
                if exc is not None:
                    errors.append((tasks[index], exc))
                    record(index, hit=False, wall=0.0, worker="pool", error=exc)
                    continue
                payload, wall, pid = future.result()
                finish(index, payload, wall, worker=str(pid))

            # Expire overdue tasks (budget measured from submission).
            now = time.perf_counter()
            expired = [
                f for f, d in deadlines.items() if d is not None and now >= d
            ]
            must_respawn = False
            for future in expired:
                index = inflight.pop(future)
                deadlines.pop(future, None)
                task = tasks[index]
                limit = timeout_for(index)
                exc = TaskTimeout(
                    f"{task.experiment_id} exceeded its {limit:g}s budget"
                )
                errors.append((task, exc))
                record(index, hit=False, wall=float(limit), worker="pool",
                       error=exc, status="timeout")
                if not future.cancel():
                    # Already running on a worker we cannot reclaim.
                    must_respawn = True
            if must_respawn:
                # Kill the stuck worker(s) by replacing the whole pool;
                # innocent in-flight tasks are resubmitted to the new one.
                survivors = sorted(inflight.values())
                terminate_pool(pool)
                pool = ProcessPoolExecutor(max_workers=n_workers)
                inflight.clear()
                deadlines.clear()
                for index in survivors:
                    submit(index)
    except BaseException:
        for future in inflight:
            future.cancel()
        terminate_pool(pool)
        raise
    finally:
        pool.shutdown(wait=True, cancel_futures=True)
