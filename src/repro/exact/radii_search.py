"""Exact minimum-interference connected topology via branch and bound.

Key reduction: interference depends on the chosen topology only through the
per-node radii ``r_u``, and for a fixed radius vector the *maximal*
admissible edge set ``E(r) = { {u, v} : |u, v| <= min(r_u, r_v) }`` is the
easiest to connect while leaving the interference unchanged. The optimum is
therefore::

    OPT = min { I(r) : r_u in {distances from u}, E(r) connected }

searched by assigning nodes a candidate radius each (distances to the other
nodes, capped at the unit range) in depth-first order with two prunings:

- **coverage pruning** — coverage counts only grow as radii are assigned,
  so any victim exceeding the target ``k`` kills the subtree;
- **forced-coverage pruning** — every unassigned node must take at least
  its nearest-neighbour distance (otherwise it is isolated), so its minimal
  future disk contribution is added before descending.

The decision procedure is wrapped in an incremental search on ``k``
starting from the certified lower bound ``max(1, ...)``. Exponential in the
worst case — intended for ``n`` up to ~12 (tests use <= 10); for larger
instances use the closed-form lower bounds of :mod:`repro.highway.bounds`.
"""

from __future__ import annotations

import numpy as np

from repro.geometry.points import distance_matrix
from repro.graphs.unionfind import DisjointSet
from repro.model.topology import Topology
from repro.utils import check_positions

#: Hard cap on instance size — beyond this the search space is hopeless.
MAX_NODES = 16


def _candidate_radii(dist: np.ndarray, unit: float) -> list[np.ndarray]:
    """Per node, the sorted distinct candidate radii (> 0, <= unit)."""
    n = dist.shape[0]
    out = []
    for u in range(n):
        d = np.unique(dist[u])
        d = d[(d > 0) & (d <= unit * (1.0 + 1e-12))]
        out.append(d)
    return out


def _connected_under(dist: np.ndarray, radii: np.ndarray, unit: float) -> bool:
    n = dist.shape[0]
    ds = DisjointSet(n)
    for u in range(n):
        for v in range(u + 1, n):
            if dist[u, v] <= min(radii[u], radii[v]) * (1.0 + 1e-12):
                ds.union(u, v)
                if ds.n_components == 1:
                    return True
    return ds.n_components == 1


def feasible_with_interference(
    positions, k: int, *, unit: float = 1.0, isolation_pruning: bool = True
) -> np.ndarray | None:
    """Radius vector achieving a connected topology with ``I <= k``, or None.

    ``isolation_pruning=False`` disables the partner-feasibility prune —
    kept only for the ablation benchmark that quantifies its value.
    """
    pos = check_positions(positions)
    n = pos.shape[0]
    if n > MAX_NODES:
        raise ValueError(f"exact search limited to n <= {MAX_NODES}, got {n}")
    if n <= 1:
        return np.zeros(n, dtype=np.float64)
    dist = distance_matrix(pos)
    cands = _candidate_radii(dist, unit)
    if any(c.size == 0 for c in cands):
        return None  # some node cannot reach anybody: never connectable

    # coverage masks: cover[u][j] = boolean row of nodes covered by u at
    # candidate radius j (self excluded)
    cover = []
    for u in range(n):
        rows = dist[u][None, :] <= cands[u][:, None] * (1.0 + 1e-12)
        rows[:, u] = False
        cover.append(rows)

    # minimal forced coverage of each still-unassigned node (its smallest disk)
    forced = np.array([cover[u][0] for u in range(n)], dtype=np.int64)
    forced_suffix = np.zeros((n + 1, n), dtype=np.int64)
    for u in range(n - 1, -1, -1):
        forced_suffix[u] = forced_suffix[u + 1] + forced[u]

    counts = np.zeros(n, dtype=np.int64)
    chosen = np.zeros(n, dtype=np.float64)
    tol = 1.0 + 1e-12

    def _admits_partner(v: int, u_done: int) -> bool:
        rv = chosen[v] * tol
        for w in range(n):
            if w == v or dist[v, w] > rv:
                continue
            if w > u_done or chosen[w] * tol >= dist[v, w]:
                return True
        return False

    def isolation_ok(u_done: int) -> bool:
        """Every assigned node must still admit at least one partner.

        A partner of ``v`` is some ``w`` with ``d(v, w) <= r_v`` whose own
        radius is either still free or already large enough. Radii are
        fixed once assigned, so a node failing this can never get an edge
        and the whole subtree is infeasible. Incremental: besides the new
        node itself, only earlier nodes whose disk reaches the new node
        (and is not reached back) can have lost their last partner.
        """
        if not _admits_partner(u_done, u_done):
            return False
        ru = chosen[u_done] * tol
        for v in range(u_done):
            if dist[v, u_done] <= chosen[v] * tol and ru < dist[v, u_done]:
                if not _admits_partner(v, u_done):
                    return False
        return True

    def dfs(u: int) -> bool:
        if u == n:
            return _connected_under(dist, chosen, unit)
        # forced-future pruning: remaining nodes each cover at least their
        # smallest disk
        if np.any(counts + forced_suffix[u] > k):
            return False
        for j in range(cands[u].size):
            add = cover[u][j].astype(np.int64)
            counts_new = counts + add
            if counts_new.max() > k:
                # larger radii cover supersets: all further j fail too
                break
            counts[:] = counts_new
            chosen[u] = cands[u][j]
            if (not isolation_pruning or isolation_ok(u)) and dfs(u + 1):
                return True
            counts[:] = counts_new - add
        chosen[u] = 0.0
        return False

    if dfs(0):
        return chosen.copy()
    return None


def minimum_interference(
    positions, *, unit: float = 1.0, k_max: int | None = None
) -> tuple[int, Topology]:
    """Optimal interference value and a witness topology (maximal ``E(r)``).

    Searches ``k = 1, 2, ...`` until the decision procedure succeeds. The
    returned topology's *derived* radii can only shrink relative to the
    witness assignment, so its measured interference equals the optimum
    (asserted by the test suite). Raises ``RuntimeError`` if ``k_max`` is
    exhausted (only possible when the UDG itself is disconnected).
    """
    pos = check_positions(positions)
    n = pos.shape[0]
    if n <= 1:
        return 0, Topology(pos, ())
    if k_max is None:
        k_max = n - 1
    dist = distance_matrix(pos)
    for k in range(1, k_max + 1):
        radii = feasible_with_interference(pos, k, unit=unit)
        if radii is not None:
            edges = [
                (u, v)
                for u in range(n)
                for v in range(u + 1, n)
                if dist[u, v] <= min(radii[u], radii[v]) * (1.0 + 1e-12)
            ]
            return k, Topology(pos, np.array(edges, dtype=np.int64))
    raise RuntimeError(
        f"no connected topology with interference <= {k_max}; "
        "is the unit disk graph connected?"
    )
