"""Exact minimum-interference topologies for small instances."""

from repro.exact.radii_search import minimum_interference, feasible_with_interference

__all__ = ["minimum_interference", "feasible_with_interference"]
