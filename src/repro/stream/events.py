"""Typed membership events and seeded event-stream workloads.

The event vocabulary is the churn vocabulary of the paper's robustness
argument, made explicit and serializable:

- ``join``  — a node appears at ``(x, y)`` with coverage radius ``r``;
- ``leave`` — a node disappears (its disk stops covering anyone);
- ``move``  — a node relocates to ``(x, y)`` (optionally with a new
  radius), equivalent to leave+join but applied as one atomic event.

Events are pure data: they carry no sequence number. The engine (or the
durable log) assigns monotonic seqnos at apply/append time, which keeps
the same event list replayable into any engine.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.utils import as_generator

EVENT_KINDS = ("join", "leave", "move")

#: Workload families for :func:`random_stream_events` (the three topology
#: families the recovery property tests sweep).
EVENT_FAMILIES = ("uniform", "clustered", "mobile")


@dataclass(frozen=True, slots=True)
class StreamEvent:
    """One membership event (see the module docstring).

    ``x``/``y``/``r`` are required for ``join``; ``move`` requires
    ``x``/``y`` and may carry a new ``r`` (``None`` keeps the current
    radius); ``leave`` carries only ``node``.
    """

    kind: str
    node: int
    x: float | None = None
    y: float | None = None
    r: float | None = None

    def __post_init__(self):
        if self.kind not in EVENT_KINDS:
            raise ValueError(
                f"unknown event kind {self.kind!r}; known: {list(EVENT_KINDS)}"
            )
        if self.node < 0:
            raise ValueError("node must be >= 0")
        if self.kind in ("join", "move"):
            if self.x is None or self.y is None:
                raise ValueError(f"{self.kind} events need x and y")
            if not (math.isfinite(self.x) and math.isfinite(self.y)):
                raise ValueError("event coordinates must be finite")
        if self.kind == "join" and self.r is None:
            raise ValueError("join events need a radius")
        if self.r is not None and not (math.isfinite(self.r) and self.r >= 0):
            raise ValueError("event radius must be finite and >= 0")

    def to_jsonable(self) -> dict:
        out: dict = {"kind": self.kind, "node": self.node}
        if self.x is not None:
            out["x"] = self.x
            out["y"] = self.y
        if self.r is not None:
            out["r"] = self.r
        return out

    def to_wal_json(self) -> str:
        """Compact JSON, built directly (the hot WAL-append path).

        Byte-identical to ``json.dumps(self.to_jsonable(),
        separators=(",", ":"))``: same key order, and Python's shortest
        float ``repr`` is exactly what ``json.dumps`` emits. Skipping the
        dict + encoder machinery roughly halves per-event append cost.
        """
        if self.x is None:
            return f'{{"kind":"{self.kind}","node":{self.node}}}'
        if self.r is None:
            return (
                f'{{"kind":"{self.kind}","node":{self.node}'
                f',"x":{self.x!r},"y":{self.y!r}}}'
            )
        return (
            f'{{"kind":"{self.kind}","node":{self.node}'
            f',"x":{self.x!r},"y":{self.y!r},"r":{self.r!r}}}'
        )

    def wal_payload(self, seq: int) -> str:
        """The WAL payload for this event at seqno ``seq``: a compact JSON
        row ``[seq, kind, node, x, y, r]`` with absent fields dropped from
        the tail, built as one f-string.

        Serialization is the second-largest term in the ingest budget
        after the engine itself; the row form keeps most records inside a
        single SHA-256 block and skips the object-key overhead. Inverse:
        :meth:`from_wal_record`.
        """
        if self.x is None:
            return f'[{seq},"{self.kind}",{self.node}]'
        if self.r is None:
            return (
                f'[{seq},"{self.kind}",{self.node},{self.x!r},{self.y!r}]'
            )
        return (
            f'[{seq},"{self.kind}",{self.node}'
            f',{self.x!r},{self.y!r},{self.r!r}]'
        )

    @classmethod
    def from_wal_record(cls, rec) -> tuple[int, "StreamEvent"]:
        """Parse one scanned WAL record into ``(seq, event)`` — the
        inverse of :meth:`wal_payload`. Also accepts the object form
        ``{"seq": n, "ev": {...}}`` so externally produced logs replay."""
        if isinstance(rec, dict):
            return int(rec["seq"]), cls.from_jsonable(rec["ev"])
        n = len(rec)
        return int(rec[0]), cls(
            kind=rec[1],
            node=int(rec[2]),
            x=rec[3] if n > 3 else None,
            y=rec[4] if n > 4 else None,
            r=rec[5] if n > 5 else None,
        )

    @classmethod
    def from_jsonable(cls, payload: dict) -> "StreamEvent":
        return cls(
            kind=payload["kind"],
            node=int(payload["node"]),
            x=payload.get("x"),
            y=payload.get("y"),
            r=payload.get("r"),
        )


def random_stream_events(
    n_events: int,
    *,
    capacity: int,
    side: float,
    r_max: float,
    seed=None,
    family: str = "uniform",
    p_leave: float = 0.2,
    p_move: float = 0.3,
    r_range: tuple[float, float] = (0.2, 1.0),
    n_clusters: int = 5,
) -> list[StreamEvent]:
    """A seeded, well-formed event stream over a ``capacity``-node universe.

    Well-formed means every event is applicable in order: joins pick free
    node ids, leaves/moves pick currently-alive ids, and the stream is a
    pure function of its arguments — the property the chaos harness and
    the CI smoke job rely on to recompute reference states from the seed
    alone.

    ``family`` selects the position distribution:

    - ``uniform``   — positions i.i.d. uniform in ``[0, side]^2``;
    - ``clustered`` — positions gaussian around ``n_clusters`` seeded
      centres (dense neighbourhoods stress the per-event delta fan-out);
    - ``mobile``    — uniform positions but a move-heavy mix (moves are
      the compound leave+join path).

    Radii are drawn uniform in ``r_range`` (fractions of ``r_max``).

    Coordinates and radii are quantized to 6 decimals — the precision a
    real positioning source delivers — which keeps their shortest float
    ``repr`` (and hence every WAL payload and snapshot) compact. The
    engine is exact on whatever floats the events carry, so quantization
    changes nothing about the bit-identical replay guarantee.
    """
    if n_events < 1:
        raise ValueError("n_events must be >= 1")
    if capacity < 2:
        raise ValueError("capacity must be >= 2")
    if side <= 0 or r_max <= 0:
        raise ValueError("side and r_max must be positive")
    if family not in EVENT_FAMILIES:
        raise ValueError(
            f"unknown family {family!r}; known: {list(EVENT_FAMILIES)}"
        )
    lo, hi = r_range
    if not 0 <= lo <= hi <= 1:
        raise ValueError("r_range must satisfy 0 <= lo <= hi <= 1")
    if family == "mobile":
        p_leave, p_move = 0.1, 0.6
    if p_leave < 0 or p_move < 0 or p_leave + p_move >= 1:
        raise ValueError("p_leave + p_move must be < 1 (remainder joins)")

    rng = as_generator(seed)
    centers = rng.uniform(0.15 * side, 0.85 * side, size=(max(n_clusters, 1), 2))
    spread = side / 12.0

    def draw_position() -> tuple[float, float]:
        if family == "clustered":
            c = centers[int(rng.integers(centers.shape[0]))]
            x = float(np.clip(c[0] + rng.normal(0.0, spread), 0.0, side))
            y = float(np.clip(c[1] + rng.normal(0.0, spread), 0.0, side))
            return round(x, 6), round(y, 6)
        return (
            round(float(rng.uniform(0.0, side)), 6),
            round(float(rng.uniform(0.0, side)), 6),
        )

    free = list(range(capacity - 1, -1, -1))  # stack: pop() yields 0, 1, ...
    alive: list[int] = []
    alive_pos: dict[int, int] = {}
    events: list[StreamEvent] = []

    def remove_alive(idx: int) -> int:
        node = alive[idx]
        last = alive[-1]
        alive[idx] = last
        alive_pos[last] = idx
        alive.pop()
        del alive_pos[node]
        return node

    for _ in range(n_events):
        u = float(rng.random())
        if u < p_leave:
            kind = "leave"
        elif u < p_leave + p_move:
            kind = "move"
        else:
            kind = "join"
        if kind != "join" and not alive:
            kind = "join"  # nothing to leave/move yet
        if kind == "join" and not free:
            kind = "move"  # universe full: churn in place
        if kind == "leave":
            node = remove_alive(int(rng.integers(len(alive))))
            free.append(node)
            events.append(StreamEvent("leave", node))
        elif kind == "move":
            node = alive[int(rng.integers(len(alive)))]
            x, y = draw_position()
            events.append(StreamEvent("move", node, x=x, y=y))
        else:
            node = free.pop()
            alive_pos[node] = len(alive)
            alive.append(node)
            x, y = draw_position()
            # quantize, clamping: rounding up past r_max would be rejected
            r = min(round(float(r_max * rng.uniform(lo, hi)), 6), r_max)
            events.append(StreamEvent("join", node, x=x, y=y, r=r))
    return events
