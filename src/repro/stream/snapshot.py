"""Atomic, checksummed full-state snapshots for the durable engine.

A snapshot is one file ``snapshot-<seq>.json`` holding a single WAL-style
frame (``<len> <sha256> <json>\\n``) whose payload is the engine's sparse
full state plus the last applied seqno. Snapshots are written to a temp
file in the same directory, fsynced, then ``os.replace``d into place —
so a crash mid-snapshot never yields a half-written file under the final
name, and the frame checksum catches the residual cases (e.g. a torn
temp file surviving a rename on a non-atomic filesystem).

Recovery picks the newest snapshot that *verifies*; a corrupt or torn
newest snapshot silently falls back to its predecessor, which is why
``StreamConfig.keep_snapshots`` is at least 2.
"""

from __future__ import annotations

import os
import re
from pathlib import Path

from repro import obs
from repro.stream.wal import _check_frame, frame_record

__all__ = [
    "latest_snapshot",
    "list_snapshots",
    "load_snapshot",
    "newest_snapshot_seq",
    "prune_snapshots",
    "write_snapshot",
]

_SNAP_RE = re.compile(r"^snapshot-(\d+)\.json$")


def snapshot_path(directory: str | Path, seq: int) -> Path:
    return Path(directory) / f"snapshot-{seq}.json"


def write_snapshot(
    directory: str | Path, seq: int, state_json: str, *, fsync: bool = True
) -> Path:
    """Atomically persist one framed snapshot; returns its final path."""
    directory = Path(directory)
    final = snapshot_path(directory, seq)
    tmp = directory / f".snapshot-{seq}.tmp"
    frame = frame_record(state_json)
    with open(tmp, "wb") as f:
        f.write(frame)
        f.flush()
        if fsync:
            os.fsync(f.fileno())
    os.replace(tmp, final)
    if fsync:
        # make the rename itself durable
        dfd = os.open(directory, os.O_RDONLY)
        try:
            os.fsync(dfd)
        finally:
            os.close(dfd)
    obs.count("stream.snapshots")
    return final


def list_snapshots(directory: str | Path) -> list[tuple[int, Path]]:
    """``(seq, path)`` for every snapshot file, ascending by seq."""
    out = []
    for p in Path(directory).iterdir():
        m = _SNAP_RE.match(p.name)
        if m:
            out.append((int(m.group(1)), p))
    out.sort()
    return out


def load_snapshot(path: str | Path) -> str | None:
    """The snapshot's payload JSON string, or None if it fails to verify."""
    data = Path(path).read_bytes()
    if not data.endswith(b"\n"):
        return None
    line = data[:-1]
    if b"\n" in line or _check_frame(line) is not None:
        return None
    sp1 = line.index(b" ")
    return line[sp1 + 1 + 64 + 1 :].decode("utf-8")


def latest_snapshot(directory: str | Path) -> tuple[int, str] | None:
    """``(seq, payload_json)`` of the newest snapshot that verifies.

    Walks newest-to-oldest, skipping snapshots that fail their checksum
    (crash-mid-snapshot leftovers); None when no valid snapshot exists.
    """
    for seq, path in reversed(list_snapshots(directory)):
        payload = load_snapshot(path)
        if payload is not None:
            return seq, payload
    return None


def newest_snapshot_seq(directory: str | Path) -> int:
    """Seq of the newest *verifying* snapshot, or 0 when none exists.

    This is the compaction cover: every log record with seq at or below
    it is reconstructible from the snapshot alone, so sealed segments
    wholly below it are deletable.
    """
    snap = latest_snapshot(directory)
    return snap[0] if snap else 0


def prune_snapshots(directory: str | Path, keep: int) -> int:
    """Delete all but the ``keep`` newest snapshots; returns count removed."""
    snaps = list_snapshots(directory)
    removed = 0
    for _, path in snaps[: max(0, len(snaps) - keep)]:
        try:
            path.unlink()
            removed += 1
        except OSError:
            pass
    return removed
