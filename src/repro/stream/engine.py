"""Event-sourced incremental interference engine over a node universe.

The paper's robustness theorem (one join changes any receiver's
interference by at most +1, Fig. 1) is the contract that makes an
event-sourced engine viable: every event induces a *small, bounded,
incrementally applicable* delta. :class:`StreamEngine` maintains the
receiver-centric coverage counts ``I(v)`` under ``join``/``leave``/
``move`` events in O(neighbourhood) per event:

- positions, radii and counts live in flat per-node arrays over a
  pre-allocated universe of ``config.capacity`` ids;
- a uniform spatial hash with cell size ``3 * config.r_max`` indexes
  the active nodes. Because every radius is bounded by ``r_max``, both
  directions of an event's delta (who the node now covers, who covers
  the node) are confined to the cells overlapping a ``±r_max`` window
  around it — at this cell size a 1x1 or 2x2 block, which cuts the
  per-event probe count (cell lookups) to roughly a third of the
  classic cell-size-``r_max`` 3x3 scan while probing the same area.
  This is the O(1)-neighbourhood argument of Korman's bounded-radius
  formulation;
- coverage uses *exact* squared-distance comparison (``dx*dx + dy*dy <=
  r*r``, no tolerance): determinism is the point, since recovery must
  replay to a bit-identical state. :func:`recompute_counts` reproduces
  the same arithmetic vectorized, so an independent from-scratch recount
  agrees exactly, not approximately.

The engine is deliberately free of any I/O; durability (WAL, snapshots,
recovery) wraps it in :mod:`repro.stream.durable`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro import obs
from repro.stream.config import StreamConfig
from repro.stream.events import StreamEvent

__all__ = ["AppliedEvent", "StreamEngine", "StreamStateError"]


class StreamStateError(ValueError):
    """An event that is invalid against the current engine state
    (join of an active node, leave/move of an inactive one, id out of
    range, radius above ``r_max``)."""


@dataclass(frozen=True, slots=True)
class AppliedEvent:
    """Result of applying one event.

    ``changed`` lists ``(node, new_count)`` for every *active* node whose
    interference changed (for a join this includes the joining node's own
    fresh count; a departed node is not listed — it no longer has an
    interference value). ``None`` when the engine was asked not to
    collect deltas (the hot-ingest path).
    """

    seq: int
    event: StreamEvent
    changed: tuple[tuple[int, int], ...] | None


_GRID_STRIDE = 1 << 32


class StreamEngine:
    """Incremental receiver-centric interference over a mutable node set."""

    def __init__(self, config: StreamConfig):
        self.config = config
        cap = config.capacity
        self.xs = [0.0] * cap
        self.ys = [0.0] * cap
        self.rs = [0.0] * cap
        self.active = bytearray(cap)
        self.counts = [0] * cap
        self.n_active = 0
        self.seq = 0
        self._cell = 3.0 * float(config.r_max)
        # keys come from int(coord * _inv): one multiply instead of a
        # float floor-division per axis. int() truncates while // floors,
        # but the key function only has to be monotone and consistent —
        # a truncation-merged pair of cells is just a merged bucket.
        self._inv = 1.0 / self._cell
        # scan windows are padded by a hair beyond the exact reach so a
        # float predicate that rounds *into* the disk can never involve a
        # node sitting just past an unprobed cell boundary
        self._pad = self._cell * 1e-9
        # cell (cx, cy) -> node list, keyed by cx * _GRID_STRIDE + cy:
        # one int hash instead of a tuple allocation per probe. A |cy| >=
        # _GRID_STRIDE/2 collision merely merges buckets — every
        # membership decision re-checks coordinates, so correctness never
        # depends on key uniqueness.
        self._grid: dict[int, list[int]] = {}

    # -- queries -----------------------------------------------------------

    def interference_of(self, node: int) -> int:
        if not (0 <= node < self.config.capacity) or not self.active[node]:
            raise StreamStateError(f"node {node} is not active")
        return self.counts[node]

    def active_nodes(self) -> list[int]:
        return [i for i in range(self.config.capacity) if self.active[i]]

    def node_interference(self) -> np.ndarray:
        """Counts over the whole universe (inactive entries are 0)."""
        return np.asarray(self.counts, dtype=np.int64)

    def max_interference(self) -> int:
        act = self.active
        return max(
            (c for i, c in enumerate(self.counts) if act[i]), default=0
        )

    def region_read(
        self, xmin: float, ymin: float, xmax: float, ymax: float
    ) -> list[tuple[int, int]]:
        """``(node, count)`` for active nodes inside the closed rectangle,
        in node-id order; touches only the overlapping grid cells."""
        inv = self._inv
        out: list[tuple[int, int]] = []
        grid = self._grid
        xs, ys, counts = self.xs, self.ys, self.counts
        for cx in range(int(xmin * inv), int(xmax * inv) + 1):
            base = cx * _GRID_STRIDE
            for cy in range(int(ymin * inv), int(ymax * inv) + 1):
                for v in grid.get(base + cy, ()):
                    if xmin <= xs[v] <= xmax and ymin <= ys[v] <= ymax:
                        out.append((v, counts[v]))
        out.sort()
        return out

    # -- event application -------------------------------------------------

    def apply(
        self, event: StreamEvent, *, seq: int | None = None, collect: bool = True
    ) -> AppliedEvent:
        """Apply one event; returns its :class:`AppliedEvent`.

        ``seq`` (when given, e.g. during WAL replay) must be exactly
        ``self.seq + 1`` — replay is contiguous by construction, and a
        gap means the log lost records.
        """
        if seq is not None and seq != self.seq + 1:
            raise StreamStateError(
                f"non-contiguous seq {seq} (engine at {self.seq})"
            )
        kind = event.kind
        if kind == "join":
            changed = self._apply_join(
                event.node, event.x, event.y, event.r, collect
            )
        elif kind == "leave":
            changed = self._apply_leave(event.node, collect)
        else:
            changed = self._apply_move(
                event.node, event.x, event.y, event.r, collect
            )
        self.seq += 1
        return AppliedEvent(
            self.seq, event, tuple(changed) if changed is not None else None
        )

    def apply_fast(self, event: StreamEvent) -> int:
        """Apply one event with no delta collection or result object;
        returns the event's seqno. The hot ingest path — semantically
        ``self.apply(event, collect=False).seq``."""
        kind = event.kind
        if kind == "join":
            self._apply_join(event.node, event.x, event.y, event.r, False)
        elif kind == "leave":
            self._apply_leave(event.node, False)
        else:
            self._apply_move(event.node, event.x, event.y, event.r, False)
        seq = self.seq + 1
        self.seq = seq
        return seq

    def apply_batch(
        self, events, *, collect: bool = False
    ) -> list[AppliedEvent]:
        """Apply events in order (the hot path: deltas off by default)."""
        out = [self.apply(e, collect=collect) for e in events]
        obs.count("stream.events", len(out))
        return out

    def apply_many(self, events) -> int:
        """Bulk-apply with the join/leave/move bodies inlined and zero
        per-event allocation; returns the final seqno.

        Semantically ``for e in events: self.apply(e, collect=False)`` —
        bit-identical state, same :class:`StreamStateError` rejections —
        but ~2x faster, which is what lets the durable ingest path hold
        its throughput floor (``benchmarks/bench_stream.py``). On a
        rejection the applied prefix stands, ``self.seq`` included.
        """
        xs, ys, rs = self.xs, self.ys, self.rs
        counts, active, grid = self.counts, self.active, self._grid
        get = grid.get
        inv = self._inv
        cap = self.config.capacity
        r_max = self.config.r_max
        rpad = r_max + self._pad
        pad = self._pad
        S = _GRID_STRIDE
        seq = self.seq
        n_active = self.n_active
        try:
            for event in events:
                kind = event.kind
                node = event.node
                if not 0 <= node < cap:
                    raise StreamStateError(
                        f"node {node} outside universe [0, {cap})"
                    )
                if kind == "join":
                    x, y, r = event.x, event.y, event.r
                    if r < 0 or r > r_max:
                        raise StreamStateError(
                            f"radius {r} outside [0, r_max={r_max}]"
                        )
                    if active[node]:
                        raise StreamStateError(
                            f"join of already-active node {node}"
                        )
                elif kind == "leave":
                    if not active[node]:
                        raise StreamStateError(f"leave of inactive node {node}")
                    x, y, r = xs[node], ys[node], rs[node]
                    grid[int(x * inv) * S + int(y * inv)].remove(node)
                    r2 = r * r
                    reach = r + pad
                    cx0 = int((x - reach) * inv)
                    cx1 = int((x + reach) * inv)
                    cy0 = int((y - reach) * inv)
                    cy1 = int((y + reach) * inv)
                    dxc = cx1 - cx0
                    dyc = cy1 - cy0
                    if dxc > 2 or dyc > 2:
                        ks = tuple(
                            cx * S + cy
                            for cx in range(cx0, cx1 + 1)
                            for cy in range(cy0, cy1 + 1)
                        )
                    else:
                        # spans of 1-3 cells per axis cover every window up to
                        # 2*(r_max + pad) wide; literal tuples here are ~6x cheaper
                        # than the genexpr (no generator frame per event)
                        b0 = cx0 * S
                        if dxc == 0:
                            if dyc == 0:
                                ks = (b0 + cy0,)
                            elif dyc == 1:
                                ks = (b0 + cy0, b0 + cy1)
                            else:
                                ks = (b0 + cy0, b0 + cy0 + 1, b0 + cy1)
                        elif dxc == 1:
                            b1 = b0 + S
                            if dyc == 0:
                                ks = (b0 + cy0, b1 + cy0)
                            elif dyc == 1:
                                ks = (b0 + cy0, b0 + cy1, b1 + cy0, b1 + cy1)
                            else:
                                cym = cy0 + 1
                                ks = (
                                    b0 + cy0, b0 + cym, b0 + cy1,
                                    b1 + cy0, b1 + cym, b1 + cy1,
                                )
                        else:
                            b1 = b0 + S
                            b2 = b1 + S
                            if dyc == 0:
                                ks = (b0 + cy0, b1 + cy0, b2 + cy0)
                            elif dyc == 1:
                                ks = (
                                    b0 + cy0, b0 + cy1,
                                    b1 + cy0, b1 + cy1,
                                    b2 + cy0, b2 + cy1,
                                )
                            else:
                                cym = cy0 + 1
                                ks = (
                                    b0 + cy0, b0 + cym, b0 + cy1,
                                    b1 + cy0, b1 + cym, b1 + cy1,
                                    b2 + cy0, b2 + cym, b2 + cy1,
                                )
                    for k in ks:
                        bucket = get(k)
                        if bucket:
                            for v in bucket:
                                dx = xs[v] - x
                                dy = ys[v] - y
                                if dx * dx + dy * dy <= r2:
                                    counts[v] -= 1
                    counts[node] = 0
                    rs[node] = 0.0
                    active[node] = 0
                    n_active -= 1
                    seq += 1
                    continue
                else:  # move == atomic leave + join (kind is validated)
                    if not active[node]:
                        raise StreamStateError(f"move of inactive node {node}")
                    x, y, r = event.x, event.y, event.r
                    if r is None:
                        r = rs[node]
                    if r < 0 or r > r_max:
                        raise StreamStateError(
                            f"radius {r} outside [0, r_max={r_max}]"
                        )
                    # leave half: retract the old disk's coverage
                    ox, oy = xs[node], ys[node]
                    orr = rs[node]
                    grid[int(ox * inv) * S + int(oy * inv)].remove(node)
                    r2 = orr * orr
                    reach = orr + pad
                    cx0 = int((ox - reach) * inv)
                    cx1 = int((ox + reach) * inv)
                    cy0 = int((oy - reach) * inv)
                    cy1 = int((oy + reach) * inv)
                    dxc = cx1 - cx0
                    dyc = cy1 - cy0
                    if dxc > 2 or dyc > 2:
                        ks = tuple(
                            cx * S + cy
                            for cx in range(cx0, cx1 + 1)
                            for cy in range(cy0, cy1 + 1)
                        )
                    else:
                        # spans of 1-3 cells per axis cover every window up to
                        # 2*(r_max + pad) wide; literal tuples here are ~6x cheaper
                        # than the genexpr (no generator frame per event)
                        b0 = cx0 * S
                        if dxc == 0:
                            if dyc == 0:
                                ks = (b0 + cy0,)
                            elif dyc == 1:
                                ks = (b0 + cy0, b0 + cy1)
                            else:
                                ks = (b0 + cy0, b0 + cy0 + 1, b0 + cy1)
                        elif dxc == 1:
                            b1 = b0 + S
                            if dyc == 0:
                                ks = (b0 + cy0, b1 + cy0)
                            elif dyc == 1:
                                ks = (b0 + cy0, b0 + cy1, b1 + cy0, b1 + cy1)
                            else:
                                cym = cy0 + 1
                                ks = (
                                    b0 + cy0, b0 + cym, b0 + cy1,
                                    b1 + cy0, b1 + cym, b1 + cy1,
                                )
                        else:
                            b1 = b0 + S
                            b2 = b1 + S
                            if dyc == 0:
                                ks = (b0 + cy0, b1 + cy0, b2 + cy0)
                            elif dyc == 1:
                                ks = (
                                    b0 + cy0, b0 + cy1,
                                    b1 + cy0, b1 + cy1,
                                    b2 + cy0, b2 + cy1,
                                )
                            else:
                                cym = cy0 + 1
                                ks = (
                                    b0 + cy0, b0 + cym, b0 + cy1,
                                    b1 + cy0, b1 + cym, b1 + cy1,
                                    b2 + cy0, b2 + cym, b2 + cy1,
                                )
                    for k in ks:
                        bucket = get(k)
                        if bucket:
                            for v in bucket:
                                dx = xs[v] - ox
                                dy = ys[v] - oy
                                if dx * dx + dy * dy <= r2:
                                    counts[v] -= 1
                    active[node] = 0
                    n_active -= 1
                # join (for both "join" and the second half of "move"):
                # node is not in any bucket here, so the scan never sees
                # it. Both delta directions are bounded by r_max, so the
                # window is ±r_max regardless of the joining radius.
                r2 = r * r
                own = 0
                cx0 = int((x - rpad) * inv)
                cx1 = int((x + rpad) * inv)
                cy0 = int((y - rpad) * inv)
                cy1 = int((y + rpad) * inv)
                dxc = cx1 - cx0
                dyc = cy1 - cy0
                if dxc > 2 or dyc > 2:
                    ks = tuple(
                        cx * S + cy
                        for cx in range(cx0, cx1 + 1)
                        for cy in range(cy0, cy1 + 1)
                    )
                else:
                    # spans of 1-3 cells per axis cover every window up to
                    # 2*(r_max + pad) wide; literal tuples here are ~6x cheaper
                    # than the genexpr (no generator frame per event)
                    b0 = cx0 * S
                    if dxc == 0:
                        if dyc == 0:
                            ks = (b0 + cy0,)
                        elif dyc == 1:
                            ks = (b0 + cy0, b0 + cy1)
                        else:
                            ks = (b0 + cy0, b0 + cy0 + 1, b0 + cy1)
                    elif dxc == 1:
                        b1 = b0 + S
                        if dyc == 0:
                            ks = (b0 + cy0, b1 + cy0)
                        elif dyc == 1:
                            ks = (b0 + cy0, b0 + cy1, b1 + cy0, b1 + cy1)
                        else:
                            cym = cy0 + 1
                            ks = (
                                b0 + cy0, b0 + cym, b0 + cy1,
                                b1 + cy0, b1 + cym, b1 + cy1,
                            )
                    else:
                        b1 = b0 + S
                        b2 = b1 + S
                        if dyc == 0:
                            ks = (b0 + cy0, b1 + cy0, b2 + cy0)
                        elif dyc == 1:
                            ks = (
                                b0 + cy0, b0 + cy1,
                                b1 + cy0, b1 + cy1,
                                b2 + cy0, b2 + cy1,
                            )
                        else:
                            cym = cy0 + 1
                            ks = (
                                b0 + cy0, b0 + cym, b0 + cy1,
                                b1 + cy0, b1 + cym, b1 + cy1,
                                b2 + cy0, b2 + cym, b2 + cy1,
                            )
                for k in ks:
                    bucket = get(k)
                    if bucket:
                        for v in bucket:
                            dx = xs[v] - x
                            dy = ys[v] - y
                            d2 = dx * dx + dy * dy
                            if d2 <= r2:
                                counts[v] += 1
                            rv = rs[v]
                            if d2 <= rv * rv:
                                own += 1
                xs[node] = x
                ys[node] = y
                rs[node] = r
                counts[node] = own
                active[node] = 1
                n_active += 1
                key = int(x * inv) * S + int(y * inv)
                bucket = get(key)
                if bucket is None:
                    grid[key] = [node]
                else:
                    bucket.append(node)
                seq += 1
        finally:
            self.seq = seq
            self.n_active = n_active
        return seq

    def _check_node(self, node: int) -> None:
        if not 0 <= node < self.config.capacity:
            raise StreamStateError(
                f"node {node} outside universe [0, {self.config.capacity})"
            )

    def _check_radius(self, r: float) -> None:
        if r < 0 or r > self.config.r_max:
            raise StreamStateError(
                f"radius {r} outside [0, r_max={self.config.r_max}]"
            )

    def _apply_join(self, node, x, y, r, collect):
        self._check_node(node)
        self._check_radius(r)
        if self.active[node]:
            raise StreamStateError(f"join of already-active node {node}")
        xs, ys, rs, counts = self.xs, self.ys, self.rs, self.counts
        inv = self._inv
        grid = self._grid
        get = grid.get
        key = int(x * inv) * _GRID_STRIDE + int(y * inv)
        r2 = r * r
        own = 0
        changed = [] if collect else None
        # both delta directions are bounded by r_max, so scan the cells
        # overlapping the ±r_max window around the join site
        reach = self.config.r_max + self._pad
        cx0, cx1 = int((x - reach) * inv), int((x + reach) * inv)
        cy0, cy1 = int((y - reach) * inv), int((y + reach) * inv)
        for cx in range(cx0, cx1 + 1):
            base = cx * _GRID_STRIDE
            for k in range(base + cy0, base + cy1 + 1):
                bucket = get(k)
                if not bucket:
                    continue
                for v in bucket:
                    dx = xs[v] - x
                    dy = ys[v] - y
                    d2 = dx * dx + dy * dy
                    if d2 <= r2:
                        counts[v] += 1
                        if collect:
                            changed.append((v, counts[v]))
                    rv = rs[v]
                    if d2 <= rv * rv:
                        own += 1
        xs[node] = x
        ys[node] = y
        rs[node] = r
        counts[node] = own
        self.active[node] = 1
        self.n_active += 1
        bucket = get(key)
        if bucket is None:
            grid[key] = [node]
        else:
            bucket.append(node)
        if collect:
            changed.append((node, own))
        return changed

    def _apply_leave(self, node, collect):
        self._check_node(node)
        if not self.active[node]:
            raise StreamStateError(f"leave of inactive node {node}")
        xs, ys, counts = self.xs, self.ys, self.counts
        x, y, r = xs[node], ys[node], self.rs[node]
        inv = self._inv
        grid = self._grid
        get = grid.get
        key = int(x * inv) * _GRID_STRIDE + int(y * inv)
        grid[key].remove(node)
        r2 = r * r
        changed = [] if collect else None
        # a leave only retracts the node's *own* coverage: the window is
        # its own radius, usually tighter than r_max
        reach = r + self._pad
        cx0, cx1 = int((x - reach) * inv), int((x + reach) * inv)
        cy0, cy1 = int((y - reach) * inv), int((y + reach) * inv)
        for cx in range(cx0, cx1 + 1):
            base = cx * _GRID_STRIDE
            for k in range(base + cy0, base + cy1 + 1):
                bucket = get(k)
                if not bucket:
                    continue
                for v in bucket:
                    dx = xs[v] - x
                    dy = ys[v] - y
                    if dx * dx + dy * dy <= r2:
                        counts[v] -= 1
                        if collect:
                            changed.append((v, counts[v]))
        counts[node] = 0
        self.rs[node] = 0.0
        self.active[node] = 0
        self.n_active -= 1
        return changed

    def _apply_move(self, node, x, y, r, collect):
        self._check_node(node)
        if not self.active[node]:
            raise StreamStateError(f"move of inactive node {node}")
        if r is None:
            r = self.rs[node]
        self._check_radius(r)
        if not collect:
            self._apply_leave(node, False)
            self._apply_join(node, x, y, r, False)
            return None
        counts = self.counts
        # pre-move values of every node either half touches; leave/join
        # changed lists carry post-op values, so reconstruct by +-1
        pre = {node: counts[node]}
        for v, c in self._apply_leave(node, True):
            pre.setdefault(v, c + 1)
        for v, c in self._apply_join(node, x, y, r, True):
            if v != node:
                pre.setdefault(v, c - 1)
        return [
            (v, counts[v]) for v in sorted(pre) if v == node or counts[v] != pre[v]
        ]

    # -- from-scratch verification ----------------------------------------

    def recompute_counts(self, *, chunk: int = 512) -> np.ndarray:
        """Independent vectorized recount over the whole universe.

        Uses the same IEEE arithmetic as the incremental path
        (``dx*dx + dy*dy <= r*r`` in float64), so agreement is *exact*.
        O(active^2) in ``chunk``-row blocks; verification-path only.
        """
        cap = self.config.capacity
        idx = np.flatnonzero(np.frombuffer(bytes(self.active), dtype=np.uint8))
        out = np.zeros(cap, dtype=np.int64)
        if idx.size == 0:
            return out
        px = np.asarray(self.xs, dtype=np.float64)[idx]
        py = np.asarray(self.ys, dtype=np.float64)[idx]
        pr = np.asarray(self.rs, dtype=np.float64)[idx]
        r2 = pr * pr
        acc = np.zeros(idx.size, dtype=np.int64)
        for lo in range(0, idx.size, chunk):
            hi = min(lo + chunk, idx.size)
            dx = px[lo:hi, None] - px[None, :]
            dy = py[lo:hi, None] - py[None, :]
            d2 = dx * dx + dy * dy
            cover = d2 <= r2[lo:hi, None]  # row u covers column v
            acc += cover.sum(axis=0)
        acc -= 1  # every node's own disk trivially covers its own position
        out[idx] = acc
        return out

    def state_digest(self) -> str:
        """SHA-256 over the canonical active-node state (order, exact
        float reprs, counts, seq) — two engines are bit-identical iff
        their digests match."""
        import hashlib

        h = hashlib.sha256()
        h.update(f"seq={self.seq};n={self.n_active};".encode())
        xs, ys, rs, counts = self.xs, self.ys, self.rs, self.counts
        for i in range(self.config.capacity):
            if self.active[i]:
                h.update(
                    f"{i}:{xs[i]!r},{ys[i]!r},{rs[i]!r},{counts[i]};".encode()
                )
        return h.hexdigest()

    # -- snapshot support --------------------------------------------------

    def state_jsonable(self) -> dict:
        """Sparse full state (active nodes only), JSON round-trip exact."""
        nodes = [
            [i, self.xs[i], self.ys[i], self.rs[i], self.counts[i]]
            for i in range(self.config.capacity)
            if self.active[i]
        ]
        return {"seq": self.seq, "nodes": nodes}

    def state_json(self) -> str:
        """Compact snapshot JSON, byte-identical to
        ``json.dumps(self.state_jsonable(), separators=(",", ":"))`` but
        built directly — snapshot serialization is the main cost of a
        snapshot at large ``n_active``, and this halves it."""
        xs, ys, rs, counts = self.xs, self.ys, self.rs, self.counts
        nodes = ",".join(
            f"[{i},{xs[i]!r},{ys[i]!r},{rs[i]!r},{counts[i]}]"
            for i in range(self.config.capacity)
            if self.active[i]
        )
        return f'{{"seq":{self.seq},"nodes":[{nodes}]}}'

    @classmethod
    def from_state(cls, config: StreamConfig, state: dict) -> "StreamEngine":
        engine = cls(config)
        grid = engine._grid
        inv = engine._inv
        for i, x, y, r, c in state["nodes"]:
            i = int(i)
            engine.xs[i] = x
            engine.ys[i] = y
            engine.rs[i] = r
            engine.counts[i] = int(c)
            engine.active[i] = 1
            grid.setdefault(
                int(x * inv) * _GRID_STRIDE + int(y * inv), []
            ).append(i)
        engine.n_active = sum(engine.active)
        engine.seq = int(state["seq"])
        return engine
