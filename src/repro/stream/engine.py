"""Event-sourced incremental interference engine over a node universe.

The paper's robustness theorem (one join changes any receiver's
interference by at most +1, Fig. 1) is the contract that makes an
event-sourced engine viable: every event induces a *small, bounded,
incrementally applicable* delta. :class:`StreamEngine` maintains the
receiver-centric coverage counts ``I(v)`` under ``join``/``leave``/
``move`` events in O(neighbourhood) per event:

- positions, radii and counts live in flat per-node arrays over a
  pre-allocated universe of ``config.capacity`` ids;
- a uniform spatial hash with cell size ``3 * config.r_max`` indexes
  the active nodes. Because every radius is bounded by ``r_max``, both
  directions of an event's delta (who the node now covers, who covers
  the node) are confined to the cells overlapping a ``±r_max`` window
  around it — at this cell size a 1x1 or 2x2 block, which cuts the
  per-event probe count (cell lookups) to roughly a third of the
  classic cell-size-``r_max`` 3x3 scan while probing the same area.
  This is the O(1)-neighbourhood argument of Korman's bounded-radius
  formulation;
- coverage uses *exact* squared-distance comparison (``dx*dx + dy*dy <=
  r*r``, no tolerance): determinism is the point, since recovery must
  replay to a bit-identical state. :func:`recompute_counts` reproduces
  the same arithmetic vectorized, so an independent from-scratch recount
  agrees exactly, not approximately.

The engine is deliberately free of any I/O; durability (WAL, snapshots,
recovery) wraps it in :mod:`repro.stream.durable`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro import obs
from repro.stream.config import StreamConfig
from repro.stream.events import StreamEvent

__all__ = ["AppliedEvent", "StreamEngine", "StreamStateError"]


class StreamStateError(ValueError):
    """An event that is invalid against the current engine state
    (join of an active node, leave/move of an inactive one, id out of
    range, radius above ``r_max``)."""


@dataclass(frozen=True, slots=True)
class AppliedEvent:
    """Result of applying one event.

    ``changed`` lists ``(node, new_count)`` for every *active* node whose
    interference changed (for a join this includes the joining node's own
    fresh count; a departed node is not listed — it no longer has an
    interference value). ``None`` when the engine was asked not to
    collect deltas (the hot-ingest path).
    """

    seq: int
    event: StreamEvent
    changed: tuple[tuple[int, int], ...] | None


_GRID_STRIDE = 1 << 32

#: Below this many events per :meth:`StreamEngine.apply_many` call the
#: inlined scalar loop wins; at or above it (and when the batch is large
#: relative to the active set) the vectorized bulk path amortizes its
#: fixed numpy costs (state mirror, two grid builds) over the batch.
_BULK_MIN_EVENTS = 512


def _candidate_pairs(index, centers, radii):
    """All ``(query, point)`` candidate pairs whose grid cells overlap each
    query's bounding box — *no* distance predicate applied (the bulk path
    applies the engine's exact squared-distance test itself, which is why
    it cannot use :meth:`GridIndex._batch_hits`'s ``hypot`` predicate)."""
    m = centers.shape[0]
    if m == 0 or len(index) == 0:
        empty = np.empty(0, dtype=np.int64)
        return empty, empty
    lo_x, hi_x, lo_y, hi_y = index._query_windows(centers, radii)
    qids, cells = index._expand_cells(
        np.arange(m, dtype=np.int64), lo_x, hi_x, lo_y, hi_y
    )
    return index._cell_candidates(qids, cells)


def _exact_disk_pairs(index, centers, radii):
    """``(query, point)`` hit pairs under the engine's exact predicate
    ``dx*dx + dy*dy <= r*r`` (not ``hypot``: replay determinism requires
    bit-compatibility with the scalar event loop)."""
    qq, cand = _candidate_pairs(index, centers, radii)
    if qq.size == 0:
        return qq, cand
    dx = index.positions[cand, 0] - centers[qq, 0]
    dy = index.positions[cand, 1] - centers[qq, 1]
    r = radii[qq]
    keep = dx * dx + dy * dy <= r * r
    return qq[keep], cand[keep]


class StreamEngine:
    """Incremental receiver-centric interference over a mutable node set."""

    def __init__(self, config: StreamConfig):
        self.config = config
        cap = config.capacity
        self.xs = [0.0] * cap
        self.ys = [0.0] * cap
        self.rs = [0.0] * cap
        self.active = bytearray(cap)
        self.counts = [0] * cap
        self.n_active = 0
        self.seq = 0
        self._cell = 3.0 * float(config.r_max)
        # keys come from int(coord * _inv): one multiply instead of a
        # float floor-division per axis. int() truncates while // floors,
        # but the key function only has to be monotone and consistent —
        # a truncation-merged pair of cells is just a merged bucket.
        self._inv = 1.0 / self._cell
        # scan windows are padded by a hair beyond the exact reach so a
        # float predicate that rounds *into* the disk can never involve a
        # node sitting just past an unprobed cell boundary
        self._pad = self._cell * 1e-9
        # cell (cx, cy) -> node list, keyed by cx * _GRID_STRIDE + cy:
        # one int hash instead of a tuple allocation per probe. A |cy| >=
        # _GRID_STRIDE/2 collision merely merges buckets — every
        # membership decision re-checks coordinates, so correctness never
        # depends on key uniqueness.
        self._grid: dict[int, list[int]] = {}
        # cached float64 mirror of (xs, ys, rs) for the bulk-apply path;
        # any scalar mutation invalidates it (set to None)
        self._np: tuple[np.ndarray, np.ndarray, np.ndarray] | None = None

    # -- queries -----------------------------------------------------------

    def interference_of(self, node: int) -> int:
        if not (0 <= node < self.config.capacity) or not self.active[node]:
            raise StreamStateError(f"node {node} is not active")
        return self.counts[node]

    def active_nodes(self) -> list[int]:
        return [i for i in range(self.config.capacity) if self.active[i]]

    def node_interference(self) -> np.ndarray:
        """Counts over the whole universe (inactive entries are 0)."""
        return np.asarray(self.counts, dtype=np.int64)

    def max_interference(self) -> int:
        act = self.active
        return max(
            (c for i, c in enumerate(self.counts) if act[i]), default=0
        )

    def region_read(
        self, xmin: float, ymin: float, xmax: float, ymax: float
    ) -> list[tuple[int, int]]:
        """``(node, count)`` for active nodes inside the closed rectangle,
        in node-id order; touches only the overlapping grid cells."""
        inv = self._inv
        out: list[tuple[int, int]] = []
        grid = self._grid
        xs, ys, counts = self.xs, self.ys, self.counts
        for cx in range(int(xmin * inv), int(xmax * inv) + 1):
            base = cx * _GRID_STRIDE
            for cy in range(int(ymin * inv), int(ymax * inv) + 1):
                for v in grid.get(base + cy, ()):
                    if xmin <= xs[v] <= xmax and ymin <= ys[v] <= ymax:
                        out.append((v, counts[v]))
        out.sort()
        return out

    # -- event application -------------------------------------------------

    def apply(
        self, event: StreamEvent, *, seq: int | None = None, collect: bool = True
    ) -> AppliedEvent:
        """Apply one event; returns its :class:`AppliedEvent`.

        ``seq`` (when given, e.g. during WAL replay) must be exactly
        ``self.seq + 1`` — replay is contiguous by construction, and a
        gap means the log lost records.
        """
        if seq is not None and seq != self.seq + 1:
            raise StreamStateError(
                f"non-contiguous seq {seq} (engine at {self.seq})"
            )
        kind = event.kind
        if kind == "join":
            changed = self._apply_join(
                event.node, event.x, event.y, event.r, collect
            )
        elif kind == "leave":
            changed = self._apply_leave(event.node, collect)
        else:
            changed = self._apply_move(
                event.node, event.x, event.y, event.r, collect
            )
        self.seq += 1
        return AppliedEvent(
            self.seq, event, tuple(changed) if changed is not None else None
        )

    def apply_fast(self, event: StreamEvent) -> int:
        """Apply one event with no delta collection or result object;
        returns the event's seqno. The hot ingest path — semantically
        ``self.apply(event, collect=False).seq``."""
        kind = event.kind
        if kind == "join":
            self._apply_join(event.node, event.x, event.y, event.r, False)
        elif kind == "leave":
            self._apply_leave(event.node, False)
        else:
            self._apply_move(event.node, event.x, event.y, event.r, False)
        seq = self.seq + 1
        self.seq = seq
        return seq

    def apply_batch(
        self, events, *, collect: bool = False
    ) -> list[AppliedEvent]:
        """Apply events in order (the hot path: deltas off by default)."""
        out = [self.apply(e, collect=collect) for e in events]
        obs.count("stream.events", len(out))
        return out

    def apply_many(self, events) -> int:
        """Bulk-apply; returns the final seqno.

        Semantically ``for e in events: self.apply(e, collect=False)`` —
        bit-identical state (same digests), same
        :class:`StreamStateError` rejections — but substantially faster,
        which is what lets the durable ingest path hold its throughput
        floor (``benchmarks/bench_stream.py``). On a rejection the
        applied prefix stands, ``self.seq`` included.

        Two tiers: batches that are large (>= ``_BULK_MIN_EVENTS``, and
        not small relative to the active set) over a *dense* active set
        (>= ~4 nodes per grid cell, where per-event coverage updates —
        not event parsing — dominate the scalar loop) take a vectorized
        path: final counts are a pure function of the final active set,
        so the batch collapses to a membership simulation plus three
        fused array delta passes (see :meth:`_apply_many_bulk`).
        Everything else runs the inlined scalar loop, which wins in
        sparse regimes (measured: bulk is ~2x at >= 13 nodes/unit^2 with
        ``r_max = 1`` and ~2x *slower* at 0.03 nodes/unit^2 — see
        docs/PERFORMANCE.md).
        """
        if not isinstance(events, (list, tuple)):
            events = list(events)
        if (
            len(events) >= _BULK_MIN_EVENTS
            and 4 * len(events) >= self.n_active
            and self.n_active >= 4 * max(len(self._grid), 1)
        ):
            seq = self._apply_many_bulk(events)
            if seq is not None:
                return seq
        return self._apply_many_scalar(events)

    def _apply_many_scalar(self, events) -> int:
        """The inlined per-event loop (zero per-event allocation)."""
        self._np = None
        xs, ys, rs = self.xs, self.ys, self.rs
        counts, active, grid = self.counts, self.active, self._grid
        get = grid.get
        inv = self._inv
        cap = self.config.capacity
        r_max = self.config.r_max
        rpad = r_max + self._pad
        pad = self._pad
        S = _GRID_STRIDE
        seq = self.seq
        n_active = self.n_active
        try:
            for event in events:
                kind = event.kind
                node = event.node
                if not 0 <= node < cap:
                    raise StreamStateError(
                        f"node {node} outside universe [0, {cap})"
                    )
                if kind == "join":
                    x, y, r = event.x, event.y, event.r
                    if r < 0 or r > r_max:
                        raise StreamStateError(
                            f"radius {r} outside [0, r_max={r_max}]"
                        )
                    if active[node]:
                        raise StreamStateError(
                            f"join of already-active node {node}"
                        )
                elif kind == "leave":
                    if not active[node]:
                        raise StreamStateError(f"leave of inactive node {node}")
                    x, y, r = xs[node], ys[node], rs[node]
                    grid[int(x * inv) * S + int(y * inv)].remove(node)
                    r2 = r * r
                    reach = r + pad
                    cx0 = int((x - reach) * inv)
                    cx1 = int((x + reach) * inv)
                    cy0 = int((y - reach) * inv)
                    cy1 = int((y + reach) * inv)
                    dxc = cx1 - cx0
                    dyc = cy1 - cy0
                    if dxc > 2 or dyc > 2:
                        ks = tuple(
                            cx * S + cy
                            for cx in range(cx0, cx1 + 1)
                            for cy in range(cy0, cy1 + 1)
                        )
                    else:
                        # spans of 1-3 cells per axis cover every window up to
                        # 2*(r_max + pad) wide; literal tuples here are ~6x cheaper
                        # than the genexpr (no generator frame per event)
                        b0 = cx0 * S
                        if dxc == 0:
                            if dyc == 0:
                                ks = (b0 + cy0,)
                            elif dyc == 1:
                                ks = (b0 + cy0, b0 + cy1)
                            else:
                                ks = (b0 + cy0, b0 + cy0 + 1, b0 + cy1)
                        elif dxc == 1:
                            b1 = b0 + S
                            if dyc == 0:
                                ks = (b0 + cy0, b1 + cy0)
                            elif dyc == 1:
                                ks = (b0 + cy0, b0 + cy1, b1 + cy0, b1 + cy1)
                            else:
                                cym = cy0 + 1
                                ks = (
                                    b0 + cy0, b0 + cym, b0 + cy1,
                                    b1 + cy0, b1 + cym, b1 + cy1,
                                )
                        else:
                            b1 = b0 + S
                            b2 = b1 + S
                            if dyc == 0:
                                ks = (b0 + cy0, b1 + cy0, b2 + cy0)
                            elif dyc == 1:
                                ks = (
                                    b0 + cy0, b0 + cy1,
                                    b1 + cy0, b1 + cy1,
                                    b2 + cy0, b2 + cy1,
                                )
                            else:
                                cym = cy0 + 1
                                ks = (
                                    b0 + cy0, b0 + cym, b0 + cy1,
                                    b1 + cy0, b1 + cym, b1 + cy1,
                                    b2 + cy0, b2 + cym, b2 + cy1,
                                )
                    for k in ks:
                        bucket = get(k)
                        if bucket:
                            for v in bucket:
                                dx = xs[v] - x
                                dy = ys[v] - y
                                if dx * dx + dy * dy <= r2:
                                    counts[v] -= 1
                    counts[node] = 0
                    rs[node] = 0.0
                    active[node] = 0
                    n_active -= 1
                    seq += 1
                    continue
                else:  # move == atomic leave + join (kind is validated)
                    if not active[node]:
                        raise StreamStateError(f"move of inactive node {node}")
                    x, y, r = event.x, event.y, event.r
                    if r is None:
                        r = rs[node]
                    if r < 0 or r > r_max:
                        raise StreamStateError(
                            f"radius {r} outside [0, r_max={r_max}]"
                        )
                    # leave half: retract the old disk's coverage
                    ox, oy = xs[node], ys[node]
                    orr = rs[node]
                    grid[int(ox * inv) * S + int(oy * inv)].remove(node)
                    r2 = orr * orr
                    reach = orr + pad
                    cx0 = int((ox - reach) * inv)
                    cx1 = int((ox + reach) * inv)
                    cy0 = int((oy - reach) * inv)
                    cy1 = int((oy + reach) * inv)
                    dxc = cx1 - cx0
                    dyc = cy1 - cy0
                    if dxc > 2 or dyc > 2:
                        ks = tuple(
                            cx * S + cy
                            for cx in range(cx0, cx1 + 1)
                            for cy in range(cy0, cy1 + 1)
                        )
                    else:
                        # spans of 1-3 cells per axis cover every window up to
                        # 2*(r_max + pad) wide; literal tuples here are ~6x cheaper
                        # than the genexpr (no generator frame per event)
                        b0 = cx0 * S
                        if dxc == 0:
                            if dyc == 0:
                                ks = (b0 + cy0,)
                            elif dyc == 1:
                                ks = (b0 + cy0, b0 + cy1)
                            else:
                                ks = (b0 + cy0, b0 + cy0 + 1, b0 + cy1)
                        elif dxc == 1:
                            b1 = b0 + S
                            if dyc == 0:
                                ks = (b0 + cy0, b1 + cy0)
                            elif dyc == 1:
                                ks = (b0 + cy0, b0 + cy1, b1 + cy0, b1 + cy1)
                            else:
                                cym = cy0 + 1
                                ks = (
                                    b0 + cy0, b0 + cym, b0 + cy1,
                                    b1 + cy0, b1 + cym, b1 + cy1,
                                )
                        else:
                            b1 = b0 + S
                            b2 = b1 + S
                            if dyc == 0:
                                ks = (b0 + cy0, b1 + cy0, b2 + cy0)
                            elif dyc == 1:
                                ks = (
                                    b0 + cy0, b0 + cy1,
                                    b1 + cy0, b1 + cy1,
                                    b2 + cy0, b2 + cy1,
                                )
                            else:
                                cym = cy0 + 1
                                ks = (
                                    b0 + cy0, b0 + cym, b0 + cy1,
                                    b1 + cy0, b1 + cym, b1 + cy1,
                                    b2 + cy0, b2 + cym, b2 + cy1,
                                )
                    for k in ks:
                        bucket = get(k)
                        if bucket:
                            for v in bucket:
                                dx = xs[v] - ox
                                dy = ys[v] - oy
                                if dx * dx + dy * dy <= r2:
                                    counts[v] -= 1
                    active[node] = 0
                    n_active -= 1
                # join (for both "join" and the second half of "move"):
                # node is not in any bucket here, so the scan never sees
                # it. Both delta directions are bounded by r_max, so the
                # window is ±r_max regardless of the joining radius.
                r2 = r * r
                own = 0
                cx0 = int((x - rpad) * inv)
                cx1 = int((x + rpad) * inv)
                cy0 = int((y - rpad) * inv)
                cy1 = int((y + rpad) * inv)
                dxc = cx1 - cx0
                dyc = cy1 - cy0
                if dxc > 2 or dyc > 2:
                    ks = tuple(
                        cx * S + cy
                        for cx in range(cx0, cx1 + 1)
                        for cy in range(cy0, cy1 + 1)
                    )
                else:
                    # spans of 1-3 cells per axis cover every window up to
                    # 2*(r_max + pad) wide; literal tuples here are ~6x cheaper
                    # than the genexpr (no generator frame per event)
                    b0 = cx0 * S
                    if dxc == 0:
                        if dyc == 0:
                            ks = (b0 + cy0,)
                        elif dyc == 1:
                            ks = (b0 + cy0, b0 + cy1)
                        else:
                            ks = (b0 + cy0, b0 + cy0 + 1, b0 + cy1)
                    elif dxc == 1:
                        b1 = b0 + S
                        if dyc == 0:
                            ks = (b0 + cy0, b1 + cy0)
                        elif dyc == 1:
                            ks = (b0 + cy0, b0 + cy1, b1 + cy0, b1 + cy1)
                        else:
                            cym = cy0 + 1
                            ks = (
                                b0 + cy0, b0 + cym, b0 + cy1,
                                b1 + cy0, b1 + cym, b1 + cy1,
                            )
                    else:
                        b1 = b0 + S
                        b2 = b1 + S
                        if dyc == 0:
                            ks = (b0 + cy0, b1 + cy0, b2 + cy0)
                        elif dyc == 1:
                            ks = (
                                b0 + cy0, b0 + cy1,
                                b1 + cy0, b1 + cy1,
                                b2 + cy0, b2 + cy1,
                            )
                        else:
                            cym = cy0 + 1
                            ks = (
                                b0 + cy0, b0 + cym, b0 + cy1,
                                b1 + cy0, b1 + cym, b1 + cy1,
                                b2 + cy0, b2 + cym, b2 + cy1,
                            )
                for k in ks:
                    bucket = get(k)
                    if bucket:
                        for v in bucket:
                            dx = xs[v] - x
                            dy = ys[v] - y
                            d2 = dx * dx + dy * dy
                            if d2 <= r2:
                                counts[v] += 1
                            rv = rs[v]
                            if d2 <= rv * rv:
                                own += 1
                xs[node] = x
                ys[node] = y
                rs[node] = r
                counts[node] = own
                active[node] = 1
                n_active += 1
                key = int(x * inv) * S + int(y * inv)
                bucket = get(key)
                if bucket is None:
                    grid[key] = [node]
                else:
                    bucket.append(node)
                seq += 1
        finally:
            self.seq = seq
            self.n_active = n_active
        return seq

    def _apply_many_bulk(self, events) -> int | None:
        """Vectorized whole-batch apply; ``None`` means "use the scalar
        path instead" (invalid batch, or state the fast path can't take).

        Final counts are a pure function of the *final* active set, so a
        valid batch needs no per-event coverage updates at all:

        1. simulate membership over the touched nodes only (pure dict
           ops) to validate every event exactly as the scalar loop would
           — any rejection falls back to the scalar loop, which applies
           the same prefix and raises the identical error;
        2. retract the initial disks of touched nodes from the initial
           active set (delta pass A), apply their final disks over the
           final active set (pass B), and recount the touched survivors'
           own coverage fresh (pass C) — each pass one fused array query
           over a :class:`~repro.geometry.spatial.GridIndex`, with the
           engine's *exact* ``dx*dx + dy*dy <= r*r`` predicate;
        3. commit: bincount deltas onto untouched victims, overwrite the
           touched nodes' state (Python floats, so snapshots and digests
           stay byte-identical to the scalar path), splice grid buckets.
        """
        from repro.geometry.spatial import GridIndex

        cap = self.config.capacity
        r_max = self.config.r_max
        xs, ys, rs = self.xs, self.ys, self.rs
        counts, active, grid = self.counts, self.active, self._grid

        # -- 1: validate by membership simulation (no mutation) ------------
        st: dict[int, tuple | None] = {}
        for event in events:
            node = event.node
            if not 0 <= node < cap:
                return None
            if node in st:
                cur = st[node]
            elif active[node]:
                cur = (xs[node], ys[node], rs[node])
            else:
                cur = None
            kind = event.kind
            if kind == "join":
                r = event.r
                if r < 0 or r > r_max or cur is not None:
                    return None
                st[node] = (event.x, event.y, r)
            elif kind == "leave":
                if cur is None:
                    return None
                st[node] = None
            else:
                if cur is None:
                    return None
                r = event.r
                if r is None:
                    r = cur[2]
                if r < 0 or r > r_max:
                    return None
                st[node] = (event.x, event.y, r)

        # -- mirror + index inputs -----------------------------------------
        mirror = self._np
        if mirror is None:
            mirror = (
                np.asarray(xs, dtype=np.float64),
                np.asarray(ys, dtype=np.float64),
                np.asarray(rs, dtype=np.float64),
            )
        mx, my, mr = mirror
        ids0 = np.flatnonzero(
            np.frombuffer(bytes(active), dtype=np.uint8)
        )
        t_init = [t for t in st if active[t]]
        t_fin = [t for t in st if st[t] is not None]
        fin_mask = np.zeros(cap, dtype=bool)
        fin_mask[ids0] = True
        for t, fin in st.items():
            fin_mask[t] = fin is not None
        ids_f = np.flatnonzero(fin_mask)

        pos0 = np.column_stack((mx[ids0], my[ids0]))
        fx = np.array([st[t][0] for t in t_fin], dtype=np.float64)
        fy = np.array([st[t][1] for t in t_fin], dtype=np.float64)
        fr = np.array([st[t][2] for t in t_fin], dtype=np.float64)
        pos_f = np.column_stack((mx[ids_f], my[ids_f]))
        r_f = mr[ids_f].copy()
        if t_fin:
            where = np.searchsorted(ids_f, np.asarray(t_fin, dtype=np.int64))
            pos_f[where, 0] = fx
            pos_f[where, 1] = fy
            r_f[where] = fr
        if not (
            np.isfinite(pos0).all()
            and np.isfinite(pos_f).all()
        ):
            return None  # GridIndex requires finite coords; scalar doesn't

        delta = np.zeros(cap, dtype=np.int64)
        cell = self._cell

        # -- 2a: retract initial touched disks from the initial set --------
        if t_init and ids0.size:
            ti = np.asarray(t_init, dtype=np.int64)
            index0 = GridIndex(pos0, cell_size=cell)
            _, cand = _exact_disk_pairs(
                index0, np.column_stack((mx[ti], my[ti])), mr[ti]
            )
            if cand.size:
                delta -= np.bincount(ids0[cand], minlength=cap)

        index_f = (
            GridIndex(pos_f, cell_size=cell) if ids_f.size else None
        )

        # -- 2b: apply final touched disks over the final set --------------
        if t_fin and index_f is not None:
            _, cand = _exact_disk_pairs(
                index_f, np.column_stack((fx, fy)), fr
            )
            if cand.size:
                delta += np.bincount(ids_f[cand], minlength=cap)

        # -- 2c: fresh own-counts for touched survivors --------------------
        own = np.zeros(len(t_fin), dtype=np.int64)
        if t_fin and index_f is not None:
            # candidates within +-r_max of each survivor; covered iff the
            # *candidate's* disk reaches (reverse direction of 2a/2b)
            centers = np.column_stack((fx, fy))
            qq, cand = _candidate_pairs(
                index_f, centers, np.full(len(t_fin), r_max)
            )
            if qq.size:
                dx = pos_f[cand, 0] - centers[qq, 0]
                dy = pos_f[cand, 1] - centers[qq, 1]
                rc = r_f[cand]
                keep = dx * dx + dy * dy <= rc * rc
                own += np.bincount(qq[keep], minlength=len(t_fin))
            own -= 1  # each survivor's own disk trivially covers itself

        # -- 3: commit ------------------------------------------------------
        inv = self._inv
        S = _GRID_STRIDE
        n_active = self.n_active
        for v in np.flatnonzero(delta):
            counts[v] += int(delta[v])
        get = grid.get
        for j, t in enumerate(t_fin):
            st[t] = (*st[t], int(own[j]))
        for t, fin in st.items():
            if active[t]:
                grid[int(xs[t] * inv) * S + int(ys[t] * inv)].remove(t)
                n_active -= 1
                active[t] = 0
            if fin is None:
                rs[t] = 0.0
                mr[t] = 0.0
                counts[t] = 0
            else:
                x, y, r, c = fin
                xs[t] = x
                ys[t] = y
                rs[t] = r
                mx[t] = x
                my[t] = y
                mr[t] = r
                counts[t] = c
                active[t] = 1
                n_active += 1
                key = int(x * inv) * S + int(y * inv)
                bucket = get(key)
                if bucket is None:
                    grid[key] = [t]
                else:
                    bucket.append(t)
        self.n_active = n_active
        self.seq += len(events)
        self._np = mirror
        return self.seq

    def _check_node(self, node: int) -> None:
        if not 0 <= node < self.config.capacity:
            raise StreamStateError(
                f"node {node} outside universe [0, {self.config.capacity})"
            )

    def _check_radius(self, r: float) -> None:
        if r < 0 or r > self.config.r_max:
            raise StreamStateError(
                f"radius {r} outside [0, r_max={self.config.r_max}]"
            )

    def _apply_join(self, node, x, y, r, collect):
        self._check_node(node)
        self._check_radius(r)
        if self.active[node]:
            raise StreamStateError(f"join of already-active node {node}")
        self._np = None
        xs, ys, rs, counts = self.xs, self.ys, self.rs, self.counts
        inv = self._inv
        grid = self._grid
        get = grid.get
        key = int(x * inv) * _GRID_STRIDE + int(y * inv)
        r2 = r * r
        own = 0
        changed = [] if collect else None
        # both delta directions are bounded by r_max, so scan the cells
        # overlapping the ±r_max window around the join site
        reach = self.config.r_max + self._pad
        cx0, cx1 = int((x - reach) * inv), int((x + reach) * inv)
        cy0, cy1 = int((y - reach) * inv), int((y + reach) * inv)
        for cx in range(cx0, cx1 + 1):
            base = cx * _GRID_STRIDE
            for k in range(base + cy0, base + cy1 + 1):
                bucket = get(k)
                if not bucket:
                    continue
                for v in bucket:
                    dx = xs[v] - x
                    dy = ys[v] - y
                    d2 = dx * dx + dy * dy
                    if d2 <= r2:
                        counts[v] += 1
                        if collect:
                            changed.append((v, counts[v]))
                    rv = rs[v]
                    if d2 <= rv * rv:
                        own += 1
        xs[node] = x
        ys[node] = y
        rs[node] = r
        counts[node] = own
        self.active[node] = 1
        self.n_active += 1
        bucket = get(key)
        if bucket is None:
            grid[key] = [node]
        else:
            bucket.append(node)
        if collect:
            changed.append((node, own))
        return changed

    def _apply_leave(self, node, collect):
        self._check_node(node)
        if not self.active[node]:
            raise StreamStateError(f"leave of inactive node {node}")
        self._np = None
        xs, ys, counts = self.xs, self.ys, self.counts
        x, y, r = xs[node], ys[node], self.rs[node]
        inv = self._inv
        grid = self._grid
        get = grid.get
        key = int(x * inv) * _GRID_STRIDE + int(y * inv)
        grid[key].remove(node)
        r2 = r * r
        changed = [] if collect else None
        # a leave only retracts the node's *own* coverage: the window is
        # its own radius, usually tighter than r_max
        reach = r + self._pad
        cx0, cx1 = int((x - reach) * inv), int((x + reach) * inv)
        cy0, cy1 = int((y - reach) * inv), int((y + reach) * inv)
        for cx in range(cx0, cx1 + 1):
            base = cx * _GRID_STRIDE
            for k in range(base + cy0, base + cy1 + 1):
                bucket = get(k)
                if not bucket:
                    continue
                for v in bucket:
                    dx = xs[v] - x
                    dy = ys[v] - y
                    if dx * dx + dy * dy <= r2:
                        counts[v] -= 1
                        if collect:
                            changed.append((v, counts[v]))
        counts[node] = 0
        self.rs[node] = 0.0
        self.active[node] = 0
        self.n_active -= 1
        return changed

    def _apply_move(self, node, x, y, r, collect):
        self._check_node(node)
        if not self.active[node]:
            raise StreamStateError(f"move of inactive node {node}")
        if r is None:
            r = self.rs[node]
        self._check_radius(r)
        if not collect:
            self._apply_leave(node, False)
            self._apply_join(node, x, y, r, False)
            return None
        counts = self.counts
        # pre-move values of every node either half touches; leave/join
        # changed lists carry post-op values, so reconstruct by +-1
        pre = {node: counts[node]}
        for v, c in self._apply_leave(node, True):
            pre.setdefault(v, c + 1)
        for v, c in self._apply_join(node, x, y, r, True):
            if v != node:
                pre.setdefault(v, c - 1)
        return [
            (v, counts[v]) for v in sorted(pre) if v == node or counts[v] != pre[v]
        ]

    # -- from-scratch verification ----------------------------------------

    def recompute_counts(self, *, chunk: int = 512) -> np.ndarray:
        """Independent vectorized recount over the whole universe.

        Uses the same IEEE arithmetic as the incremental path
        (``dx*dx + dy*dy <= r*r`` in float64), so agreement is *exact*.
        O(active^2) in ``chunk``-row blocks; verification-path only.
        """
        cap = self.config.capacity
        idx = np.flatnonzero(np.frombuffer(bytes(self.active), dtype=np.uint8))
        out = np.zeros(cap, dtype=np.int64)
        if idx.size == 0:
            return out
        px = np.asarray(self.xs, dtype=np.float64)[idx]
        py = np.asarray(self.ys, dtype=np.float64)[idx]
        pr = np.asarray(self.rs, dtype=np.float64)[idx]
        r2 = pr * pr
        acc = np.zeros(idx.size, dtype=np.int64)
        for lo in range(0, idx.size, chunk):
            hi = min(lo + chunk, idx.size)
            dx = px[lo:hi, None] - px[None, :]
            dy = py[lo:hi, None] - py[None, :]
            d2 = dx * dx + dy * dy
            cover = d2 <= r2[lo:hi, None]  # row u covers column v
            acc += cover.sum(axis=0)
        acc -= 1  # every node's own disk trivially covers its own position
        out[idx] = acc
        return out

    def state_digest(self) -> str:
        """SHA-256 over the canonical active-node state (order, exact
        float reprs, counts, seq) — two engines are bit-identical iff
        their digests match."""
        import hashlib

        h = hashlib.sha256()
        h.update(f"seq={self.seq};n={self.n_active};".encode())
        xs, ys, rs, counts = self.xs, self.ys, self.rs, self.counts
        for i in range(self.config.capacity):
            if self.active[i]:
                h.update(
                    f"{i}:{xs[i]!r},{ys[i]!r},{rs[i]!r},{counts[i]};".encode()
                )
        return h.hexdigest()

    # -- snapshot support --------------------------------------------------

    def state_jsonable(self) -> dict:
        """Sparse full state (active nodes only), JSON round-trip exact."""
        nodes = [
            [i, self.xs[i], self.ys[i], self.rs[i], self.counts[i]]
            for i in range(self.config.capacity)
            if self.active[i]
        ]
        return {"seq": self.seq, "nodes": nodes}

    def state_json(self) -> str:
        """Compact snapshot JSON, byte-identical to
        ``json.dumps(self.state_jsonable(), separators=(",", ":"))`` but
        built directly — snapshot serialization is the main cost of a
        snapshot at large ``n_active``, and this halves it."""
        xs, ys, rs, counts = self.xs, self.ys, self.rs, self.counts
        nodes = ",".join(
            f"[{i},{xs[i]!r},{ys[i]!r},{rs[i]!r},{counts[i]}]"
            for i in range(self.config.capacity)
            if self.active[i]
        )
        return f'{{"seq":{self.seq},"nodes":[{nodes}]}}'

    @classmethod
    def from_state(cls, config: StreamConfig, state: dict) -> "StreamEngine":
        engine = cls(config)
        grid = engine._grid
        inv = engine._inv
        for i, x, y, r, c in state["nodes"]:
            i = int(i)
            engine.xs[i] = x
            engine.ys[i] = y
            engine.rs[i] = r
            engine.counts[i] = int(c)
            engine.active[i] = 1
            grid.setdefault(
                int(x * inv) * _GRID_STRIDE + int(y * inv), []
            ).append(i)
        engine.n_active = sum(engine.active)
        engine.seq = int(state["seq"])
        return engine
