"""Recovery verification: recovered state must equal recomputation.

Three independent checks, each catching a different failure class:

1. **replay determinism** — recover the directory (snapshot + tail
   replay), then *independently* rebuild the same state: reload the
   newest valid snapshot into a fresh engine and replay the scanned log
   tail one event at a time under explicit seq validation; the two state
   digests must match bit-for-bit. Recovery uses the vectorized bulk
   path, so this catches bulk-vs-scalar drift as well as snapshot/replay
   drift. Like recovery itself, the check is O(data since the last
   snapshot): compaction may have deleted snapshot-covered segments, and
   they are not needed.
2. **incremental correctness** — the recovered engine's per-node counts
   must equal :meth:`StreamEngine.recompute_counts`, an independent
   vectorized from-scratch recount over the recovered node set, compared
   exactly (no tolerance). Catches incremental-delta bugs.
3. **log integrity** — every log scan raises
   :class:`~repro.stream.wal.WalCorruption` on a corrupt interior record
   or a malformed segment chain, so a verification that *completes*
   guarantees no undetected corruption in the segments recovery depends
   on. Pass ``deep=True`` to extend the integrity scan to *every*
   surviving segment, including snapshot-covered ones (O(total log), the
   pre-segmentation cost).

``repro stream verify`` and the chaos harness are thin wrappers over
:func:`verify_stream_dir`.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro import obs
from repro.stream.durable import DurableStreamEngine, RecoveryInfo
from repro.stream.engine import StreamEngine
from repro.stream.events import StreamEvent
from repro.stream.snapshot import latest_snapshot
from repro.stream.wal import scan_store

__all__ = ["VerifyReport", "render_verify_report", "verify_stream_dir"]


@dataclass(frozen=True, slots=True)
class VerifyReport:
    """Outcome of :func:`verify_stream_dir`."""

    ok: bool
    directory: str
    last_seq: int
    n_active: int
    max_interference: int
    recovered_digest: str
    replay_digest: str
    replay_identical: bool
    counts_exact: bool
    count_mismatches: int
    recovery: RecoveryInfo
    #: whether the integrity scan covered every segment (deep=True)
    deep: bool = False
    #: records integrity-checked beyond recovery's own scan (deep only)
    deep_records: int = 0

    def to_jsonable(self) -> dict:
        return {
            "ok": self.ok,
            "directory": self.directory,
            "last_seq": self.last_seq,
            "n_active": self.n_active,
            "max_interference": self.max_interference,
            "recovered_digest": self.recovered_digest,
            "replay_digest": self.replay_digest,
            "replay_identical": self.replay_identical,
            "counts_exact": self.counts_exact,
            "count_mismatches": self.count_mismatches,
            "recovery": self.recovery.to_jsonable(),
            "deep": self.deep,
            "deep_records": self.deep_records,
        }


def verify_stream_dir(
    directory: str | Path, *, deep: bool = False
) -> VerifyReport:
    """Run the three recovery checks against one stream directory.

    Raises :class:`~repro.stream.wal.WalCorruption` when the log holds a
    corrupt interior record (that is a *detected* failure, not a silent
    one, so it propagates rather than folding into ``ok=False``).
    """
    directory = Path(directory)
    with obs.span("stream.verify", dir=str(directory)):
        recovered = DurableStreamEngine.open(directory)
        try:
            engine = recovered.engine
            recovered_digest = engine.state_digest()

            # independent rebuild: snapshot reload + scalar tail replay
            # (recovery went through the bulk path; any divergence between
            # the two is a real bug, not a tolerance issue)
            snap = latest_snapshot(directory)
            if snap:
                snap_seq = snap[0]
                scratch = StreamEngine.from_state(
                    recovered.config, json.loads(snap[1])
                )
            else:
                snap_seq = 0
                scratch = StreamEngine(recovered.config)
            for rec in scan_store(directory, from_seq=snap_seq + 1).records:
                seq, event = StreamEvent.from_wal_record(rec)
                if seq <= snap_seq:
                    continue
                scratch.apply(event, seq=seq, collect=False)
            replay_digest = scratch.state_digest()
            replay_identical = replay_digest == recovered_digest

            deep_records = 0
            if deep:
                # full-log integrity pass: scan_store raises WalCorruption
                # on anything wrong in *any* surviving segment
                deep_records = len(scan_store(directory, from_seq=1).records)

            incremental = engine.node_interference()
            recount = engine.recompute_counts()
            mismatches = int(np.count_nonzero(incremental != recount))

            report = VerifyReport(
                ok=replay_identical and mismatches == 0,
                directory=str(directory),
                last_seq=engine.seq,
                n_active=engine.n_active,
                max_interference=engine.max_interference(),
                recovered_digest=recovered_digest,
                replay_digest=replay_digest,
                replay_identical=replay_identical,
                counts_exact=mismatches == 0,
                count_mismatches=mismatches,
                recovery=recovered.recovery,
                deep=deep,
                deep_records=deep_records,
            )
        finally:
            recovered.close()
    obs.count("stream.verify.ok" if report.ok else "stream.verify.failed")
    return report


def render_verify_report(report: VerifyReport) -> str:
    """Human-readable multi-line rendering (used by ``repro stream verify``)."""
    ri = report.recovery
    replay_range = (
        f"{ri.replayed_from}..{ri.replayed_to}"
        if ri.replayed_from
        else "(none)"
    )
    lines = [
        f"stream verify: {'OK' if report.ok else 'FAILED'}  {report.directory}",
        f"  last seq        : {report.last_seq}",
        f"  active nodes    : {report.n_active}"
        f"  (max interference {report.max_interference})",
        f"  snapshot seq    : {ri.snapshot_seq}",
        f"  replayed seqs   : {replay_range}  "
        f"({ri.wal_records} records scanned)",
        f"  segments        : {ri.segments_scanned}/{ri.segments} scanned"
        f"  ({ri.bytes_scanned} bytes)",
        f"  torn tail       : {ri.torn_bytes} bytes dropped"
        if ri.torn_tail
        else "  torn tail       : none",
        f"  replay identical: {report.replay_identical}"
        f"  (digest {report.recovered_digest[:16]}…)",
        f"  counts exact    : {report.counts_exact}"
        + (
            f"  ({report.count_mismatches} mismatching nodes)"
            if report.count_mismatches
            else ""
        ),
    ]
    if report.deep:
        lines.append(
            f"  deep integrity  : OK  ({report.deep_records} records across "
            f"all segments)"
        )
    if ri.snapshot_newer_than_log:
        lines.append("  WARNING: snapshot was newer than the log (external truncation?)")
    return "\n".join(lines)
