"""Stream-engine options — one frozen keyword-only dataclass.

The same discipline as :class:`repro.opt.OptConfig` and
:class:`repro.serve.ServeConfig`: every knob is named, a misspelled
keyword raises ``TypeError`` at construction, and instances are frozen so
one config can parameterize an engine, be persisted into a stream
directory's meta file, and be asserted on in tests.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, fields

#: allowed values for :attr:`StreamConfig.compact`
COMPACT_POLICIES = ("auto", "manual")


@dataclass(frozen=True, kw_only=True)
class StreamConfig:
    """Options for :class:`repro.stream.StreamEngine` and its durable wrapper.

    Parameters
    ----------
    capacity:
        Size of the node universe; event ``node`` ids live in
        ``[0, capacity)``. Like the churn engine, the universe is
        pre-allocated so every event is an O(neighbourhood) update, never
        an O(n^2) rebuild.
    r_max:
        Upper bound on any node's coverage radius; the spatial-hash cell
        size derives from it. Bounded radii are what make per-event work
        O(1): a join/leave/move only perturbs interference inside one
        disk of radius <= ``r_max``, so a small constant block of cells
        always covers the delta (cf. Korman's
        bounded-communication-radius formulation, PAPERS.md).
    snapshot_every:
        Durable engines write a full-state snapshot every this many
        applied events (0 disables periodic snapshots). Recovery replays
        at most this many WAL records, so the snapshot interval bounds
        recovery time.
    fsync_every:
        WAL fsync batching: flush + fsync after this many appended
        records. Smaller values shrink the crash-loss window at the cost
        of throughput.
    fsync:
        ``False`` skips ``os.fsync`` entirely (flushes still bound the
        userspace buffer). Tests and benchmarks on tmpfs use this; any
        real deployment should leave it on.
    keep_snapshots:
        Retain this many most-recent snapshot files; older ones are
        deleted after each successful snapshot. At least 2, so a crash
        mid-snapshot always leaves a valid predecessor.
    segment_bytes:
        Log segment rotation threshold: the active ``wal-<seq>.jsonl``
        segment is sealed (and a fresh one opened) rather than grow past
        this many bytes. Frames never split across segments, so a frame
        larger than ``segment_bytes`` occupies a segment of its own.
        Together with ``snapshot_every`` this bounds recovery: only
        segments at or after the snapshot's seqno are read at all.
    compact:
        Compaction policy. ``"auto"`` deletes snapshot-covered sealed
        segments after every successful ``snapshot_now``; ``"manual"``
        only compacts when ``DurableStreamEngine.compact()`` (or
        ``repro stream compact``) is called explicitly.
    """

    capacity: int
    r_max: float
    snapshot_every: int = 10_000
    fsync_every: int = 256
    fsync: bool = True
    keep_snapshots: int = 2
    segment_bytes: int = 8 * 1024 * 1024
    compact: str = "auto"

    def __post_init__(self) -> None:
        if self.capacity < 1:
            raise ValueError("capacity must be >= 1")
        if not self.r_max > 0:
            raise ValueError("r_max must be positive")
        if self.snapshot_every < 0:
            raise ValueError("snapshot_every must be >= 0 (0 disables)")
        if self.fsync_every < 1:
            raise ValueError("fsync_every must be >= 1")
        if self.keep_snapshots < 2:
            raise ValueError("keep_snapshots must be >= 2")
        if self.segment_bytes < 1:
            raise ValueError("segment_bytes must be >= 1")
        if self.compact not in COMPACT_POLICIES:
            raise ValueError(
                f"compact must be one of {COMPACT_POLICIES}, got {self.compact!r}"
            )

    def to_jsonable(self) -> dict:
        return {
            "capacity": self.capacity,
            "r_max": self.r_max,
            "snapshot_every": self.snapshot_every,
            "fsync_every": self.fsync_every,
            "fsync": self.fsync,
            "keep_snapshots": self.keep_snapshots,
            "segment_bytes": self.segment_bytes,
            "compact": self.compact,
        }

    @classmethod
    def from_jsonable(cls, payload: dict) -> "StreamConfig":
        # tolerate meta files written before a field existed (they take
        # the default) and, symmetrically, fields this build doesn't know
        known = {f.name for f in fields(cls)}
        return cls(**{k: v for k, v in payload.items() if k in known})

    def to_json(self) -> str:
        """Compact JSON string; inverse of :meth:`from_json`."""
        return json.dumps(self.to_jsonable(), separators=(",", ":"))

    @classmethod
    def from_json(cls, text: str) -> "StreamConfig":
        payload = json.loads(text)
        if not isinstance(payload, dict):
            raise ValueError("StreamConfig JSON must be an object")
        return cls.from_jsonable(payload)
