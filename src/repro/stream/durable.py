"""Durable wrapper: WAL + periodic snapshots + snapshot/tail-replay recovery.

A *stream directory* is the unit of durability::

    <dir>/meta.json            engine StreamConfig (written once at create)
    <dir>/wal.jsonl            append-only event log (repro.stream.wal framing)
    <dir>/snapshot-<seq>.json  periodic full-state snapshots (newest wins)

Write path: each event is applied to the in-memory engine (which rejects
invalid events before anything is persisted), then appended to the WAL as
a compact JSON row ``[seq, kind, node, x, y, r]`` (absent fields dropped
from the tail; see :meth:`StreamEvent.wal_payload`). Sequence numbers are
assigned by the engine
and are contiguous from 1, so the WAL *is* the state: replaying it from
scratch reproduces the engine bit-identically (the property
:mod:`repro.stream.verify` asserts).

Recovery: scan the WAL's verified prefix (raising
:class:`~repro.stream.wal.WalCorruption` on a corrupt interior record),
truncate a torn tail, load the newest snapshot that verifies, and replay
only the records past its seqno. A snapshot newer than the log can only
arise from external interference (the WAL is fsynced before every
snapshot) — it is tolerated, with the snapshot taken as authoritative and
the condition flagged in :class:`RecoveryInfo`.
"""

from __future__ import annotations

import hashlib
import json
import os
from binascii import hexlify
from dataclasses import dataclass
from pathlib import Path

from repro import obs
from repro.stream.config import StreamConfig
from repro.stream.engine import AppliedEvent, StreamEngine
from repro.stream.events import StreamEvent
from repro.stream.snapshot import (
    latest_snapshot,
    prune_snapshots,
    write_snapshot,
)
from repro.stream.wal import FRAME_FMT, WriteAheadLog, scan_wal

__all__ = ["DurableStreamEngine", "RecoveryInfo"]

WAL_NAME = "wal.jsonl"
META_NAME = "meta.json"


@dataclass(frozen=True, slots=True)
class RecoveryInfo:
    """What recovery found and did (attached to an opened engine)."""

    #: seqno of the snapshot recovery started from (0 = none, full replay)
    snapshot_seq: int
    #: first/last replayed WAL seqno (both 0 when nothing was replayed)
    replayed_from: int
    replayed_to: int
    #: total verified records in the WAL
    wal_records: int
    #: the WAL ended in an incomplete frame (crash signature), since truncated
    torn_tail: bool
    #: bytes of torn tail dropped
    torn_bytes: int
    #: newest valid snapshot was ahead of the log (external truncation)
    snapshot_newer_than_log: bool

    def to_jsonable(self) -> dict:
        return {
            "snapshot_seq": self.snapshot_seq,
            "replayed_from": self.replayed_from,
            "replayed_to": self.replayed_to,
            "wal_records": self.wal_records,
            "torn_tail": self.torn_tail,
            "torn_bytes": self.torn_bytes,
            "snapshot_newer_than_log": self.snapshot_newer_than_log,
        }


class DurableStreamEngine:
    """A :class:`StreamEngine` whose every event survives a crash.

    Construct via :meth:`create` (new stream directory) or :meth:`open`
    (recover an existing one); the constructor itself is internal.
    """

    def __init__(
        self,
        directory: Path,
        config: StreamConfig,
        engine: StreamEngine,
        wal: WriteAheadLog,
        recovery: RecoveryInfo | None,
    ):
        self.directory = directory
        self.config = config
        self.engine = engine
        self._wal = wal
        #: recovery report when this instance came from :meth:`open`
        self.recovery = recovery
        self._since_snapshot = (
            engine.seq - recovery.snapshot_seq if recovery else 0
        )
        self._closed = False

    # -- lifecycle ---------------------------------------------------------

    @classmethod
    def create(
        cls, directory: str | Path, config: StreamConfig
    ) -> "DurableStreamEngine":
        """Initialize a fresh stream directory (must not already be one)."""
        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        meta = directory / META_NAME
        if meta.exists() or (directory / WAL_NAME).exists():
            raise FileExistsError(
                f"{directory} already holds a stream (use open())"
            )
        meta.write_text(
            json.dumps({"format": 1, "config": config.to_jsonable()}, indent=2)
            + "\n"
        )
        wal = WriteAheadLog(
            directory / WAL_NAME,
            fsync_every=config.fsync_every,
            fsync=config.fsync,
        )
        return cls(directory, config, StreamEngine(config), wal, None)

    @classmethod
    def open(cls, directory: str | Path) -> "DurableStreamEngine":
        """Recover an existing stream directory (snapshot + tail replay)."""
        directory = Path(directory)
        meta = directory / META_NAME
        if not meta.exists():
            raise FileNotFoundError(f"{directory} is not a stream directory")
        config = StreamConfig.from_jsonable(
            json.loads(meta.read_text())["config"]
        )
        with obs.span("stream.recover", dir=str(directory)):
            scan = scan_wal(directory / WAL_NAME)
            if scan.torn_tail:
                # drop the incomplete frame so the appender resumes cleanly
                os.truncate(directory / WAL_NAME, scan.valid_bytes)
                obs.count("stream.recover.torn_tails")

            snap = latest_snapshot(directory)
            snap_seq = snap[0] if snap else 0
            newer = snap_seq > scan.last_seq
            if snap and (newer or snap_seq >= scan.first_seq - 1):
                engine = StreamEngine.from_state(
                    config, json.loads(snap[1])
                )
            else:
                engine, snap_seq = StreamEngine(config), 0

            replayed_from = replayed_to = 0
            tail: list[tuple[int, StreamEvent]] = []
            contiguous = True
            for rec in scan.records:
                seq, event = StreamEvent.from_wal_record(rec)
                if seq <= snap_seq:
                    continue
                if replayed_from == 0:
                    replayed_from = seq
                elif seq != replayed_to + 1:
                    contiguous = False
                replayed_to = seq
                tail.append((seq, event))
            if contiguous and (not tail or replayed_from == engine.seq + 1):
                # our own writer always produces this shape; bulk replay
                # assigns the same seqnos and is ~2x faster than the
                # per-event path (recovery wall time is a reported metric)
                engine.apply_many([event for _, event in tail])
            else:
                # externally produced logs may skip or repeat seqnos;
                # replay them one by one under explicit seq validation
                for seq, event in tail:
                    engine.apply(event, seq=seq, collect=False)
            obs.count("stream.recover.replayed", replayed_to - replayed_from + 1 if replayed_from else 0)

        info = RecoveryInfo(
            snapshot_seq=snap_seq,
            replayed_from=replayed_from,
            replayed_to=replayed_to,
            wal_records=len(scan.records),
            torn_tail=scan.torn_tail,
            torn_bytes=scan.torn_bytes,
            snapshot_newer_than_log=newer,
        )
        wal = WriteAheadLog(
            directory / WAL_NAME,
            fsync_every=config.fsync_every,
            fsync=config.fsync,
        )
        return cls(directory, config, engine, wal, info)

    def close(self) -> None:
        """Flush, fsync and close the WAL (state remains recoverable)."""
        if self._closed:
            return
        self._closed = True
        self._wal.flush(force_fsync=self.config.fsync)
        self._wal.close()

    def abort(self) -> None:
        """Crash hook: drop buffered WAL bytes and stop (see WAL.abort)."""
        self._closed = True
        self._wal.abort()

    def __enter__(self) -> "DurableStreamEngine":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    # -- write path --------------------------------------------------------

    @property
    def last_seq(self) -> int:
        return self.engine.seq

    def apply(self, event: StreamEvent, *, collect: bool = True) -> AppliedEvent:
        """Apply one event and append it to the WAL; maybe snapshot."""
        if self._closed:
            raise RuntimeError("engine is closed")
        applied = self.engine.apply(event, collect=collect)
        self._wal.append_payload(event.wal_payload(applied.seq))
        self._since_snapshot += 1
        every = self.config.snapshot_every
        if every and self._since_snapshot >= every:
            self.snapshot_now()
        return applied

    def apply_batch(
        self, events, *, collect: bool = False
    ) -> list[AppliedEvent] | int:
        """Apply events in order.

        With ``collect`` (delta consumers), per-event
        :class:`AppliedEvent` results are returned. Without it — the hot
        ingest path — the loop skips every per-event object allocation
        and returns the event count; an event rejected mid-batch leaves
        its applied prefix in the WAL, exactly like the slow path.
        """
        if collect:
            out = [self.apply(e, collect=True) for e in events]
            obs.count("stream.events", len(out))
            return out
        if self._closed:
            raise RuntimeError("engine is closed")
        events = list(events)
        engine = self.engine
        wal = self._wal
        sha = hashlib.sha256
        hexl = hexlify
        every = self.config.snapshot_every
        # chunks never exceed fsync_every, so batched appends keep the
        # same per-record crash-loss bound as the one-at-a-time path
        chunk_max = max(1, min(4096, wal.fsync_every))
        i = 0
        n = len(events)
        done = 0
        try:
            while i < n:
                take = chunk_max
                if every:
                    # cut chunks at the snapshot boundary so snapshots
                    # land on the same seqnos as the one-event path
                    # (recovery can start past the cadence: take >= 1)
                    take = min(take, max(1, every - self._since_snapshot))
                chunk = events[i : i + take]
                start = engine.seq
                try:
                    engine.apply_many(chunk)
                finally:
                    # serialize + frame in one pass, and only the applied
                    # prefix: on a mid-chunk rejection the WAL holds
                    # exactly what the one-event path would have written
                    applied = engine.seq - start
                    if applied:
                        frames = []
                        ap = frames.append
                        seq = start
                        for j in range(applied):
                            # StreamEvent.wal_payload, inlined: the row
                            # f-string is the hottest serialization site
                            # and the method call alone is measurable here
                            ev = chunk[j]
                            seq += 1
                            kind, node, x = ev.kind, ev.node, ev.x
                            if x is None:
                                p = f'[{seq},"{kind}",{node}]'
                            elif ev.r is None:
                                p = (
                                    f'[{seq},"{kind}",{node}'
                                    f',{x!r},{ev.y!r}]'
                                )
                            else:
                                p = (
                                    f'[{seq},"{kind}",{node}'
                                    f',{x!r},{ev.y!r},{ev.r!r}]'
                                )
                            data = p.encode()
                            ap(
                                FRAME_FMT
                                % (len(data), hexl(sha(data).digest()), data)
                            )
                        wal.append_framed(b"".join(frames), applied)
                        self._since_snapshot += applied
                        done += applied
                if every and self._since_snapshot >= every:
                    self.snapshot_now()
                i += len(chunk)
        finally:
            obs.count("stream.events", done)
        return done

    def flush(self) -> None:
        """Make everything applied so far durable right now."""
        self._wal.flush(force_fsync=self.config.fsync)

    def snapshot_now(self) -> Path:
        """Write a snapshot at the current seqno (WAL is fsynced first, so
        a snapshot can never be ahead of the durable log)."""
        self._wal.flush(force_fsync=True)
        with obs.span("stream.snapshot", seq=self.engine.seq):
            path = write_snapshot(
                self.directory,
                self.engine.seq,
                self.engine.state_json(),
                fsync=self.config.fsync,
            )
        prune_snapshots(self.directory, self.config.keep_snapshots)
        self._since_snapshot = 0
        return path
