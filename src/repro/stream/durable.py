"""Durable wrapper: segmented WAL + snapshots + bounded tail-replay recovery.

A *stream directory* is the unit of durability::

    <dir>/meta.json                    engine StreamConfig (written at create)
    <dir>/wal-<first_seq>.jsonl        log segments (repro.stream.wal framing)
    <dir>/snapshot-<seq>.json          periodic full-state snapshots
    <dir>/wal.jsonl                    legacy pre-segmentation log (read-only)

Write path: each event is applied to the in-memory engine (which rejects
invalid events before anything is persisted), then appended to the log as
a compact JSON row ``[seq, kind, node, x, y, r]`` (absent fields dropped
from the tail; see :meth:`StreamEvent.wal_payload`). Sequence numbers are
assigned by the engine and are contiguous from 1, so the log *is* the
state: replaying it reproduces the engine bit-identically (the property
:mod:`repro.stream.verify` asserts). The :class:`SegmentedWal` store
rotates to a fresh ``wal-<first_seq>.jsonl`` whenever the active segment
would grow past ``StreamConfig.segment_bytes``.

Recovery is O(data since the last snapshot), not O(stream lifetime): load
the newest snapshot that verifies, scan only the segments holding records
past its seqno (:func:`~repro.stream.wal.scan_store` seeks by filename —
no manifest), truncate a torn tail on the newest segment, and replay the
tail. A snapshot newer than the log can only arise from external
interference (the log is fsynced before every snapshot) — it is
tolerated, with the snapshot taken as authoritative and the condition
flagged in :class:`RecoveryInfo`. A log whose oldest surviving segment
starts *past* ``snapshot.seq + 1`` is a hole no crash can explain
(compaction never deletes the segment containing the next seqno to
replay) and raises :class:`~repro.stream.wal.WalCorruption`.

Compaction (:meth:`DurableStreamEngine.compact`) deletes sealed segments
wholly covered by the newest valid snapshot — automatically after every
:meth:`snapshot_now` under the default ``compact="auto"`` policy, or on
demand (``repro stream compact``) under ``"manual"``. Deletion runs
oldest-first, so a crash mid-compaction leaves a contiguous suffix and a
restarted compaction resumes idempotently.
"""

from __future__ import annotations

import hashlib
import json
import os
import warnings
from binascii import hexlify
from dataclasses import dataclass, replace
from pathlib import Path

from repro import obs
from repro.stream.config import StreamConfig
from repro.stream.engine import AppliedEvent, StreamEngine
from repro.stream.events import StreamEvent
from repro.stream.snapshot import (
    latest_snapshot,
    newest_snapshot_seq,
    prune_snapshots,
    write_snapshot,
)
from repro.stream.wal import (
    FRAME_FMT,
    LEGACY_WAL_NAME,
    SegmentedWal,
    WalCorruption,
    list_segments,
    scan_store,
)

__all__ = ["DurableStreamEngine", "RecoveryInfo"]

#: legacy single-file log name; kept as an alias for older callers
WAL_NAME = LEGACY_WAL_NAME
META_NAME = "meta.json"

#: segment size used by the deprecated ``wal_path=`` shim — large enough
#: that rotation never triggers, i.e. a one-segment store
_ONE_SEGMENT_BYTES = 1 << 62


@dataclass(frozen=True, slots=True)
class RecoveryInfo:
    """What recovery found and did (attached to an opened engine)."""

    #: seqno of the snapshot recovery started from (0 = none, full replay)
    snapshot_seq: int
    #: first/last replayed log seqno (both 0 when nothing was replayed)
    replayed_from: int
    replayed_to: int
    #: verified records scanned during recovery (snapshot-covered
    #: segments are skipped entirely, so this is bounded by the snapshot
    #: cadence plus one segment — not the stream's lifetime)
    wal_records: int
    #: the newest segment ended in an incomplete frame (crash signature),
    #: since truncated
    torn_tail: bool
    #: bytes of torn tail dropped
    torn_bytes: int
    #: newest valid snapshot was ahead of the log (external truncation)
    snapshot_newer_than_log: bool
    #: log segments present / actually read during recovery
    segments: int = 1
    segments_scanned: int = 1
    #: log bytes read during recovery (the bounded-recovery metric;
    #: also emitted as the ``stream.recover.bytes`` gauge)
    bytes_scanned: int = 0

    def to_jsonable(self) -> dict:
        return {
            "snapshot_seq": self.snapshot_seq,
            "replayed_from": self.replayed_from,
            "replayed_to": self.replayed_to,
            "wal_records": self.wal_records,
            "torn_tail": self.torn_tail,
            "torn_bytes": self.torn_bytes,
            "snapshot_newer_than_log": self.snapshot_newer_than_log,
            "segments": self.segments,
            "segments_scanned": self.segments_scanned,
            "bytes_scanned": self.bytes_scanned,
        }


class DurableStreamEngine:
    """A :class:`StreamEngine` whose every event survives a crash.

    Construct via :meth:`create` (new stream directory) or :meth:`open`
    (recover an existing one); the positional constructor is internal.
    The ``wal_path=`` keyword form from the single-file era is deprecated
    but still works, mapping onto a one-segment store in the file's
    directory.
    """

    def __init__(
        self,
        directory: Path | None = None,
        config: StreamConfig | None = None,
        engine: StreamEngine | None = None,
        wal: SegmentedWal | None = None,
        recovery: RecoveryInfo | None = None,
        *,
        wal_path: str | Path | None = None,
    ):
        if wal_path is not None:
            warnings.warn(
                "DurableStreamEngine(wal_path=...) is deprecated; the log "
                "is segmented now — use DurableStreamEngine.create(directory"
                ", config) or .open(directory) on the file's directory",
                DeprecationWarning,
                stacklevel=2,
            )
            built = self._from_wal_path(Path(wal_path), config)
            directory, config = built.directory, built.config
            engine, wal, recovery = built.engine, built._wal, built.recovery
            built._closed = True  # ownership of the store moved here
        elif directory is None or config is None or engine is None or wal is None:
            raise TypeError(
                "use DurableStreamEngine.create()/.open(); the positional "
                "constructor is internal"
            )
        self.directory = directory
        self.config = config
        self.engine = engine
        self._wal = wal
        #: recovery report when this instance came from :meth:`open`
        self.recovery = recovery
        self._since_snapshot = (
            engine.seq - recovery.snapshot_seq if recovery else 0
        )
        self._closed = False

    # -- lifecycle ---------------------------------------------------------

    @classmethod
    def _from_wal_path(
        cls, wal_path: Path, config: StreamConfig | None
    ) -> "DurableStreamEngine":
        directory = wal_path.parent if wal_path.parent != Path("") else Path(".")
        if (directory / META_NAME).exists():
            return cls.open(directory)
        if config is None:
            raise TypeError(
                "DurableStreamEngine(wal_path=...) on a fresh directory "
                "also needs config="
            )
        return cls.create(
            directory, replace(config, segment_bytes=_ONE_SEGMENT_BYTES)
        )

    @classmethod
    def create(
        cls, directory: str | Path, config: StreamConfig
    ) -> "DurableStreamEngine":
        """Initialize a fresh stream directory (must not already be one)."""
        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        meta = directory / META_NAME
        if meta.exists() or list_segments(directory):
            raise FileExistsError(
                f"{directory} already holds a stream (use open())"
            )
        meta.write_text(
            json.dumps({"format": 2, "config": config.to_jsonable()}, indent=2)
            + "\n"
        )
        wal = SegmentedWal(
            directory,
            segment_bytes=config.segment_bytes,
            next_seq=1,
            fsync_every=config.fsync_every,
            fsync=config.fsync,
        )
        return cls(directory, config, StreamEngine(config), wal, None)

    @classmethod
    def open(cls, directory: str | Path) -> "DurableStreamEngine":
        """Recover an existing stream directory (snapshot + tail replay).

        Only segments at or after the newest valid snapshot's seqno are
        read; snapshot-covered segments cost nothing, so recovery time is
        bounded by the snapshot cadence (plus at most one segment of
        slack), however old the stream is.
        """
        directory = Path(directory)
        meta = directory / META_NAME
        if not meta.exists():
            raise FileNotFoundError(f"{directory} is not a stream directory")
        config = StreamConfig.from_jsonable(
            json.loads(meta.read_text())["config"]
        )
        with obs.span("stream.recover", dir=str(directory)):
            snap = latest_snapshot(directory)
            snap_seq = snap[0] if snap else 0
            scan = scan_store(directory, from_seq=snap_seq + 1)
            if scan.torn_tail:
                # drop the incomplete frame so the appender resumes cleanly
                os.truncate(scan.tail_path, scan.valid_bytes)
                obs.count("stream.recover.torn_tails")
            obs.gauge("stream.recover.bytes", scan.scanned_bytes)

            log_start = scan.first_seq
            if log_start and log_start > snap_seq + 1:
                raise WalCorruption(
                    f"log starts at seq {log_start} but the newest snapshot "
                    f"covers through {snap_seq}; records "
                    f"{snap_seq + 1}..{log_start - 1} are gone (compaction "
                    f"never deletes the segment holding snapshot.seq+1, so "
                    f"this is external interference)",
                    record_index=0,
                    last_good_seq=snap_seq,
                    offset=0,
                    seq=snap_seq + 1,
                )
            newer = snap_seq > scan.last_seq
            if snap:
                engine = StreamEngine.from_state(config, json.loads(snap[1]))
            else:
                engine = StreamEngine(config)

            replayed_from = replayed_to = 0
            tail: list[tuple[int, StreamEvent]] = []
            contiguous = True
            for rec in scan.records:
                seq, event = StreamEvent.from_wal_record(rec)
                if seq <= snap_seq:
                    continue
                if replayed_from == 0:
                    replayed_from = seq
                elif seq != replayed_to + 1:
                    contiguous = False
                replayed_to = seq
                tail.append((seq, event))
            if contiguous and (not tail or replayed_from == engine.seq + 1):
                # our own writer always produces this shape; bulk replay
                # assigns the same seqnos and is ~2x faster than the
                # per-event path (recovery wall time is a reported metric)
                engine.apply_many([event for _, event in tail])
            else:
                # externally produced logs may skip or repeat seqnos;
                # replay them one by one under explicit seq validation
                for seq, event in tail:
                    engine.apply(event, seq=seq, collect=False)
            obs.count("stream.recover.replayed", replayed_to - replayed_from + 1 if replayed_from else 0)

        info = RecoveryInfo(
            snapshot_seq=snap_seq,
            replayed_from=replayed_from,
            replayed_to=replayed_to,
            wal_records=len(scan.records),
            torn_tail=scan.torn_tail,
            torn_bytes=scan.torn_bytes,
            snapshot_newer_than_log=newer,
            segments=len(scan.segments),
            segments_scanned=len(scan.scanned),
            bytes_scanned=scan.scanned_bytes,
        )
        wal = SegmentedWal(
            directory,
            segment_bytes=config.segment_bytes,
            next_seq=engine.seq + 1,
            fsync_every=config.fsync_every,
            fsync=config.fsync,
        )
        return cls(directory, config, engine, wal, info)

    def close(self) -> None:
        """Flush, fsync and close the log (state remains recoverable)."""
        if self._closed:
            return
        self._closed = True
        self._wal.flush(force_fsync=self.config.fsync)
        self._wal.close()

    def abort(self) -> None:
        """Crash hook: drop buffered log bytes and stop (see store abort)."""
        self._closed = True
        self._wal.abort()

    def __enter__(self) -> "DurableStreamEngine":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    # -- write path --------------------------------------------------------

    @property
    def last_seq(self) -> int:
        return self.engine.seq

    @property
    def store(self) -> SegmentedWal:
        """The underlying :class:`~repro.stream.wal.LogStore` (read-mostly
        escape hatch for tooling; appends must go through the engine)."""
        return self._wal

    def apply(self, event: StreamEvent, *, collect: bool = True) -> AppliedEvent:
        """Apply one event and append it to the log; maybe snapshot."""
        if self._closed:
            raise RuntimeError("engine is closed")
        applied = self.engine.apply(event, collect=collect)
        self._wal.append((event.wal_payload(applied.seq),))
        self._since_snapshot += 1
        every = self.config.snapshot_every
        if every and self._since_snapshot >= every:
            self.snapshot_now()
        return applied

    def apply_batch(
        self, events, *, collect: bool = False
    ) -> list[AppliedEvent] | int:
        """Apply events in order.

        With ``collect`` (delta consumers), per-event
        :class:`AppliedEvent` results are returned. Without it — the hot
        ingest path — the loop skips every per-event object allocation
        and returns the event count; an event rejected mid-batch leaves
        its applied prefix in the log, exactly like the slow path.
        """
        if collect:
            out = [self.apply(e, collect=True) for e in events]
            obs.count("stream.events", len(out))
            return out
        if self._closed:
            raise RuntimeError("engine is closed")
        events = list(events)
        engine = self.engine
        wal = self._wal
        sha = hashlib.sha256
        hexl = hexlify
        every = self.config.snapshot_every
        # chunks never exceed fsync_every, so batched appends keep the
        # same per-record crash-loss bound as the one-at-a-time path
        chunk_max = max(1, min(4096, wal.fsync_every))
        i = 0
        n = len(events)
        done = 0
        try:
            while i < n:
                take = chunk_max
                if every:
                    # cut chunks at the snapshot boundary so snapshots
                    # land on the same seqnos as the one-event path
                    # (recovery can start past the cadence: take >= 1)
                    take = min(take, max(1, every - self._since_snapshot))
                chunk = events[i : i + take]
                start = engine.seq
                try:
                    engine.apply_many(chunk)
                finally:
                    # serialize + frame in one pass, and only the applied
                    # prefix: on a mid-chunk rejection the log holds
                    # exactly what the one-event path would have written
                    applied = engine.seq - start
                    if applied:
                        frames = []
                        ap = frames.append
                        seq = start
                        for j in range(applied):
                            # StreamEvent.wal_payload, inlined: the row
                            # f-string is the hottest serialization site
                            # and the method call alone is measurable here
                            ev = chunk[j]
                            seq += 1
                            kind, node, x = ev.kind, ev.node, ev.x
                            if x is None:
                                p = f'[{seq},"{kind}",{node}]'
                            elif ev.r is None:
                                p = (
                                    f'[{seq},"{kind}",{node}'
                                    f',{x!r},{ev.y!r}]'
                                )
                            else:
                                p = (
                                    f'[{seq},"{kind}",{node}'
                                    f',{x!r},{ev.y!r},{ev.r!r}]'
                                )
                            data = p.encode()
                            ap(
                                FRAME_FMT
                                % (len(data), hexl(sha(data).digest()), data)
                            )
                        wal.append_frames(frames)
                        self._since_snapshot += applied
                        done += applied
                if every and self._since_snapshot >= every:
                    self.snapshot_now()
                i += len(chunk)
        finally:
            obs.count("stream.events", done)
        return done

    def flush(self) -> None:
        """Make everything applied so far durable right now."""
        self._wal.flush(force_fsync=self.config.fsync)

    def snapshot_now(self) -> Path:
        """Write a snapshot at the current seqno (the log is fsynced
        first, so a snapshot can never be ahead of the durable log).
        Under ``compact="auto"``, snapshot-covered sealed segments are
        deleted right after."""
        self._wal.flush(force_fsync=True)
        with obs.span("stream.snapshot", seq=self.engine.seq):
            path = write_snapshot(
                self.directory,
                self.engine.seq,
                self.engine.state_json(),
                fsync=self.config.fsync,
            )
        prune_snapshots(self.directory, self.config.keep_snapshots)
        self._since_snapshot = 0
        if self.config.compact == "auto":
            self._compact_to(self.engine.seq)
        return path

    # -- compaction --------------------------------------------------------

    def compact(self, *, max_deletes: int | None = None) -> list[Path]:
        """Delete sealed segments wholly covered by the newest valid
        snapshot; returns the deleted paths.

        Safe to call at any time and idempotent: the cover is re-derived
        from disk, the segment containing ``snapshot.seq + 1`` is never
        touched, and deletion runs oldest-first so an interrupted
        compaction simply resumes on the next call. ``max_deletes`` is
        the chaos harness's mid-compaction kill point.
        """
        return self._compact_to(
            newest_snapshot_seq(self.directory), max_deletes=max_deletes
        )

    def _compact_to(
        self, cover_seq: int, *, max_deletes: int | None = None
    ) -> list[Path]:
        removed = self._wal.compact(cover_seq, max_deletes=max_deletes)
        if removed:
            obs.count("stream.compact.segments_deleted", len(removed))
        return removed
