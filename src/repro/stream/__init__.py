"""Durable event-sourced streaming interference engine.

The paper's robustness theorem (a join changes any receiver's
interference by at most +1) gives every membership event a small, bounded
delta — exactly what an event-sourced engine needs. This package turns
that into a crash-safe streaming subsystem:

- :mod:`repro.stream.events`   — typed ``join``/``leave``/``move`` events
  and seeded workload generators;
- :mod:`repro.stream.engine`   — :class:`StreamEngine`, the in-memory
  incremental engine (spatial hash, O(neighbourhood) per event, exact
  arithmetic);
- :mod:`repro.stream.wal`      — the segmented length+SHA-256 framed
  write-ahead log (:class:`SegmentedWal`, rotated ``wal-<seq>.jsonl``
  segments, the :class:`LogStore` storage protocol), with explicit
  torn-tail vs corruption semantics;
- :mod:`repro.stream.snapshot` — atomic checksummed full-state snapshots;
- :mod:`repro.stream.durable`  — :class:`DurableStreamEngine`: log-backed
  engine with snapshot + bounded tail-replay recovery and a compactor
  that deletes snapshot-covered segments;
- :mod:`repro.stream.verify`   — recovered-state == recomputed-state
  verification (``repro stream verify``);
- :mod:`repro.stream.chaos`    — the seeded kill/recover/resume harness.
"""

from repro.stream.chaos import (
    ChaosRunResult,
    chaos_run,
    chaos_suite,
    render_chaos_results,
)
from repro.stream.config import StreamConfig
from repro.stream.durable import DurableStreamEngine, RecoveryInfo
from repro.stream.engine import AppliedEvent, StreamEngine, StreamStateError
from repro.stream.events import (
    EVENT_FAMILIES,
    EVENT_KINDS,
    StreamEvent,
    random_stream_events,
)
from repro.stream.snapshot import latest_snapshot, list_snapshots, write_snapshot
from repro.stream.verify import (
    VerifyReport,
    render_verify_report,
    verify_stream_dir,
)
from repro.stream.wal import (
    LogStore,
    SegmentInfo,
    SegmentedWal,
    StoreScan,
    WalCorruption,
    WalScan,
    WriteAheadLog,
    list_segments,
    scan_store,
    scan_wal,
    store_bytes,
)

__all__ = [
    "AppliedEvent",
    "ChaosRunResult",
    "DurableStreamEngine",
    "EVENT_FAMILIES",
    "EVENT_KINDS",
    "LogStore",
    "RecoveryInfo",
    "SegmentInfo",
    "SegmentedWal",
    "StoreScan",
    "StreamConfig",
    "StreamEngine",
    "StreamEvent",
    "StreamStateError",
    "VerifyReport",
    "WalCorruption",
    "WalScan",
    "WriteAheadLog",
    "chaos_run",
    "chaos_suite",
    "latest_snapshot",
    "list_segments",
    "list_snapshots",
    "random_stream_events",
    "render_chaos_results",
    "render_verify_report",
    "scan_store",
    "scan_wal",
    "store_bytes",
    "verify_stream_dir",
    "write_snapshot",
]
