"""Append-only write-ahead log: framed JSONL with length + SHA-256.

Record framing
--------------
One record per line::

    <payload-bytes> <sha256-hex> <payload-json>\\n

- ``payload-bytes`` — decimal byte length of the JSON payload;
- ``sha256-hex``    — SHA-256 digest (64 hex chars) of the payload bytes;
- ``payload-json``  — compact JSON (never contains a raw newline).

The explicit length makes torn tails detectable without guessing, and the
checksum makes silent corruption detectable explicitly. The two failure
modes get *different* treatment, because they mean different things:

- **torn tail** — the file ends in an incomplete frame (no terminating
  newline, or fewer payload bytes than declared at EOF). This is the
  expected signature of a crash mid-write (a killed process loses its
  userspace buffer at an arbitrary byte boundary) and is *tolerated*:
  the scan reports the valid prefix and recovery truncates the file to
  it.
- **corruption** — a *complete* frame whose checksum (or framing) does
  not verify, or an invalid frame followed by further data. No crash
  produces this; a flipped bit does. :func:`scan_wal` raises
  :class:`WalCorruption` naming the failing record and the last good
  seqno, and recovery refuses to continue past it.

Writes are buffered; :meth:`WriteAheadLog.append` triggers
``flush``+``fsync`` every ``fsync_every`` records, so the crash-loss
window is bounded by the batch size (the throughput/durability trade
measured in ``benchmarks/bench_stream.py``).
"""

from __future__ import annotations

import hashlib
import json
import os
from binascii import hexlify
from dataclasses import dataclass, field
from pathlib import Path

from repro import obs

__all__ = [
    "FRAME_FMT",
    "WalCorruption",
    "WalScan",
    "WriteAheadLog",
    "frame_record",
    "scan_wal",
]

_SHA_HEX_LEN = 64

#: one WAL line: b"<len> <sha256-hex> <payload>\n"
FRAME_FMT = b"%d %s %s\n"


def _record_seq(rec) -> int:
    """Seqno of a decoded payload: row form ``[seq, ...]`` or object form
    ``{"seq": ...}`` (the WAL itself is payload-agnostic)."""
    return int(rec[0]) if isinstance(rec, list) else int(rec["seq"])


class WalCorruption(Exception):
    """A corrupted (not merely torn) WAL record.

    Attributes
    ----------
    record_index:
        0-based index of the failing record in the file.
    last_good_seq:
        ``seq`` of the last record that verified (0 if none did).
    seq:
        ``seq`` parsed out of the corrupt payload when it still decodes,
        else ``last_good_seq + 1`` (the slot the record occupies).
    offset:
        Byte offset of the failing frame.
    """

    def __init__(
        self,
        reason: str,
        *,
        record_index: int,
        last_good_seq: int,
        offset: int,
        seq: int | None = None,
    ):
        self.reason = reason
        self.record_index = record_index
        self.last_good_seq = last_good_seq
        self.offset = offset
        self.seq = seq if seq is not None else last_good_seq + 1
        super().__init__(
            f"WAL corruption at record {record_index} (seq {self.seq}, "
            f"byte {offset}): {reason}"
        )


def frame_record(payload_json: str) -> bytes:
    """Frame one pre-serialized JSON payload into a WAL line."""
    data = payload_json.encode("utf-8")
    return FRAME_FMT % (len(data), hexlify(hashlib.sha256(data).digest()), data)


@dataclass
class WalScan:
    """Outcome of scanning a WAL file's valid prefix."""

    path: Path
    records: list[dict] = field(default_factory=list)
    #: byte length of the valid prefix (complete, verified records)
    valid_bytes: int = 0
    #: True when the file ended in an incomplete frame (crash signature)
    torn_tail: bool = False
    #: bytes of incomplete trailing frame dropped by the scan
    torn_bytes: int = 0

    @property
    def last_seq(self) -> int:
        return _record_seq(self.records[-1]) if self.records else 0

    @property
    def first_seq(self) -> int:
        return _record_seq(self.records[0]) if self.records else 0


def scan_wal(path: str | Path) -> WalScan:
    """Read a WAL file's verified record prefix (see module docstring).

    A missing or empty file yields an empty scan. Raises
    :class:`WalCorruption` on a checksum/framing failure that is not a
    torn tail.
    """
    path = Path(path)
    scan = WalScan(path=path)
    if not path.exists():
        return scan
    data = path.read_bytes()
    size = len(data)
    offset = 0
    index = 0
    while offset < size:
        nl = data.find(b"\n", offset)
        if nl == -1:
            # no terminating newline: a write died mid-frame
            scan.torn_tail = True
            scan.torn_bytes = size - offset
            break
        line = data[offset : nl]
        failure = _check_frame(line)
        if failure is not None:
            if nl == size - 1 and _looks_truncated(line):
                # final line, payload shorter than declared: torn write
                # that happened to end on a newline from the lost bytes
                scan.torn_tail = True
                scan.torn_bytes = size - offset
                break
            raise WalCorruption(
                failure,
                record_index=index,
                last_good_seq=scan.last_seq,
                offset=offset,
                seq=_seq_hint(line),
            )
        payload = line[line.index(b" ", line.index(b" ") + 1) + 1 :]
        try:
            record = json.loads(payload)
        except json.JSONDecodeError as exc:  # checksum ok but not JSON
            raise WalCorruption(
                f"payload verifies but is not JSON: {exc}",
                record_index=index,
                last_good_seq=scan.last_seq,
                offset=offset,
            ) from exc
        scan.records.append(record)
        index += 1
        offset = nl + 1
        scan.valid_bytes = offset
    return scan


def _check_frame(line: bytes) -> str | None:
    """None if the newline-terminated frame verifies, else the reason."""
    sp1 = line.find(b" ")
    if sp1 <= 0:
        return "missing length field"
    try:
        length = int(line[:sp1])
    except ValueError:
        return "length field is not an integer"
    sp2 = sp1 + 1 + _SHA_HEX_LEN
    if len(line) <= sp2 or line[sp2 : sp2 + 1] != b" ":
        return "missing or malformed digest field"
    digest = line[sp1 + 1 : sp2]
    payload = line[sp2 + 1 :]
    if len(payload) != length:
        return (
            f"payload is {len(payload)} bytes, header declares {length}"
        )
    if hashlib.sha256(payload).hexdigest().encode("ascii") != digest:
        return "checksum mismatch"
    return None


def _looks_truncated(line: bytes) -> bool:
    """A final frame with a valid header but *fewer* payload bytes than
    declared — distinguishable from in-place corruption, which keeps the
    declared length."""
    sp1 = line.find(b" ")
    if sp1 <= 0:
        return True  # even the header is partial
    try:
        length = int(line[:sp1])
    except ValueError:
        return False
    return len(line) - (sp1 + 1 + _SHA_HEX_LEN + 1) < length


def _seq_hint(line: bytes) -> int | None:
    try:
        sp1 = line.index(b" ")
        payload = line[sp1 + 1 + _SHA_HEX_LEN + 1 :]
        rec = json.loads(payload)
        seq = rec[0] if isinstance(rec, list) else rec.get("seq")
        return int(seq) if isinstance(seq, int) else None
    except Exception:
        return None


class WriteAheadLog:
    """Appender over one WAL file (reading goes through :func:`scan_wal`)."""

    def __init__(
        self,
        path: str | Path,
        *,
        fsync_every: int = 256,
        fsync: bool = True,
    ):
        if fsync_every < 1:
            raise ValueError("fsync_every must be >= 1")
        self.path = Path(path)
        self.fsync_every = int(fsync_every)
        self.fsync = bool(fsync)
        self._f = open(self.path, "ab")
        self._unsynced = 0
        self._closed = False
        self.appended = 0

    def append(self, record: dict) -> None:
        """Append one record; flushes+fsyncs every ``fsync_every``."""
        self.append_payload(
            json.dumps(record, separators=(",", ":"), allow_nan=False)
        )

    def append_payload(self, payload_json: str) -> None:
        """Append one pre-serialized JSON payload (hot ingest path)."""
        data = payload_json.encode("utf-8")
        digest = hexlify(hashlib.sha256(data).digest())
        self._f.write(FRAME_FMT % (len(data), digest, data))
        self.appended += 1
        self._unsynced += 1
        if self._unsynced >= self.fsync_every:
            self.flush()

    def append_payloads(self, payloads: list[str]) -> None:
        """Append pre-serialized payloads as one buffered write.

        Same framing as :meth:`append_payload`, one syscall-side write
        for the whole batch. The flush check runs once per batch, so the
        crash-loss window is ``max(len(payloads), fsync_every)`` records;
        the bulk ingest path keeps its batches at or below
        ``fsync_every``, preserving the per-record bound.
        """
        if not payloads:
            return
        sha256 = hashlib.sha256
        parts = []
        for payload_json in payloads:
            data = payload_json.encode("utf-8")
            parts.append(
                FRAME_FMT % (len(data), hexlify(sha256(data).digest()), data)
            )
        self._f.write(b"".join(parts))
        self.appended += len(payloads)
        self._unsynced += len(payloads)
        if self._unsynced >= self.fsync_every:
            self.flush()

    def append_framed(self, framed: bytes, count: int) -> None:
        """Append ``count`` records already framed as :data:`FRAME_FMT`
        lines (the durable engine's fused hot loop serializes and frames
        in a single pass, then hands the finished bytes over)."""
        self._f.write(framed)
        self.appended += count
        self._unsynced += count
        if self._unsynced >= self.fsync_every:
            self.flush()

    def flush(self, *, force_fsync: bool = False) -> None:
        """Push buffered records to the OS (and to disk when fsyncing)."""
        self._f.flush()
        if self.fsync or force_fsync:
            os.fsync(self._f.fileno())
            obs.count("stream.wal.fsyncs")
        self._unsynced = 0

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        self.flush()
        self._f.close()

    def abort(self) -> None:
        """Simulate a crash: drop the userspace buffer and close.

        Closes the file descriptor *under* the buffered writer so its
        pending bytes can never reach the OS — byte-for-byte what a
        SIGKILL between fsync batches does to the file. Test/chaos hook.
        """
        if self._closed:
            return
        self._closed = True
        try:
            os.close(self._f.fileno())
        except OSError:
            pass
        try:
            self._f.close()  # flush attempt hits the dead fd; swallowed
        except (OSError, ValueError):
            pass

    def __enter__(self) -> "WriteAheadLog":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()
