"""Segmented write-ahead log: framed JSONL with length + SHA-256.

Record framing
--------------
One record per line::

    <payload-bytes> <sha256-hex> <payload-json>\\n

- ``payload-bytes`` — decimal byte length of the JSON payload;
- ``sha256-hex``    — SHA-256 digest (64 hex chars) of the payload bytes;
- ``payload-json``  — compact JSON (never contains a raw newline).

The explicit length makes torn tails detectable without guessing, and the
checksum makes silent corruption detectable explicitly. The two failure
modes get *different* treatment, because they mean different things:

- **torn tail** — the file ends in an incomplete frame (no terminating
  newline, or fewer payload bytes than declared at EOF). This is the
  expected signature of a crash mid-write (a killed process loses its
  userspace buffer at an arbitrary byte boundary) and is *tolerated*:
  the scan reports the valid prefix and recovery truncates the file to
  it.
- **corruption** — a *complete* frame whose checksum (or framing) does
  not verify, or an invalid frame followed by further data. No crash
  produces this; a flipped bit does. :func:`scan_wal` raises
  :class:`WalCorruption` naming the failing record and the last good
  seqno, and recovery refuses to continue past it.

Segmented layout
----------------
The log is stored as rotated *segments* ``wal-<first_seq>.jsonl``
(zero-padded so filename order is seq order), where ``<first_seq>`` is
the seqno of the segment's first record. :class:`SegmentedWal` rotates to
a fresh segment whenever the next frame would push the active segment
past ``segment_bytes`` — frames are never split across segments, and a
frame larger than ``segment_bytes`` gets a segment of its own. Sealing a
segment flushes (and fsyncs, when enabled) its bytes before the next
segment opens, so only the *newest* segment can ever hold a torn tail;
a torn or empty interior segment is corruption, not crash residue.
A pre-segmentation single-file log (``wal.jsonl``) is read as a sealed
legacy segment with ``first_seq == 1``; the writer never appends to it —
the first append after migration rotates into a fresh segment.

The storage seam is the runtime-checkable :class:`LogStore` protocol
(``append`` / ``flush`` / ``scan`` / ``seal``), of which
:class:`SegmentedWal` is the canonical implementation.

Writes are buffered; appends trigger ``flush``+``fsync`` every
``fsync_every`` records, so the crash-loss window is bounded by the batch
size (the throughput/durability trade measured in
``benchmarks/bench_stream.py``).
"""

from __future__ import annotations

import hashlib
import json
import os
import re
from binascii import hexlify
from dataclasses import dataclass, field
from pathlib import Path
from typing import Protocol, Sequence, runtime_checkable

from repro import obs

__all__ = [
    "FRAME_FMT",
    "LEGACY_WAL_NAME",
    "LogStore",
    "SegmentInfo",
    "SegmentedWal",
    "StoreScan",
    "WalCorruption",
    "WalScan",
    "WriteAheadLog",
    "frame_record",
    "list_segments",
    "scan_store",
    "scan_wal",
    "segment_name",
    "store_bytes",
]

_SHA_HEX_LEN = 64

#: pre-segmentation single-file log name (PR 6 layout); read-only now
LEGACY_WAL_NAME = "wal.jsonl"

_SEGMENT_RE = re.compile(r"^wal-(\d+)\.jsonl$")

#: one WAL line: b"<len> <sha256-hex> <payload>\n"
FRAME_FMT = b"%d %s %s\n"


def _record_seq(rec) -> int:
    """Seqno of a decoded payload: row form ``[seq, ...]`` or object form
    ``{"seq": ...}`` (the WAL itself is payload-agnostic)."""
    return int(rec[0]) if isinstance(rec, list) else int(rec["seq"])


class WalCorruption(Exception):
    """A corrupted (not merely torn) WAL record.

    Attributes
    ----------
    record_index:
        0-based index of the failing record in the file.
    last_good_seq:
        ``seq`` of the last record that verified (0 if none did).
    seq:
        ``seq`` parsed out of the corrupt payload when it still decodes,
        else ``last_good_seq + 1`` (the slot the record occupies).
    offset:
        Byte offset of the failing frame.
    """

    def __init__(
        self,
        reason: str,
        *,
        record_index: int,
        last_good_seq: int,
        offset: int,
        seq: int | None = None,
    ):
        self.reason = reason
        self.record_index = record_index
        self.last_good_seq = last_good_seq
        self.offset = offset
        self.seq = seq if seq is not None else last_good_seq + 1
        super().__init__(
            f"WAL corruption at record {record_index} (seq {self.seq}, "
            f"byte {offset}): {reason}"
        )


def frame_record(payload_json: str) -> bytes:
    """Frame one pre-serialized JSON payload into a WAL line."""
    data = payload_json.encode("utf-8")
    return FRAME_FMT % (len(data), hexlify(hashlib.sha256(data).digest()), data)


@dataclass
class WalScan:
    """Outcome of scanning a WAL file's valid prefix."""

    path: Path
    records: list[dict] = field(default_factory=list)
    #: byte length of the valid prefix (complete, verified records)
    valid_bytes: int = 0
    #: True when the file ended in an incomplete frame (crash signature)
    torn_tail: bool = False
    #: bytes of incomplete trailing frame dropped by the scan
    torn_bytes: int = 0

    @property
    def last_seq(self) -> int:
        return _record_seq(self.records[-1]) if self.records else 0

    @property
    def first_seq(self) -> int:
        return _record_seq(self.records[0]) if self.records else 0


def scan_wal(path: str | Path) -> WalScan:
    """Read a WAL file's verified record prefix (see module docstring).

    A missing or empty file yields an empty scan. Raises
    :class:`WalCorruption` on a checksum/framing failure that is not a
    torn tail.
    """
    path = Path(path)
    scan = WalScan(path=path)
    if not path.exists():
        return scan
    data = path.read_bytes()
    size = len(data)
    offset = 0
    index = 0
    while offset < size:
        nl = data.find(b"\n", offset)
        if nl == -1:
            # no terminating newline: a write died mid-frame
            scan.torn_tail = True
            scan.torn_bytes = size - offset
            break
        line = data[offset : nl]
        failure = _check_frame(line)
        if failure is not None:
            if nl == size - 1 and _looks_truncated(line):
                # final line, payload shorter than declared: torn write
                # that happened to end on a newline from the lost bytes
                scan.torn_tail = True
                scan.torn_bytes = size - offset
                break
            raise WalCorruption(
                failure,
                record_index=index,
                last_good_seq=scan.last_seq,
                offset=offset,
                seq=_seq_hint(line),
            )
        payload = line[line.index(b" ", line.index(b" ") + 1) + 1 :]
        try:
            record = json.loads(payload)
        except json.JSONDecodeError as exc:  # checksum ok but not JSON
            raise WalCorruption(
                f"payload verifies but is not JSON: {exc}",
                record_index=index,
                last_good_seq=scan.last_seq,
                offset=offset,
            ) from exc
        scan.records.append(record)
        index += 1
        offset = nl + 1
        scan.valid_bytes = offset
    return scan


def _check_frame(line: bytes) -> str | None:
    """None if the newline-terminated frame verifies, else the reason."""
    sp1 = line.find(b" ")
    if sp1 <= 0:
        return "missing length field"
    try:
        length = int(line[:sp1])
    except ValueError:
        return "length field is not an integer"
    sp2 = sp1 + 1 + _SHA_HEX_LEN
    if len(line) <= sp2 or line[sp2 : sp2 + 1] != b" ":
        return "missing or malformed digest field"
    digest = line[sp1 + 1 : sp2]
    payload = line[sp2 + 1 :]
    if len(payload) != length:
        return (
            f"payload is {len(payload)} bytes, header declares {length}"
        )
    if hashlib.sha256(payload).hexdigest().encode("ascii") != digest:
        return "checksum mismatch"
    return None


def _looks_truncated(line: bytes) -> bool:
    """A final frame with a valid header but *fewer* payload bytes than
    declared — distinguishable from in-place corruption, which keeps the
    declared length."""
    sp1 = line.find(b" ")
    if sp1 <= 0:
        return True  # even the header is partial
    try:
        length = int(line[:sp1])
    except ValueError:
        return False
    return len(line) - (sp1 + 1 + _SHA_HEX_LEN + 1) < length


def _seq_hint(line: bytes) -> int | None:
    try:
        sp1 = line.index(b" ")
        payload = line[sp1 + 1 + _SHA_HEX_LEN + 1 :]
        rec = json.loads(payload)
        seq = rec[0] if isinstance(rec, list) else rec.get("seq")
        return int(seq) if isinstance(seq, int) else None
    except Exception:
        return None


class WriteAheadLog:
    """Appender over one WAL file (reading goes through :func:`scan_wal`)."""

    def __init__(
        self,
        path: str | Path,
        *,
        fsync_every: int = 256,
        fsync: bool = True,
    ):
        if fsync_every < 1:
            raise ValueError("fsync_every must be >= 1")
        self.path = Path(path)
        self.fsync_every = int(fsync_every)
        self.fsync = bool(fsync)
        self._f = open(self.path, "ab")
        self._unsynced = 0
        self._closed = False
        self.appended = 0

    def append(self, record: dict) -> None:
        """Append one record; flushes+fsyncs every ``fsync_every``."""
        self.append_payload(
            json.dumps(record, separators=(",", ":"), allow_nan=False)
        )

    def append_payload(self, payload_json: str) -> None:
        """Append one pre-serialized JSON payload (hot ingest path)."""
        data = payload_json.encode("utf-8")
        digest = hexlify(hashlib.sha256(data).digest())
        self._f.write(FRAME_FMT % (len(data), digest, data))
        self.appended += 1
        self._unsynced += 1
        if self._unsynced >= self.fsync_every:
            self.flush()

    def append_payloads(self, payloads: list[str]) -> None:
        """Append pre-serialized payloads as one buffered write.

        Same framing as :meth:`append_payload`, one syscall-side write
        for the whole batch. The flush check runs once per batch, so the
        crash-loss window is ``max(len(payloads), fsync_every)`` records;
        the bulk ingest path keeps its batches at or below
        ``fsync_every``, preserving the per-record bound.
        """
        if not payloads:
            return
        sha256 = hashlib.sha256
        parts = []
        for payload_json in payloads:
            data = payload_json.encode("utf-8")
            parts.append(
                FRAME_FMT % (len(data), hexlify(sha256(data).digest()), data)
            )
        self._f.write(b"".join(parts))
        self.appended += len(payloads)
        self._unsynced += len(payloads)
        if self._unsynced >= self.fsync_every:
            self.flush()

    def append_framed(self, framed: bytes, count: int) -> None:
        """Append ``count`` records already framed as :data:`FRAME_FMT`
        lines (the durable engine's fused hot loop serializes and frames
        in a single pass, then hands the finished bytes over)."""
        self._f.write(framed)
        self.appended += count
        self._unsynced += count
        if self._unsynced >= self.fsync_every:
            self.flush()

    def flush(self, *, force_fsync: bool = False) -> None:
        """Push buffered records to the OS (and to disk when fsyncing)."""
        self._f.flush()
        if self.fsync or force_fsync:
            os.fsync(self._f.fileno())
            obs.count("stream.wal.fsyncs")
        self._unsynced = 0

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        self.flush()
        self._f.close()

    def abort(self) -> None:
        """Simulate a crash: drop the userspace buffer and close.

        Closes the file descriptor *under* the buffered writer so its
        pending bytes can never reach the OS — byte-for-byte what a
        SIGKILL between fsync batches does to the file. Test/chaos hook.
        """
        if self._closed:
            return
        self._closed = True
        try:
            os.close(self._f.fileno())
        except OSError:
            pass
        try:
            self._f.close()  # flush attempt hits the dead fd; swallowed
        except (OSError, ValueError):
            pass

    def __enter__(self) -> "WriteAheadLog":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()


# ---------------------------------------------------------------------------
# Segmented store
# ---------------------------------------------------------------------------


def segment_name(first_seq: int) -> str:
    """Filename of the segment whose first record is ``first_seq``
    (zero-padded so lexicographic filename order is seq order)."""
    return f"wal-{first_seq:020d}.jsonl"


@dataclass(frozen=True, slots=True)
class SegmentInfo:
    """One log segment on disk, identified by its filename."""

    #: seqno of the segment's first record (declared by the filename; a
    #: legacy ``wal.jsonl`` always starts at 1)
    first_seq: int
    path: Path
    #: True for a pre-segmentation single-file ``wal.jsonl``
    legacy: bool = False


def list_segments(directory: str | Path) -> list[SegmentInfo]:
    """All log segments in ``directory``, ordered by first seqno.

    A legacy ``wal.jsonl`` (if present) sorts first, as the segment
    holding seq 1. A missing directory yields an empty list.
    """
    directory = Path(directory)
    if not directory.is_dir():
        return []
    out: list[SegmentInfo] = []
    legacy = directory / LEGACY_WAL_NAME
    if legacy.exists():
        out.append(SegmentInfo(1, legacy, legacy=True))
    numbered = []
    for p in directory.iterdir():
        m = _SEGMENT_RE.match(p.name)
        if m:
            numbered.append(SegmentInfo(int(m.group(1)), p))
    numbered.sort(key=lambda s: s.first_seq)
    return out + numbered


def store_bytes(directory: str | Path) -> int:
    """Total on-disk log bytes across every segment (legacy included)."""
    return sum(s.path.stat().st_size for s in list_segments(directory))


@dataclass
class StoreScan:
    """Outcome of scanning a segmented store's suffix (see
    :func:`scan_store`)."""

    directory: Path
    #: every segment present, in seq order
    segments: list[SegmentInfo] = field(default_factory=list)
    #: the suffix of :attr:`segments` actually read
    scanned: list[SegmentInfo] = field(default_factory=list)
    #: decoded payloads from the scanned segments, in order
    records: list = field(default_factory=list)
    #: byte length of the newest segment's verified prefix (truncation
    #: target when :attr:`torn_tail`)
    valid_bytes: int = 0
    #: the newest scanned segment's file (None when nothing was scanned)
    tail_path: Path | None = None
    #: the newest segment ended in an incomplete frame (crash signature)
    torn_tail: bool = False
    torn_bytes: int = 0
    #: total bytes read across the scanned segments
    scanned_bytes: int = 0

    @property
    def first_seq(self) -> int:
        return _record_seq(self.records[0]) if self.records else 0

    @property
    def last_seq(self) -> int:
        return _record_seq(self.records[-1]) if self.records else 0


def _store_corruption(reason: str, *, last_good_seq: int) -> WalCorruption:
    return WalCorruption(
        reason, record_index=0, last_good_seq=last_good_seq, offset=0
    )


def scan_store(directory: str | Path, *, from_seq: int = 1) -> StoreScan:
    """Scan the store suffix holding every record with seq >= ``from_seq``.

    Starts at the newest segment whose declared first seqno is at most
    ``from_seq`` (older segments are *not read at all* — this is what
    makes recovery O(data since the last snapshot) instead of O(stream
    lifetime)) and reads through the newest segment. Torn-tail tolerance
    applies only to the newest segment; a sealed segment that is torn,
    empty, discontiguous with its neighbour, or whose first record
    contradicts its filename raises :class:`WalCorruption`.
    """
    directory = Path(directory)
    scan = StoreScan(directory=directory, segments=list_segments(directory))
    segs = scan.segments
    if not segs:
        return scan
    start = 0
    for i, seg in enumerate(segs):
        if seg.first_seq <= from_seq:
            start = i
    prev_last: int | None = None
    for i in range(start, len(segs)):
        seg = segs[i]
        newest = i == len(segs) - 1
        try:
            part = scan_wal(seg.path)
        except WalCorruption as exc:
            raise WalCorruption(
                f"{seg.path.name}: {exc.reason}",
                record_index=exc.record_index,
                last_good_seq=exc.last_good_seq or (prev_last or 0),
                offset=exc.offset,
                seq=exc.seq,
            ) from exc
        if part.torn_tail and not newest:
            raise _store_corruption(
                f"sealed segment {seg.path.name} ends in a torn frame "
                f"(only the newest segment may)",
                last_good_seq=part.last_seq or (prev_last or 0),
            )
        if part.records:
            first = _record_seq(part.records[0])
            declared = 1 if seg.legacy else seg.first_seq
            if first != declared:
                raise _store_corruption(
                    f"segment {seg.path.name} starts at seq {first}, "
                    f"expected {declared}",
                    last_good_seq=prev_last or 0,
                )
            if prev_last is not None and first != prev_last + 1:
                raise _store_corruption(
                    f"segment {seg.path.name} starts at seq {first}, "
                    f"previous segment ended at {prev_last}",
                    last_good_seq=prev_last,
                )
            prev_last = _record_seq(part.records[-1])
        elif not newest:
            raise _store_corruption(
                f"sealed segment {seg.path.name} is empty",
                last_good_seq=prev_last or 0,
            )
        scan.records.extend(part.records)
        scan.scanned.append(seg)
        scan.scanned_bytes += part.valid_bytes + part.torn_bytes
        if newest:
            scan.valid_bytes = part.valid_bytes
            scan.tail_path = seg.path
            scan.torn_tail = part.torn_tail
            scan.torn_bytes = part.torn_bytes
    return scan


@runtime_checkable
class LogStore(Protocol):
    """The durable engine's storage seam: an ordered, scannable,
    crash-consistent record log.

    Implementations persist pre-serialized JSON payloads in seq order
    (``append``), bound the crash-loss window (``flush``), recover their
    verified contents (``scan`` — raising
    :class:`WalCorruption` on anything a crash cannot explain), and make
    the written prefix immutable on demand (``seal``).
    :class:`SegmentedWal` is the canonical implementation.
    """

    def append(self, payloads: Sequence[str]) -> None:
        """Append pre-serialized JSON payloads, one record each, in order."""
        ...

    def flush(self, *, force_fsync: bool = False) -> None:
        """Push buffered records to the OS (and to disk when fsyncing)."""
        ...

    def scan(self, *, from_seq: int = 1) -> StoreScan:
        """Read the verified suffix holding records with seq >= ``from_seq``."""
        ...

    def seal(self) -> None:
        """Make everything appended so far immutable; the next append
        starts a fresh segment."""
        ...


class SegmentedWal:
    """Rotating segmented appender over one stream directory.

    ``next_seq`` must be the seqno the *next* appended record will carry
    (the durable engine passes ``engine.seq + 1`` after recovery); the
    store counts appends to name new segments. On open, the newest
    non-legacy segment with room left becomes the active appender; a
    full newest segment, a legacy ``wal.jsonl``, or an empty directory
    all defer to a rotation on the first append.
    """

    def __init__(
        self,
        directory: str | Path,
        *,
        segment_bytes: int,
        next_seq: int = 1,
        fsync_every: int = 256,
        fsync: bool = True,
    ):
        if segment_bytes < 1:
            raise ValueError("segment_bytes must be >= 1")
        if fsync_every < 1:
            raise ValueError("fsync_every must be >= 1")
        if next_seq < 1:
            raise ValueError("next_seq must be >= 1")
        self.directory = Path(directory)
        self.segment_bytes = int(segment_bytes)
        self.fsync_every = int(fsync_every)
        self.fsync = bool(fsync)
        self._next_seq = int(next_seq)
        self._f = None
        self._active_path: Path | None = None
        self._active_bytes = 0
        self._unsynced = 0
        self._closed = False
        self.appended = 0
        self.rotations = 0
        segs = list_segments(self.directory)
        if segs:
            newest = segs[-1]
            if (
                not newest.legacy
                and newest.path.stat().st_size < self.segment_bytes
            ):
                self._f = open(newest.path, "ab")
                self._active_path = newest.path
                self._active_bytes = self._f.tell()

    # -- LogStore surface --------------------------------------------------

    def append(self, payloads: Sequence[str]) -> None:
        """Frame and append pre-serialized JSON payloads in order."""
        if not payloads:
            return
        sha256 = hashlib.sha256
        frames = []
        for payload_json in payloads:
            data = payload_json.encode("utf-8")
            frames.append(
                FRAME_FMT % (len(data), hexlify(sha256(data).digest()), data)
            )
        self.append_frames(frames)

    def append_frames(self, frames: Sequence[bytes]) -> None:
        """Append records already framed as :data:`FRAME_FMT` lines (the
        durable engine's fused hot loop serializes and frames in a single
        pass, then hands the finished bytes over). Rotation cuts land on
        frame boundaries only."""
        if self._closed:
            raise ValueError("store is closed")
        n = len(frames)
        if not n:
            return
        total = sum(map(len, frames))
        if self._f is not None and self._active_bytes + total <= self.segment_bytes:
            # fast path: the whole batch fits in the active segment
            self._f.write(b"".join(frames))
            self._active_bytes += total
        else:
            seq = self._next_seq
            pending: list[bytes] = []
            pending_bytes = 0
            for frame in frames:
                flen = len(frame)
                filled = self._active_bytes + pending_bytes
                if self._f is None or (filled > 0 and filled + flen > self.segment_bytes):
                    if pending:
                        self._f.write(b"".join(pending))
                        self._active_bytes += pending_bytes
                        pending, pending_bytes = [], 0
                    self._rotate(seq)
                pending.append(frame)
                pending_bytes += flen
                seq += 1
            if pending:
                self._f.write(b"".join(pending))
                self._active_bytes += pending_bytes
        self._next_seq += n
        self.appended += n
        self._unsynced += n
        if self._unsynced >= self.fsync_every:
            self.flush()

    def flush(self, *, force_fsync: bool = False) -> None:
        """Push buffered records to the OS (and to disk when fsyncing)."""
        if self._f is not None:
            self._f.flush()
            if self.fsync or force_fsync:
                os.fsync(self._f.fileno())
                obs.count("stream.wal.fsyncs")
        self._unsynced = 0

    def scan(self, *, from_seq: int = 1) -> StoreScan:
        """Read the verified store suffix (see :func:`scan_store`)."""
        return scan_store(self.directory, from_seq=from_seq)

    def seal(self) -> None:
        """Seal the active segment; the next append rotates."""
        if self._f is not None:
            self._seal_active()

    # -- rotation + compaction ---------------------------------------------

    @property
    def active_path(self) -> Path | None:
        """The segment currently accepting appends (None when the next
        append will rotate into a fresh one)."""
        return self._active_path

    def _seal_active(self) -> None:
        # sealed bytes must be durably ordered before the next segment
        # opens: a machine crash must never yield a torn *sealed* segment
        # under a surviving newer one, because recovery treats that as
        # corruption rather than crash residue
        self._f.flush()
        if self.fsync:
            os.fsync(self._f.fileno())
            obs.count("stream.wal.fsyncs")
        self._f.close()
        self._f = None
        self._active_path = None
        self._active_bytes = 0
        self._unsynced = 0

    def _rotate(self, first_seq: int) -> None:
        if self._f is not None:
            self._seal_active()
            self.rotations += 1
            obs.count("stream.wal.rotations")
        path = self.directory / segment_name(first_seq)
        self._f = open(path, "ab")
        self._active_path = path
        self._active_bytes = self._f.tell()
        obs.count("stream.wal.segments")

    def compact(
        self, cover_seq: int, *, max_deletes: int | None = None
    ) -> list[Path]:
        """Delete sealed segments whose records all have seq <= ``cover_seq``.

        A segment is wholly covered exactly when its successor's first
        seqno is at most ``cover_seq + 1`` — so the segment containing
        ``cover_seq + 1`` is never deleted, and neither is the newest
        segment (which is never sealed from the store's point of view).
        Deletion runs oldest-first, so a crash mid-compaction leaves a
        contiguous log suffix and a re-run resumes idempotently.
        ``max_deletes`` is the chaos harness's mid-compaction kill point.
        Returns the deleted paths.
        """
        segs = list_segments(self.directory)
        removed: list[Path] = []
        for i in range(len(segs) - 1):
            if segs[i + 1].first_seq > cover_seq + 1:
                break
            if segs[i].path == self._active_path:
                break
            if max_deletes is not None and len(removed) >= max_deletes:
                break
            try:
                segs[i].path.unlink()
            except OSError:
                break
            removed.append(segs[i].path)
        return removed

    # -- lifecycle ---------------------------------------------------------

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        if self._f is not None:
            self.flush()
            self._f.close()
            self._f = None

    def abort(self) -> None:
        """Simulate a crash: drop the active segment's userspace buffer
        and close (sealed segments were flushed at rotation, exactly as
        a SIGKILL would find them). Test/chaos hook."""
        if self._closed:
            return
        self._closed = True
        if self._f is None:
            return
        try:
            os.close(self._f.fileno())
        except OSError:
            pass
        try:
            self._f.close()  # flush attempt hits the dead fd; swallowed
        except (OSError, ValueError):
            pass
        self._f = None

    def __enter__(self) -> "SegmentedWal":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()
