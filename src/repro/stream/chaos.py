"""Chaos harness: kill the engine mid-ingest, recover, prove exact state.

The robustness claim made executable. Each run:

1. generates a seeded event stream (a pure function of ``(seed, run)``,
   so the reference state is recomputable from the seed alone);
2. picks a **kill point uniformly in WAL *bytes*** via
   :meth:`repro.faults.FaultPlan.chaos_uniform` — byte-uniform means kill
   points land *inside* records, not just between them;
3. ingests until the WAL reaches the kill point, then crashes the engine
   there — either in-process (``WriteAheadLog.abort`` drops the userspace
   buffer, the SIGKILL-between-fsyncs signature) or as a real subprocess
   killed with ``SIGKILL``. The WAL is then truncated to the *exact* kill
   byte, so mid-record torn tails occur by construction;
4. recovers (snapshot + tail replay) and checks the recovered state is
   **bit-identical** to a from-scratch replay of the surviving event
   prefix, and that recovered counts equal an independent vectorized
   recount (exact integer equality, no tolerance);
5. resumes ingest from the surviving seqno through the end of the stream
   and checks convergence to the full-stream reference state.

Any :class:`~repro.stream.wal.WalCorruption` during recovery is a
*detected* corruption; the harness never manufactures one, so in a suite
both divergences and detected corruptions must be zero.
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import time
from dataclasses import dataclass
from pathlib import Path

from repro import obs
from repro.faults.plan import FaultPlan
from repro.stream.config import StreamConfig
from repro.stream.durable import DurableStreamEngine
from repro.stream.engine import StreamEngine
from repro.stream.events import EVENT_FAMILIES, random_stream_events
from repro.stream.wal import WalCorruption, frame_record, scan_wal

__all__ = [
    "ChaosRunResult",
    "chaos_run",
    "chaos_suite",
    "render_chaos_results",
]


@dataclass(frozen=True, slots=True)
class ChaosRunResult:
    """Outcome of one kill/recover/resume cycle."""

    run: int
    family: str
    mode: str
    #: "abort" (buffered-loss crash) or "torn" (exact-byte mid-record crash)
    crash_kind: str
    kill_fraction: float
    target_bytes: int
    total_bytes: int
    #: seqno of the last event that survived the crash
    survived_seq: int
    n_events: int
    torn_tail: bool
    #: recovered state bit-identical to from-scratch replay of the prefix
    exact_prefix: bool
    #: recovered counts equal the independent vectorized recount
    counts_exact: bool
    #: after resuming the remaining events, state matches the full reference
    resumed_exact: bool
    #: a WalCorruption was raised during recovery (harness never makes one)
    detected_corruption: bool
    recovered_digest: str
    reference_digest: str

    @property
    def ok(self) -> bool:
        return (
            self.exact_prefix
            and self.counts_exact
            and self.resumed_exact
            and not self.detected_corruption
        )

    def to_jsonable(self) -> dict:
        out = {
            k: getattr(self, k)
            for k in self.__dataclass_fields__  # type: ignore[attr-defined]
        }
        out["ok"] = self.ok
        return out


def expected_wal_bytes(events) -> int:
    """Total WAL bytes a clean ingest of ``events`` produces (the framing
    is deterministic, so this is exact)."""
    total = 0
    for seq, ev in enumerate(events, start=1):
        total += len(frame_record(ev.wal_payload(seq)))
    return total


def _chaos_config(capacity: int, r_max: float, n_events: int) -> StreamConfig:
    # frequent flushes so the on-disk WAL tracks ingest closely, and a
    # snapshot cadence that makes most kill points land *after* at least
    # one snapshot (exercising snapshot + tail replay, not just replay)
    return StreamConfig(
        capacity=capacity,
        r_max=r_max,
        snapshot_every=max(32, n_events // 5),
        fsync_every=4,
        fsync=False,
    )


def ingest_command(
    directory: str | Path,
    *,
    n_events: int,
    seed: int,
    capacity: int,
    side: float,
    r_max: float,
    family: str,
    config: StreamConfig,
    rate: float | None = None,
    resume: bool = False,
) -> list[str]:
    """The ``repro stream ingest`` argv for a chaos child process."""
    cmd = [
        sys.executable,
        "-m",
        "repro.cli",
        "stream",
        "ingest",
        "--dir",
        str(directory),
        "--events",
        str(n_events),
        "--seed",
        str(seed),
        "--capacity",
        str(capacity),
        "--side",
        str(side),
        "--r-max",
        str(r_max),
        "--family",
        family,
        "--snapshot-every",
        str(config.snapshot_every),
        "--fsync-every",
        str(config.fsync_every),
    ]
    if not config.fsync:
        cmd.append("--no-fsync")
    if rate:
        cmd += ["--rate", str(rate)]
    if resume:
        cmd.append("--resume")
    return cmd


def chaos_run(
    directory: str | Path,
    run: int,
    *,
    seed: int = 0,
    n_events: int = 1000,
    capacity: int = 512,
    side: float = 12.0,
    r_max: float = 1.0,
    family: str | None = None,
    mode: str = "inprocess",
    rate: float | None = None,
) -> ChaosRunResult:
    """One seeded kill/recover/resume cycle in ``directory`` (fresh dir)."""
    if mode not in ("inprocess", "subprocess"):
        raise ValueError(f"unknown chaos mode {mode!r}")
    directory = Path(directory)
    if family is None:
        family = EVENT_FAMILIES[run % len(EVENT_FAMILIES)]
    plan = FaultPlan(seed=seed)
    kill_fraction = plan.chaos_uniform(run, 0)
    # two crash signatures, both drawn from the plan: "abort" loses the
    # userspace buffer (tail ends on a record boundary, like a SIGKILL
    # between flushes); "torn" lands the crash on the exact chosen byte,
    # splitting a frame mid-record whenever the byte falls inside one
    crash_kind = "abort" if plan.chaos_uniform(run, 1) < 0.5 else "torn"

    # one scalar per-run workload seed, shared with the subprocess child
    # (which can only receive a scalar on its argv)
    import numpy as np

    workload_seed = int(np.random.SeedSequence([seed, run]).generate_state(1)[0])
    events = random_stream_events(
        n_events,
        capacity=capacity,
        side=side,
        r_max=r_max,
        seed=workload_seed,
        family=family,
    )
    total_bytes = expected_wal_bytes(events)
    target_bytes = max(1, int(kill_fraction * total_bytes))
    config = _chaos_config(capacity, r_max, n_events)
    wal_path = directory / "wal.jsonl"

    with obs.span(
        "stream.chaos.run", run=run, family=family, mode=mode
    ):
        if mode == "inprocess":
            engine = DurableStreamEngine.create(directory, config)
            written = 0
            for seq, ev in enumerate(events, start=1):
                engine.apply(ev, collect=False)
                written += len(frame_record(ev.wal_payload(seq)))
                if written >= target_bytes:
                    break
            if crash_kind == "abort":
                engine.abort()
            else:
                engine._wal.flush()
                engine.abort()
        else:
            cmd = ingest_command(
                directory,
                n_events=n_events,
                seed=workload_seed,
                capacity=capacity,
                side=side,
                r_max=r_max,
                family=family,
                config=config,
                rate=rate,
            )
            env = dict(os.environ)
            src = str(Path(__file__).resolve().parents[2])
            env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
            child = subprocess.Popen(
                cmd, env=env,
                stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL,
            )
            try:
                deadline = time.monotonic() + 120.0
                while time.monotonic() < deadline:
                    if wal_path.exists() and wal_path.stat().st_size >= target_bytes:
                        break
                    if child.poll() is not None:
                        break
                    time.sleep(0.002)
                if child.poll() is None:
                    os.kill(child.pid, signal.SIGKILL)
            finally:
                child.wait(timeout=30.0)

        # "torn" crashes land on the exact chosen byte: everything past it
        # is treated as never having reached the disk, so mid-record torn
        # tails happen by construction whenever target_bytes splits a frame
        if (
            crash_kind == "torn"
            and wal_path.exists()
            and wal_path.stat().st_size > target_bytes
        ):
            os.truncate(wal_path, target_bytes)

        detected_corruption = False
        try:
            recovered = DurableStreamEngine.open(directory)
        except WalCorruption:
            obs.count("stream.chaos.detected_corruptions")
            return ChaosRunResult(
                run=run, family=family, mode=mode, crash_kind=crash_kind,
                kill_fraction=kill_fraction, target_bytes=target_bytes,
                total_bytes=total_bytes, survived_seq=0, n_events=n_events,
                torn_tail=False, exact_prefix=False, counts_exact=False,
                resumed_exact=False, detected_corruption=True,
                recovered_digest="", reference_digest="",
            )

        survived = recovered.engine.seq
        torn = recovered.recovery.torn_tail
        recovered_digest = recovered.engine.state_digest()

        reference = StreamEngine(config)
        reference.apply_batch(events[:survived])
        reference_digest = reference.state_digest()
        exact_prefix = recovered_digest == reference_digest

        counts_exact = bool(
            (
                recovered.engine.recompute_counts()
                == recovered.engine.node_interference()
            ).all()
        )

        # resume: finish the stream on the recovered engine and check
        # convergence to the full-stream reference
        recovered.apply_batch(events[survived:])
        reference.apply_batch(events[survived:])
        resumed_exact = (
            recovered.engine.state_digest() == reference.state_digest()
        )
        recovered.close()

    result = ChaosRunResult(
        run=run, family=family, mode=mode, crash_kind=crash_kind,
        kill_fraction=kill_fraction, target_bytes=target_bytes,
        total_bytes=total_bytes, survived_seq=survived, n_events=n_events,
        torn_tail=torn, exact_prefix=exact_prefix, counts_exact=counts_exact,
        resumed_exact=resumed_exact, detected_corruption=detected_corruption,
        recovered_digest=recovered_digest, reference_digest=reference_digest,
    )
    obs.count("stream.chaos.runs")
    if not result.ok:
        obs.count("stream.chaos.divergences")
    return result


def chaos_suite(
    base_dir: str | Path,
    runs: int,
    *,
    seed: int = 0,
    n_events: int = 1000,
    capacity: int = 512,
    side: float = 12.0,
    r_max: float = 1.0,
    mode: str = "inprocess",
    rate: float | None = None,
) -> list[ChaosRunResult]:
    """``runs`` independent chaos cycles under ``base_dir`` (one subdir
    each, left on disk for post-mortem when a run fails)."""
    base_dir = Path(base_dir)
    results = []
    for run in range(runs):
        results.append(
            chaos_run(
                base_dir / f"run-{run:03d}",
                run,
                seed=seed,
                n_events=n_events,
                capacity=capacity,
                side=side,
                r_max=r_max,
                mode=mode,
                rate=rate,
            )
        )
    return results


def render_chaos_results(results: list[ChaosRunResult]) -> str:
    lines = [
        "run  family     crash  kill%   survived    torn  prefix  counts  resume",
    ]
    for r in results:
        lines.append(
            f"{r.run:>3}  {r.family:<9} {r.crash_kind:<5} "
            f"{100 * r.kill_fraction:>5.1f}%"
            f"  {r.survived_seq:>5}/{r.n_events:<5}"
            f"  {'yes' if r.torn_tail else ' no'}"
            f"  {'  ok' if r.exact_prefix else 'FAIL'}"
            f"    {'  ok' if r.counts_exact else 'FAIL'}"
            f"  {'  ok' if r.resumed_exact else 'FAIL'}"
            + ("  CORRUPTION" if r.detected_corruption else "")
        )
    bad = sum(1 for r in results if not r.ok)
    lines.append(
        f"{len(results)} runs: "
        + ("all exact" if bad == 0 else f"{bad} DIVERGENT")
    )
    return "\n".join(lines)
