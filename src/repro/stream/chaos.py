"""Chaos harness: kill the engine mid-ingest, recover, prove exact state.

The robustness claim made executable. Each run:

1. generates a seeded event stream (a pure function of ``(seed, run)``,
   so the reference state is recomputable from the seed alone);
2. picks a **kill point uniformly in log *bytes*** via
   :meth:`repro.faults.FaultPlan.chaos_uniform` — byte-uniform means kill
   points land *inside* records, not just between them. Kill points are
   *logical* byte offsets into the concatenated log; the harness maps
   them onto the segmented on-disk layout (the chaos config uses a tiny
   ``segment_bytes`` so every run crosses many rotations);
3. ingests until the log reaches the kill point, then crashes the engine
   there — either in-process (``SegmentedWal.abort`` drops the userspace
   buffer, the SIGKILL-between-fsyncs signature) or as a real subprocess
   killed with ``SIGKILL``. The store is then truncated to the *exact*
   kill byte (truncating the containing segment and deleting every later
   one), so mid-record torn tails occur by construction;
4. recovers (snapshot + bounded tail replay) and checks the recovered
   state is **bit-identical** to a from-scratch replay of the surviving
   event prefix, and that recovered counts equal an independent
   vectorized recount (exact integer equality, no tolerance);
5. resumes ingest from the surviving seqno through the end of the stream
   and checks convergence to the full-stream reference state.

Beyond the uniform kill points, two *targeted* families aim the crash at
the windows segmentation introduced:

- ``target="rotation"`` — places the kill byte within ~120 bytes of a
  seal boundary (computed by simulating the rotation rule over the exact
  frame sizes), so crashes land just before, during, and just after a
  segment seal + fresh-segment open;
- ``target="compaction"`` — ingests cleanly, snapshots, then interrupts
  compaction partway (a seeded number of segment deletions), recovers,
  and asserts state exactness plus that a re-run compaction resumes
  idempotently (in-process only).

Any :class:`~repro.stream.wal.WalCorruption` during recovery is a
*detected* corruption; the harness never manufactures one, so in a suite
both divergences and detected corruptions must be zero.
"""

from __future__ import annotations

import os
import signal
import subprocess
import sys
import time
from dataclasses import dataclass
from pathlib import Path

from repro import obs
from repro.faults.plan import FaultPlan
from repro.stream.config import StreamConfig
from repro.stream.durable import DurableStreamEngine
from repro.stream.engine import StreamEngine
from repro.stream.events import EVENT_FAMILIES, random_stream_events
from repro.stream.wal import (
    WalCorruption,
    frame_record,
    list_segments,
    store_bytes,
)

__all__ = [
    "CHAOS_TARGETS",
    "ChaosRunResult",
    "chaos_run",
    "chaos_suite",
    "render_chaos_results",
]

#: kill-point families: byte-uniform, rotation-window, mid-compaction
CHAOS_TARGETS = ("uniform", "rotation", "compaction")


@dataclass(frozen=True, slots=True)
class ChaosRunResult:
    """Outcome of one kill/recover/resume cycle."""

    run: int
    family: str
    mode: str
    #: "abort" (buffered-loss crash) or "torn" (exact-byte mid-record crash)
    crash_kind: str
    kill_fraction: float
    target_bytes: int
    total_bytes: int
    #: seqno of the last event that survived the crash
    survived_seq: int
    n_events: int
    torn_tail: bool
    #: recovered state bit-identical to from-scratch replay of the prefix
    exact_prefix: bool
    #: recovered counts equal the independent vectorized recount
    counts_exact: bool
    #: after resuming the remaining events, state matches the full reference
    #: (for the compaction target: resumed compaction was also idempotent)
    resumed_exact: bool
    #: a WalCorruption was raised during recovery (harness never makes one)
    detected_corruption: bool
    recovered_digest: str
    reference_digest: str
    #: kill-point family (see CHAOS_TARGETS)
    target: str = "uniform"

    @property
    def ok(self) -> bool:
        return (
            self.exact_prefix
            and self.counts_exact
            and self.resumed_exact
            and not self.detected_corruption
        )

    def to_jsonable(self) -> dict:
        out = {
            k: getattr(self, k)
            for k in self.__dataclass_fields__  # type: ignore[attr-defined]
        }
        out["ok"] = self.ok
        return out


def expected_wal_bytes(events) -> int:
    """Total log bytes a clean ingest of ``events`` produces, summed over
    all segments (the framing is deterministic, so this is exact)."""
    total = 0
    for seq, ev in enumerate(events, start=1):
        total += len(frame_record(ev.wal_payload(seq)))
    return total


def _seal_boundaries(events, segment_bytes: int) -> list[int]:
    """Logical byte offsets at which a clean ingest seals a segment
    (simulates the rotation rule over the exact frame sizes)."""
    boundaries: list[int] = []
    filled = 0
    total = 0
    opened = False
    for seq, ev in enumerate(events, start=1):
        flen = len(frame_record(ev.wal_payload(seq)))
        if opened and filled > 0 and filled + flen > segment_bytes:
            boundaries.append(total)
            filled = 0
        opened = True
        filled += flen
        total += flen
    return boundaries


def _truncate_store(directory: Path, target_bytes: int) -> None:
    """Make logical byte ``target_bytes`` the store's end of history:
    truncate the segment containing it, delete every later segment."""
    consumed = 0
    for seg in list_segments(directory):
        # the >= check runs first so zero-byte segments past the cut are
        # deleted too (a SIGKILL between segment-create and first flush
        # leaves one; keeping it would fake a torn *sealed* predecessor)
        if consumed >= target_bytes:
            seg.path.unlink()
            continue
        size = seg.path.stat().st_size
        if consumed + size <= target_bytes:
            consumed += size
        else:
            os.truncate(seg.path, target_bytes - consumed)
            consumed = target_bytes


def _chaos_config(capacity: int, r_max: float, n_events: int) -> StreamConfig:
    # frequent flushes so the on-disk log tracks ingest closely; a
    # snapshot cadence that makes most kill points land *after* at least
    # one snapshot (exercising snapshot + tail replay, not just replay);
    # a tiny segment so every run crosses many rotations; and manual
    # compaction so logical byte offsets stay stable through the run
    # (auto-compaction deleting segments mid-ingest would shift them)
    return StreamConfig(
        capacity=capacity,
        r_max=r_max,
        snapshot_every=max(32, n_events // 5),
        fsync_every=4,
        fsync=False,
        segment_bytes=2048,
        compact="manual",
    )


def ingest_command(
    directory: str | Path,
    *,
    n_events: int,
    seed: int,
    capacity: int,
    side: float,
    r_max: float,
    family: str,
    config: StreamConfig,
    rate: float | None = None,
    resume: bool = False,
) -> list[str]:
    """The ``repro stream ingest`` argv for a chaos child process."""
    cmd = [
        sys.executable,
        "-m",
        "repro.cli",
        "stream",
        "ingest",
        "--dir",
        str(directory),
        "--events",
        str(n_events),
        "--seed",
        str(seed),
        "--capacity",
        str(capacity),
        "--side",
        str(side),
        "--r-max",
        str(r_max),
        "--family",
        family,
        "--snapshot-every",
        str(config.snapshot_every),
        "--fsync-every",
        str(config.fsync_every),
        "--segment-bytes",
        str(config.segment_bytes),
        "--compact",
        config.compact,
    ]
    if not config.fsync:
        cmd.append("--no-fsync")
    if rate:
        cmd += ["--rate", str(rate)]
    if resume:
        cmd.append("--resume")
    return cmd


def chaos_run(
    directory: str | Path,
    run: int,
    *,
    seed: int = 0,
    n_events: int = 1000,
    capacity: int = 512,
    side: float = 12.0,
    r_max: float = 1.0,
    family: str | None = None,
    mode: str = "inprocess",
    rate: float | None = None,
    target: str = "uniform",
) -> ChaosRunResult:
    """One seeded kill/recover/resume cycle in ``directory`` (fresh dir)."""
    if mode not in ("inprocess", "subprocess"):
        raise ValueError(f"unknown chaos mode {mode!r}")
    if target not in CHAOS_TARGETS:
        raise ValueError(f"unknown chaos target {target!r}")
    if target == "compaction" and mode != "inprocess":
        raise ValueError(
            "target='compaction' interrupts the compactor from inside the "
            "process; use mode='inprocess'"
        )
    directory = Path(directory)
    if family is None:
        family = EVENT_FAMILIES[run % len(EVENT_FAMILIES)]
    plan = FaultPlan(seed=seed)
    kill_fraction = plan.chaos_uniform(run, 0)
    # two crash signatures, both drawn from the plan: "abort" loses the
    # userspace buffer (tail ends on a record boundary, like a SIGKILL
    # between flushes); "torn" lands the crash on the exact chosen byte,
    # splitting a frame mid-record whenever the byte falls inside one
    crash_kind = "abort" if plan.chaos_uniform(run, 1) < 0.5 else "torn"

    # one scalar per-run workload seed, shared with the subprocess child
    # (which can only receive a scalar on its argv)
    import numpy as np

    workload_seed = int(np.random.SeedSequence([seed, run]).generate_state(1)[0])
    events = random_stream_events(
        n_events,
        capacity=capacity,
        side=side,
        r_max=r_max,
        seed=workload_seed,
        family=family,
    )
    total_bytes = expected_wal_bytes(events)
    config = _chaos_config(capacity, r_max, n_events)

    if target == "compaction":
        return _compaction_chaos_run(
            directory, run,
            plan=plan, family=family, events=events, config=config,
            total_bytes=total_bytes, n_events=n_events,
        )

    if target == "rotation":
        # aim the crash at a seal window: within ~120 bytes of a boundary
        # where the rotation rule seals one segment and opens the next
        boundaries = _seal_boundaries(events, config.segment_bytes)
        if boundaries:
            pick = boundaries[
                int(plan.chaos_uniform(run, 2) * len(boundaries))
                % len(boundaries)
            ]
            jitter = int((plan.chaos_uniform(run, 3) - 0.5) * 240.0)
            target_bytes = min(total_bytes, max(1, pick + jitter))
            kill_fraction = target_bytes / total_bytes
        else:
            target_bytes = max(1, int(kill_fraction * total_bytes))
    else:
        target_bytes = max(1, int(kill_fraction * total_bytes))

    with obs.span(
        "stream.chaos.run", run=run, family=family, mode=mode, target=target
    ):
        if mode == "inprocess":
            engine = DurableStreamEngine.create(directory, config)
            written = 0
            for seq, ev in enumerate(events, start=1):
                engine.apply(ev, collect=False)
                written += len(frame_record(ev.wal_payload(seq)))
                if written >= target_bytes:
                    break
            if crash_kind == "abort":
                engine.abort()
            else:
                engine._wal.flush()
                engine.abort()
        else:
            cmd = ingest_command(
                directory,
                n_events=n_events,
                seed=workload_seed,
                capacity=capacity,
                side=side,
                r_max=r_max,
                family=family,
                config=config,
                rate=rate,
            )
            env = dict(os.environ)
            src = str(Path(__file__).resolve().parents[2])
            env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
            child = subprocess.Popen(
                cmd, env=env,
                stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL,
            )
            try:
                deadline = time.monotonic() + 120.0
                while time.monotonic() < deadline:
                    if store_bytes(directory) >= target_bytes:
                        break
                    if child.poll() is not None:
                        break
                    time.sleep(0.002)
                if child.poll() is None:
                    os.kill(child.pid, signal.SIGKILL)
            finally:
                child.wait(timeout=30.0)

        # "torn" crashes land on the exact chosen byte: everything past it
        # is treated as never having reached the disk, so mid-record torn
        # tails happen by construction whenever target_bytes splits a frame
        if crash_kind == "torn" and store_bytes(directory) > target_bytes:
            _truncate_store(directory, target_bytes)

        detected_corruption = False
        try:
            recovered = DurableStreamEngine.open(directory)
        except WalCorruption:
            obs.count("stream.chaos.detected_corruptions")
            return ChaosRunResult(
                run=run, family=family, mode=mode, crash_kind=crash_kind,
                kill_fraction=kill_fraction, target_bytes=target_bytes,
                total_bytes=total_bytes, survived_seq=0, n_events=n_events,
                torn_tail=False, exact_prefix=False, counts_exact=False,
                resumed_exact=False, detected_corruption=True,
                recovered_digest="", reference_digest="", target=target,
            )

        survived = recovered.engine.seq
        torn = recovered.recovery.torn_tail
        recovered_digest = recovered.engine.state_digest()

        reference = StreamEngine(config)
        reference.apply_batch(events[:survived])
        reference_digest = reference.state_digest()
        exact_prefix = recovered_digest == reference_digest

        counts_exact = bool(
            (
                recovered.engine.recompute_counts()
                == recovered.engine.node_interference()
            ).all()
        )

        # resume: finish the stream on the recovered engine and check
        # convergence to the full-stream reference
        recovered.apply_batch(events[survived:])
        reference.apply_batch(events[survived:])
        resumed_exact = (
            recovered.engine.state_digest() == reference.state_digest()
        )
        recovered.close()

    result = ChaosRunResult(
        run=run, family=family, mode=mode, crash_kind=crash_kind,
        kill_fraction=kill_fraction, target_bytes=target_bytes,
        total_bytes=total_bytes, survived_seq=survived, n_events=n_events,
        torn_tail=torn, exact_prefix=exact_prefix, counts_exact=counts_exact,
        resumed_exact=resumed_exact, detected_corruption=detected_corruption,
        recovered_digest=recovered_digest, reference_digest=reference_digest,
        target=target,
    )
    obs.count("stream.chaos.runs")
    if not result.ok:
        obs.count("stream.chaos.divergences")
    return result


def _compaction_chaos_run(
    directory: Path,
    run: int,
    *,
    plan: FaultPlan,
    family: str,
    events,
    config: StreamConfig,
    total_bytes: int,
    n_events: int,
) -> ChaosRunResult:
    """Interrupt compaction partway, recover, assert exactness + that a
    re-run compaction resumes idempotently.

    ``target_bytes`` is reused to record the seeded *number of segment
    deletions* performed before the crash (the mid-compaction kill point);
    ``kill_fraction`` is that count over the deletable-segment total.
    """
    with obs.span(
        "stream.chaos.run", run=run, family=family, mode="inprocess",
        target="compaction",
    ):
        engine = DurableStreamEngine.create(directory, config)
        engine.apply_batch(events)
        engine.snapshot_now()
        cover_seq = engine.engine.seq
        deletable = max(0, len(list_segments(directory)) - 1)
        # crash after j of the deletable segments are gone: j=0 is "crashed
        # before the first unlink", j=deletable-1 is "one short of done"
        j = int(plan.chaos_uniform(run, 2) * deletable) if deletable else 0
        engine._compact_to(cover_seq, max_deletes=j)
        engine.abort()

        detected_corruption = False
        try:
            recovered = DurableStreamEngine.open(directory)
        except WalCorruption:
            obs.count("stream.chaos.detected_corruptions")
            return ChaosRunResult(
                run=run, family=family, mode="inprocess", crash_kind="abort",
                kill_fraction=j / deletable if deletable else 0.0,
                target_bytes=j, total_bytes=total_bytes, survived_seq=0,
                n_events=n_events, torn_tail=False, exact_prefix=False,
                counts_exact=False, resumed_exact=False,
                detected_corruption=True, recovered_digest="",
                reference_digest="", target="compaction",
            )

        survived = recovered.engine.seq
        recovered_digest = recovered.engine.state_digest()
        reference = StreamEngine(config)
        reference.apply_batch(events)
        reference_digest = reference.state_digest()
        # compaction must never cost state: the full stream survives
        exact_prefix = (
            survived == n_events and recovered_digest == reference_digest
        )
        counts_exact = bool(
            (
                recovered.engine.recompute_counts()
                == recovered.engine.node_interference()
            ).all()
        )
        # resume the interrupted compaction; it must finish the job, and a
        # further pass must find nothing left to do (idempotence)
        recovered.compact()
        leftover = recovered.compact()
        resumed_exact = (
            not leftover
            and len(list_segments(directory)) == 1
            and recovered.engine.state_digest() == reference_digest
        )
        recovered.close()

    result = ChaosRunResult(
        run=run, family=family, mode="inprocess", crash_kind="abort",
        kill_fraction=j / deletable if deletable else 0.0,
        target_bytes=j, total_bytes=total_bytes, survived_seq=survived,
        n_events=n_events, torn_tail=False, exact_prefix=exact_prefix,
        counts_exact=counts_exact, resumed_exact=resumed_exact,
        detected_corruption=detected_corruption,
        recovered_digest=recovered_digest, reference_digest=reference_digest,
        target="compaction",
    )
    obs.count("stream.chaos.runs")
    if not result.ok:
        obs.count("stream.chaos.divergences")
    return result


def chaos_suite(
    base_dir: str | Path,
    runs: int,
    *,
    seed: int = 0,
    n_events: int = 1000,
    capacity: int = 512,
    side: float = 12.0,
    r_max: float = 1.0,
    mode: str = "inprocess",
    rate: float | None = None,
    target: str = "uniform",
) -> list[ChaosRunResult]:
    """``runs`` independent chaos cycles under ``base_dir`` (one subdir
    each, left on disk for post-mortem when a run fails)."""
    base_dir = Path(base_dir)
    results = []
    for run in range(runs):
        results.append(
            chaos_run(
                base_dir / f"run-{run:03d}",
                run,
                seed=seed,
                n_events=n_events,
                capacity=capacity,
                side=side,
                r_max=r_max,
                mode=mode,
                rate=rate,
                target=target,
            )
        )
    return results


def render_chaos_results(results: list[ChaosRunResult]) -> str:
    lines = [
        "run  family     target      crash  kill%   survived    torn  prefix  counts  resume",
    ]
    for r in results:
        lines.append(
            f"{r.run:>3}  {r.family:<9} {r.target:<10} {r.crash_kind:<5} "
            f"{100 * r.kill_fraction:>5.1f}%"
            f"  {r.survived_seq:>5}/{r.n_events:<5}"
            f"  {'yes' if r.torn_tail else ' no'}"
            f"  {'  ok' if r.exact_prefix else 'FAIL'}"
            f"    {'  ok' if r.counts_exact else 'FAIL'}"
            f"  {'  ok' if r.resumed_exact else 'FAIL'}"
            + ("  CORRUPTION" if r.detected_corruption else "")
        )
    bad = sum(1 for r in results if not r.ok)
    lines.append(
        f"{len(results)} runs: "
        + ("all exact" if bad == 0 else f"{bad} DIVERGENT")
    )
    return "\n".join(lines)
