"""Nearest Neighbor Forest — the common core of classical topology control.

Every node with at least one UDG neighbour adds an (undirected) edge to its
nearest neighbour, ties broken by smaller index so the construction is
deterministic. The result is a forest; Section 4 shows that *containing*
this forest already forces Omega(n) interference on adversarial instances.
"""

from __future__ import annotations

import numpy as np

from repro.model.topology import Topology
from repro.topologies.base import register


def nearest_neighbor_edges(udg: Topology) -> np.ndarray:
    """Canonical ``(m, 2)`` edge array of each node's nearest-neighbour edge."""
    rows = []
    pos = udg.positions
    for u in range(udg.n):
        nbrs = sorted(udg.neighbors(u))
        if not nbrs:
            continue
        nbrs = np.array(nbrs, dtype=np.int64)
        d = np.hypot(*(pos[nbrs] - pos[u]).T)
        v = int(nbrs[np.argmin(d)])  # argmin takes first -> smallest index tie-break
        rows.append((min(u, v), max(u, v)))
    if not rows:
        return np.empty((0, 2), dtype=np.int64)
    return np.array(sorted(set(rows)), dtype=np.int64)


@register("nnf")
def nearest_neighbor_forest(udg: Topology) -> Topology:
    """The Nearest Neighbor Forest as a topology (possibly disconnected)."""
    return Topology(udg.positions, nearest_neighbor_edges(udg))
