"""k-nearest-neighbour topology restricted to the unit disk graph.

Edge ``{u, v}`` is kept iff ``v`` is among the ``k`` nearest UDG neighbours
of ``u`` *or* vice versa (the symmetric union, the usual connectivity-
friendly convention). ``k = 1`` recovers the Nearest Neighbor Forest.
"""

from __future__ import annotations

import numpy as np

from repro.model.topology import Topology
from repro.topologies.base import register


def knn_topology(udg: Topology, *, k: int = 3) -> Topology:
    if k < 1:
        raise ValueError("k must be >= 1")
    pos = udg.positions
    rows: set[tuple[int, int]] = set()
    for u in range(udg.n):
        nbrs = np.array(sorted(udg.neighbors(u)), dtype=np.int64)
        if nbrs.size == 0:
            continue
        d = np.hypot(*(pos[nbrs] - pos[u]).T)
        order = np.argsort(d, kind="stable")[:k]
        for idx in order:
            v = int(nbrs[idx])
            rows.add((min(u, v), max(u, v)))
    return Topology(pos, np.array(sorted(rows), dtype=np.int64).reshape(-1, 2))


@register("knn3")
def _knn3(udg: Topology) -> Topology:
    return knn_topology(udg, k=3)
