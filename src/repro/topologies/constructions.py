"""Hand-constructed topologies from the paper's figures.

These are not algorithms but explicit witnesses: the Figure 2 definition
example, the Figure 1 cluster-plus-remote topology, and the O(1)-
interference spanning tree of the two-exponential-chains instance
(Figure 5) that certifies Theorem 4.1's separation.
"""

from __future__ import annotations

import numpy as np

from repro.model.topology import Topology


def fig2_sample_topology() -> Topology:
    """A five-node topology where node ``u`` experiences ``I(u) = 2``.

    Node 0 (``u``) is covered by its direct neighbour (node 1) *and* by the
    non-neighbouring node 2 (``v``), whose radius — set by its farthest
    neighbour, node 3 — reaches back over ``u``. Mirrors the situation of
    Figure 2: interference exceeds degree.
    """
    positions = np.array(
        [
            [0.0, 0.0],  # u
            [0.4, 0.0],  # u's neighbour
            [1.2, 0.0],  # v: non-neighbour that still covers u
            [2.5, 0.0],
            [3.0, 0.0],
        ]
    )
    edges = [(0, 1), (1, 2), (2, 3), (3, 4)]
    return Topology(positions, edges)


def fig1_star_with_remote(positions) -> Topology:
    """The natural connected topology for a cluster-plus-remote instance.

    All cluster nodes (0 .. n-2) connect to the cluster node nearest the
    centroid; the remote node (index n-1) attaches to its nearest cluster
    node. Before the remote node arrives this topology has O(1) sender- and
    receiver-centric interference; Figure 1's argument is about what the
    single long attachment edge does to each measure.
    """
    positions = np.asarray(positions, dtype=np.float64)
    n = positions.shape[0]
    if n < 2:
        raise ValueError("need at least 2 nodes")
    cluster = positions[: n - 1]
    centroid = cluster.mean(axis=0)
    hub = int(np.argmin(np.hypot(*(cluster - centroid).T)))
    edges = [(hub, i) for i in range(n - 1) if i != hub]
    remote_anchor = int(np.argmin(np.hypot(*(cluster - positions[n - 1]).T)))
    edges.append((remote_anchor, n - 1))
    return Topology(positions, edges)


def two_chains_optimal_tree(positions, groups) -> Topology:
    """The Figure 5 constant-interference spanning tree.

    Avoids the horizontal chain entirely: the diagonal chain is connected
    through the helper nodes (``v_{i-1} — t_i — v_i``), and every
    horizontal node hangs off its vertical partner (``h_i — v_i``). Every
    edge disk covers only O(1) nodes, so the whole tree has O(1)
    receiver-centric interference — versus Omega(n) for anything containing
    the Nearest Neighbor Forest (Theorem 4.1).
    """
    h, v, t = groups["h"], groups["v"], groups["t"]
    m = len(h)
    if len(v) != m or len(t) != m - 1:
        raise ValueError("groups do not look like a two_exponential_chains result")
    edges = [(int(h[i]), int(v[i])) for i in range(m)]
    for i in range(1, m):
        edges.append((int(v[i - 1]), int(t[i - 1])))
        edges.append((int(t[i - 1]), int(v[i])))
    return Topology(positions, edges)
