"""Registry of topology-control algorithms.

Each registered algorithm maps the input unit disk graph
(:class:`repro.model.Topology`) to an output subtopology with the same node
set. The registry gives the survey experiment and CLI a uniform way to
enumerate baselines.
"""

from __future__ import annotations

from collections.abc import Callable

from repro.model.topology import Topology

AlgorithmFn = Callable[[Topology], Topology]

#: name -> default-configured algorithm
ALGORITHMS: dict[str, AlgorithmFn] = {}


def register(name: str):
    """Decorator registering a default-configured algorithm under ``name``."""

    def deco(fn: AlgorithmFn) -> AlgorithmFn:
        if name in ALGORITHMS:
            raise ValueError(f"algorithm {name!r} already registered")
        ALGORITHMS[name] = fn
        return fn

    return deco


def build(name: str, udg: Topology, **kwargs) -> Topology:
    """Run registered algorithm ``name`` on ``udg``."""
    try:
        fn = ALGORITHMS[name]
    except KeyError:
        raise KeyError(
            f"unknown algorithm {name!r}; known: {sorted(ALGORITHMS)}"
        ) from None
    return fn(udg, **kwargs)
