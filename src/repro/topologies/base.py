"""Registry of topology-control algorithms.

Each registered algorithm maps the input unit disk graph
(:class:`repro.model.Topology`) to an output subtopology with the same node
set. The registry gives the survey experiment and CLI a uniform way to
enumerate baselines.

Three sections share one namespace (names are unique across all three):

- :data:`ALGORITHMS` — the classical baselines of Section 4. Contract:
  the output is a subgraph of the input UDG (this is what the survey
  experiment and the per-algorithm contract tests iterate over).
- :data:`HIGHWAY_ALGORITHMS` — the paper's highway constructions
  (A_exp, A_gen, A_apx, the linear chain). They read the node
  *positions* and may build edges outside the UDG (A_exp) or drop
  connectivity on genuinely 2-D instances, so they do not join the
  baseline iteration — but :func:`build` resolves them uniformly:
  ``build("a_exp", udg)`` works exactly like ``build("emst", udg)``.
  The direct functions in :mod:`repro.highway` remain the documented
  thin entry points for positions-based callers.
- :data:`OPTIMIZERS` — search-based minimizers from :mod:`repro.opt`
  and :mod:`repro.extensions.local_search` (exact branch-and-bound,
  annealing, hill-climbing). Contract: the output is a *connected*
  subgraph of the input UDG, but unlike the baselines the result is
  not a fixed geometric construction — it depends on a search (seeded,
  so still deterministic per input) and may take orders of magnitude
  longer. They therefore stay out of the baseline iteration too, while
  :func:`build`/:func:`registered_names` resolve them uniformly.
"""

from __future__ import annotations

from collections.abc import Callable

from repro.model.topology import Topology

AlgorithmFn = Callable[[Topology], Topology]

#: name -> default-configured baseline algorithm (UDG-subgraph contract)
ALGORITHMS: dict[str, AlgorithmFn] = {}

#: name -> highway construction adapter (positions-based; see module doc)
HIGHWAY_ALGORITHMS: dict[str, AlgorithmFn] = {}

#: name -> search-based minimizer adapter (see module doc)
OPTIMIZERS: dict[str, AlgorithmFn] = {}


def register(name: str, *, highway: bool = False, optimizer: bool = False):
    """Decorator registering a default-configured algorithm under ``name``.

    ``highway=True`` registers into :data:`HIGHWAY_ALGORITHMS`,
    ``optimizer=True`` into :data:`OPTIMIZERS` (at most one flag); either
    way the name must be unique across all three sections so
    :func:`build` stays unambiguous.
    """
    if highway and optimizer:
        raise ValueError("an algorithm belongs to exactly one registry section")

    def deco(fn: AlgorithmFn) -> AlgorithmFn:
        if name in ALGORITHMS or name in HIGHWAY_ALGORITHMS or name in OPTIMIZERS:
            raise ValueError(f"algorithm {name!r} already registered")
        section = (
            HIGHWAY_ALGORITHMS if highway else OPTIMIZERS if optimizer else ALGORITHMS
        )
        section[name] = fn
        return fn

    return deco


def registered_names() -> tuple[str, ...]:
    """All buildable names (all three sections), sorted."""
    return tuple(sorted({**ALGORITHMS, **HIGHWAY_ALGORITHMS, **OPTIMIZERS}))


def is_highway(name: str) -> bool:
    """True iff ``name`` is a registered highway construction."""
    return name in HIGHWAY_ALGORITHMS


def is_optimizer(name: str) -> bool:
    """True iff ``name`` is a registered search-based minimizer."""
    return name in OPTIMIZERS


def build(name: str, udg: Topology, **kwargs) -> Topology:
    """Run registered algorithm ``name`` on ``udg`` (any section)."""
    fn = ALGORITHMS.get(name)
    if fn is None:
        fn = HIGHWAY_ALGORITHMS.get(name)
    if fn is None:
        fn = OPTIMIZERS.get(name)
    if fn is None:
        raise KeyError(
            f"unknown algorithm {name!r}; known: {list(registered_names())}"
        )
    return fn(udg, **kwargs)
