"""Yao graph restricted to the unit disk graph.

Each node partitions the plane into ``k`` equal cones (first cone starting
at angle 0) and keeps a directed edge to the nearest UDG neighbour in each
non-empty cone; the undirected output is the union of directions. With
``k >= 6`` the Yao graph is a connectivity-preserving spanner.
"""

from __future__ import annotations

import math

import numpy as np

from repro.model.topology import Topology
from repro.topologies.base import register


def yao_graph(udg: Topology, *, k: int = 6) -> Topology:
    if k < 1:
        raise ValueError("k must be >= 1")
    pos = udg.positions
    sector = 2.0 * math.pi / k
    rows: set[tuple[int, int]] = set()
    for u in range(udg.n):
        nbrs = np.array(sorted(udg.neighbors(u)), dtype=np.int64)
        if nbrs.size == 0:
            continue
        d = pos[nbrs] - pos[u]
        ang = np.mod(np.arctan2(d[:, 1], d[:, 0]), 2.0 * math.pi)
        cone = np.minimum((ang / sector).astype(np.int64), k - 1)
        dist = np.hypot(d[:, 0], d[:, 1])
        for c in np.unique(cone):
            mask = cone == c
            v = int(nbrs[mask][np.argmin(dist[mask])])
            rows.add((min(u, v), max(u, v)))
    return Topology(pos, np.array(sorted(rows), dtype=np.int64).reshape(-1, 2))


@register("yao6")
def _yao6(udg: Topology) -> Topology:
    return yao_graph(udg, k=6)
