"""Euclidean minimum spanning tree restricted to the unit disk graph.

The EMST is the canonical connectivity-preserving, energy-frugal topology;
it contains the Nearest Neighbor Forest (every nearest-neighbour edge is in
every MST under unique weights), which makes it the paper's archetypal
"good sparse topology that still fails on interference".
"""

from __future__ import annotations

from repro.graphs.mst import euclidean_mst_edges
from repro.model.topology import Topology
from repro.topologies.base import register


@register("emst")
def euclidean_mst(udg: Topology) -> Topology:
    """Spanning forest of ``udg`` with minimum total Euclidean length."""
    edges = euclidean_mst_edges(udg.positions, candidate_edges=udg.edges)
    return Topology(udg.positions, edges)
