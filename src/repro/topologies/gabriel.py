"""Gabriel graph restricted to the unit disk graph.

Edge ``{u, v}`` survives iff the closed disk with diameter ``uv`` contains
no third node — the classic planar structure used by geometric routing
(GPSR [7]) and first-generation topology control.
"""

from __future__ import annotations

import numpy as np

from repro.model.topology import Topology
from repro.topologies.base import register


@register("gabriel")
def gabriel_graph(udg: Topology) -> Topology:
    pos = udg.positions
    keep = []
    for u, v in udg.edges:
        mid = (pos[u] + pos[v]) / 2.0
        rad2 = float(np.sum((pos[u] - pos[v]) ** 2)) / 4.0
        d2 = np.sum((pos - mid) ** 2, axis=1)
        d2[u] = np.inf
        d2[v] = np.inf
        if not np.any(d2 <= rad2 * (1.0 + 1e-12)):
            keep.append((u, v))
    return Topology(pos, np.array(keep, dtype=np.int64).reshape(-1, 2))
