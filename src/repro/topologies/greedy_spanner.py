"""Classic greedy t-spanner (Althöfer et al.) restricted to the UDG.

Edges are examined in increasing length; an edge is kept iff the current
partial graph does not already connect its endpoints within ``t`` times
its length. The result is a t-spanner with strong sparseness guarantees —
the natural receiver-centric counterpart to LISE (which orders edges by
sender-centric coverage instead): keeping *short* edges first directly
keeps radii, and hence disks, small.
"""

from __future__ import annotations

import numpy as np

from repro.graphs.core import Graph
from repro.graphs.paths import dijkstra
from repro.model.topology import Topology
from repro.topologies.base import register


def greedy_spanner(udg: Topology, *, t: float = 2.0) -> Topology:
    if t < 1:
        raise ValueError("t must be >= 1")
    order = np.argsort(udg.edge_lengths, kind="stable")
    g = Graph(udg.n)
    keep: list[tuple[int, int]] = []
    for k in order:
        u, v = map(int, udg.edges[k])
        length = float(udg.edge_lengths[k])
        dist, _ = dijkstra(g, u)
        if dist[v] > t * length * (1.0 + 1e-12):
            g.add_edge(u, v, length)
            keep.append((u, v))
    return Topology(udg.positions, np.array(keep, dtype=np.int64).reshape(-1, 2))


@register("gspan2")
def _greedy_spanner_2(udg: Topology) -> Topology:
    return greedy_spanner(udg, t=2.0)
