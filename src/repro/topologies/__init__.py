"""Classical topology-control algorithms (the baselines of Section 4).

Every algorithm takes the unit disk graph as a :class:`repro.model.Topology`
and returns a subtopology. All of them (except LIFE/LISE) contain the
Nearest Neighbor Forest, which by Theorem 4.1 dooms them to Omega(n)
receiver-centric interference on the two-exponential-chains instance.
"""

from repro.topologies.base import (
    ALGORITHMS,
    HIGHWAY_ALGORITHMS,
    OPTIMIZERS,
    build,
    is_highway,
    is_optimizer,
    registered_names,
)
from repro.topologies.nnf import nearest_neighbor_forest
from repro.topologies.emst import euclidean_mst
from repro.topologies.gabriel import gabriel_graph
from repro.topologies.rng import relative_neighborhood_graph
from repro.topologies.yao import yao_graph
from repro.topologies.xtc import xtc
from repro.topologies.lmst import lmst
from repro.topologies.cbtc import cbtc
from repro.topologies.delaunay import delaunay_topology
from repro.topologies.knn import knn_topology
from repro.topologies.life import life, lise
from repro.topologies.greedy_spanner import greedy_spanner
from repro.topologies.constructions import (
    fig2_sample_topology,
    fig1_star_with_remote,
    two_chains_optimal_tree,
)
import repro.topologies.highway  # noqa: F401  (registers the highway section)
import repro.topologies.optimizers  # noqa: F401  (registers the optimizer section)

__all__ = [
    "ALGORITHMS",
    "HIGHWAY_ALGORITHMS",
    "OPTIMIZERS",
    "build",
    "is_highway",
    "is_optimizer",
    "registered_names",
    "nearest_neighbor_forest",
    "euclidean_mst",
    "gabriel_graph",
    "relative_neighborhood_graph",
    "yao_graph",
    "xtc",
    "lmst",
    "cbtc",
    "delaunay_topology",
    "knn_topology",
    "life",
    "lise",
    "greedy_spanner",
    "fig2_sample_topology",
    "fig1_star_with_remote",
    "two_chains_optimal_tree",
]
