"""LIFE and LISE — the explicit-interference algorithms of Burkhart et al. [2].

These are the "notable exception" of Section 4: they minimise the
*sender-centric* edge-coverage measure and do not necessarily contain the
Nearest Neighbor Forest — yet the paper shows they, too, perform badly under
the receiver-centric measure.

- **LIFE** (Low-Interference Forest Establisher): Kruskal's algorithm over
  UDG edges sorted by coverage — a spanning forest minimising the maximum
  edge coverage among all connectivity-preserving subgraphs.
- **LISE** (Low-Interference Spanner Establisher): insert edges in coverage
  order until every UDG edge is ``t``-spanned, yielding a coverage-optimal
  ``t``-spanner.
"""

from __future__ import annotations

import numpy as np

from repro.graphs.core import Graph
from repro.graphs.paths import dijkstra
from repro.graphs.unionfind import DisjointSet
from repro.interference.sender import edge_coverage
from repro.model.topology import Topology
from repro.topologies.base import register


def _coverage_order(udg: Topology) -> list[int]:
    """Indices of UDG edges sorted by (coverage, length, edge) ascending."""
    cov = edge_coverage(udg)
    lengths = udg.edge_lengths
    keys = sorted(
        range(udg.n_edges),
        key=lambda k: (int(cov[k]), float(lengths[k]), tuple(udg.edges[k])),
    )
    return keys


@register("life")
def life(udg: Topology) -> Topology:
    """Coverage-minimal spanning forest (LIFE)."""
    ds = DisjointSet(udg.n)
    keep = []
    for k in _coverage_order(udg):
        u, v = map(int, udg.edges[k])
        if ds.union(u, v):
            keep.append((u, v))
            if ds.n_components == 1:
                break
    return Topology(udg.positions, np.array(keep, dtype=np.int64).reshape(-1, 2))


def lise(udg: Topology, *, t: float = 2.0) -> Topology:
    """Coverage-minimal ``t``-spanner of the UDG (LISE).

    Edges are examined in coverage order; an edge is inserted iff the
    current partial topology does not yet connect its endpoints within
    ``t`` times its Euclidean length.
    """
    if t < 1:
        raise ValueError("t must be >= 1")
    g = Graph(udg.n)
    keep: list[tuple[int, int]] = []
    lengths = udg.edge_lengths
    for k in _coverage_order(udg):
        u, v = map(int, udg.edges[k])
        dist, _ = dijkstra(g, u)
        if dist[v] > t * float(lengths[k]) * (1.0 + 1e-12):
            g.add_edge(u, v, float(lengths[k]))
            keep.append((u, v))
    return Topology(udg.positions, np.array(keep, dtype=np.int64).reshape(-1, 2))


@register("lise2")
def _lise2(udg: Topology) -> Topology:
    return lise(udg, t=2.0)
