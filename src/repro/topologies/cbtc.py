"""CBTC — cone-based topology control (Wattenhofer, Li, Bahl & Wang [18]).

Each node grows its transmission radius through its sorted UDG neighbour
distances until every cone of angle ``alpha`` around it contains a reached
neighbour (or all neighbours are reached). The kept directed edges are the
reached neighbours; the undirected output takes the symmetric closure
(union), which for ``alpha <= 2*pi/3`` preserves connectivity.
"""

from __future__ import annotations

import math

import numpy as np

from repro.model.topology import Topology
from repro.topologies.base import register


def _gaps_covered(angles: np.ndarray, alpha: float) -> bool:
    """True iff every (closed) cone of angle ``alpha`` contains a direction.

    Equivalent to: the maximum circular gap between consecutive directions
    is at most ``alpha`` — in particular a single neighbour suffices for
    ``alpha = 2*pi``.
    """
    if angles.size == 0:
        return False
    s = np.sort(angles)
    gaps = np.diff(s, append=s[0] + 2.0 * math.pi)
    return bool(gaps.max() <= alpha + 1e-12)


def cbtc(udg: Topology, *, alpha: float = 2.0 * math.pi / 3.0) -> Topology:
    if not 0 < alpha <= 2.0 * math.pi:
        raise ValueError("alpha must lie in (0, 2*pi]")
    pos = udg.positions
    rows: set[tuple[int, int]] = set()
    for u in range(udg.n):
        nbrs = np.array(sorted(udg.neighbors(u)), dtype=np.int64)
        if nbrs.size == 0:
            continue
        d = pos[nbrs] - pos[u]
        dist = np.hypot(d[:, 0], d[:, 1])
        ang = np.mod(np.arctan2(d[:, 1], d[:, 0]), 2.0 * math.pi)
        order = np.argsort(dist, kind="stable")
        reached: list[int] = []
        for idx in order:
            reached.append(int(idx))
            if _gaps_covered(ang[reached], alpha):
                break
        for idx in reached:
            v = int(nbrs[idx])
            rows.add((min(u, v), max(u, v)))
    return Topology(pos, np.array(sorted(rows), dtype=np.int64).reshape(-1, 2))


@register("cbtc")
def _cbtc_default(udg: Topology) -> Topology:
    return cbtc(udg)
