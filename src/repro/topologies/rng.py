"""Relative neighborhood graph restricted to the unit disk graph.

Edge ``{u, v}`` survives iff no third node ``w`` is strictly closer to both
endpoints than they are to each other (the "lune" is empty). RNG is a
subgraph of the Gabriel graph and a supergraph of the EMST.
"""

from __future__ import annotations

import numpy as np

from repro.model.topology import Topology
from repro.topologies.base import register


@register("rng")
def relative_neighborhood_graph(udg: Topology) -> Topology:
    pos = udg.positions
    keep = []
    for k, (u, v) in enumerate(udg.edges):
        duv = udg.edge_lengths[k]
        du = np.hypot(*(pos - pos[u]).T)
        dv = np.hypot(*(pos - pos[v]).T)
        blocker = (du < duv * (1.0 - 1e-12)) & (dv < duv * (1.0 - 1e-12))
        blocker[u] = False
        blocker[v] = False
        if not blocker.any():
            keep.append((u, v))
    return Topology(pos, np.array(keep, dtype=np.int64).reshape(-1, 2))
