"""Registry adapters for the search-based minimizers (the ``repro.opt``
subsystem and the local-search extension).

These lift the optimization entry points to the registry's
``Topology -> Topology`` convention so ``build("opt_local", udg)`` works
uniformly alongside the Section 4 baselines. All three return a
*connected* subgraph of the input UDG, found by search rather than by a
fixed geometric rule:

- ``opt_exact`` — the certified branch-and-bound witness
  (:func:`repro.opt.solve_opt`). Pass ``config=OptConfig(...)`` to
  budget the search; without a budget it is exponential and only
  practical for small instances (see ``SOLVER_MAX_NODES``). The returned
  topology's measured interference equals the certificate value (a
  proven optimum when the search finished, a certified upper bound
  otherwise); use :func:`repro.opt.solve_opt` directly when you need the
  certificate itself.
- ``opt_anneal`` — simulated annealing over spanning trees plus the
  final hill-climb (:func:`repro.opt.heuristic_opt`).
- ``opt_local`` — the deterministic edge-swap hill-climb alone
  (:func:`repro.extensions.local_search.reduce_interference`).

All are seeded (``seed=``/``config=``) and deterministic per input.
"""

from __future__ import annotations

from repro.extensions.local_search import reduce_interference
from repro.model.topology import Topology
from repro.opt.config import OptConfig
from repro.opt.heuristic import heuristic_opt
from repro.opt.solver import solve_opt
from repro.topologies.base import register


@register("opt_exact", optimizer=True)
def opt_exact_adapter(
    udg: Topology, *, unit: float = 1.0, config: OptConfig | None = None
) -> Topology:
    """Witness topology of the certified solver (optimal when it finishes)."""
    outcome = solve_opt(udg.positions, unit=unit, config=config)
    return outcome.topology


@register("opt_anneal", optimizer=True)
def opt_anneal_adapter(
    udg: Topology, *, unit: float = 1.0, config: OptConfig | None = None
) -> Topology:
    """Annealed + hill-climbed upper-bound topology."""
    _, topo = heuristic_opt(udg.positions, unit=unit, config=config)
    return topo


@register("opt_local", optimizer=True)
def opt_local_adapter(udg: Topology, **kwargs) -> Topology:
    """Deterministic interference hill-climb over spanning trees of ``udg``."""
    return reduce_interference(udg, **kwargs)
