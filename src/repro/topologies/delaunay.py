"""Delaunay triangulation intersected with the unit disk graph.

Planar-structure baseline from first-generation topology control [10, 14].
Degenerate (collinear) inputs — e.g. highway instances — have no 2-D
triangulation; there the Delaunay graph of points on a line is exactly the
path through the sorted order, which we build directly.
"""

from __future__ import annotations

import numpy as np
from scipy.spatial import Delaunay, QhullError

from repro.model.topology import Topology
from repro.topologies.base import register


def _collinear(pos: np.ndarray) -> bool:
    if pos.shape[0] <= 2:
        return True
    centered = pos - pos.mean(axis=0)
    return bool(np.linalg.matrix_rank(centered, tol=1e-12) < 2)


@register("delaunay")
def delaunay_topology(udg: Topology) -> Topology:
    pos = udg.positions
    n = udg.n
    if n <= 1:
        return Topology(pos, ())
    if _collinear(pos):
        # 1-D Delaunay = sorted path (ties in x broken by y)
        order = np.lexsort((pos[:, 1], pos[:, 0]))
        cand = {(int(min(a, b)), int(max(a, b))) for a, b in zip(order, order[1:])}
    else:
        try:
            tri = Delaunay(pos)
        except QhullError:
            order = np.lexsort((pos[:, 1], pos[:, 0]))
            cand = {
                (int(min(a, b)), int(max(a, b))) for a, b in zip(order, order[1:])
            }
        else:
            cand = set()
            for simplex in tri.simplices:
                for i in range(3):
                    a, b = int(simplex[i]), int(simplex[(i + 1) % 3])
                    cand.add((min(a, b), max(a, b)))
    keep = [e for e in sorted(cand) if udg.has_edge(*e)]
    return Topology(pos, np.array(keep, dtype=np.int64).reshape(-1, 2))
