"""Registry adapters for the paper's highway constructions (Section 5).

The direct functions (:func:`repro.highway.a_exp` and friends) take raw
node *positions* — the natural signature for the 1-D highway model. These
adapters lift them to the registry's ``Topology -> Topology`` calling
convention so ``build("a_exp", udg)`` works uniformly alongside the
Section 4 baselines; the positions are taken from the input topology and
extra keyword arguments are forwarded unchanged (e.g. ``unit=`` for
``a_gen``/``a_apx``/``linear_chain``, ``spacing=`` for ``a_gen``).

They live in :data:`repro.topologies.base.HIGHWAY_ALGORITHMS`, a separate
registry section, because they do not satisfy the baseline contract (the
output need not be a UDG subgraph, and connectivity is only guaranteed on
highway instances) — see the :mod:`repro.topologies.base` module docs.
"""

from __future__ import annotations

from repro.highway.a_apx import a_apx
from repro.highway.a_exp import a_exp
from repro.highway.a_gen import a_gen
from repro.highway.linear import linear_chain
from repro.model.topology import Topology
from repro.topologies.base import register


@register("a_exp", highway=True)
def a_exp_adapter(udg: Topology, **kwargs) -> Topology:
    """A_exp (Theorem 5.1) over the input topology's node positions."""
    return a_exp(udg.positions, **kwargs)


@register("a_gen", highway=True)
def a_gen_adapter(udg: Topology, **kwargs) -> Topology:
    """A_gen (Theorem 5.4) over the input topology's node positions."""
    return a_gen(udg.positions, **kwargs)


@register("a_apx", highway=True)
def a_apx_adapter(udg: Topology, **kwargs) -> Topology:
    """A_apx (Theorem 5.6) over the input topology's node positions.

    ``return_info`` is not forwarded — the registry convention is
    ``Topology`` in, ``Topology`` out; use :func:`repro.highway.a_apx`
    directly for branch diagnostics.
    """
    kwargs.pop("return_info", None)
    return a_apx(udg.positions, **kwargs)


@register("linear_chain", highway=True)
def linear_chain_adapter(udg: Topology, **kwargs) -> Topology:
    """``G_lin`` — consecutive nodes in highway order."""
    return linear_chain(udg.positions, **kwargs)
