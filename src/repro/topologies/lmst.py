"""LMST — local minimum spanning tree topology (Li, Hou & Sha [9]).

Each node builds the MST of its closed one-hop UDG neighbourhood (with
unique lexicographic weights) and nominates its incident MST edges. The
symmetric output keeps an edge iff *both* endpoints nominate it; with
unique weights this preserves connectivity and has degree at most 6.
"""

from __future__ import annotations

import numpy as np

from repro.graphs.core import Graph
from repro.graphs.mst import kruskal_mst
from repro.model.topology import Topology
from repro.topologies.base import register


@register("lmst")
def lmst(udg: Topology) -> Topology:
    pos = udg.positions
    nominated: set[tuple[int, int]] = set()
    nominations: dict[int, set[tuple[int, int]]] = {u: set() for u in range(udg.n)}
    for u in range(udg.n):
        local = sorted(udg.neighbors(u) | {u})
        index = {node: i for i, node in enumerate(local)}
        g = Graph(len(local))
        for i, a in enumerate(local):
            for b in local[i + 1 :]:
                if udg.has_edge(a, b):
                    d = float(np.hypot(*(pos[a] - pos[b])))
                    g.add_edge(index[a], index[b], d)
        mst = kruskal_mst(g)
        for i, j in mst.edges():
            a, b = local[i], local[j]
            if a == u or b == u:
                nominations[u].add((min(a, b), max(a, b)))
    for u in range(udg.n):
        for e in nominations[u]:
            other = e[0] if e[1] == u else e[1]
            if e in nominations[other]:
                nominated.add(e)
    return Topology(pos, np.array(sorted(nominated), dtype=np.int64).reshape(-1, 2))
