"""XTC (Wattenhofer & Zollinger [19]) over a pluggable link-quality order.

XTC's defining feature is that it needs no positions — only a total order
on each node's links by quality. Each node ranks its UDG neighbours; edge
``{u, v}`` is dropped iff some common witness ``w`` is better than ``v``
from ``u``'s view *and* better than ``u`` from ``v``'s view. Because the
quality is a symmetric edge weight, both endpoints reach the same verdict
and the output is connected whenever the input is.

The default quality is Euclidean distance (the geometric setting, where
the output is a subgraph of the RNG); pass any symmetric ``link_quality``
(lower = better) to model e.g. measured packet loss.
"""

from __future__ import annotations

from collections.abc import Callable

import numpy as np

from repro.model.topology import Topology
from repro.topologies.base import register


def xtc_with_quality(
    udg: Topology,
    link_quality: Callable[[int, int], float] | None = None,
) -> Topology:
    """Run XTC with an arbitrary symmetric link-quality function.

    ``link_quality(u, v)`` must be symmetric (same value for ``(v, u)``);
    lower values are better links. Ties are broken by the canonical edge
    id so the ranking is always total.
    """
    pos = udg.positions
    if link_quality is None:
        def link_quality(a: int, b: int) -> float:  # noqa: E306
            return float(np.hypot(*(pos[a] - pos[b])))

    def rank(a: int, b: int) -> tuple[float, int, int]:
        return (link_quality(a, b), min(a, b), max(a, b))

    keep = []
    for u, v in udg.edges:
        q_uv = rank(u, v)
        dropped = False
        for w in udg.neighbors(u) & udg.neighbors(v):
            if rank(u, w) < q_uv and rank(v, w) < q_uv:
                dropped = True
                break
        if not dropped:
            keep.append((u, v))
    return Topology(pos, np.array(keep, dtype=np.int64).reshape(-1, 2))


@register("xtc")
def xtc(udg: Topology) -> Topology:
    """XTC with Euclidean link quality (the geometric setting)."""
    return xtc_with_quality(udg)
