"""Spanner quality measures: Euclidean and graph stretch factors."""

from __future__ import annotations

import math

import numpy as np

from repro.graphs.core import Graph
from repro.graphs.paths import dijkstra


def _weighted_copy(graph: Graph, positions) -> Graph:
    from repro.utils import check_positions

    pos = check_positions(positions)
    g = Graph(graph.n)
    for u, v in graph.edges():
        d = math.hypot(*(pos[u] - pos[v]))
        g.add_edge(u, v, d)
    return g


def euclidean_stretch(graph: Graph, positions) -> float:
    """Maximum ratio of graph distance to straight-line distance over pairs.

    The graph is re-weighted with Euclidean edge lengths. Pairs in different
    components yield ``inf``. Coincident points are skipped. O(n * (m log n)).
    """
    g = _weighted_copy(graph, positions)
    from repro.utils import check_positions

    pos = check_positions(positions)
    worst = 1.0
    for s in range(g.n):
        dist, _ = dijkstra(g, s)
        d = pos - pos[s]
        euclid = np.hypot(d[:, 0], d[:, 1])
        for t in range(s + 1, g.n):
            if euclid[t] == 0.0:
                continue
            ratio = dist[t] / euclid[t]
            if ratio > worst:
                worst = float(ratio)
    return worst


def graph_stretch(subgraph: Graph, reference: Graph, positions) -> float:
    """Max ratio of Euclidean shortest-path length in ``subgraph`` vs ``reference``.

    Both graphs are re-weighted with Euclidean edge lengths; this is the
    classic spanner ratio of a topology-control output against its input
    UDG. Returns ``inf`` if ``subgraph`` disconnects a reference-connected
    pair.
    """
    if subgraph.n != reference.n:
        raise ValueError("graphs must share the node set")
    gs = _weighted_copy(subgraph, positions)
    gr = _weighted_copy(reference, positions)
    worst = 1.0
    for s in range(gs.n):
        ds, _ = dijkstra(gs, s)
        dr, _ = dijkstra(gr, s)
        for t in range(s + 1, gs.n):
            if not math.isfinite(dr[t]) or dr[t] == 0.0:
                continue
            ratio = ds[t] / dr[t]
            if ratio > worst:
                worst = float(ratio)
    return worst
