"""From-scratch undirected graph substrate (no networkx in the core).

networkx is used only inside the test suite as an oracle to cross-check
these implementations.
"""

from repro.graphs.core import Graph
from repro.graphs.unionfind import DisjointSet
from repro.graphs.traversal import bfs_order, connected_components, is_connected
from repro.graphs.mst import kruskal_mst, prim_mst
from repro.graphs.paths import dijkstra, hop_distances
from repro.graphs.spanner import euclidean_stretch, graph_stretch

__all__ = [
    "Graph",
    "DisjointSet",
    "bfs_order",
    "connected_components",
    "is_connected",
    "kruskal_mst",
    "prim_mst",
    "dijkstra",
    "hop_distances",
    "euclidean_stretch",
    "graph_stretch",
]
