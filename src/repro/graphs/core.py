"""Minimal undirected graph with adjacency sets and optional edge weights."""

from __future__ import annotations

from collections.abc import Iterable, Iterator

import numpy as np

from repro.utils import check_edge_array


def _canon(u: int, v: int) -> tuple[int, int]:
    return (u, v) if u < v else (v, u)


class Graph:
    """Simple undirected graph over nodes ``0 .. n-1``.

    Edges are unweighted unless a weight is supplied; weights default to 1.0.
    The class is deliberately small — just what the topology-control
    algorithms and the simulator need: O(1) adjacency queries, edge
    iteration, and conversion to flat numpy edge arrays.
    """

    def __init__(self, n: int, edges: Iterable = ()):  # noqa: D401
        if n < 0:
            raise ValueError("n must be >= 0")
        self.n = int(n)
        self._adj: list[set[int]] = [set() for _ in range(self.n)]
        self._weights: dict[tuple[int, int], float] = {}
        for e in edges:
            if len(e) == 3:
                u, v, w = e
                self.add_edge(int(u), int(v), float(w))
            else:
                u, v = e
                self.add_edge(int(u), int(v))

    # -- construction -----------------------------------------------------
    @classmethod
    def from_edge_array(cls, n: int, edges, weights=None) -> "Graph":
        """Build from an ``(m, 2)`` edge array and optional weight vector."""
        arr = check_edge_array(edges, n)
        g = cls(n)
        if weights is None:
            for u, v in arr:
                g.add_edge(int(u), int(v))
        else:
            weights = np.asarray(weights, dtype=np.float64)
            if weights.shape[0] != np.asarray(edges).shape[0]:
                raise ValueError("weights must align with edges")
            # weights align with the *input* rows, so walk the raw input
            raw = np.asarray(edges, dtype=np.int64)
            for (u, v), w in zip(raw, weights):
                g.add_edge(int(u), int(v), float(w))
        return g

    def copy(self) -> "Graph":
        g = Graph(self.n)
        g._adj = [set(s) for s in self._adj]
        g._weights = dict(self._weights)
        return g

    # -- mutation ----------------------------------------------------------
    def add_edge(self, u: int, v: int, weight: float = 1.0) -> None:
        if u == v:
            raise ValueError("self-loops are not allowed")
        if not (0 <= u < self.n and 0 <= v < self.n):
            raise ValueError(f"edge ({u}, {v}) out of range for n={self.n}")
        self._adj[u].add(v)
        self._adj[v].add(u)
        self._weights[_canon(u, v)] = float(weight)

    def remove_edge(self, u: int, v: int) -> None:
        key = _canon(u, v)
        if key not in self._weights:
            raise KeyError(f"edge ({u}, {v}) not in graph")
        self._adj[u].discard(v)
        self._adj[v].discard(u)
        del self._weights[key]

    # -- queries -----------------------------------------------------------
    def has_edge(self, u: int, v: int) -> bool:
        return _canon(u, v) in self._weights

    def weight(self, u: int, v: int) -> float:
        return self._weights[_canon(u, v)]

    def neighbors(self, u: int) -> frozenset[int]:
        return frozenset(self._adj[u])

    def degree(self, u: int) -> int:
        return len(self._adj[u])

    def max_degree(self) -> int:
        return max((len(s) for s in self._adj), default=0)

    @property
    def n_edges(self) -> int:
        return len(self._weights)

    def edges(self) -> Iterator[tuple[int, int]]:
        """Iterate canonical ``(u, v)`` pairs with ``u < v`` (sorted)."""
        return iter(sorted(self._weights))

    def edge_array(self) -> np.ndarray:
        """``(m, 2)`` int64 canonical edge array, lexicographically sorted."""
        if not self._weights:
            return np.empty((0, 2), dtype=np.int64)
        return np.array(sorted(self._weights), dtype=np.int64)

    def weight_array(self) -> np.ndarray:
        """Weights aligned with :meth:`edge_array` rows."""
        return np.array(
            [self._weights[k] for k in sorted(self._weights)], dtype=np.float64
        )

    def __eq__(self, other) -> bool:
        if not isinstance(other, Graph):
            return NotImplemented
        return self.n == other.n and self._weights.keys() == other._weights.keys()

    def __hash__(self):  # graphs are mutable
        raise TypeError("Graph is unhashable")

    def __repr__(self) -> str:
        return f"Graph(n={self.n}, m={self.n_edges})"
