"""Breadth-first traversal, connectivity and components."""

from __future__ import annotations

from collections import deque

from repro.graphs.core import Graph


def bfs_order(graph: Graph, source: int) -> list[int]:
    """Nodes reachable from ``source`` in BFS visitation order."""
    if not (0 <= source < graph.n):
        raise ValueError(f"source {source} out of range")
    seen = [False] * graph.n
    seen[source] = True
    order = [source]
    q = deque([source])
    while q:
        u = q.popleft()
        for v in sorted(graph.neighbors(u)):
            if not seen[v]:
                seen[v] = True
                order.append(v)
                q.append(v)
    return order


def connected_components(graph: Graph) -> list[list[int]]:
    """List of components, each a sorted node list; components sorted by min node."""
    seen = [False] * graph.n
    comps: list[list[int]] = []
    for s in range(graph.n):
        if seen[s]:
            continue
        comp = []
        q = deque([s])
        seen[s] = True
        while q:
            u = q.popleft()
            comp.append(u)
            for v in graph.neighbors(u):
                if not seen[v]:
                    seen[v] = True
                    q.append(v)
        comps.append(sorted(comp))
    return comps


def is_connected(graph: Graph) -> bool:
    """True iff the graph has at most one connected component.

    The empty graph and single-node graph count as connected.
    """
    if graph.n <= 1:
        return True
    return len(bfs_order(graph, 0)) == graph.n
