"""Disjoint-set (union-find) with path compression and union by size."""

from __future__ import annotations

import numpy as np


class DisjointSet:
    """Union-find over elements ``0 .. n-1``.

    Amortised near-O(1) ``find``/``union``; tracks the live component count
    so connectivity checks are O(1).
    """

    def __init__(self, n: int):
        if n < 0:
            raise ValueError("n must be >= 0")
        self._parent = np.arange(n, dtype=np.int64)
        self._size = np.ones(n, dtype=np.int64)
        self.n_components = n

    def __len__(self) -> int:
        return self._parent.shape[0]

    def find(self, x: int) -> int:
        """Canonical representative of ``x``'s component."""
        parent = self._parent
        root = x
        while parent[root] != root:
            root = parent[root]
        # path compression
        while parent[x] != root:
            parent[x], x = root, parent[x]
        return int(root)

    def union(self, a: int, b: int) -> bool:
        """Merge the components of ``a`` and ``b``; True if they were distinct."""
        ra, rb = self.find(a), self.find(b)
        if ra == rb:
            return False
        if self._size[ra] < self._size[rb]:
            ra, rb = rb, ra
        self._parent[rb] = ra
        self._size[ra] += self._size[rb]
        self.n_components -= 1
        return True

    def connected(self, a: int, b: int) -> bool:
        """True iff ``a`` and ``b`` are in the same component."""
        return self.find(a) == self.find(b)

    def component_sizes(self) -> dict[int, int]:
        """Map root -> component size for all live components."""
        out: dict[int, int] = {}
        for x in range(len(self)):
            out[self.find(x)] = out.get(self.find(x), 0) + 1
        return out
