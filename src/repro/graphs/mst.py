"""Minimum spanning tree / forest algorithms (Kruskal and Prim)."""

from __future__ import annotations

import heapq

import numpy as np

from repro.graphs.core import Graph
from repro.graphs.unionfind import DisjointSet


def kruskal_mst(graph: Graph) -> Graph:
    """Minimum spanning forest of ``graph`` via Kruskal's algorithm.

    Works per component (a spanning forest when disconnected). Ties are
    broken by canonical edge order, so the result is deterministic.
    """
    edges = sorted(
        graph.edges(), key=lambda e: (graph.weight(*e), e[0], e[1])
    )
    ds = DisjointSet(graph.n)
    out = Graph(graph.n)
    for u, v in edges:
        if ds.union(u, v):
            out.add_edge(u, v, graph.weight(u, v))
            if ds.n_components == 1:
                break
    return out


def prim_mst(graph: Graph, *, root: int = 0) -> Graph:
    """Minimum spanning forest via Prim's algorithm with a binary heap.

    Grows from ``root``, then restarts from the smallest unvisited node of
    each remaining component so disconnected inputs yield a spanning forest.
    """
    if graph.n == 0:
        return Graph(0)
    if not (0 <= root < graph.n):
        raise ValueError("root out of range")
    out = Graph(graph.n)
    visited = [False] * graph.n
    starts = [root] + [v for v in range(graph.n) if v != root]
    for start in starts:
        if visited[start]:
            continue
        visited[start] = True
        heap: list[tuple[float, int, int]] = []
        for v in graph.neighbors(start):
            heapq.heappush(heap, (graph.weight(start, v), start, v))
        while heap:
            w, u, v = heapq.heappop(heap)
            if visited[v]:
                continue
            visited[v] = True
            out.add_edge(u, v, w)
            for x in graph.neighbors(v):
                if not visited[x]:
                    heapq.heappush(heap, (graph.weight(v, x), v, x))
    return out


def euclidean_mst_edges(positions, candidate_edges=None) -> np.ndarray:
    """Edge array of the Euclidean MST (forest) of a point set.

    ``candidate_edges`` restricts the MST to a subgraph's edges (e.g. the
    unit disk graph); by default the complete graph is used. Returns an
    ``(m, 2)`` canonical int64 array.
    """
    from repro.geometry.points import distance_matrix
    from repro.utils import check_positions

    pos = check_positions(positions)
    n = pos.shape[0]
    if candidate_edges is None:
        ii, jj = np.triu_indices(n, k=1)
        cand = np.stack([ii, jj], axis=1)
    else:
        cand = np.asarray(candidate_edges, dtype=np.int64)
        if cand.size == 0:
            return np.empty((0, 2), dtype=np.int64)
    d = pos[cand[:, 0]] - pos[cand[:, 1]]
    lengths = np.hypot(d[:, 0], d[:, 1])
    order = np.argsort(lengths, kind="stable")
    ds = DisjointSet(n)
    rows = []
    for k in order:
        u, v = int(cand[k, 0]), int(cand[k, 1])
        if ds.union(u, v):
            rows.append((min(u, v), max(u, v)))
            if ds.n_components == 1:
                break
    if not rows:
        return np.empty((0, 2), dtype=np.int64)
    return np.array(sorted(rows), dtype=np.int64)
