"""Shortest paths: Dijkstra (weighted) and BFS hop counts."""

from __future__ import annotations

import heapq
import math
from collections import deque

import numpy as np

from repro.graphs.core import Graph


def dijkstra(graph: Graph, source: int) -> tuple[np.ndarray, np.ndarray]:
    """Single-source shortest paths with non-negative weights.

    Returns ``(dist, parent)``: float64 distances (``inf`` when unreachable)
    and int64 predecessor indices (``-1`` for the source and unreachable
    nodes).
    """
    if not (0 <= source < graph.n):
        raise ValueError("source out of range")
    dist = np.full(graph.n, math.inf)
    parent = np.full(graph.n, -1, dtype=np.int64)
    dist[source] = 0.0
    heap = [(0.0, source)]
    done = [False] * graph.n
    while heap:
        d, u = heapq.heappop(heap)
        if done[u]:
            continue
        done[u] = True
        for v in graph.neighbors(u):
            w = graph.weight(u, v)
            if w < 0:
                raise ValueError("dijkstra requires non-negative weights")
            nd = d + w
            if nd < dist[v]:
                dist[v] = nd
                parent[v] = u
                heapq.heappush(heap, (nd, v))
    return dist, parent


def hop_distances(graph: Graph, source: int) -> np.ndarray:
    """BFS hop counts from ``source``; ``-1`` when unreachable (int64)."""
    if not (0 <= source < graph.n):
        raise ValueError("source out of range")
    dist = np.full(graph.n, -1, dtype=np.int64)
    dist[source] = 0
    q = deque([source])
    while q:
        u = q.popleft()
        for v in graph.neighbors(u):
            if dist[v] < 0:
                dist[v] = dist[u] + 1
                q.append(v)
    return dist


def extract_path(parent: np.ndarray, target: int) -> list[int]:
    """Reconstruct the path to ``target`` from a Dijkstra parent array."""
    if parent[target] < 0:
        return [int(target)]
    path = [int(target)]
    while parent[path[-1]] >= 0:
        path.append(int(parent[path[-1]]))
    path.reverse()
    return path
