"""Argument validation shared across the library.

These helpers normalise user input to canonical numpy layouts and raise
``ValueError``/``TypeError`` with actionable messages. They are intentionally
cheap (no copies when the input is already canonical) so they can guard every
public entry point.
"""

from __future__ import annotations

import numpy as np


def check_positions(positions, *, name: str = "positions") -> np.ndarray:
    """Validate and canonicalise an ``(n, 2)`` float64 position array.

    Accepts any array-like of shape ``(n, 2)`` or ``(n,)`` (treated as 1-D
    highway coordinates, lifted to y = 0). Returns a C-contiguous float64
    array; the input is returned as-is when it already is one (no copy).
    """
    arr = np.asarray(positions, dtype=np.float64)
    if arr.ndim == 1:
        lifted = np.zeros((arr.shape[0], 2), dtype=np.float64)
        lifted[:, 0] = arr
        arr = lifted
    if arr.ndim != 2 or arr.shape[1] != 2:
        raise ValueError(
            f"{name} must have shape (n, 2) or (n,), got {arr.shape!r}"
        )
    if not np.all(np.isfinite(arr)):
        raise ValueError(f"{name} must be finite (no NaN/inf)")
    return np.ascontiguousarray(arr)


def check_radii(radii, n: int, *, name: str = "radii") -> np.ndarray:
    """Validate a length-``n`` non-negative float64 radius vector."""
    arr = np.asarray(radii, dtype=np.float64)
    if arr.shape != (n,):
        raise ValueError(f"{name} must have shape ({n},), got {arr.shape!r}")
    if not np.all(np.isfinite(arr)):
        raise ValueError(f"{name} must be finite")
    if np.any(arr < 0):
        raise ValueError(f"{name} must be non-negative")
    return arr


def check_edge_array(edges, n: int, *, name: str = "edges") -> np.ndarray:
    """Validate an ``(m, 2)`` integer edge array over nodes ``0..n-1``.

    Self-loops are rejected. The returned array is int64 with each row sorted
    ``(min, max)`` and duplicate rows removed; row order is not preserved.
    """
    arr = np.asarray(edges, dtype=np.int64)
    if arr.size == 0:
        return np.empty((0, 2), dtype=np.int64)
    if arr.ndim != 2 or arr.shape[1] != 2:
        raise ValueError(f"{name} must have shape (m, 2), got {arr.shape!r}")
    if arr.min() < 0 or arr.max() >= n:
        raise ValueError(f"{name} indices must lie in [0, {n})")
    if np.any(arr[:, 0] == arr[:, 1]):
        raise ValueError(f"{name} must not contain self-loops")
    lo = np.minimum(arr[:, 0], arr[:, 1])
    hi = np.maximum(arr[:, 0], arr[:, 1])
    canon = np.stack([lo, hi], axis=1)
    return np.unique(canon, axis=0)
