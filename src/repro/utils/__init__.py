"""Shared utilities: seeded RNG handling and validation helpers."""

from repro.utils.rng import as_generator
from repro.utils.validation import (
    check_edge_array,
    check_positions,
    check_radii,
)

__all__ = [
    "as_generator",
    "check_positions",
    "check_radii",
    "check_edge_array",
]
