"""Deterministic random-number handling.

All stochastic code in the library accepts a ``seed`` argument that may be an
``int``, ``None`` or an existing :class:`numpy.random.Generator`. Routing all
randomness through :func:`as_generator` keeps experiments reproducible and
lets callers share a single generator across composed components.
"""

from __future__ import annotations

import numpy as np

SeedLike = "int | None | np.random.Generator"


def as_generator(seed: int | None | np.random.Generator) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for ``seed``.

    Parameters
    ----------
    seed:
        ``None`` (fresh entropy), an integer seed, or an existing generator
        (returned unchanged so that state is shared with the caller).
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)
