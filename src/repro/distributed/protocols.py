"""Distributed implementations of locality-friendly topology control.

Every protocol here is verified (by the test suite) to produce exactly the
same topology as its centralized counterpart in ``repro.topologies``:

================  ======  ===========  ============================
protocol          rounds  combine      information used
================  ======  ===========  ============================
DistributedNnf    1       union        1-hop positions
DistributedXtc    2       intersection 1-hop positions + rankings
DistributedLmst   2       intersection 2-hop positions
================  ======  ===========  ============================
"""

from __future__ import annotations

import numpy as np

from repro.distributed.framework import Protocol


def _dist(a, b) -> float:
    return float(np.hypot(a[0] - b[0], a[1] - b[1]))


class DistributedNnf(Protocol):
    """Nearest Neighbor Forest in one broadcast round.

    Round 0: broadcast own position. Each node then nominates its nearest
    neighbour (ties to the smaller id); the union of nominations is the NNF.
    """

    n_rounds = 1
    combine = "union"

    def init_state(self, node, position, neighbor_ids):
        return {"id": node, "pos": position, "nbrs": list(neighbor_ids), "seen": {}}

    def send(self, round_idx, state):
        return tuple(state["pos"])

    def receive(self, round_idx, state, inbox):
        state["seen"].update(inbox)

    def nominations(self, state):
        if not state["seen"]:
            return []
        best = min(
            state["seen"].items(),
            key=lambda kv: (_dist(state["pos"], kv[1]), kv[0]),
        )
        return [best[0]]


class DistributedXtc(Protocol):
    """XTC [19] as a two-round protocol.

    Round 0: broadcast position (nodes build their neighbour ranking —
    Euclidean distance with id tie-break). Round 1: broadcast the ranking.
    A node keeps the edge to ``v`` unless some ``w``, ranked better than
    ``v`` locally, also ranks better than the node itself in ``v``'s
    received ranking. Both endpoints reach the same verdict, so the
    intersection equals either side's decision.
    """

    n_rounds = 2
    combine = "intersection"

    def init_state(self, node, position, neighbor_ids):
        return {
            "id": node,
            "pos": position,
            "nbrs": list(neighbor_ids),
            "positions": {},
            "rankings": {},
        }

    def send(self, round_idx, state):
        if round_idx == 0:
            return tuple(state["pos"])
        # round 1: broadcast own ranking (ordered neighbour ids)
        return tuple(self._ranking(state))

    def _ranking(self, state):
        me = state["id"]
        return sorted(
            state["positions"],
            key=lambda w: (
                _dist(state["pos"], state["positions"][w]),
                min(me, w),
                max(me, w),
            ),
        )

    def receive(self, round_idx, state, inbox):
        if round_idx == 0:
            state["positions"].update(inbox)
        else:
            state["rankings"].update({u: list(r) for u, r in inbox.items()})

    def nominations(self, state):
        me = state["id"]
        my_rank = self._ranking(state)
        keep = []
        for v in my_rank:
            better_than_v = set(my_rank[: my_rank.index(v)])
            v_ranking = state["rankings"].get(v, [])
            drop = False
            for w in v_ranking:
                if w == me:
                    break  # everyone after this ranks worse than me for v
                if w in better_than_v:
                    drop = True
                    break
            if not drop:
                keep.append(v)
        return keep


class DistributedLmst(Protocol):
    """LMST [9] as a two-round protocol.

    Round 0: broadcast position. Round 1: broadcast the collected one-hop
    position map (so every node learns its two-hop neighbourhood geometry,
    restricted to its own neighbours). Each node computes the MST of its
    closed neighbourhood and nominates its incident MST edges; the
    symmetric intersection is the LMST.
    """

    n_rounds = 2
    combine = "intersection"

    def __init__(self, *, unit: float = 1.0):
        if unit <= 0:
            raise ValueError("unit must be positive")
        self.unit = float(unit)

    def init_state(self, node, position, neighbor_ids):
        return {
            "id": node,
            "pos": position,
            "nbrs": list(neighbor_ids),
            "positions": {},
            "neighbor_maps": {},
        }

    def send(self, round_idx, state):
        if round_idx == 0:
            return tuple(state["pos"])
        return {u: p for u, p in state["positions"].items()}

    def receive(self, round_idx, state, inbox):
        if round_idx == 0:
            state["positions"].update(inbox)
        else:
            state["neighbor_maps"].update(inbox)

    def nominations(self, state):
        from repro.graphs.core import Graph
        from repro.graphs.mst import kruskal_mst

        me = state["id"]
        local = sorted([me] + list(state["positions"]))
        coords = dict(state["positions"])
        coords[me] = tuple(state["pos"])
        index = {node: i for i, node in enumerate(local)}
        g = Graph(len(local))
        for i, a in enumerate(local):
            for b in local[i + 1 :]:
                # edge a-b exists iff they are mutually within the unit
                # range; each node checks this from learned positions
                if a != me and b != me:
                    # known only if b appears in a's broadcast map (or v.v.)
                    amap = state["neighbor_maps"].get(a, {})
                    bmap = state["neighbor_maps"].get(b, {})
                    if b not in amap and a not in bmap:
                        continue
                d = _dist(coords[a], coords[b])
                if d <= self.unit * (1.0 + 1e-12):
                    g.add_edge(index[a], index[b], d)
        mst = kruskal_mst(g)
        keep = []
        for i, j in mst.edges():
            a, b = local[i], local[j]
            if a == me:
                keep.append(b)
            elif b == me:
                keep.append(a)
        return keep
