"""Distributed (message-passing) topology control.

The paper's algorithms target ad-hoc nodes that only talk to their UDG
neighbours. This package provides a synchronous message-passing framework
(rounds, per-neighbour payloads, message accounting) and faithful
distributed implementations of the locality-friendly baselines — NNF, XTC
and LMST — verified against their centralized counterparts and reported
with their round/message complexity.
"""

from repro.distributed.framework import DistributedResult, Protocol, SynchronousNetwork
from repro.distributed.protocols import (
    DistributedLmst,
    DistributedNnf,
    DistributedXtc,
)

__all__ = [
    "SynchronousNetwork",
    "Protocol",
    "DistributedResult",
    "DistributedNnf",
    "DistributedXtc",
    "DistributedLmst",
]
