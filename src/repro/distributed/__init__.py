"""Distributed (message-passing) topology control.

The paper's algorithms target ad-hoc nodes that only talk to their UDG
neighbours. This package provides a synchronous message-passing framework
(rounds, per-neighbour payloads, message accounting) and faithful
distributed implementations of the locality-friendly baselines — NNF, XTC
and LMST — verified against their centralized counterparts and reported
with their round/message complexity.

:class:`UnreliableNetwork` runs the same protocols over a faulty medium
(per-link drop/duplicate/delay plus node crashes, described by a seeded
:class:`repro.faults.FaultPlan`) using an ack/retransmission loop, so
convergence and overhead under loss can be measured instead of assumed.
"""

from repro.distributed.framework import (
    COMBINE_MODES,
    DistributedResult,
    Protocol,
    SynchronousNetwork,
    UnreliableNetwork,
)
from repro.distributed.protocols import (
    DistributedLmst,
    DistributedNnf,
    DistributedXtc,
)

__all__ = [
    "SynchronousNetwork",
    "UnreliableNetwork",
    "Protocol",
    "DistributedResult",
    "COMBINE_MODES",
    "DistributedNnf",
    "DistributedXtc",
    "DistributedLmst",
]
