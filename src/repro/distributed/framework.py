"""Synchronous message-passing execution over a unit disk graph.

The model is the standard LOCAL-style synchronous network: computation
proceeds in rounds; in each round every node composes one broadcast
payload, the network delivers it to all UDG neighbours, and every node
processes its inbox. After the protocol's fixed number of rounds each node
nominates the incident edges it wants to keep; the framework combines
nominations symmetrically (union or intersection, per protocol) into the
output topology.

Two execution paths share that contract:

- :class:`SynchronousNetwork` — the idealised lossless network.
- :class:`UnreliableNetwork` — the same round structure over a faulty
  medium described by a :class:`repro.faults.FaultPlan`: per-link Bernoulli
  drop/duplicate/delay plus node crashes. Each round expands into *attempt
  slots*: senders broadcast, receivers ack (acks are lossy too), and
  senders retransmit to unacked neighbours until everything is acked or the
  ``max_attempts`` budget runs out. With the budget large enough the inbox
  a node finally folds is identical to the lossless one, so LOCAL protocols
  converge to the very same topology — the overhead shows up only in the
  extra slots and messages, which are reported.

Message accounting: a broadcast by ``u`` counts as ``deg(u)`` delivered
messages (radio broadcasts reach each neighbour once); per-round and total
tallies are reported so protocols' communication complexity can be checked
by tests. Unreliable runs report data messages in the same currency, with
acks, retransmissions and fault counts in ``meta``.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field

import numpy as np

from repro import obs
from repro.model.topology import Topology

#: Valid values of :attr:`Protocol.combine`.
COMBINE_MODES = ("union", "intersection")


class Protocol(ABC):
    """A fixed-round broadcast protocol.

    Subclasses define ``n_rounds``, per-node state initialisation, what to
    broadcast each round, how to fold the inbox into state, and the final
    edge nominations. ``combine`` is ``"union"`` (an edge exists if either
    endpoint nominates it) or ``"intersection"`` (both must).
    """

    n_rounds: int = 1
    combine: str = "union"

    @abstractmethod
    def init_state(self, node: int, position, neighbor_ids) -> dict:
        """Per-node private state; nodes know their id, position and the
        *identities* of their UDG neighbours (link-layer discovery)."""

    @abstractmethod
    def send(self, round_idx: int, state: dict):
        """Payload broadcast to all neighbours this round (None = silent)."""

    @abstractmethod
    def receive(self, round_idx: int, state: dict, inbox: dict) -> None:
        """Fold ``inbox`` (sender id -> payload) into ``state``."""

    @abstractmethod
    def nominations(self, state: dict):
        """Iterable of neighbour ids whose edge this node wants to keep."""


@dataclass(frozen=True)
class DistributedResult:
    topology: Topology
    rounds: int
    messages_total: int
    messages_per_round: list[int]
    meta: dict = field(default_factory=dict)


def _check_combine(protocol: Protocol) -> None:
    """Reject unknown combine modes up front.

    A typo like ``combine = "intersect"`` must fail loudly instead of
    silently behaving as intersection via the fallthrough in the combine
    loop.
    """
    if protocol.combine not in COMBINE_MODES:
        raise ValueError(
            f"unknown combine mode {protocol.combine!r}; "
            f"expected one of {COMBINE_MODES}"
        )


def _collect_nominations(
    protocol: Protocol, udg: Topology, states: list[dict], nodes
) -> dict[int, set[int]]:
    """Ask ``nodes`` for nominations, validated against their UDG edges."""
    nominated: dict[int, set[int]] = {}
    for u in nodes:
        noms = {int(v) for v in protocol.nominations(states[u])}
        bad = noms - set(udg.neighbors(u))
        if bad:
            raise RuntimeError(
                f"protocol nominated non-neighbours {sorted(bad)} at node {u}"
            )
        nominated[u] = noms
    return nominated


def _combine_edges(protocol: Protocol, nominated: dict[int, set[int]]) -> set:
    """Fold per-node nominations into the symmetric output edge set.

    Nodes absent from ``nominated`` (crashed) contribute no edges; an edge
    needs both endpoints participating (union: either nominates;
    intersection: both nominate).
    """
    edges = set()
    for u, noms in nominated.items():
        for v in noms:
            if v not in nominated:
                continue  # endpoint crashed: the link is gone
            if protocol.combine == "union" or u in nominated[v]:
                edges.add((min(u, v), max(u, v)))
    return edges


class SynchronousNetwork:
    """Execute a :class:`Protocol` over the given unit disk graph."""

    def __init__(self, udg: Topology):
        self.udg = udg

    def run(self, protocol: Protocol) -> DistributedResult:
        _check_combine(protocol)
        udg = self.udg
        n = udg.n
        with obs.span(
            "distributed.run",
            protocol=type(protocol).__name__,
            network="synchronous",
            n=n,
        ):
            states = [
                protocol.init_state(
                    u, udg.positions[u].copy(), sorted(udg.neighbors(u))
                )
                for u in range(n)
            ]
            per_round: list[int] = []
            for r in range(protocol.n_rounds):
                with obs.span("distributed.round", round=r):
                    payloads = [protocol.send(r, states[u]) for u in range(n)]
                    sent = sum(
                        udg.degrees[u] for u in range(n) if payloads[u] is not None
                    )
                    per_round.append(int(sent))
                    inboxes: list[dict] = [dict() for _ in range(n)]
                    for u in range(n):
                        if payloads[u] is None:
                            continue
                        for v in udg.neighbors(u):
                            inboxes[v][u] = payloads[u]
                    for u in range(n):
                        protocol.receive(r, states[u], inboxes[u])

            nominated = _collect_nominations(protocol, udg, states, range(n))
            edges = _combine_edges(protocol, nominated)
            obs.count("protocol.rounds", protocol.n_rounds)
            obs.count("protocol.messages", int(sum(per_round)))
            topo = Topology(
                udg.positions,
                np.array(sorted(edges), dtype=np.int64).reshape(-1, 2),
            )
            return DistributedResult(
                topology=topo,
                rounds=protocol.n_rounds,
                messages_total=int(sum(per_round)),
                messages_per_round=per_round,
                meta={"combine": protocol.combine},
            )


class UnreliableNetwork:
    """Execute a :class:`Protocol` over a lossy, crash-prone medium.

    Parameters
    ----------
    udg:
        The unit disk graph (link layer).
    plan:
        A :class:`repro.faults.FaultPlan`; defaults to a lossless plan, in
        which case the run is message-for-message identical to
        :class:`SynchronousNetwork` (plus one ack per delivery in ``meta``).
    max_attempts:
        Retransmission budget per protocol round. Links whose data message
        never got through within the budget are counted in
        ``meta["undelivered"]``; with Bernoulli loss ``p`` the probability
        of that is ``p**max_attempts`` per link, negligible at the default.

    Crash semantics: a node crashed from round ``r`` onward neither sends,
    acks, receives nor nominates; the failure is detectable at the link
    layer, so live neighbours do not waste retransmissions on it. Crashed
    nodes end isolated in the output topology (their survivors keep the
    same indices as in ``udg``).
    """

    def __init__(self, udg: Topology, plan=None, *, max_attempts: int = 25):
        from repro.faults.plan import FaultPlan

        if max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        self.udg = udg
        self.plan = plan if plan is not None else FaultPlan.lossless()
        self.max_attempts = int(max_attempts)

    def run(self, protocol: Protocol) -> DistributedResult:
        _check_combine(protocol)
        udg = self.udg
        plan = self.plan
        n = udg.n
        with obs.span(
            "distributed.run",
            protocol=type(protocol).__name__,
            network="unreliable",
            n=n,
        ):
            return self._run_traced(protocol, udg, plan, n)

    def _run_traced(self, protocol, udg, plan, n) -> DistributedResult:
        states = [
            protocol.init_state(
                u, udg.positions[u].copy(), sorted(udg.neighbors(u))
            )
            for u in range(n)
        ]
        stats = {
            "drops": 0,
            "duplicates": 0,
            "delays": 0,
            "ack_drops": 0,
            "retransmissions": 0,
            "ack_messages": 0,
            "undelivered": 0,
            "expired_delays": 0,
        }
        per_round: list[int] = []
        slots_per_round: list[int] = []
        for r in range(protocol.n_rounds):
            with obs.span("distributed.round", round=r):
                sent = self._run_round(r, protocol, states, stats)
            per_round.append(sent)
            slots_per_round.append(stats.pop("_slots"))

        # a node nominates iff it survived every protocol round; a crash
        # scheduled past the last round is after the protocol completed
        last = max(protocol.n_rounds - 1, 0)
        survivors = [u for u in range(n) if not plan.is_crashed(u, last)]
        nominated = _collect_nominations(protocol, udg, states, survivors)
        edges = _combine_edges(protocol, nominated)
        topo = Topology(
            udg.positions,
            np.array(sorted(edges), dtype=np.int64).reshape(-1, 2),
        )
        meta = {
            "combine": protocol.combine,
            "plan": repr(plan),
            "p_drop": plan.p_drop,
            "p_duplicate": plan.p_duplicate,
            "p_delay": plan.p_delay,
            "max_attempts": self.max_attempts,
            "slots_per_round": slots_per_round,
            "extra_slots": int(sum(slots_per_round) - len(slots_per_round)),
            "crashed": sorted(set(range(n)) - set(survivors)),
            **stats,
        }
        obs.count("protocol.rounds", protocol.n_rounds)
        obs.count("protocol.messages", int(sum(per_round)))
        obs.count("protocol.retransmissions", stats["retransmissions"])
        obs.count("protocol.acks", stats["ack_messages"])
        obs.count("protocol.drops", stats["drops"])
        return DistributedResult(
            topology=topo,
            rounds=protocol.n_rounds,
            messages_total=int(sum(per_round)),
            messages_per_round=per_round,
            meta=meta,
        )

    def _run_round(
        self, r: int, protocol: Protocol, states: list[dict], stats: dict
    ) -> int:
        """One protocol round as an ack/retransmit slot loop; returns the
        number of data messages transmitted (broadcast currency)."""
        udg = self.udg
        plan = self.plan
        alive = [u for u in range(udg.n) if not plan.is_crashed(u, r)]
        alive_set = set(alive)
        payloads = {u: protocol.send(r, states[u]) for u in alive}
        live_nbrs = {
            u: [v for v in sorted(udg.neighbors(u)) if v in alive_set]
            for u in alive
        }
        inboxes: dict[int, dict] = {u: {} for u in alive}
        # directed links still awaiting an ack, keyed by sender
        pending: dict[int, set[int]] = {
            u: set(live_nbrs[u])
            for u in alive
            if payloads[u] is not None and live_nbrs[u]
        }
        delayed: list[tuple[int, int, int]] = []  # (due_slot, sender, receiver)
        messages = 0
        slot = 0

        def deliver(u: int, v: int, at_slot: int, copies: int = 1) -> None:
            if u in inboxes[v]:
                stats["duplicates"] += copies
            else:
                inboxes[v][u] = payloads[u]
                stats["duplicates"] += copies - 1
            if v in pending.get(u, ()):
                stats["ack_messages"] += 1
                if plan.ack_dropped(r, at_slot, u, v):
                    stats["ack_drops"] += 1
                else:
                    pending[u].discard(v)

        while slot < self.max_attempts and (
            any(pending.values()) or delayed
        ):
            still_delayed = []
            for due, u, v in delayed:
                if due <= slot:
                    deliver(u, v, slot)
                else:
                    still_delayed.append((due, u, v))
            delayed = still_delayed
            for u in alive:
                targets = pending.get(u)
                if not targets:
                    continue
                if slot > 0:
                    stats["retransmissions"] += 1
                messages += len(live_nbrs[u])  # radio broadcast reaches all
                for v in sorted(targets):
                    outcome, d = plan.link_outcome(r, slot, u, v)
                    if outcome == "drop":
                        stats["drops"] += 1
                    elif outcome == "delay":
                        stats["delays"] += 1
                        delayed.append((slot + d, u, v))
                    elif outcome == "duplicate":
                        deliver(u, v, slot, copies=2)
                    else:
                        deliver(u, v, slot)
            slot += 1

        # in-flight copies whose due slot exceeded the budget
        stats["expired_delays"] += len(delayed)
        # links whose data never arrived at all (distinct from merely
        # unacked links, which did deliver)
        stats["undelivered"] += sum(
            1 for u, targets in pending.items() for v in targets if u not in inboxes[v]
        )
        for u in alive:
            protocol.receive(r, states[u], inboxes[u])
        stats["_slots"] = max(slot, 1)
        return messages
