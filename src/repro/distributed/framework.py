"""Synchronous message-passing execution over a unit disk graph.

The model is the standard LOCAL-style synchronous network: computation
proceeds in rounds; in each round every node composes one broadcast
payload, the network delivers it to all UDG neighbours, and every node
processes its inbox. After the protocol's fixed number of rounds each node
nominates the incident edges it wants to keep; the framework combines
nominations symmetrically (union or intersection, per protocol) into the
output topology.

Message accounting: a broadcast by ``u`` counts as ``deg(u)`` delivered
messages (radio broadcasts reach each neighbour once); per-round and total
tallies are reported so protocols' communication complexity can be checked
by tests.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field

import numpy as np

from repro.model.topology import Topology


class Protocol(ABC):
    """A fixed-round broadcast protocol.

    Subclasses define ``n_rounds``, per-node state initialisation, what to
    broadcast each round, how to fold the inbox into state, and the final
    edge nominations. ``combine`` is ``"union"`` (an edge exists if either
    endpoint nominates it) or ``"intersection"`` (both must).
    """

    n_rounds: int = 1
    combine: str = "union"

    @abstractmethod
    def init_state(self, node: int, position, neighbor_ids) -> dict:
        """Per-node private state; nodes know their id, position and the
        *identities* of their UDG neighbours (link-layer discovery)."""

    @abstractmethod
    def send(self, round_idx: int, state: dict):
        """Payload broadcast to all neighbours this round (None = silent)."""

    @abstractmethod
    def receive(self, round_idx: int, state: dict, inbox: dict) -> None:
        """Fold ``inbox`` (sender id -> payload) into ``state``."""

    @abstractmethod
    def nominations(self, state: dict):
        """Iterable of neighbour ids whose edge this node wants to keep."""


@dataclass(frozen=True)
class DistributedResult:
    topology: Topology
    rounds: int
    messages_total: int
    messages_per_round: list[int]
    meta: dict = field(default_factory=dict)


class SynchronousNetwork:
    """Execute a :class:`Protocol` over the given unit disk graph."""

    def __init__(self, udg: Topology):
        self.udg = udg

    def run(self, protocol: Protocol) -> DistributedResult:
        udg = self.udg
        n = udg.n
        states = [
            protocol.init_state(
                u, udg.positions[u].copy(), sorted(udg.neighbors(u))
            )
            for u in range(n)
        ]
        per_round: list[int] = []
        for r in range(protocol.n_rounds):
            payloads = [protocol.send(r, states[u]) for u in range(n)]
            sent = sum(
                udg.degrees[u] for u in range(n) if payloads[u] is not None
            )
            per_round.append(int(sent))
            inboxes: list[dict] = [dict() for _ in range(n)]
            for u in range(n):
                if payloads[u] is None:
                    continue
                for v in udg.neighbors(u):
                    inboxes[v][u] = payloads[u]
            for u in range(n):
                protocol.receive(r, states[u], inboxes[u])

        nominated: list[set[int]] = [
            {int(v) for v in protocol.nominations(states[u])} for u in range(n)
        ]
        for u, noms in enumerate(nominated):
            bad = noms - set(udg.neighbors(u))
            if bad:
                raise RuntimeError(
                    f"protocol nominated non-neighbours {sorted(bad)} at node {u}"
                )
        edges = set()
        for u in range(n):
            for v in nominated[u]:
                if protocol.combine == "union" or u in nominated[v]:
                    edges.add((min(u, v), max(u, v)))
        topo = Topology(
            udg.positions,
            np.array(sorted(edges), dtype=np.int64).reshape(-1, 2),
        )
        return DistributedResult(
            topology=topo,
            rounds=protocol.n_rounds,
            messages_total=int(sum(per_round)),
            messages_per_round=per_round,
            meta={"combine": protocol.combine},
        )
