"""The stable public API facade — one import surface, one ``__all__``.

``repro.api`` re-exports every entry point the project commits to keeping
stable, grouped by layer. Code that imports from here is insulated from
internal reorganisation: inner modules may move or grow, but a name in
:data:`__all__` only ever changes behaviour through the documented
deprecation policy (see ``docs/API.md``):

1. the old name keeps working for at least one release, emitting a
   ``DeprecationWarning`` that names its replacement (module-level
   ``__getattr__`` shim, see ``_DEPRECATED`` below);
2. the replacement appears in :data:`__all__` immediately;
3. the public-API snapshot test (``tests/data/public_api.txt``) fails CI
   on any accidental surface change, so additions and removals are
   always deliberate and reviewed.

Two names are facade-side standardisations of bare inner-module names and
are shimmed for callers migrating from those imports:

- ``repro.api.build`` → :func:`build_topology`
  (``repro.topologies.build`` stays canonical in its own module)
- ``repro.api.run`` → :func:`run_experiment`
  (``repro.experiments.run`` stays canonical in its own module)

Quickstart::

    from repro import api

    topo = api.build_topology("a_exp", api.unit_disk_graph(
        api.exponential_chain(100), unit=2.0 ** 101))
    print(api.graph_interference(topo))
"""

from __future__ import annotations

import warnings

from repro import obs
from repro.cluster import (
    ClusterRouter,
    TileGrid,
    factor_tiles,
    required_ghost,
)
from repro.distributed import (
    DistributedResult,
    Protocol,
    SynchronousNetwork,
    UnreliableNetwork,
)
from repro.experiments.registry import (
    REGISTRY,
    Experiment,
    ExperimentResult,
    run_all,
)
from repro.experiments.registry import run as run_experiment
from repro.faults import ChurnEngine, ChurnSchedule, FaultPlan
from repro.geometry.generators import (
    cluster_with_remote,
    exponential_chain,
    random_blobs,
    random_highway,
    random_udg_connected,
    random_uniform_square,
    two_exponential_chains,
    uniform_chain,
)
from repro.geometry.spatial import BatchQuery
from repro.highway import a_apx, a_exp, a_gen, linear_chain
from repro.highway.linear import highway_order
from repro.interference.batch import node_interference_many
from repro.interference.incremental import InterferenceTracker
from repro.interference.localized import localized_interference
from repro.interference.receiver import (
    ATOL,
    RTOL,
    average_interference,
    coverage_counts,
    graph_interference,
    node_interference,
    node_interference_naive,
)
from repro.interference.robustness import (
    addition_report,
    removal_report,
    stability_summary,
)
from repro.interference.sender import edge_coverage, sender_interference
from repro.mac import (
    BACKOFF_POLICIES,
    BackoffPolicy,
    BackoffState,
    MacConfig,
    MacResult,
    MacSimulator,
    SaturatedAlohaSimulator,
    SaturatedResult,
    interference_collision_spearman,
    jain_fairness,
    make_policy,
    registered_policies,
)
from repro.interference.traffic import traffic_interference
from repro.model.topology import Topology
from repro.model.udg import unit_disk_graph
from repro.opt import (
    Certificate,
    CertificateError,
    OptConfig,
    OptOutcome,
    certify_topology,
    combinatorial_lower_bound,
    exhaustive_opt,
    heuristic_opt,
    solve_opt,
    verify_certificate,
)
from repro.runner import (
    ResultCache,
    RunManifest,
    SweepOutcome,
    SweepTask,
    TaskRecord,
    TaskTimeout,
    derive_seeds,
    expand_grid,
    run_sweep,
)
from repro.serve import (
    PROTOCOL_VERSION,
    ClusterConfig,
    InterferenceServer,
    LaneRouter,
    LoadGenConfig,
    LoadGenReport,
    RetryPolicy,
    RouteKey,
    Router,
    ServeClient,
    ServeConfig,
    ServeError,
    ServeRetryError,
    ShardCluster,
    run_loadgen,
)
from repro.stream import (
    DurableStreamEngine,
    LogStore,
    RecoveryInfo,
    SegmentedWal,
    StreamConfig,
    StreamEngine,
    StreamEvent,
    WalCorruption,
    WriteAheadLog,
    chaos_suite,
    random_stream_events,
    verify_stream_dir,
)
from repro.topologies import (
    ALGORITHMS,
    HIGHWAY_ALGORITHMS,
    OPTIMIZERS,
    is_highway,
    is_optimizer,
    registered_names,
)
from repro.topologies import build as build_topology

__all__ = [
    # model
    "Topology",
    "unit_disk_graph",
    # instance generators
    "cluster_with_remote",
    "exponential_chain",
    "random_blobs",
    "random_highway",
    "random_udg_connected",
    "random_uniform_square",
    "two_exponential_chains",
    "uniform_chain",
    # interference measures
    "ATOL",
    "RTOL",
    "InterferenceTracker",
    "addition_report",
    "average_interference",
    "coverage_counts",
    "edge_coverage",
    "graph_interference",
    "localized_interference",
    "node_interference",
    "node_interference_many",
    "node_interference_naive",
    "removal_report",
    "sender_interference",
    "stability_summary",
    "traffic_interference",
    # highway algorithms (Section 5)
    "a_apx",
    "a_exp",
    "a_gen",
    "highway_order",
    "linear_chain",
    # topology-control registry
    "ALGORITHMS",
    "HIGHWAY_ALGORITHMS",
    "OPTIMIZERS",
    "build_topology",
    "is_highway",
    "is_optimizer",
    "registered_names",
    # optimization (certified solvers)
    "Certificate",
    "CertificateError",
    "OptConfig",
    "OptOutcome",
    "certify_topology",
    "combinatorial_lower_bound",
    "exhaustive_opt",
    "heuristic_opt",
    "solve_opt",
    "verify_certificate",
    # MAC contention suite
    "BACKOFF_POLICIES",
    "BackoffPolicy",
    "BackoffState",
    "MacConfig",
    "MacResult",
    "MacSimulator",
    "SaturatedAlohaSimulator",
    "SaturatedResult",
    "interference_collision_spearman",
    "jain_fairness",
    "make_policy",
    "registered_policies",
    # distributed execution
    "DistributedResult",
    "Protocol",
    "SynchronousNetwork",
    "UnreliableNetwork",
    # fault injection
    "ChurnEngine",
    "ChurnSchedule",
    "FaultPlan",
    # experiments
    "Experiment",
    "ExperimentResult",
    "REGISTRY",
    "run_all",
    "run_experiment",
    # sweep runner
    "ResultCache",
    "RunManifest",
    "SweepOutcome",
    "SweepTask",
    "TaskRecord",
    "TaskTimeout",
    "derive_seeds",
    "expand_grid",
    "run_sweep",
    # spatial queries
    "BatchQuery",
    # serving layer
    "InterferenceServer",
    "LoadGenConfig",
    "LoadGenReport",
    "PROTOCOL_VERSION",
    "RetryPolicy",
    "ServeClient",
    "ServeConfig",
    "ServeError",
    "ServeRetryError",
    "run_loadgen",
    # routing API + shard cluster
    "ClusterConfig",
    "ClusterRouter",
    "LaneRouter",
    "RouteKey",
    "Router",
    "ShardCluster",
    "TileGrid",
    "factor_tiles",
    "required_ghost",
    # streaming engine (durable event sourcing) + storage seam
    "DurableStreamEngine",
    "LogStore",
    "RecoveryInfo",
    "SegmentedWal",
    "StreamConfig",
    "StreamEngine",
    "StreamEvent",
    "WalCorruption",
    "WriteAheadLog",
    "chaos_suite",
    "random_stream_events",
    "verify_stream_dir",
    # observability
    "obs",
]

#: deprecated name -> (replacement name, replacement object). Accessing a
#: key warns once per call site and returns the replacement, per the
#: deprecation policy in ``docs/API.md``.
_DEPRECATED = {
    "build": ("build_topology", build_topology),
    "run": ("run_experiment", run_experiment),
}


def __getattr__(name: str):
    try:
        replacement, obj = _DEPRECATED[name]
    except KeyError:
        raise AttributeError(
            f"module {__name__!r} has no attribute {name!r}"
        ) from None
    warnings.warn(
        f"repro.api.{name} is deprecated; use repro.api.{replacement}",
        DeprecationWarning,
        stacklevel=2,
    )
    return obj


def __dir__():
    return sorted(set(__all__) | set(_DEPRECATED))
