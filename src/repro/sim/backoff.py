"""Deprecated BEB-only front of the MAC contention suite.

.. deprecated::
    ``BebAlohaSimulator`` is now a thin shim over
    :class:`repro.mac.SaturatedAlohaSimulator` with ``policy="beb"`` —
    the same saturated slotted-ALOHA setting generalized over the
    pluggable backoff-policy registry (:data:`repro.mac.BACKOFF_POLICIES`).
    ``BebResult`` is an alias of :class:`repro.mac.SaturatedResult`.
    Construct the new class directly to pick other policies.

The shim is *bitwise* compatible: ``policy="beb"`` makes the identical
RNG draws in the identical order as the original loop, so seeded results
match the pre-migration class exactly. The original implementation is
preserved privately below as the oracle for the differential test in
``tests/test_sim_backoff.py``.
"""

from __future__ import annotations

import warnings

import numpy as np

from repro.interference.receiver import RTOL
from repro.mac.saturated import SaturatedAlohaSimulator, SaturatedResult
from repro.model.topology import Topology
from repro.utils import as_generator

#: Deprecated alias kept for unpickling and isinstance checks.
BebResult = SaturatedResult


class BebAlohaSimulator(SaturatedAlohaSimulator):
    """Deprecated: use ``repro.mac.SaturatedAlohaSimulator(policy="beb")``.

    Saturated slotted ALOHA with binary exponential backoff; seeded runs
    are bitwise identical to the historical implementation.
    """

    def __init__(
        self,
        topology: Topology,
        *,
        cw_min: int = 2,
        cw_max: int = 256,
    ):
        warnings.warn(
            "BebAlohaSimulator is deprecated; use "
            "repro.mac.SaturatedAlohaSimulator(topology, policy='beb') "
            "which supports the full backoff-policy registry",
            DeprecationWarning,
            stacklevel=2,
        )
        super().__init__(topology, policy="beb", cw_min=cw_min, cw_max=cw_max)
        self.cw_min = int(cw_min)
        self.cw_max = int(cw_max)


class _LegacyBebAlohaSimulator:
    """Frozen pre-migration implementation — differential-test oracle only."""

    def __init__(self, topology: Topology, *, cw_min: int = 2, cw_max: int = 256):
        if cw_min < 1 or cw_max < cw_min:
            raise ValueError("need 1 <= cw_min <= cw_max")
        self.topology = topology
        self.cw_min = int(cw_min)
        self.cw_max = int(cw_max)
        n = topology.n
        self._neighbors = [
            np.array(sorted(topology.neighbors(u)), dtype=np.int64)
            for u in range(n)
        ]
        pos = topology.positions
        diff = pos[:, None, :] - pos[None, :, :]
        d = np.hypot(diff[..., 0], diff[..., 1])
        self._covers = d <= (topology.radii * (1.0 + RTOL))[:, None]
        np.fill_diagonal(self._covers, False)

    def run(self, n_slots: int, *, seed=None) -> SaturatedResult:
        if n_slots < 0:
            raise ValueError("n_slots must be >= 0")
        rng = as_generator(seed)
        n = self.topology.n
        active = self.topology.degrees > 0
        cw = np.full(n, self.cw_min, dtype=np.int64)
        wait = np.zeros(n, dtype=np.int64)
        for u in range(n):
            if active[u]:
                wait[u] = rng.integers(cw[u])
        attempts = np.zeros(n, dtype=np.int64)
        deliveries = np.zeros(n, dtype=np.int64)
        retransmissions = np.zeros(n, dtype=np.int64)
        pending_retx = np.zeros(n, dtype=np.int64)  # failures on current packet
        cw_sum = np.zeros(n, dtype=np.float64)

        for _ in range(n_slots):
            tx_mask = active & (wait == 0)
            wait[active & (wait > 0)] -= 1
            senders = np.nonzero(tx_mask)[0]
            if senders.size == 0:
                continue
            attempts[senders] += 1
            cover_count = self._covers[senders].sum(axis=0)
            for u in senders:
                nbrs = self._neighbors[u]
                v = int(nbrs[rng.integers(nbrs.size)])
                success = (not tx_mask[v]) and cover_count[v] == 1
                if success:
                    deliveries[u] += 1
                    retransmissions[u] += pending_retx[u]
                    cw_sum[u] += cw[u]
                    pending_retx[u] = 0
                    cw[u] = self.cw_min
                else:
                    pending_retx[u] += 1
                    cw[u] = min(cw[u] * 2, self.cw_max)
                wait[u] = rng.integers(cw[u])
        with np.errstate(invalid="ignore", divide="ignore"):
            mean_cw = np.where(deliveries > 0, cw_sum / deliveries, np.nan)
        return SaturatedResult(
            n_slots=n_slots,
            attempts=attempts,
            deliveries=deliveries,
            retransmissions=retransmissions,
            mean_cw=mean_cw,
            meta={"cw_min": self.cw_min, "cw_max": self.cw_max},
        )
