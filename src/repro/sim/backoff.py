"""Slotted ALOHA with binary exponential backoff (BEB).

A more realistic MAC than fixed-probability ALOHA: each node keeps one
head-of-line packet; after a failed transmission it doubles its contention
window (up to ``cw_max``) and waits a uniformly drawn number of slots;
after a success the window resets. Interference enters exactly as in
:class:`repro.sim.slotted.SlottedAlohaSimulator`: a reception fails iff a
second concurrent transmitter covers the receiver (or the receiver is
itself busy).

The paper's retransmission/energy argument shows up as the *mean
retransmissions per delivered packet*, which grows with the receiver-side
interference of the topology.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.interference.receiver import RTOL
from repro.model.topology import Topology
from repro.utils import as_generator


@dataclass(frozen=True)
class BebResult:
    n_slots: int
    attempts: np.ndarray
    deliveries: np.ndarray
    #: per node: retransmissions (attempts beyond the first per packet)
    retransmissions: np.ndarray
    #: per node: mean contention window observed at delivery time
    mean_cw: np.ndarray
    meta: dict = field(default_factory=dict)

    @property
    def retransmissions_per_delivery(self) -> np.ndarray:
        with np.errstate(invalid="ignore", divide="ignore"):
            return np.where(
                self.deliveries > 0, self.retransmissions / self.deliveries, np.nan
            )


class BebAlohaSimulator:
    """Saturated slotted ALOHA with binary exponential backoff.

    Every node with at least one neighbour is backlogged (always has a
    packet for a uniformly random neighbour) — the classic saturation
    throughput setting.
    """

    def __init__(
        self,
        topology: Topology,
        *,
        cw_min: int = 2,
        cw_max: int = 256,
    ):
        if cw_min < 1 or cw_max < cw_min:
            raise ValueError("need 1 <= cw_min <= cw_max")
        self.topology = topology
        self.cw_min = int(cw_min)
        self.cw_max = int(cw_max)
        n = topology.n
        self._neighbors = [
            np.array(sorted(topology.neighbors(u)), dtype=np.int64)
            for u in range(n)
        ]
        pos = topology.positions
        diff = pos[:, None, :] - pos[None, :, :]
        d = np.hypot(diff[..., 0], diff[..., 1])
        self._covers = d <= (topology.radii * (1.0 + RTOL))[:, None]
        np.fill_diagonal(self._covers, False)

    def run(self, n_slots: int, *, seed=None) -> BebResult:
        if n_slots < 0:
            raise ValueError("n_slots must be >= 0")
        rng = as_generator(seed)
        n = self.topology.n
        active = self.topology.degrees > 0
        cw = np.full(n, self.cw_min, dtype=np.int64)
        wait = np.zeros(n, dtype=np.int64)
        for u in range(n):
            if active[u]:
                wait[u] = rng.integers(cw[u])
        attempts = np.zeros(n, dtype=np.int64)
        deliveries = np.zeros(n, dtype=np.int64)
        retransmissions = np.zeros(n, dtype=np.int64)
        pending_retx = np.zeros(n, dtype=np.int64)  # failures on current packet
        cw_sum = np.zeros(n, dtype=np.float64)

        for _ in range(n_slots):
            tx_mask = active & (wait == 0)
            wait[active & (wait > 0)] -= 1
            senders = np.nonzero(tx_mask)[0]
            if senders.size == 0:
                continue
            attempts[senders] += 1
            cover_count = self._covers[senders].sum(axis=0)
            for u in senders:
                nbrs = self._neighbors[u]
                v = int(nbrs[rng.integers(nbrs.size)])
                success = (not tx_mask[v]) and cover_count[v] == 1
                if success:
                    deliveries[u] += 1
                    retransmissions[u] += pending_retx[u]
                    cw_sum[u] += cw[u]
                    pending_retx[u] = 0
                    cw[u] = self.cw_min
                else:
                    pending_retx[u] += 1
                    cw[u] = min(cw[u] * 2, self.cw_max)
                wait[u] = rng.integers(cw[u])
        with np.errstate(invalid="ignore", divide="ignore"):
            mean_cw = np.where(deliveries > 0, cw_sum / deliveries, np.nan)
        return BebResult(
            n_slots=n_slots,
            attempts=attempts,
            deliveries=deliveries,
            retransmissions=retransmissions,
            mean_cw=mean_cw,
            meta={"cw_min": self.cw_min, "cw_max": self.cw_max},
        )
