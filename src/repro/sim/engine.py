"""Generic discrete-event simulation core.

A tiny but complete event-queue engine: events are ``(time, seq, callback)``
triples ordered by time with FIFO tie-breaking (the monotone sequence
number also keeps heap comparisons away from unorderable callbacks).
"""

from __future__ import annotations

import heapq
import itertools
import math
from collections.abc import Callable

from repro import obs


class EventQueue:
    """Priority queue of timestamped callbacks."""

    def __init__(self) -> None:
        self._heap: list[tuple[float, int, Callable[[], None]]] = []
        self._seq = itertools.count()

    def __len__(self) -> int:
        return len(self._heap)

    def push(self, time: float, callback: Callable[[], None]) -> None:
        if not math.isfinite(time):
            raise ValueError("event time must be finite")
        heapq.heappush(self._heap, (time, next(self._seq), callback))

    def pop(self) -> tuple[float, Callable[[], None]]:
        if not self._heap:
            raise IndexError("pop from empty EventQueue")
        time, _, cb = heapq.heappop(self._heap)
        return time, cb

    def peek_time(self) -> float:
        return self._heap[0][0] if self._heap else math.inf


class Simulator:
    """Event loop with a monotone clock.

    Subclasses (or composing code) call :meth:`schedule` with absolute or
    relative times and :meth:`run` to drain events up to a horizon.
    """

    def __init__(self) -> None:
        self.now = 0.0
        self.events = EventQueue()
        self._processed = 0

    @property
    def n_processed(self) -> int:
        return self._processed

    def schedule(self, delay: float, callback: Callable[[], None]) -> None:
        """Schedule ``callback`` to fire ``delay`` after the current time."""
        if delay < 0:
            raise ValueError("delay must be non-negative")
        self.events.push(self.now + delay, callback)

    def schedule_at(self, time: float, callback: Callable[[], None]) -> None:
        """Schedule ``callback`` at absolute ``time`` (>= current time)."""
        if time < self.now:
            raise ValueError("cannot schedule in the past")
        self.events.push(time, callback)

    def run(self, until: float = math.inf, *, max_events: int | None = None) -> None:
        """Process events in time order until the horizon or queue drain.

        Events scheduled exactly at ``until`` are still processed; the clock
        never exceeds ``until``.
        """
        with obs.span("sim.run", until=until if math.isfinite(until) else None) as sp:
            processed_before = self._processed
            while len(self.events):
                if self.events.peek_time() > until:
                    break
                if max_events is not None and self._processed >= max_events:
                    break
                time, cb = self.events.pop()
                if time < self.now:
                    raise RuntimeError("event queue went backwards in time")
                self.now = time
                self._processed += 1
                cb()
            if math.isfinite(until) and until > self.now:
                self.now = until
            drained = self._processed - processed_before
            obs.count("sim.events", drained)
            sp.set(events=drained, now=self.now)
