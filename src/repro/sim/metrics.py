"""Simulation metrics and their link to the static interference measure."""

from __future__ import annotations

import numpy as np
from scipy import stats

from repro.interference.receiver import node_interference
from repro.model.topology import Topology


def transmit_energy(topology: Topology, attempts, *, alpha: float = 2.0) -> float:
    """Total radiated energy: each attempt by ``u`` costs ``r_u ** alpha``."""
    attempts = np.asarray(attempts, dtype=np.float64)
    if attempts.shape != (topology.n,):
        raise ValueError("attempts must have one entry per node")
    if np.any(attempts < 0):
        raise ValueError("attempts must be non-negative")
    return float(np.sum(attempts * topology.radii**alpha))


def collision_interference_correlation(
    topology: Topology, collision_rate, *, method: str = "spearman"
) -> tuple[float, float]:
    """Correlation between static ``I(v)`` and observed collision rates.

    NaN collision entries (nodes never addressed) are dropped. Returns
    ``(correlation, p_value)``. Degenerate inputs (constant vectors or
    fewer than 3 valid points) return ``(nan, nan)``.
    """
    if method not in ("spearman", "pearson"):
        raise ValueError(f"unknown method {method!r}")
    rates = np.asarray(collision_rate, dtype=np.float64)
    if rates.shape != (topology.n,):
        raise ValueError("collision_rate must have one entry per node")
    ivec = node_interference(topology).astype(np.float64)
    valid = ~np.isnan(rates)
    x, y = ivec[valid], rates[valid]
    if x.size < 3 or np.ptp(x) == 0 or np.ptp(y) == 0:
        return (float("nan"), float("nan"))
    if method == "spearman":
        r, p = stats.spearmanr(x, y)
    else:
        r, p = stats.pearsonr(x, y)
    return float(r), float(p)
