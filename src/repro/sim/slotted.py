"""Slotted-ALOHA MAC over disk interference.

Time is slotted. In every slot each node (independently, with probability
``p``) transmits one packet to a uniformly chosen topology neighbour, using
exactly its topology radius ``r_u``. A reception at ``v`` succeeds iff

- ``v`` is not itself transmitting (half-duplex), and
- exactly one transmitter's disk covers ``v`` in that slot.

The second condition is precisely what the receiver-centric measure counts
in the worst case: ``I(v)`` is the number of *potential* co-coverers of
``v``, so collision probability at ``v`` grows monotonically with ``I(v)``
— the correlation the model-validation experiment (E10) measures.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.interference.receiver import RTOL
from repro.model.topology import Topology
from repro.utils import as_generator


@dataclass(frozen=True)
class SlottedResult:
    """Per-node tallies of one slotted-ALOHA run."""

    n_slots: int
    #: transmissions attempted by each node
    attempts: np.ndarray
    #: successful receptions addressed to each node
    rx_ok: np.ndarray
    #: failed receptions addressed to each node, by cause
    rx_collision: np.ndarray
    rx_half_duplex: np.ndarray
    #: successful deliveries originated by each node
    tx_ok: np.ndarray
    meta: dict = field(default_factory=dict)

    @property
    def collision_rate(self) -> np.ndarray:
        """Per receiver: fraction of addressed receptions lost to collisions.

        Half-duplex losses are excluded from the denominator — they are a
        property of the MAC, not of interference. NaN where a node was
        never addressed.
        """
        addressed = self.rx_ok + self.rx_collision
        with np.errstate(invalid="ignore", divide="ignore"):
            return np.where(addressed > 0, self.rx_collision / addressed, np.nan)

    @property
    def delivery_rate(self) -> np.ndarray:
        """Per sender: fraction of attempts that were received successfully."""
        with np.errstate(invalid="ignore", divide="ignore"):
            return np.where(self.attempts > 0, self.tx_ok / self.attempts, np.nan)


class SlottedAlohaSimulator:
    """Simulate slotted ALOHA over a fixed topology.

    Parameters
    ----------
    topology:
        The communication topology; transmissions use its derived radii.
    p:
        Per-slot transmit probability — scalar or per-node vector.
    """

    def __init__(self, topology: Topology, *, p: float | np.ndarray = 0.1):
        self.topology = topology
        n = topology.n
        p_arr = np.broadcast_to(np.asarray(p, dtype=np.float64), (n,)).copy()
        if np.any((p_arr < 0) | (p_arr > 1)):
            raise ValueError("p must lie in [0, 1]")
        # nodes without neighbours have nobody to talk to
        p_arr[topology.degrees == 0] = 0.0
        self.p = p_arr
        self._neighbors = [
            np.array(sorted(topology.neighbors(u)), dtype=np.int64)
            for u in range(n)
        ]
        # covers[u, v]: u's disk covers v (self excluded)
        pos = topology.positions
        diff = pos[:, None, :] - pos[None, :, :]
        d = np.hypot(diff[..., 0], diff[..., 1])
        self._covers = d <= (topology.radii * (1.0 + RTOL))[:, None]
        np.fill_diagonal(self._covers, False)

    def run(self, n_slots: int, *, seed=None) -> SlottedResult:
        """Run ``n_slots`` slots; all randomness comes from ``seed``."""
        if n_slots < 0:
            raise ValueError("n_slots must be >= 0")
        rng = as_generator(seed)
        n = self.topology.n
        attempts = np.zeros(n, dtype=np.int64)
        rx_ok = np.zeros(n, dtype=np.int64)
        rx_collision = np.zeros(n, dtype=np.int64)
        rx_half = np.zeros(n, dtype=np.int64)
        tx_ok = np.zeros(n, dtype=np.int64)
        for _ in range(n_slots):
            tx_mask = rng.random(n) < self.p
            senders = np.nonzero(tx_mask)[0]
            if senders.size == 0:
                continue
            attempts[senders] += 1
            # how many transmitter disks cover each node this slot
            cover_count = self._covers[senders].sum(axis=0)
            for u in senders:
                nbrs = self._neighbors[u]
                v = int(nbrs[rng.integers(nbrs.size)])
                if tx_mask[v]:
                    rx_half[v] += 1
                elif cover_count[v] == 1:  # only u covers v (u always does)
                    rx_ok[v] += 1
                    tx_ok[u] += 1
                else:
                    rx_collision[v] += 1
        return SlottedResult(
            n_slots=n_slots,
            attempts=attempts,
            rx_ok=rx_ok,
            rx_collision=rx_collision,
            rx_half_duplex=rx_half,
            tx_ok=tx_ok,
            meta={"p": self.p.copy()},
        )


class GatherSimulator:
    """Data gathering to a sink over a routing tree with slotted ALOHA.

    Every node periodically sources a packet; packets are forwarded hop by
    hop toward the sink along ``parent`` pointers. A node with a non-empty
    queue transmits its head-of-line packet with probability ``p`` per slot;
    the packet advances only when the slotted-ALOHA reception (same rules
    as :class:`SlottedAlohaSimulator`) succeeds, otherwise it stays queued —
    interference thus shows up directly as retransmissions and delay, the
    energy story of the paper's introduction.
    """

    def __init__(
        self,
        topology: Topology,
        parent: np.ndarray,
        *,
        p: float = 0.2,
        source_period: int = 50,
    ):
        if source_period < 1:
            raise ValueError("source_period must be >= 1")
        self.topology = topology
        self.parent = np.asarray(parent, dtype=np.int64)
        if self.parent.shape != (topology.n,):
            raise ValueError("parent must have one entry per node")
        self.p = float(p)
        self.source_period = int(source_period)
        pos = topology.positions
        diff = pos[:, None, :] - pos[None, :, :]
        d = np.hypot(diff[..., 0], diff[..., 1])
        self._covers = d <= (topology.radii * (1.0 + RTOL))[:, None]
        np.fill_diagonal(self._covers, False)

    def run(self, n_slots: int, *, seed=None) -> dict:
        rng = as_generator(seed)
        n = self.topology.n
        sink_mask = self.parent < 0
        queues = np.zeros(n, dtype=np.int64)
        attempts = np.zeros(n, dtype=np.int64)
        successes = np.zeros(n, dtype=np.int64)
        delivered = 0
        sourced = 0
        for slot in range(n_slots):
            if slot % self.source_period == 0:
                queues[~sink_mask] += 1
                sourced += int((~sink_mask).sum())
            backlog = (queues > 0) & ~sink_mask
            tx_mask = backlog & (rng.random(n) < self.p)
            senders = np.nonzero(tx_mask)[0]
            if senders.size == 0:
                continue
            attempts[senders] += 1
            cover_count = self._covers[senders].sum(axis=0)
            for u in senders:
                v = int(self.parent[u])
                if tx_mask[v] or cover_count[v] != 1:
                    continue  # head-of-line packet stays queued
                successes[u] += 1
                queues[u] -= 1
                if sink_mask[v]:
                    delivered += 1
                else:
                    queues[v] += 1
        return {
            "attempts": attempts,
            "successes": successes,
            "delivered": delivered,
            "sourced": sourced,
            "backlog": queues,
            "retransmission_overhead": float(
                attempts.sum() / max(successes.sum(), 1)
            ),
        }
