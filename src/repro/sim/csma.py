"""p-persistent CSMA over the discrete-event engine.

A continuous-time refinement of the slotted model: packets arrive at each
node as a Poisson process; before transmitting, a node senses the channel
and defers (random exponential backoff) while any *audible* transmitter —
one whose disk covers the would-be sender — is active. A reception at ``v``
fails iff some other transmission overlapping in time covers ``v``.

Carrier sensing is receiver-blind (the classic hidden-terminal situation),
so collisions at the receiver persist exactly where the receiver-centric
measure predicts contention.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.interference.receiver import RTOL
from repro.model.topology import Topology
from repro.sim.engine import Simulator
from repro.utils import as_generator


@dataclass(frozen=True)
class CsmaResult:
    duration: float
    attempts: np.ndarray
    rx_ok: np.ndarray
    rx_collision: np.ndarray
    deferrals: np.ndarray
    meta: dict = field(default_factory=dict)

    @property
    def collision_rate(self) -> np.ndarray:
        addressed = self.rx_ok + self.rx_collision
        with np.errstate(invalid="ignore", divide="ignore"):
            return np.where(addressed > 0, self.rx_collision / addressed, np.nan)


class CsmaSimulator(Simulator):
    """Poisson-arrival, p-persistent CSMA simulator over a fixed topology.

    Parameters
    ----------
    topology:
        Communication topology (transmissions use its derived radii).
    arrival_rate:
        Per-node Poisson packet rate (packets per unit time).
    tx_time:
        Transmission duration (all packets equal length).
    backoff_mean:
        Mean of the exponential backoff drawn when the channel is busy.
    """

    def __init__(
        self,
        topology: Topology,
        *,
        arrival_rate: float = 0.05,
        tx_time: float = 1.0,
        backoff_mean: float = 2.0,
        seed=None,
    ):
        super().__init__()
        if arrival_rate < 0 or tx_time <= 0 or backoff_mean <= 0:
            raise ValueError("rates and durations must be positive")
        self.topology = topology
        self.arrival_rate = float(arrival_rate)
        self.tx_time = float(tx_time)
        self.backoff_mean = float(backoff_mean)
        self.rng = as_generator(seed)
        n = topology.n
        self._neighbors = [
            np.array(sorted(topology.neighbors(u)), dtype=np.int64)
            for u in range(n)
        ]
        pos = topology.positions
        diff = pos[:, None, :] - pos[None, :, :]
        d = np.hypot(diff[..., 0], diff[..., 1])
        self._covers = d <= (topology.radii * (1.0 + RTOL))[:, None]
        np.fill_diagonal(self._covers, False)

        self.attempts = np.zeros(n, dtype=np.int64)
        self.rx_ok = np.zeros(n, dtype=np.int64)
        self.rx_collision = np.zeros(n, dtype=np.int64)
        self.deferrals = np.zeros(n, dtype=np.int64)
        #: transmissions currently on the air: sender -> (start, receiver,
        #: corrupted flag stored in a mutable list)
        self._active: dict[int, list] = {}
        self._horizon = 0.0
        self._started = False

    # -- channel model -------------------------------------------------------
    def _channel_busy_at(self, u: int) -> bool:
        """True iff some active transmitter's disk covers ``u``."""
        return any(self._covers[w, u] for w in self._active)

    def _begin_transmission(self, u: int) -> None:
        nbrs = self._neighbors[u]
        v = int(nbrs[self.rng.integers(nbrs.size)])
        self.attempts[u] += 1
        record = [self.now, v, False]  # start, receiver, corrupted
        # a new transmission corrupts any ongoing reception it covers, and
        # is itself corrupted by any active transmitter covering v
        for w, rec in self._active.items():
            if self._covers[u, rec[1]]:
                rec[2] = True
            if self._covers[w, v] or w == v:
                record[2] = True
        if v in self._active:  # receiver itself is busy transmitting
            record[2] = True
        self._active[u] = record
        self.schedule(self.tx_time, lambda: self._end_transmission(u))

    def _end_transmission(self, u: int) -> None:
        _, v, corrupted = self._active.pop(u)
        if corrupted:
            self.rx_collision[v] += 1
        else:
            self.rx_ok[v] += 1

    # -- node behaviour --------------------------------------------------------
    def _attempt(self, u: int) -> None:
        if u in self._active:
            # still sending the previous packet: try again afterwards
            self.schedule(self.tx_time, lambda: self._attempt(u))
            return
        if self._channel_busy_at(u):
            self.deferrals[u] += 1
            self.schedule(
                float(self.rng.exponential(self.backoff_mean)),
                lambda: self._attempt(u),
            )
            return
        self._begin_transmission(u)

    def _arrival(self, u: int) -> None:
        self._attempt(u)
        self.schedule(
            float(self.rng.exponential(1.0 / self.arrival_rate)),
            lambda: self._arrival(u),
        )

    # -- entry point -------------------------------------------------------------
    def run_for(self, duration: float) -> CsmaResult:
        """Advance the network by ``duration`` time units; report cumulative
        tallies.

        ``duration`` is *relative* to the current clock, so consecutive
        calls continue the same trajectory: ``run_for(a)`` then
        ``run_for(b)`` visits exactly the states of a single
        ``run_for(a + b)`` (the seeded-determinism regression tests in
        ``tests/test_sim_csma.py`` hold this line). The per-node arrival
        processes — Poisson with rate ``arrival_rate`` in *packets per
        unit time per node*, i.e. i.i.d. ``Exponential(1/arrival_rate)``
        inter-arrival gaps — are seeded once, on the first call.
        """
        if duration <= 0:
            raise ValueError("duration must be positive")
        if not self._started:
            self._started = True
            if self.arrival_rate > 0:
                for u in range(self.topology.n):
                    if self._neighbors[u].size == 0:
                        continue
                    self.schedule(
                        float(self.rng.exponential(1.0 / self.arrival_rate)),
                        lambda u=u: self._arrival(u),
                    )
        self._horizon += duration
        self.run(until=self._horizon)
        return CsmaResult(
            duration=self._horizon,
            attempts=self.attempts.copy(),
            rx_ok=self.rx_ok.copy(),
            rx_collision=self.rx_collision.copy(),
            deferrals=self.deferrals.copy(),
            meta={
                "arrival_rate": self.arrival_rate,
                "tx_time": self.tx_time,
            },
        )
