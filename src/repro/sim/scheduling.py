"""Interference-aware TDMA link scheduling.

A complementary, collision-free view of why the receiver-centric measure
matters: if transmissions are scheduled into time slots such that no
receiver is covered by two simultaneous transmitters, the schedule length
is governed by the interference structure — low-I topologies drain a full
round of traffic in fewer slots.

The conflict rule matches the slotted simulator: transmitters ``u`` and
``w`` conflict iff one's disk covers the other's receiver-side (here,
node-level scheduling: ``u`` and ``w`` cannot share a slot if either's
disk covers the other or a neighbour of the other — the set of nodes that
might be receiving from it).
"""

from __future__ import annotations

import numpy as np

from repro.interference.receiver import RTOL
from repro.model.topology import Topology


def conflict_graph(topology: Topology) -> np.ndarray:
    """Symmetric boolean ``(n, n)`` matrix of scheduling conflicts.

    ``u`` and ``w`` conflict iff ``u``'s disk covers ``w`` or any neighbour
    of ``w`` (or vice versa): were they to transmit together, some possible
    reception of the other would be corrupted. Adjacent nodes always
    conflict (half-duplex).
    """
    pos = topology.positions
    n = topology.n
    diff = pos[:, None, :] - pos[None, :, :]
    d = np.hypot(diff[..., 0], diff[..., 1])
    covers = d <= (topology.radii * (1.0 + RTOL))[:, None]
    np.fill_diagonal(covers, False)

    conflict = np.zeros((n, n), dtype=bool)
    for u in range(n):
        hit = covers[u].copy()  # u disturbs these nodes directly
        for w in range(n):
            if w == u:
                continue
            # does u cover w or one of w's receivers (neighbours)?
            if hit[w] or any(hit[v] for v in topology.neighbors(w)):
                conflict[u, w] = True
    conflict |= conflict.T
    # adjacent nodes cannot share a slot (a node cannot send and receive)
    for a, b in topology.edges:
        conflict[a, b] = conflict[b, a] = True
    np.fill_diagonal(conflict, False)
    return conflict


def greedy_tdma_schedule(topology: Topology) -> np.ndarray:
    """Welsh–Powell greedy colouring of the conflict graph.

    Returns an int64 slot assignment per node; ``schedule_length`` is its
    max + 1. Nodes with no neighbours never transmit and get slot 0 for
    free (they conflict with nobody).
    """
    conflict = conflict_graph(topology)
    n = topology.n
    degree = conflict.sum(axis=1)
    order = np.argsort(-degree, kind="stable")
    colors = np.full(n, -1, dtype=np.int64)
    for u in order:
        used = {int(colors[w]) for w in np.nonzero(conflict[u])[0] if colors[w] >= 0}
        c = 0
        while c in used:
            c += 1
        colors[u] = c
    return colors


def schedule_length(topology: Topology) -> int:
    """Number of TDMA slots of the greedy schedule (0 for an empty network)."""
    if topology.n == 0:
        return 0
    return int(greedy_tdma_schedule(topology).max()) + 1


def validate_schedule(topology: Topology, colors: np.ndarray) -> bool:
    """True iff no two conflicting nodes share a slot."""
    conflict = conflict_graph(topology)
    colors = np.asarray(colors)
    ii, jj = np.nonzero(conflict)
    return bool(np.all(colors[ii] != colors[jj]) if ii.size else True)
