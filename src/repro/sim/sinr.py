"""SINR physical-layer reception model.

The disk model (Section 3) is a protocol-level abstraction; real receivers
decode when the signal-to-interference-plus-noise ratio clears a threshold
beta. This module re-runs the slotted-ALOHA experiment under SINR physics:

- node ``u`` transmits with the *minimum* power reaching its topology
  radius at the threshold, ``P_u = beta * noise * r_u**alpha`` (so its
  intended links just close in the absence of interference);
- a reception at ``v`` from ``u`` succeeds iff
  ``P_u d(u,v)^-alpha / (N + sum_w P_w d(w,v)^-alpha) >= beta``.

The paper's measure counts *potential* disturbers under the disk
abstraction; the SINR experiment (``sim_collisions`` companion) shows that
this count still predicts physical-layer loss — the abstraction is sound
for ranking topologies.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.model.topology import Topology
from repro.utils import as_generator


@dataclass(frozen=True)
class SinrResult:
    n_slots: int
    attempts: np.ndarray
    rx_ok: np.ndarray
    rx_failed: np.ndarray
    meta: dict = field(default_factory=dict)

    @property
    def loss_rate(self) -> np.ndarray:
        total = self.rx_ok + self.rx_failed
        with np.errstate(invalid="ignore", divide="ignore"):
            return np.where(total > 0, self.rx_failed / total, np.nan)


class SinrSlottedSimulator:
    """Slotted ALOHA under SINR reception.

    Parameters
    ----------
    topology:
        Transmission radii come from the topology as usual.
    alpha:
        Path-loss exponent (2–6; default 3).
    beta:
        SINR decoding threshold (default 1.5).
    noise:
        Ambient noise floor (default 1.0; powers are scaled to it).
    margin:
        Link-budget margin: transmit power is ``margin`` times the bare
        minimum closing the farthest link (default 2.0). ``margin = 1``
        models exact minimum-power operation, where any concurrent
        transmission anywhere kills a reception at the cell edge.
    p:
        Per-slot transmit probability.
    """

    def __init__(
        self,
        topology: Topology,
        *,
        alpha: float = 3.0,
        beta: float = 1.5,
        noise: float = 1.0,
        margin: float = 2.0,
        p: float = 0.1,
    ):
        if alpha <= 0 or beta <= 0 or noise <= 0:
            raise ValueError("alpha, beta and noise must be positive")
        if margin < 1:
            raise ValueError("margin must be >= 1")
        if not 0 <= p <= 1:
            raise ValueError("p must lie in [0, 1]")
        self.topology = topology
        self.alpha = float(alpha)
        self.beta = float(beta)
        self.noise = float(noise)
        n = topology.n
        self.p = np.full(n, float(p))
        self.p[topology.degrees == 0] = 0.0
        self._neighbors = [
            np.array(sorted(topology.neighbors(u)), dtype=np.int64)
            for u in range(n)
        ]
        # power closing the farthest intended link at threshold beta, plus
        # the configured link-budget margin
        self.margin = float(margin)
        self._power = (
            self.margin
            * self.beta
            * self.noise
            * np.maximum(topology.radii, 1e-300) ** self.alpha
        )
        self._power[topology.degrees == 0] = 0.0
        pos = topology.positions
        diff = pos[:, None, :] - pos[None, :, :]
        d = np.hypot(diff[..., 0], diff[..., 1])
        np.fill_diagonal(d, np.inf)  # no self-reception; avoids 0**-alpha
        self._gain = d**-self.alpha  # gain[u, v]: path gain u -> v

    def run(self, n_slots: int, *, seed=None) -> SinrResult:
        if n_slots < 0:
            raise ValueError("n_slots must be >= 0")
        rng = as_generator(seed)
        n = self.topology.n
        attempts = np.zeros(n, dtype=np.int64)
        rx_ok = np.zeros(n, dtype=np.int64)
        rx_failed = np.zeros(n, dtype=np.int64)
        for _ in range(n_slots):
            tx_mask = rng.random(n) < self.p
            senders = np.nonzero(tx_mask)[0]
            if senders.size == 0:
                continue
            attempts[senders] += 1
            # total received power from all transmitters, at every node
            rx_power = self._power[senders] @ self._gain[senders]
            for u in senders:
                nbrs = self._neighbors[u]
                v = int(nbrs[rng.integers(nbrs.size)])
                if tx_mask[v]:
                    rx_failed[v] += 1  # half-duplex
                    continue
                signal = self._power[u] * self._gain[u, v]
                interference = rx_power[v] - signal
                sinr = signal / (self.noise + interference)
                if sinr >= self.beta:
                    rx_ok[v] += 1
                else:
                    rx_failed[v] += 1
        return SinrResult(
            n_slots=n_slots,
            attempts=attempts,
            rx_ok=rx_ok,
            rx_failed=rx_failed,
            meta={"alpha": self.alpha, "beta": self.beta, "noise": self.noise},
        )
