"""Packet-level wireless simulation substrate.

The paper motivates interference reduction through collisions,
retransmissions and energy (Section 1) but never simulates; this package
supplies that missing substrate so the static receiver-centric measure can
be validated against dynamic packet loss:

- :mod:`repro.sim.engine` — a generic discrete-event core;
- :mod:`repro.sim.slotted` — slotted-ALOHA MAC over disk interference;
- :mod:`repro.sim.csma` — p-persistent CSMA with carrier sensing;
- :mod:`repro.sim.traffic` — source models and data-gathering workloads;
- :mod:`repro.sim.metrics` — per-node collision/energy statistics and
  correlation against the static measure.
"""

from repro.sim.engine import EventQueue, Simulator
from repro.sim.slotted import GatherSimulator, SlottedAlohaSimulator, SlottedResult
from repro.sim.csma import CsmaSimulator, CsmaResult
from repro.sim.traffic import BernoulliSource, gather_tree
from repro.sim.metrics import collision_interference_correlation, transmit_energy

__all__ = [
    "EventQueue",
    "Simulator",
    "SlottedAlohaSimulator",
    "SlottedResult",
    "GatherSimulator",
    "CsmaSimulator",
    "CsmaResult",
    "BernoulliSource",
    "gather_tree",
    "collision_interference_correlation",
    "transmit_energy",
]
