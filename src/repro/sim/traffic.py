"""Traffic sources and data-gathering workload helpers."""

from __future__ import annotations

import numpy as np

from repro.graphs.paths import dijkstra
from repro.model.topology import Topology
from repro.utils import as_generator


class BernoulliSource:
    """Per-slot Bernoulli packet source (probability ``p`` per slot)."""

    def __init__(self, p: float, *, seed=None):
        if not 0 <= p <= 1:
            raise ValueError("p must lie in [0, 1]")
        self.p = float(p)
        self.rng = as_generator(seed)

    def draw(self, n: int) -> np.ndarray:
        """Boolean vector: which of ``n`` nodes source a packet this slot."""
        return self.rng.random(n) < self.p


class PoissonArrivals:
    """Exponential inter-arrival sampler for the event-driven simulator."""

    def __init__(self, rate: float, *, seed=None):
        if rate <= 0:
            raise ValueError("rate must be positive")
        self.rate = float(rate)
        self.rng = as_generator(seed)

    def next_gap(self) -> float:
        return float(self.rng.exponential(1.0 / self.rate))


def gather_tree(topology: Topology, sink: int) -> np.ndarray:
    """Shortest-path (Euclidean) routing tree toward ``sink``.

    Returns int64 ``parent`` with ``parent[sink] = -1``; unreachable nodes
    also get ``-1`` (callers should check connectivity first). This is the
    data-gathering structure of the sensor-network setting [4] from which
    the paper's interference notion originates.
    """
    if not (0 <= sink < topology.n):
        raise ValueError("sink out of range")
    g = topology.as_graph(weighted=True)
    _, parent = dijkstra(g, sink)
    return parent
