"""Plane tiling for the shard cluster: ownership, ghosts, region routing.

A :class:`TileGrid` partitions the plane into ``nx * ny`` rectangular
tiles along two sorted cut arrays — the same row-major flat keying as
:class:`repro.geometry.spatial.GridIndex` cells (``tile = ty * nx + tx``),
generalized to non-uniform cuts so a clustered instance can be balanced
by coordinate quantiles.

Ownership is a *total partition*: interior boundaries are half-open
(``[cut, next_cut)``) and edge tiles extend to infinity, so every point
in the plane is owned by exactly one tile — no node is ever dropped or
double-counted regardless of where instances land relative to the cuts.

Ghost regions
-------------
A shard owning tile ``T`` additionally replicates every node within
``ghost`` of ``T`` (closed-rectangle distance). The exactness invariant
(proved in ``docs/SHARDING.md``): with per-node radii bounded by the UDG
``unit``, any node whose disk can cover an owned node lies within
``r_cov = unit * (1 + rtol) + atol`` of the tile, and *its* radius is
determined by neighbors within a further ``unit`` — so

    ``ghost >= unit * (1 + rtol) + atol + unit``

guarantees the shard-local interference counts of owned nodes are
bit-identical to the global computation. Routers fall back to
single-shard execution for requests whose ``unit`` would violate this
bound, so a too-small ghost margin costs parallelism, never correctness.
"""

from __future__ import annotations

import numpy as np


def required_ghost(unit: float, *, rtol: float | None = None,
                   atol: float | None = None) -> float:
    """The exactness bound: ghost >= cover reach + one more UDG hop.

    ``unit * (1 + rtol) + atol`` is the farthest any node's disk can
    reach (radii are bounded by the UDG unit); one more ``unit`` covers
    the reaching node's own neighborhood, so its radius is computed from
    the full (global) neighbor set.
    """
    from repro.interference import receiver

    if rtol is None:
        rtol = receiver.RTOL
    if atol is None:
        atol = receiver.ATOL
    return unit * (1.0 + rtol) + atol + unit


def factor_tiles(k: int) -> tuple[int, int]:
    """Near-square ``(nx, ny)`` with ``nx * ny == k`` and ``nx >= ny``."""
    if k < 1:
        raise ValueError("k must be >= 1")
    ny = int(np.sqrt(k))
    while ny > 1 and k % ny:
        ny -= 1
    return k // ny, ny


class TileGrid:
    """Rectangular tiling of the plane (see the module docstring).

    Parameters
    ----------
    xs, ys:
        Sorted cut arrays of ``nx + 1`` / ``ny + 1`` finite coordinates.
        Interior cuts split ownership half-open; the outermost cuts are
        nominal (edge tiles own everything beyond them).
    ghost:
        Ghost-margin width replicated around each tile (>= 0).
    """

    def __init__(self, xs, ys, *, ghost: float):
        xs = np.asarray(xs, dtype=np.float64)
        ys = np.asarray(ys, dtype=np.float64)
        if xs.ndim != 1 or ys.ndim != 1 or xs.size < 2 or ys.size < 2:
            raise ValueError("xs and ys must be 1-D cut arrays of >= 2 cuts")
        if not (np.isfinite(xs).all() and np.isfinite(ys).all()):
            raise ValueError("cuts must be finite")
        if np.any(np.diff(xs) < 0) or np.any(np.diff(ys) < 0):
            raise ValueError("cuts must be sorted ascending")
        if not np.isfinite(ghost) or ghost < 0:
            raise ValueError("ghost must be a finite non-negative number")
        self.xs = xs
        self.ys = ys
        self.ghost = float(ghost)

    @property
    def nx(self) -> int:
        return self.xs.size - 1

    @property
    def ny(self) -> int:
        return self.ys.size - 1

    @property
    def k(self) -> int:
        """Total tile (= shard) count."""
        return self.nx * self.ny

    @classmethod
    def uniform(cls, bounds, k: int, *, ghost: float) -> "TileGrid":
        """Evenly cut ``bounds = (x0, y0, x1, y1)`` into ``k`` tiles
        (near-square ``nx x ny`` factorization)."""
        x0, y0, x1, y1 = (float(b) for b in bounds)
        if not (x0 < x1 and y0 < y1):
            raise ValueError("bounds must satisfy x0 < x1 and y0 < y1")
        nx, ny = factor_tiles(k)
        return cls(
            np.linspace(x0, x1, nx + 1),
            np.linspace(y0, y1, ny + 1),
            ghost=ghost,
        )

    @classmethod
    def balanced(cls, positions, k: int, *, ghost: float) -> "TileGrid":
        """Cut at marginal coordinate quantiles, so clustered instances
        spread roughly evenly across tiles."""
        pos = np.asarray(positions, dtype=np.float64)
        if pos.ndim != 2 or pos.shape[1] != 2 or pos.shape[0] == 0:
            raise ValueError("positions must be a non-empty (n, 2) array")
        nx, ny = factor_tiles(k)
        return cls(
            np.quantile(pos[:, 0], np.linspace(0.0, 1.0, nx + 1)),
            np.quantile(pos[:, 1], np.linspace(0.0, 1.0, ny + 1)),
            ghost=ghost,
        )

    # -- ownership ----------------------------------------------------------

    def _axis_of(self, coords: np.ndarray, cuts: np.ndarray) -> np.ndarray:
        idx = np.searchsorted(cuts, coords, side="right") - 1
        return np.clip(idx, 0, cuts.size - 2)

    def tile_of(self, positions) -> np.ndarray:
        """Owning tile index per point (int64; total partition)."""
        pos = np.asarray(positions, dtype=np.float64)
        tx = self._axis_of(pos[:, 0], self.xs)
        ty = self._axis_of(pos[:, 1], self.ys)
        return ty * self.nx + tx

    def tile_bounds(self, tile: int) -> tuple[float, float, float, float]:
        """Owned region of ``tile`` as ``(x0, y0, x1, y1)``; edge tiles
        extend to +-inf (ownership is a partition of the whole plane)."""
        if not 0 <= tile < self.k:
            raise ValueError(f"tile must lie in [0, {self.k})")
        tx, ty = tile % self.nx, tile // self.nx
        x0 = -np.inf if tx == 0 else float(self.xs[tx])
        x1 = np.inf if tx == self.nx - 1 else float(self.xs[tx + 1])
        y0 = -np.inf if ty == 0 else float(self.ys[ty])
        y1 = np.inf if ty == self.ny - 1 else float(self.ys[ty + 1])
        return x0, y0, x1, y1

    def tile_distance(self, positions, tile: int) -> np.ndarray:
        """Euclidean distance from each point to ``tile``'s owned region
        (closed rectangle; 0 inside). Inclusive closure only ever *adds*
        ghost nodes, which never hurts exactness."""
        pos = np.asarray(positions, dtype=np.float64)
        x0, y0, x1, y1 = self.tile_bounds(tile)
        dx = np.maximum(np.maximum(x0 - pos[:, 0], pos[:, 0] - x1), 0.0)
        dy = np.maximum(np.maximum(y0 - pos[:, 1], pos[:, 1] - y1), 0.0)
        return np.hypot(dx, dy)

    def ghost_mask(self, positions, tile: int) -> np.ndarray:
        """Mask of points a shard of ``tile`` must replicate: owned nodes
        plus everything within ``ghost`` of the tile (inclusive)."""
        return self.tile_distance(positions, tile) <= self.ghost

    def tiles_overlapping(self, region) -> tuple[int, ...]:
        """Tiles whose owned area intersects the closed rectangle
        ``region = (x0, y0, x1, y1)`` — the owner set a region query must
        scatter to."""
        x0, y0, x1, y1 = (float(b) for b in region)
        if not (x0 <= x1 and y0 <= y1):
            raise ValueError("region must satisfy x0 <= x1 and y0 <= y1")
        tx0 = int(self._axis_of(np.array([x0]), self.xs)[0])
        tx1 = int(self._axis_of(np.array([x1]), self.xs)[0])
        ty0 = int(self._axis_of(np.array([y0]), self.ys)[0])
        ty1 = int(self._axis_of(np.array([y1]), self.ys)[0])
        return tuple(
            ty * self.nx + tx
            for ty in range(ty0, ty1 + 1)
            for tx in range(tx0, tx1 + 1)
        )

    # -- wire form ----------------------------------------------------------

    def to_jsonable(self) -> dict:
        return {
            "xs": [float(x) for x in self.xs],
            "ys": [float(y) for y in self.ys],
            "ghost": self.ghost,
        }

    @classmethod
    def from_jsonable(cls, payload: dict) -> "TileGrid":
        if not isinstance(payload, dict):
            raise ValueError("tile grid spec must be an object")
        try:
            return cls(payload["xs"], payload["ys"], ghost=payload["ghost"])
        except KeyError as exc:
            raise ValueError(f"tile grid spec missing {exc.args[0]!r}") from exc

    def __eq__(self, other) -> bool:
        return (
            isinstance(other, TileGrid)
            and np.array_equal(self.xs, other.xs)
            and np.array_equal(self.ys, other.ys)
            and self.ghost == other.ghost
        )

    def __repr__(self) -> str:
        return (
            f"TileGrid(nx={self.nx}, ny={self.ny}, ghost={self.ghost}, "
            f"x=[{self.xs[0]:g}..{self.xs[-1]:g}], "
            f"y=[{self.ys[0]:g}..{self.ys[-1]:g}])"
        )
