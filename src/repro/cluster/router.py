"""Shard routing: which shards run a request, and how partials merge.

:class:`ClusterRouter` is the cluster-side :class:`repro.serve.routing.Router`.
Where the single-process :class:`~repro.serve.routing.LaneRouter` answers
"which queued requests may coalesce", this router answers "which shards
own the query region" — the same API, a different partition of work.

Fan-out eligibility
-------------------
An ``interference`` request fans out across shards only when the split
is provably exact:

- measure ``graph`` / ``average`` / ``node`` (receiver-centric counts
  decompose over owned nodes; ``sender`` needs the global edge set);
- no ``algorithm`` reduction (EMST/XTC edges are globally defined, not
  locally computable from a tile plus ghosts);
- the instance is deterministic across workers: inline ``positions``, a
  deterministic generator, or a seeded random generator (every shard
  re-materializes the same instance);
- the grid's ghost margin satisfies the exactness bound for the
  request's ``unit`` (see :mod:`repro.cluster.tiles`).

Everything else — ``opt``, ``experiment``, ``build_topology``, stream
kinds, ineligible interference — forwards to a single shard
round-robin, so a cluster still serves the full request surface.

Merging is exact by construction: each shard reports counts only for
nodes it *owns*, ownership is a partition, so concatenation (sorted by
global id) is dedup — verified by uniqueness and coverage checks.
"""

from __future__ import annotations

import itertools

import numpy as np

from repro.cluster.tiles import TileGrid, required_ghost
from repro.serve.routing import RouteKey, Router

#: Measures whose per-node counts decompose exactly over shard ownership.
FANOUT_MEASURES = ("graph", "average", "node")

#: Generators whose output depends on an RNG: fan-out requires an explicit
#: seed so every shard re-materializes the identical instance.
RANDOM_GENERATORS = (
    "random_highway",
    "random_uniform_square",
    "random_udg_connected",
    "cluster_with_remote",
    "random_blobs",
)


class ClusterRouter(Router):
    """Routes requests over a :class:`TileGrid` of shards.

    ``endpoints`` (optional) is the per-shard ``(host, port)`` list a
    front-end exposes in ``wrong_shard`` details and redirects.
    """

    def __init__(self, grid: TileGrid, *, endpoints=None):
        self.grid = grid
        self.endpoints = (
            None if endpoints is None
            else [(str(h), int(p)) for h, p in endpoints]
        )
        if self.endpoints is not None and len(self.endpoints) != grid.k:
            raise ValueError(
                f"{len(self.endpoints)} endpoints for {grid.k} shards"
            )
        self._tokens = itertools.count()
        self._rr = itertools.count()

    # -- Router API ---------------------------------------------------------

    def route(self, kind: str, params: dict) -> RouteKey:
        """Scatter/gather dispatches never coalesce with each other, so
        every request gets a unique token; single-shard requests carry
        their owner so a front-end dispatcher could still group them."""
        targets = self.targets(kind, params)
        return RouteKey(
            kind=kind,
            token=next(self._tokens),
            shard=targets[0] if len(targets) == 1 else None,
        )

    def targets(self, kind: str, params: dict) -> tuple[int, ...]:
        if not self.fanout_eligible(kind, params):
            return (next(self._rr) % self.grid.k,)
        region = params.get("region")
        if region is not None:
            return self.grid.tiles_overlapping(region)
        return tuple(range(self.grid.k))

    # -- planning -----------------------------------------------------------

    def fanout_eligible(self, kind: str, params: dict) -> bool:
        if kind != "interference" or "shard" in params:
            return False
        if params.get("algorithm") is not None:
            return False
        if params.get("measure", "graph") not in FANOUT_MEASURES:
            return False
        gen = params.get("generator")
        if gen in RANDOM_GENERATORS:
            args = params.get("args", {})
            if not isinstance(args, dict) or args.get("seed") is None:
                return False
        unit = params.get("unit", 1.0)
        if isinstance(unit, bool) or not isinstance(unit, (int, float)):
            return False  # let a worker produce the canonical rejection
        if self.grid.ghost < required_ghost(float(unit)):
            return False  # too-small margin costs parallelism, never exactness
        region = params.get("region")
        if region is not None and (
            not isinstance(region, (list, tuple)) or len(region) != 4
        ):
            return False
        return True

    def plan(self, kind: str, params: dict) -> list[tuple[int, dict]]:
        """``(shard, sub_params)`` per participating shard.

        Fanned-out sub-requests carry the shard spec (``index`` + the
        grid's wire form) that makes a worker compute owned-node partials;
        forwards carry the request verbatim.
        """
        targets = self.targets(kind, params)
        if not self.fanout_eligible(kind, params):
            return [(shard, params) for shard in targets]
        grid_wire = self.grid.to_jsonable()
        out = []
        for shard in targets:
            sub = dict(params)
            sub["shard"] = {"index": shard, "grid": grid_wire}
            out.append((shard, sub))
        return out

    # -- merging ------------------------------------------------------------

    def merge(self, params: dict, partials: list[dict]) -> dict:
        """Combine per-shard partial results into the exact global result.

        Each partial is a worker's shard response (``ids`` owned by that
        shard + their ``counts``); ghost dedup is by construction — a
        node's count is reported only by its single owner — and verified
        here (id uniqueness, full coverage for region-less queries).
        """
        if not partials:
            raise ValueError("merge needs at least one shard partial")
        ns = {int(p["n"]) for p in partials}
        if len(ns) != 1:
            raise ValueError(f"shards disagree on instance size: {sorted(ns)}")
        n = ns.pop()
        ids = np.concatenate(
            [np.asarray(p["ids"], dtype=np.int64) for p in partials]
        )
        counts = np.concatenate(
            [np.asarray(p["counts"], dtype=np.int64) for p in partials]
        )
        order = np.argsort(ids, kind="stable")
        ids, counts = ids[order], counts[order]
        if ids.size and (np.diff(ids) == 0).any():
            raise ValueError("shard ownership overlap: duplicate node ids")
        region = params.get("region")
        if region is None and ids.size != n:
            raise ValueError(
                f"shard coverage hole: {ids.size} of {n} nodes reported"
            )
        from repro.serve.handlers import _measure_from_vector

        measure = params.get("measure", "graph")
        # Exactly the single-process result shape: a client (or a payload
        # digest) cannot tell a merged response from a one-server one.
        result = {
            "n": n,
            "algorithm": None,
            "measure": measure,
            "value": _measure_from_vector(measure, counts),
        }
        if region is not None:
            # region queries carry no n_edges (only the region's owner
            # shards answered; they cannot see every edge) — matching
            # the single-process region result exactly
            result["ids"] = [int(i) for i in ids]
        else:
            # each sub-UDG edge is counted by the owner of its smaller
            # endpoint, so the sum over *all* shards is the global count
            result["n_edges"] = int(
                sum(int(p["n_edges_owned"]) for p in partials)
            )
        return result
