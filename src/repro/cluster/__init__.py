"""``repro.cluster`` — spatial shard routing for the serving layer.

:class:`TileGrid` partitions the plane into grid tiles (the same
row-major keying as ``GridIndex`` cells) with ghost margins;
:class:`ClusterRouter` implements the :class:`repro.serve.routing.Router`
API over it — mapping each request's query region to owner shards and
merging per-shard partial counts exactly. The multi-process front-end
that drives it lives in :mod:`repro.serve.shard`.
"""

from repro.cluster.router import FANOUT_MEASURES, ClusterRouter
from repro.cluster.tiles import TileGrid, factor_tiles, required_ghost

__all__ = [
    "FANOUT_MEASURES",
    "ClusterRouter",
    "TileGrid",
    "factor_tiles",
    "required_ghost",
]
