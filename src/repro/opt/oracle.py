"""Exhaustive oracle over radius assignments — ground truth for tiny ``n``.

Enumerates *every* candidate radius vector (see
:mod:`repro.opt.candidates`) in plain index order, keeps the best
connected one, and prunes a partial assignment only by the definitional
monotonicity of coverage: disks never shrink as further radii are
assigned, so once some victim is covered ``best`` times the subtree
cannot beat the incumbent. No ordering heuristics, no forced-future
bounds, no connectivity or symmetry reasoning — the point of this module
is to be *obviously correct* so the branch-and-bound solver
(:mod:`repro.opt.solver`) can be property-tested against it
(``tests/test_opt_properties.py`` asserts equality on every randomized
instance with ``n <= 9``).

Exponential in ``n`` with no mitigation: hard-capped at
:data:`ORACLE_MAX_NODES`.
"""

from __future__ import annotations

import numpy as np

from repro.geometry.points import distance_matrix
from repro.model.topology import Topology
from repro.opt.candidates import (
    candidate_radii,
    connected_under,
    coverage_masks,
    witness_topology,
)
from repro.utils import check_positions

#: Hard cap on the oracle's instance size — beyond this the enumeration is
#: hopeless (the branch-and-bound solver goes further).
ORACLE_MAX_NODES = 10


def exhaustive_opt(
    positions, *, unit: float = 1.0, tolerance: float = 1e-9
) -> tuple[int, Topology]:
    """Optimal interference and a witness topology, by full enumeration.

    Raises ``ValueError`` for ``n > ORACLE_MAX_NODES`` or when the
    instance is not connectable within the unit range.
    """
    pos = check_positions(positions)
    n = pos.shape[0]
    if n > ORACLE_MAX_NODES:
        raise ValueError(
            f"exhaustive oracle limited to n <= {ORACLE_MAX_NODES}, got {n}"
        )
    if n <= 1:
        return 0, Topology(pos, ())
    dist = distance_matrix(pos)
    cands = candidate_radii(dist, unit=unit, tolerance=tolerance)
    if any(c.size == 0 for c in cands):
        raise ValueError(
            "some node cannot reach anybody within the unit range; "
            "the instance is never connectable"
        )
    masks = coverage_masks(dist, cands, tolerance=tolerance)

    # start from the one assignment that is always feasible: every node at
    # its largest candidate (the unit-capped complete graph). Its coverage
    # maximum seeds `best` so the monotone cut has a finite threshold from
    # the first step.
    full = np.array([c[-1] for c in cands], dtype=np.float64)
    if not connected_under(dist, full, tolerance=tolerance):
        raise ValueError(
            "the unit disk graph is disconnected; no feasible topology"
        )
    counts_full = np.zeros(n, dtype=np.int64)
    for u in range(n):
        counts_full += masks[u][-1]
    best_value = int(counts_full.max())
    best_radii = full.copy()

    counts = np.zeros(n, dtype=np.int64)
    chosen = np.zeros(n, dtype=np.float64)

    def dfs(u: int) -> None:
        nonlocal best_value, best_radii, counts
        if counts.max() >= best_value:
            return  # coverage only grows: cannot strictly improve
        if u == n:
            if connected_under(dist, chosen, tolerance=tolerance):
                best_value = int(counts.max())
                best_radii = chosen.copy()
            return
        # descending candidate order: enumeration order does not affect
        # the result, but starting from large (well-connected) radii finds
        # good incumbents early, which tightens the monotone cut
        for j in range(cands[u].size - 1, -1, -1):
            add = masks[u][j].astype(np.int64)
            counts += add
            chosen[u] = cands[u][j]
            dfs(u + 1)
            counts -= add
        chosen[u] = 0.0

    dfs(0)
    return best_value, witness_topology(pos, best_radii, tolerance=tolerance)
