"""Seeded upper-bound heuristic: simulated annealing over spanning trees.

The exact solver needs a good incumbent to prune against, and instances
beyond ~16 nodes need *some* certified upper bound even when the search
cannot finish. This module provides both: a seeded simulated-annealing
walk over spanning trees of the unit disk graph (the same edge-swap move
as :func:`repro.extensions.local_search.reduce_interference`, whose
helpers it reuses), followed by the deterministic hill-climb itself. The
result is a connected UDG-subgraph witness, so its measured interference
is always a valid certified upper bound on OPT.

Annealing proposes a random non-tree UDG edge, closes the cycle, removes a
random cycle edge, and accepts by the Metropolis rule on the lexicographic
objective ``(I(G), sum I(v))`` flattened to ``I(G) * n^2 + sum`` — worse
moves pass with probability ``exp(-delta / T)`` under a geometric
temperature schedule. The best tree ever visited (not the last) goes into
the final hill-climb.
"""

from __future__ import annotations

import math

import numpy as np

from repro import obs
from repro.extensions.local_search import (
    node_radius,
    reduce_interference,
    tree_path,
)
from repro.graphs.mst import euclidean_mst_edges
from repro.interference.incremental import InterferenceTracker
from repro.interference.receiver import graph_interference
from repro.model.topology import Topology
from repro.opt.config import OptConfig
from repro.utils import as_generator, check_positions

#: Annealing proposals per node (the walk length is ``ANNEAL_STEPS_PER_NODE
#: * n``), balanced so the heuristic stays well under the exact search's
#: cost on solvable instances.
ANNEAL_STEPS_PER_NODE = 60


def heuristic_opt(
    positions,
    *,
    unit: float = 1.0,
    config: OptConfig | None = None,
) -> tuple[int, Topology]:
    """Best-effort minimum-interference topology (certified upper bound).

    Returns ``(value, topology)`` where ``topology`` is a connected
    subgraph of the unit disk graph and ``value`` its measured
    interference. Raises ``ValueError`` when the UDG is disconnected.
    """
    from repro.model.udg import unit_disk_graph

    pos = check_positions(positions)
    cfg = config or OptConfig()
    n = pos.shape[0]
    if n <= 1:
        return 0, Topology(pos, ())
    udg = unit_disk_graph(pos, unit=unit)
    if not udg.is_connected():
        raise ValueError("the unit disk graph is disconnected; no feasible topology")
    with obs.span("opt.heuristic", n=n):
        annealed = _anneal(udg, seed=cfg.seed)
        polished = reduce_interference(udg, start=annealed, seed=cfg.seed)
    best = min(
        (polished, annealed),
        key=lambda t: int(graph_interference(t)),
    )
    return int(graph_interference(best)), best


def _anneal(udg: Topology, *, seed, steps: int | None = None) -> Topology:
    """Simulated-annealing walk over spanning trees of ``udg``."""
    pos = udg.positions
    n = udg.n
    tree_edges = euclidean_mst_edges(pos, candidate_edges=udg.edges)
    adj: list[set[int]] = [set() for _ in range(n)]
    for u, v in tree_edges:
        adj[u].add(int(v))
        adj[v].add(int(u))
    tracker = InterferenceTracker.from_topology(Topology(pos, tree_edges))
    rng = as_generator(seed)
    candidates = [tuple(map(int, e)) for e in udg.edges]
    if not candidates or n <= 2:
        return Topology(pos, tree_edges)

    def scalar_objective() -> int:
        counts = tracker.node_interference()
        return int(counts.max()) * n * n + int(counts.sum())

    def apply_edge_change(u: int, v: int, *, add: bool) -> None:
        if add:
            adj[u].add(v)
            adj[v].add(u)
        else:
            adj[u].discard(v)
            adj[v].discard(u)
        for w in (u, v):
            r = node_radius(adj, pos, w)
            if adj[w]:
                tracker.set_radius(w, r)
            else:
                tracker.deactivate(w)

    current = scalar_objective()
    best = current
    best_edges = {tuple(sorted(e)) for e in map(tuple, tree_edges)}
    n_steps = steps if steps is not None else ANNEAL_STEPS_PER_NODE * n
    # geometric cooling from "accepts most moves" to "effectively greedy":
    # t0 scales with n^2 because the flattened objective does.
    t0 = max(1.0, 0.5 * n * n)
    t_end = 0.01
    cool = (t_end / t0) ** (1.0 / max(1, n_steps - 1))
    temperature = t0
    accepted = 0
    for _ in range(n_steps):
        a, b = candidates[int(rng.integers(len(candidates)))]
        temperature *= cool
        if b in adj[a]:
            continue
        path = tree_path(adj, a, b)
        cycle = list(zip(path, path[1:]))
        x, y = cycle[int(rng.integers(len(cycle)))]
        apply_edge_change(a, b, add=True)
        apply_edge_change(x, y, add=False)
        cand = scalar_objective()
        delta = cand - current
        if delta <= 0 or rng.random() < math.exp(-delta / temperature):
            current = cand
            accepted += 1
            if current < best:
                best = current
                best_edges = {
                    (min(u, v), max(u, v)) for u in range(n) for v in adj[u] if u < v
                }
        else:  # revert
            apply_edge_change(x, y, add=True)
            apply_edge_change(a, b, add=False)
    obs.count("opt.anneal.proposals", n_steps)
    obs.count("opt.anneal.accepted", accepted)
    edges = np.array(sorted(best_edges), dtype=np.int64).reshape(-1, 2)
    return Topology(pos, edges)
