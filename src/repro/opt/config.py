"""Solver options for :mod:`repro.opt` — one frozen keyword-only dataclass.

Follows the keyword-only convention of the interference kernels (PR 3):
every option is named, a misspelled keyword raises ``TypeError`` at
construction instead of being silently ignored, and instances are frozen
so a config can be shared between solver calls (and hashed into cache
keys) without defensive copying.
"""

from __future__ import annotations

from dataclasses import dataclass

#: Relative tolerance for disk-coverage / connectivity tests, matching
#: :data:`repro.interference.receiver.RTOL` so solver values agree with the
#: measured interference of the witness topology.
DEFAULT_TOLERANCE = 1e-9


@dataclass(frozen=True, kw_only=True)
class OptConfig:
    """Options accepted by every :mod:`repro.opt` entry point.

    Parameters
    ----------
    time_budget_s:
        Wall-clock budget for the branch-and-bound search. ``None`` means
        unlimited. On exhaustion the solver returns the best *certified
        bracket* found so far (status ``"budget"``) instead of raising.
    node_budget:
        Maximum number of search-tree nodes to expand (across all
        interference targets ``k``). ``None`` means unlimited. The
        deterministic counterpart of ``time_budget_s`` — use it in tests
        and CI where wall-clock limits would flake.
    seed:
        Seed for the heuristic upper bound (local search visit order and
        simulated-annealing proposals). The exact search itself is
        deterministic; the seed only changes which optimal witness the
        incumbent starts from.
    tolerance:
        Relative tolerance for "distance <= radius" and candidate-radius
        comparisons. Must match the tolerance used when measuring the
        witness (the default equals the interference kernels' ``RTOL``).
    """

    time_budget_s: float | None = None
    node_budget: int | None = None
    seed: int | None = 0
    tolerance: float = DEFAULT_TOLERANCE

    def __post_init__(self) -> None:
        if self.time_budget_s is not None and self.time_budget_s <= 0:
            raise ValueError("time_budget_s must be positive (or None)")
        if self.node_budget is not None and self.node_budget <= 0:
            raise ValueError("node_budget must be positive (or None)")
        if not 0 <= self.tolerance < 1e-3:
            raise ValueError("tolerance must lie in [0, 1e-3)")
