"""The candidate-radii argument — the discretisation behind every solver.

Interference depends on a topology only through the derived radii
``r_u = max_{v in N_u} |u, v|``, and each radius is by construction the
distance from ``u`` to one of its neighbours. Conversely, for any radius
vector ``r`` the *maximal* admissible edge set

    ``E(r) = { {u, v} : |u, v| <= min(r_u, r_v) }``

is the easiest edge set to connect while leaving every disk (hence the
interference) unchanged. Therefore::

    OPT = min { I(r) : r_u in D_u, E(r) connected }

where ``D_u`` is the set of distances from ``u`` to the other nodes, capped
at the unit range. This module computes the ``D_u`` and the induced
coverage masks; the exhaustive oracle (:mod:`repro.opt.oracle`) and the
branch-and-bound solver (:mod:`repro.opt.solver`) both search this finite
space, and the certificate verifier (:mod:`repro.opt.certificate`)
re-checks that a witness radius vector actually lives in it. See
``docs/OPTIMALITY.md`` for the full argument.
"""

from __future__ import annotations

import numpy as np

from repro.geometry.points import distance_matrix
from repro.graphs.unionfind import DisjointSet
from repro.model.topology import Topology
from repro.utils import check_positions


def candidate_radii(
    dist: np.ndarray, *, unit: float = 1.0, tolerance: float = 1e-9
) -> list[np.ndarray]:
    """Per node, the sorted distinct candidate radii (``> 0``, ``<= unit``).

    ``dist`` is the full pairwise distance matrix. A node whose candidate
    list is empty cannot reach anybody within the unit range — the
    instance is never connectable and callers should fail fast.
    """
    n = dist.shape[0]
    out = []
    for u in range(n):
        d = np.unique(dist[u])
        d = d[(d > 0) & (d <= unit * (1.0 + tolerance))]
        out.append(d)
    return out


def coverage_masks(
    dist: np.ndarray, cands: list[np.ndarray], *, tolerance: float = 1e-9
) -> list[np.ndarray]:
    """``masks[u][j]`` = boolean row of nodes covered by ``u`` at its
    ``j``-th candidate radius (self excluded). Rows are nested: a larger
    candidate covers a superset of any smaller one."""
    n = dist.shape[0]
    masks = []
    for u in range(n):
        rows = dist[u][None, :] <= cands[u][:, None] * (1.0 + tolerance)
        rows[:, u] = False
        masks.append(rows)
    return masks


def maximal_edges(
    dist: np.ndarray, radii: np.ndarray, *, tolerance: float = 1e-9
) -> np.ndarray:
    """The maximal admissible edge set ``E(r)`` as an ``(m, 2)`` array."""
    n = dist.shape[0]
    rows = [
        (u, v)
        for u in range(n)
        for v in range(u + 1, n)
        if dist[u, v] <= min(radii[u], radii[v]) * (1.0 + tolerance)
    ]
    return np.array(rows, dtype=np.int64).reshape(-1, 2)


def connected_under(
    dist: np.ndarray, radii: np.ndarray, *, tolerance: float = 1e-9
) -> bool:
    """Is the maximal edge set ``E(r)`` connected?"""
    n = dist.shape[0]
    if n <= 1:
        return True
    ds = DisjointSet(n)
    for u in range(n):
        for v in range(u + 1, n):
            if dist[u, v] <= min(radii[u], radii[v]) * (1.0 + tolerance):
                ds.union(u, v)
                if ds.n_components == 1:
                    return True
    return False


def witness_topology(
    positions, radii: np.ndarray, *, tolerance: float = 1e-9
) -> Topology:
    """The maximal-edge-set topology realising a radius vector.

    The derived radii of the returned topology can only *shrink* relative
    to ``radii`` (each node's farthest ``E(r)``-neighbour is at most its
    assigned radius away), so its measured interference never exceeds the
    radius vector's coverage maximum — and equals it at the optimum.
    """
    pos = check_positions(positions)
    dist = distance_matrix(pos)
    return Topology(pos, maximal_edges(dist, radii, tolerance=tolerance))
