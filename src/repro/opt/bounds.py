"""Admissible combinatorial lower bounds on the optimal interference.

Every bound here is *checkable*: it follows from the instance geometry by
an argument the certificate verifier can re-run from scratch, without
trusting any search state. The solver uses the combined bound both to
start its incremental search and to prune; the verifier recomputes it when
re-checking a certificate.

Bounds implemented
------------------
- **trivial** — any instance with ``n >= 2`` nodes needs at least one edge,
  whose two endpoints cover each other: ``OPT >= 1``.
- **forced coverage** — every node must reach *somebody* (isolated nodes
  disconnect the topology), so ``r_u >= nn_dist(u)`` always. The disks
  ``D(u, nn_dist(u))`` are therefore present in every feasible solution,
  and the most-covered victim under these forced disks lower-bounds OPT.
- **gamma (Lemma 5.5)** — on highway (1-D) instances the optimum is at
  least ``sqrt(gamma / 2)`` where gamma is the interference of the linear
  chain (Definition 5.2): at least half of the worst victim's critical
  nodes lie on one side of it and form a virtual exponential chain, so the
  Theorem 5.2 argument applies to them.
"""

from __future__ import annotations

import math

import numpy as np

from repro.geometry.points import distance_matrix
from repro.highway.bounds import optimal_lower_bound_from_gamma
from repro.utils import check_positions


def forced_coverage_bound(
    positions, *, unit: float = 1.0, tolerance: float = 1e-9
) -> int:
    """Max number of forced nearest-neighbour disks covering one victim.

    Each node ``u`` must choose ``r_u >= nn_dist(u)`` in any connected
    topology, so every feasible solution contains the disks
    ``D(u, nn_dist(u))``; the best-covered victim under those disks is an
    admissible lower bound on OPT. Returns 0 for ``n <= 1``.
    """
    pos = check_positions(positions)
    n = pos.shape[0]
    if n <= 1:
        return 0
    dist = distance_matrix(pos)
    off = dist + np.where(np.eye(n, dtype=bool), np.inf, 0.0)
    nn = off.min(axis=1)
    if not np.all(nn <= unit * (1.0 + tolerance)):
        raise ValueError(
            "some node cannot reach its nearest neighbour within the unit "
            "range; the instance is never connectable"
        )
    covered = dist <= nn[:, None] * (1.0 + tolerance)
    np.fill_diagonal(covered, False)
    return int(covered.sum(axis=0).max())


def is_highway_instance(positions) -> bool:
    """True iff all nodes lie on the x-axis (the paper's highway model)."""
    pos = check_positions(positions)
    return bool(np.all(pos[:, 1] == 0.0))


def gamma_bound(positions, *, unit: float = 1.0) -> int:
    """Lemma 5.5 bound ``ceil(sqrt(gamma / 2))`` for highway instances.

    Returns 0 on genuinely 2-D instances (where the lemma does not apply)
    and on instances whose linear chain is broken by the unit range — the
    virtual-exponential-chain argument needs the chain connected.
    """
    pos = check_positions(positions)
    if pos.shape[0] <= 1 or not is_highway_instance(pos):
        return 0
    from repro.highway.critical import gamma as gamma_of
    from repro.highway.linear import linear_chain

    chain = linear_chain(pos, unit=unit)
    if not chain.is_connected():
        return 0
    g = gamma_of(pos, unit=unit)
    # I >= sqrt(g / 2); interference is integral, so round up (with an
    # epsilon so an exact integer sqrt is not bumped past itself)
    return int(math.ceil(optimal_lower_bound_from_gamma(g) - 1e-9))


def combinatorial_lower_bound(
    positions, *, unit: float = 1.0, tolerance: float = 1e-9
) -> int:
    """The best admissible bound available without any search.

    ``max(trivial, forced coverage, gamma)`` — every component is
    independently re-derivable by :func:`repro.opt.verify_certificate`.
    """
    pos = check_positions(positions)
    n = pos.shape[0]
    if n <= 1:
        return 0
    lb = max(1, forced_coverage_bound(pos, unit=unit, tolerance=tolerance))
    return max(lb, gamma_bound(pos, unit=unit))
