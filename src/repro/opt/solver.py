"""Certified branch-and-bound solver for minimum-interference topologies.

Search strategy
---------------
The optimum lives in the finite candidate-radii space of
:mod:`repro.opt.candidates`. The solver brackets it from both sides:

- **upper bound** — the seeded annealing + local-search heuristic
  (:func:`repro.opt.heuristic.heuristic_opt`) supplies a connected witness
  whose measured interference certifies ``OPT <= ub`` by exhibition;
- **lower bound** — the combinatorial floor of :mod:`repro.opt.bounds`,
  then an incremental decision search: for ``k = lb, lb + 1, ...`` a
  depth-first search over candidate radii decides whether *any* connected
  assignment keeps every victim's coverage at most ``k``. Each exhausted
  ``k`` raises the proven bound by one; the first feasible ``k`` *is* the
  optimum (everything below was refuted).

The decision search prunes with four admissible rules, each counted in
:mod:`repro.obs`:

- **coverage** — disks only grow as radii are assigned; a victim already
  past ``k`` kills the subtree (``opt.prune.coverage``);
- **forced future** — every unassigned node must take at least its
  nearest-neighbour distance, so its minimal disk is added before
  descending (``opt.prune.forced``);
- **optimistic connectivity** — with assigned radii fixed and unassigned
  radii at their maximum candidate, the admissible edge set is the union
  of all completions; if even that graph is disconnected, no completion
  connects (``opt.prune.connectivity``);
- **isolation / symmetry** — an assigned node that can no longer acquire
  any partner is dead (``opt.prune.isolation``); coincident nodes are
  interchangeable, so their radii are forced non-decreasing in search
  order (``opt.prune.symmetry``).

Budgets (:class:`repro.opt.OptConfig`) make the solver *anytime*: on
exhaustion it returns the best certified bracket instead of raising, with
``status="budget"`` and ``lower_bound`` equal to the last fully refuted
target plus one.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from repro import obs
from repro.geometry.points import distance_matrix
from repro.graphs.unionfind import DisjointSet
from repro.interference.receiver import graph_interference
from repro.model.topology import Topology
from repro.opt.bounds import combinatorial_lower_bound
from repro.opt.candidates import candidate_radii, coverage_masks, maximal_edges
from repro.opt.certificate import Certificate, instance_digest
from repro.opt.config import OptConfig
from repro.opt.heuristic import heuristic_opt
from repro.utils import check_positions

#: Hard cap on the exact search's instance size. Beyond this, use the
#: heuristic + combinatorial bounds bracket (``repro opt`` does this
#: automatically via budgets).
SOLVER_MAX_NODES = 24

#: How many node expansions between wall-clock budget checks.
_TIME_CHECK_MASK = 0xFF


class _BudgetExhausted(Exception):
    pass


class _Budget:
    """Shared node/time budget across all decision searches of one solve."""

    __slots__ = ("node_budget", "deadline", "expanded")

    def __init__(self, cfg: OptConfig):
        self.node_budget = cfg.node_budget
        self.deadline = (
            time.perf_counter() + cfg.time_budget_s
            if cfg.time_budget_s is not None
            else None
        )
        self.expanded = 0

    def tick(self) -> None:
        self.expanded += 1
        if self.node_budget is not None and self.expanded > self.node_budget:
            raise _BudgetExhausted
        if (
            self.deadline is not None
            and (self.expanded & _TIME_CHECK_MASK) == 0
            and time.perf_counter() > self.deadline
        ):
            raise _BudgetExhausted


@dataclass(frozen=True)
class OptOutcome:
    """Result of :func:`solve_opt`: a certified bracket and its witness.

    ``status`` is ``"optimal"`` (``lower_bound == value == OPT``) or
    ``"budget"`` (search interrupted; ``lower_bound <= OPT <= value``
    still holds and is certified).
    """

    value: int
    lower_bound: int
    status: str
    topology: Topology
    certificate: Certificate
    stats: dict = field(default_factory=dict)

    @property
    def exact(self) -> bool:
        return self.lower_bound == self.value


def _canonical_witness(pos, dist, radii, tolerance):
    """Shrink a radius vector to the fixpoint of 'maximal edges -> derived
    radii' so certificates always store ``edges == E(r)`` with stable
    radii. Interference never increases along the way."""
    r = np.asarray(radii, dtype=np.float64).copy()
    while True:
        topo = Topology(pos, maximal_edges(dist, r, tolerance=tolerance))
        r2 = np.asarray(topo.radii, dtype=np.float64)
        if np.array_equal(r2, r):
            return topo, r
        r = r2


def solve_opt(
    positions,
    *,
    unit: float = 1.0,
    config: OptConfig | None = None,
) -> OptOutcome:
    """Certified minimum-interference topology over ``positions``.

    Raises ``ValueError`` for unconnectable instances or ``n``
    beyond :data:`SOLVER_MAX_NODES`.
    """
    pos = check_positions(positions)
    cfg = config or OptConfig()
    n = pos.shape[0]
    if n > SOLVER_MAX_NODES:
        raise ValueError(
            f"exact search limited to n <= {SOLVER_MAX_NODES}, got {n}; "
            "use heuristic_opt + combinatorial_lower_bound for a bracket"
        )
    if n <= 1:
        topo = Topology(pos, ())
        cert = Certificate(
            value=0,
            lower_bound=0,
            lower_bound_method="combinatorial",
            radii=tuple(0.0 for _ in range(n)),
            edges=(),
            unit=unit,
            digest=instance_digest(pos, unit=unit),
            stats={},
        )
        return OptOutcome(0, 0, "optimal", topo, cert, {"nodes_expanded": 0})

    tol = cfg.tolerance
    dist = distance_matrix(pos)
    stats: dict[str, int | float] = {
        "nodes_expanded": 0,
        "prune_coverage": 0,
        "prune_forced": 0,
        "prune_connectivity": 0,
        "prune_isolation": 0,
        "prune_symmetry": 0,
        "bound_improvements": 0,
        "searches": 0,
    }
    t_start = time.perf_counter()
    with obs.span("opt.solve", n=n) as sp:
        lb0 = combinatorial_lower_bound(pos, unit=unit, tolerance=tol)
        ub, _heur_topo = heuristic_opt(pos, unit=unit, config=cfg)
        stats["heuristic_value"] = ub
        stats["combinatorial_lb"] = lb0
        # the heuristic witness, in canonical maximal-E(r) form (radii and
        # measured interference are unchanged: tree edges survive in E(r))
        witness_topo, witness_radii = _canonical_witness(
            pos, dist, _heur_topo.radii, tol
        )

        proven_lb = lb0
        status = "optimal"
        budget = _Budget(cfg)
        search = _DecisionSearch(pos, dist, unit=unit, tolerance=tol, stats=stats)
        try:
            k = lb0
            while k < ub:
                stats["searches"] += 1
                with obs.span("opt.search", k=k):
                    found = search.feasible(k, budget)
                if found is None:
                    proven_lb = k + 1
                    stats["bound_improvements"] += 1
                    obs.count("opt.bound.improvements")
                    k += 1
                else:
                    witness_topo, witness_radii = _canonical_witness(
                        pos, dist, found, tol
                    )
                    ub = int(graph_interference(witness_topo))
                    break
            # loop invariant: entering iteration k means proven_lb == k, so
            # a found witness (measuring k) and a completed loop (last
            # refute at ub - 1) both land on proven_lb == ub == OPT
        except _BudgetExhausted:
            status = "budget"
        proven_lb = min(proven_lb, ub)
        stats["nodes_expanded"] = budget.expanded
        obs.count("opt.nodes.expanded", budget.expanded)
        stats["wall_s"] = time.perf_counter() - t_start
        sp.set(status=status, value=int(ub), lower_bound=int(proven_lb))

    method = "search" if proven_lb > lb0 else "combinatorial"
    cert = Certificate(
        value=int(ub),
        lower_bound=int(proven_lb),
        lower_bound_method=method,
        radii=tuple(float(r) for r in witness_radii),
        edges=tuple((int(u), int(v)) for u, v in witness_topo.edges),
        unit=float(unit),
        digest=instance_digest(pos, unit=unit),
        stats={k: v for k, v in stats.items()},
    )
    return OptOutcome(
        value=int(ub),
        lower_bound=int(proven_lb),
        status=status,
        topology=witness_topo,
        certificate=cert,
        stats=stats,
    )


class _DecisionSearch:
    """Reusable decision procedure: is some connected assignment with
    coverage at most ``k`` reachable? Nodes are searched most-constrained
    first (largest forced disk), which triggers the coverage prunings as
    early as possible."""

    def __init__(self, pos, dist, *, unit, tolerance, stats):
        self.n = pos.shape[0]
        self.unit = unit
        self.tol = tolerance
        self.stats = stats
        cands_orig = candidate_radii(dist, unit=unit, tolerance=tolerance)
        if any(c.size == 0 for c in cands_orig):
            raise ValueError(
                "some node cannot reach anybody within the unit range; "
                "the instance is never connectable"
            )
        forced_size = np.array([c[0] for c in cands_orig], dtype=np.float64)
        self.order = np.argsort(-forced_size, kind="stable")
        self.pos = pos[self.order]
        self.dist = dist[np.ix_(self.order, self.order)]
        self.cands = candidate_radii(self.dist, unit=unit, tolerance=tolerance)
        bool_masks = coverage_masks(self.dist, self.cands, tolerance=tolerance)
        # int64 copies so the hot loop adds without per-expansion casts
        self.masks = [m.astype(np.int64) for m in bool_masks]
        n = self.n
        forced = np.array([self.masks[u][0] for u in range(n)], dtype=np.int64)
        self.forced_suffix = np.zeros((n + 1, n), dtype=np.int64)
        for u in range(n - 1, -1, -1):
            self.forced_suffix[u] = self.forced_suffix[u + 1] + forced[u]
        self.max_cand = np.array([c[-1] for c in self.cands], dtype=np.float64)
        # coincident-node symmetry: identical positions are interchangeable
        self.same_as_prev = np.zeros(n, dtype=bool)
        for u in range(1, n):
            self.same_as_prev[u] = bool(
                np.all(self.pos[u] == self.pos[u - 1])
            )

    def feasible(self, k: int, budget: _Budget) -> np.ndarray | None:
        """Radius vector (original node order) with coverage <= ``k`` and
        ``E(r)`` connected, or ``None`` if no such assignment exists."""
        n = self.n
        counts = np.zeros(n, dtype=np.int64)
        chosen = np.zeros(n, dtype=np.float64)
        tol = 1.0 + self.tol
        dist = self.dist
        cands = self.cands
        masks = self.masks
        stats = self.stats

        def admits_partner(v: int, u_done: int) -> bool:
            rv = chosen[v] * tol
            for w in range(n):
                if w == v or dist[v, w] > rv:
                    continue
                if w > u_done or chosen[w] * tol >= dist[v, w]:
                    return True
            return False

        def isolation_ok(u_done: int) -> bool:
            # every assigned node must still admit >= 1 partner: a node
            # whose disk reaches nobody willing can never get an edge
            if not admits_partner(u_done, u_done):
                return False
            ru = chosen[u_done] * tol
            for v in range(u_done):
                if dist[v, u_done] <= chosen[v] * tol and ru < dist[v, u_done]:
                    if not admits_partner(v, u_done):
                        return False
            return True

        idx = np.arange(n)

        def optimistic_connected(u_done: int) -> bool:
            # assigned nodes at their chosen radii, unassigned at their
            # largest candidate: the superset of every completion's E(r);
            # connectivity via vectorized BFS over the boolean adjacency
            r_opt = np.where(idx <= u_done, chosen, self.max_cand) * tol
            adj = dist <= np.minimum(r_opt[:, None], r_opt[None, :])
            visited = adj[0].copy()
            visited[0] = True
            frontier = visited
            while True:
                nxt = adj[frontier].any(axis=0) & ~visited
                if not nxt.any():
                    return bool(visited.all())
                visited = visited | nxt
                frontier = nxt

        def connected_exact() -> bool:
            ds = DisjointSet(n)
            for a in range(n):
                ra = chosen[a] * tol
                for b in range(a + 1, n):
                    if dist[a, b] <= min(ra, chosen[b] * tol):
                        ds.union(a, b)
                        if ds.n_components == 1:
                            return True
            return ds.n_components == 1

        def dfs(u: int) -> bool:
            if u == n:
                return connected_exact()
            budget.tick()
            if (counts + self.forced_suffix[u] > k).any():
                stats["prune_forced"] += 1
                obs.count("opt.prune.forced")
                return False
            floor = 0.0
            if self.same_as_prev[u]:
                floor = chosen[u - 1]
            for j in range(cands[u].size):
                if cands[u][j] < floor:
                    stats["prune_symmetry"] += 1
                    obs.count("opt.prune.symmetry")
                    continue
                add = masks[u][j].astype(np.int64)
                counts_new = counts + add
                if counts_new.max() > k:
                    # larger candidates cover supersets: all further j fail
                    stats["prune_coverage"] += 1
                    obs.count("opt.prune.coverage")
                    break
                counts[:] = counts_new
                chosen[u] = cands[u][j]
                ok = True
                if not isolation_ok(u):
                    stats["prune_isolation"] += 1
                    obs.count("opt.prune.isolation")
                    ok = False
                elif cands[u][j] < self.max_cand[u] and not optimistic_connected(u):
                    stats["prune_connectivity"] += 1
                    obs.count("opt.prune.connectivity")
                    ok = False
                if ok and dfs(u + 1):
                    return True
                counts[:] = counts_new - add
            chosen[u] = 0.0
            return False

        if dfs(0):
            out = np.zeros(n, dtype=np.float64)
            out[self.order] = chosen
            return out
        return None
