"""Certificates: a witness topology plus a proven bound, independently
re-checkable.

A :class:`Certificate` is the solver's *externalizable* output: everything
needed to convince a third party of the bracket ``lower_bound <= OPT <=
value`` without trusting the solver's in-memory state. The witness side
(``OPT <= value``) is always checkable in polynomial time; the lower-bound
side depends on :attr:`Certificate.lower_bound_method`:

- ``"combinatorial"`` — the bound follows from :mod:`repro.opt.bounds`
  alone; the verifier recomputes it from the instance.
- ``"search"`` — the solver exhausted the decision search at
  ``lower_bound - 1``. For small instances the verifier *re-derives* this
  with its own exhaustive decision procedure (built on the oracle's plain
  enumeration, sharing no pruning machinery with the solver); for larger
  instances the claim is recorded but only the combinatorial floor is
  re-checked (see ``recheck_search``).

Certificates are JSON round-trip safe and tied to the instance by a
SHA-256 digest of the canonical position bytes + unit range, so a
certificate cannot silently be re-used on a perturbed instance.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field

import numpy as np

from repro import obs
from repro.geometry.points import distance_matrix
from repro.interference.receiver import graph_interference
from repro.opt.bounds import combinatorial_lower_bound
from repro.opt.candidates import (
    candidate_radii,
    coverage_masks,
    maximal_edges,
    witness_topology,
)
from repro.opt.oracle import ORACLE_MAX_NODES
from repro.utils import check_positions


class CertificateError(ValueError):
    """A certificate failed independent re-verification."""


def instance_digest(positions, *, unit: float = 1.0) -> str:
    """SHA-256 digest binding a certificate to one instance."""
    pos = np.ascontiguousarray(check_positions(positions), dtype=np.float64)
    h = hashlib.sha256()
    h.update(pos.tobytes())
    h.update(np.float64(unit).tobytes())
    return h.hexdigest()


@dataclass(frozen=True)
class Certificate:
    """Witness topology + proven bound for one instance.

    ``value`` is the certified upper bound (the measured interference of
    the witness); ``lower_bound`` the proven lower bound; equality means
    the optimum is known exactly (:attr:`exact`).
    """

    value: int
    lower_bound: int
    lower_bound_method: str  # "combinatorial" | "search"
    radii: tuple[float, ...]
    edges: tuple[tuple[int, int], ...]
    unit: float
    digest: str
    stats: dict = field(default_factory=dict)

    @property
    def exact(self) -> bool:
        return self.lower_bound == self.value

    def to_jsonable(self) -> dict:
        return {
            "value": self.value,
            "lower_bound": self.lower_bound,
            "lower_bound_method": self.lower_bound_method,
            "radii": list(self.radii),
            "edges": [list(e) for e in self.edges],
            "unit": self.unit,
            "digest": self.digest,
            "stats": dict(self.stats),
        }

    @classmethod
    def from_jsonable(cls, payload: dict) -> "Certificate":
        return cls(
            value=int(payload["value"]),
            lower_bound=int(payload["lower_bound"]),
            lower_bound_method=str(payload["lower_bound_method"]),
            radii=tuple(float(r) for r in payload["radii"]),
            edges=tuple((int(u), int(v)) for u, v in payload["edges"]),
            unit=float(payload["unit"]),
            digest=str(payload["digest"]),
            stats=dict(payload.get("stats", {})),
        )


def certify_topology(
    positions, topology, *, unit: float = 1.0, tolerance: float = 1e-9
) -> Certificate:
    """Wrap an arbitrary connected witness into a verifiable certificate.

    Derives each node's radius as its longest incident edge (an inter-node
    distance, hence a candidate radius), completes the edge set to the
    maximal admissible ``E(r)`` — which contains every original edge, so
    connectivity and per-node radii are preserved — and pairs the measured
    interference with the search-free combinatorial lower bound. This is
    how instances beyond :data:`repro.opt.solver.SOLVER_MAX_NODES` get
    *certified* upper bounds: any heuristic topology becomes a checkable
    ``lb <= OPT <= value`` bracket.

    Raises ``ValueError`` when the witness is disconnected, uses an edge
    longer than ``unit``, or disagrees with ``positions`` in size.
    """
    pos = check_positions(positions)
    n = pos.shape[0]
    if topology.n != n:
        raise ValueError(
            f"witness has {topology.n} nodes, instance has {n}"
        )
    if n <= 1:
        return Certificate(
            value=0,
            lower_bound=0,
            lower_bound_method="combinatorial",
            radii=(0.0,) * n,
            edges=(),
            unit=unit,
            digest=instance_digest(pos, unit=unit),
            stats={"source": "certify_topology"},
        )
    if not topology.is_connected():
        raise ValueError("witness topology is disconnected")
    dist = distance_matrix(pos)
    radii = np.zeros(n, dtype=np.float64)
    for u, v in topology.edges:
        d = dist[int(u), int(v)]
        radii[int(u)] = max(radii[int(u)], d)
        radii[int(v)] = max(radii[int(v)], d)
    if np.any(radii > unit * (1.0 + tolerance)):
        raise ValueError(
            "witness uses an edge longer than the unit range; "
            "it cannot certify a bound for this instance"
        )
    witness = witness_topology(pos, radii, tolerance=tolerance)
    value = int(graph_interference(witness))
    lower = combinatorial_lower_bound(pos, unit=unit, tolerance=tolerance)
    return Certificate(
        value=value,
        lower_bound=lower,
        lower_bound_method="combinatorial",
        radii=tuple(float(r) for r in radii),
        edges=tuple((min(int(u), int(v)), max(int(u), int(v)))
                    for u, v in witness.edges),
        unit=unit,
        digest=instance_digest(pos, unit=unit),
        stats={"source": "certify_topology"},
    )


def _exhaustive_decision(
    dist: np.ndarray, k: int, *, unit: float, tolerance: float
) -> bool:
    """Oracle-grade decision procedure: is some connected assignment with
    interference ``<= k`` reachable? Plain enumeration with only the
    definitional monotone cut — deliberately independent of the solver's
    pruning machinery."""
    from repro.opt.candidates import connected_under

    n = dist.shape[0]
    cands = candidate_radii(dist, unit=unit, tolerance=tolerance)
    if any(c.size == 0 for c in cands):
        return False
    masks = coverage_masks(dist, cands, tolerance=tolerance)
    counts = np.zeros(n, dtype=np.int64)
    chosen = np.zeros(n, dtype=np.float64)

    def dfs(u: int) -> bool:
        nonlocal counts
        if counts.max() > k:
            return False
        if u == n:
            return connected_under(dist, chosen, tolerance=tolerance)
        for j in range(cands[u].size):
            add = masks[u][j].astype(np.int64)
            counts += add
            chosen[u] = cands[u][j]
            if dfs(u + 1):
                return True
            counts -= add
        chosen[u] = 0.0
        return False

    return dfs(0)


def verify_certificate(
    positions,
    certificate: Certificate,
    *,
    tolerance: float = 1e-9,
    recheck_search: bool | None = None,
) -> bool:
    """Re-check a certificate from scratch; raise :class:`CertificateError`
    on any inconsistency, return ``True`` otherwise.

    Checks performed:

    1. the digest matches the instance (positions + unit);
    2. every witness radius is one of its node's inter-node distances,
       within the unit range (the candidate-radii argument), or 0 for an
       instance with a single node;
    3. the witness edges are exactly the maximal admissible edge set
       ``E(r)`` of the claimed radii, and that edge set is connected;
    4. the *measured* interference of the witness topology equals
       ``value`` (so ``OPT <= value`` holds by exhibition);
    5. ``lower_bound <= value`` and ``lower_bound`` is re-derivable:
       the recomputed combinatorial bound must reach it for method
       ``"combinatorial"``; for method ``"search"`` the verifier re-runs
       its own exhaustive decision procedure at ``lower_bound - 1``
       (``recheck_search=None`` auto-enables this for
       ``n <= ORACLE_MAX_NODES``) and otherwise accepts the recorded
       claim once the combinatorial floor checks out.
    """
    pos = check_positions(positions)
    n = pos.shape[0]
    with obs.span("opt.verify", n=n):
        _verify(pos, certificate, tolerance, recheck_search)
        obs.count("opt.certificates.verified")
    return True


def _verify(pos, cert, tolerance, recheck_search) -> None:
    n = pos.shape[0]
    if instance_digest(pos, unit=cert.unit) != cert.digest:
        raise CertificateError("digest mismatch: certificate is for a different instance")
    if len(cert.radii) != n:
        raise CertificateError(f"witness has {len(cert.radii)} radii for {n} nodes")
    if cert.lower_bound > cert.value:
        raise CertificateError(
            f"inconsistent bracket: lower_bound {cert.lower_bound} > value {cert.value}"
        )
    if n <= 1:
        if cert.value != 0 or cert.lower_bound != 0:
            raise CertificateError("trivial instance must certify OPT = 0")
        return

    dist = distance_matrix(pos)
    radii = np.asarray(cert.radii, dtype=np.float64)
    cands = candidate_radii(dist, unit=cert.unit, tolerance=tolerance)
    for u in range(n):
        if not np.any(np.isclose(cands[u], radii[u], rtol=max(tolerance, 1e-12), atol=0.0)):
            raise CertificateError(
                f"radius of node {u} ({radii[u]!r}) is not a candidate "
                "inter-node distance within the unit range"
            )

    expected = {tuple(e) for e in maximal_edges(dist, radii, tolerance=tolerance)}
    got = {(min(u, v), max(u, v)) for u, v in cert.edges}
    if got != expected:
        raise CertificateError(
            "witness edges are not the maximal admissible edge set E(r) "
            f"of the claimed radii ({len(got)} vs {len(expected)} edges)"
        )
    topo = witness_topology(pos, radii, tolerance=tolerance)
    if not topo.is_connected():
        raise CertificateError("witness topology is disconnected")
    measured = int(graph_interference(topo))
    if measured != cert.value:
        raise CertificateError(
            f"witness measures interference {measured}, certificate claims {cert.value}"
        )

    floor = combinatorial_lower_bound(pos, unit=cert.unit, tolerance=tolerance)
    if cert.lower_bound_method == "combinatorial":
        if floor < cert.lower_bound:
            raise CertificateError(
                f"combinatorial bound re-derives only {floor}, "
                f"certificate claims {cert.lower_bound}"
            )
    elif cert.lower_bound_method == "search":
        if cert.lower_bound < floor:
            raise CertificateError(
                f"search bound {cert.lower_bound} below the combinatorial "
                f"floor {floor} — solver regression"
            )
        if recheck_search is None:
            recheck_search = n <= ORACLE_MAX_NODES
        if recheck_search and cert.lower_bound > floor:
            if _exhaustive_decision(
                dist, cert.lower_bound - 1, unit=cert.unit, tolerance=tolerance
            ):
                raise CertificateError(
                    f"independent enumeration found interference "
                    f"<= {cert.lower_bound - 1}; the claimed lower bound is wrong"
                )
    else:
        raise CertificateError(
            f"unknown lower_bound_method {cert.lower_bound_method!r}"
        )
