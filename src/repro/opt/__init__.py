"""``repro.opt`` — exact/certified minimum-interference solvers.

The optimization layer of the reproduction (see ``docs/OPTIMALITY.md``):

- :func:`solve_opt` — branch-and-bound over candidate radii with
  admissible combinatorial bounds, anytime budgets and a returned
  :class:`Certificate`;
- :func:`verify_certificate` — independent re-check of a certificate
  (witness validity + re-derivable lower bound);
- :func:`exhaustive_opt` — the obviously-correct full enumeration the
  solver is property-tested against (tiny ``n`` only);
- :func:`heuristic_opt` — seeded simulated annealing + local search for
  certified upper bounds on instances the exact search cannot finish;
- :func:`combinatorial_lower_bound` — the search-free certified floor;
- :class:`OptConfig` — frozen keyword-only solver options.
"""

from repro.opt.bounds import (
    combinatorial_lower_bound,
    forced_coverage_bound,
    gamma_bound,
)
from repro.opt.certificate import (
    Certificate,
    CertificateError,
    certify_topology,
    instance_digest,
    verify_certificate,
)
from repro.opt.config import OptConfig
from repro.opt.heuristic import heuristic_opt
from repro.opt.oracle import ORACLE_MAX_NODES, exhaustive_opt
from repro.opt.solver import SOLVER_MAX_NODES, OptOutcome, solve_opt

__all__ = [
    "Certificate",
    "CertificateError",
    "OptConfig",
    "OptOutcome",
    "ORACLE_MAX_NODES",
    "SOLVER_MAX_NODES",
    "certify_topology",
    "combinatorial_lower_bound",
    "exhaustive_opt",
    "forced_coverage_bound",
    "gamma_bound",
    "heuristic_opt",
    "instance_digest",
    "solve_opt",
    "verify_certificate",
]
