"""Robustness of interference measures under node addition/removal (Fig. 1).

The paper's second argument for the receiver-centric measure: one added
node is one added packet source, so it should raise interference at existing
nodes by at most its own disk (+1) — plus whatever the topology adaptation
(attachment nodes growing their radii) contributes. The sender-centric
measure has no such bound: a single long attachment edge can cover the whole
network and jump the measure from O(1) to n.

:func:`addition_report` quantifies both effects for one insertion, splitting
the receiver-centric delta into the new node's own-disk contribution
(provably <= 1 per victim) and the radius-growth contribution of the
attachment nodes.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.interference.receiver import ATOL, RTOL, node_interference
from repro.interference.sender import sender_interference
from repro.model.topology import Topology


@dataclass(frozen=True)
class AdditionReport:
    """Effect of inserting one node into an existing topology.

    All per-node arrays are over the *existing* nodes (length ``n`` of the
    original topology), so before/after values are directly comparable.
    """

    before: Topology
    after: Topology
    #: receiver-centric I(v) on existing nodes, before insertion
    receiver_before: np.ndarray
    #: receiver-centric I(v) on existing nodes, after insertion
    receiver_after: np.ndarray
    #: 0/1 per existing node: covered by the new node's disk
    new_node_contribution: np.ndarray
    #: per existing node: extra coverage due to attachment radii growing
    radius_growth_contribution: np.ndarray
    sender_before: float
    sender_after: float
    meta: dict = field(default_factory=dict)

    @property
    def receiver_delta(self) -> np.ndarray:
        return self.receiver_after - self.receiver_before

    @property
    def max_receiver_delta(self) -> int:
        return int(self.receiver_delta.max()) if self.receiver_delta.size else 0

    @property
    def sender_delta(self) -> float:
        return self.sender_after - self.sender_before


def addition_report(
    topology: Topology,
    new_position,
    attach_to,
    *,
    rtol: float = RTOL,
    atol: float = ATOL,
) -> AdditionReport:
    """Insert one node, connect it to ``attach_to``, report both measures."""
    after = topology.add_node(new_position, attach_to)
    n = topology.n
    rec_before = node_interference(topology, rtol=rtol, atol=atol)
    rec_after_full = node_interference(after, rtol=rtol, atol=atol)
    rec_after = rec_after_full[:n]

    pos = after.positions
    new_r = after.radii[n]
    d_new = np.hypot(*(pos[:n] - pos[n]).T)
    new_contrib = (d_new <= new_r * (1.0 + rtol) + atol).astype(np.int64)

    growth = np.zeros(n, dtype=np.int64)
    r_old = topology.radii
    r_new = after.radii[:n]
    for u in np.nonzero(r_new > r_old)[0]:
        d_u = np.hypot(*(pos[:n] - pos[u]).T)
        was = d_u <= r_old[u] * (1.0 + rtol) + atol
        now = d_u <= r_new[u] * (1.0 + rtol) + atol
        newly = now & ~was
        newly[u] = False
        growth += newly.astype(np.int64)

    return AdditionReport(
        before=topology,
        after=after,
        receiver_before=rec_before,
        receiver_after=rec_after,
        new_node_contribution=new_contrib,
        radius_growth_contribution=growth,
        sender_before=sender_interference(topology, rtol=rtol, atol=atol),
        sender_after=sender_interference(after, rtol=rtol, atol=atol),
        meta={"attach_to": list(map(int, attach_to))},
    )


@dataclass(frozen=True)
class StabilityRecord:
    """Interference deltas of one churn event, under both measures.

    Produced per event by :class:`repro.faults.ChurnEngine`. All deltas are
    over the *victims* — nodes alive both before and after the event — so
    the record isolates what the event did to the pre-existing network.
    """

    index: int
    kind: str  # "join" | "leave"
    node: int  # universe id of the joining / leaving node
    #: max over victims of the total receiver-centric I(v) change
    receiver_delta_max: int
    #: joins only: max over victims of the new node's own-disk coverage
    #: (the paper's provably-<=-1 contribution; 0 for leaves)
    own_disk_delta_max: int
    #: max over victims of the attachment/repair radius-growth contribution
    growth_delta_max: int
    sender_before: float
    sender_after: float
    #: survivors connected after the event (post-repair for leaves)
    connected: bool
    #: alive node count after the event
    n_alive: int
    #: repair edges added by the engine (leaves; empty for joins)
    repaired_edges: tuple = ()
    #: whether this join was a straggler (far outside the deployment area)
    straggler: bool = False

    @property
    def sender_delta(self) -> float:
        return self.sender_after - self.sender_before


@dataclass(frozen=True)
class StabilitySummary:
    """Aggregate of a churn run's :class:`StabilityRecord` sequence.

    The empirical form of the Figure 1 separation: across every join the
    new node's own disk raises any victim's interference by at most one
    (``max_join_own_disk_delta <= 1``), while a single straggler join can
    push the sender-centric measure to the order of the network size
    (``max_sender_delta`` ~ n).
    """

    n_events: int
    n_joins: int
    n_leaves: int
    max_join_own_disk_delta: int
    max_join_receiver_delta: int
    max_leave_receiver_delta: int
    max_sender_delta: float
    max_sender_delta_relative: float  # max over events of delta / n_alive
    always_connected: bool
    n_repaired_edges: int

    @property
    def own_disk_bound_holds(self) -> bool:
        """The paper's robustness property: one new disk adds at most 1."""
        return self.max_join_own_disk_delta <= 1


def stability_summary(records) -> StabilitySummary:
    """Fold per-event :class:`StabilityRecord` into a :class:`StabilitySummary`."""
    records = list(records)
    joins = [r for r in records if r.kind == "join"]
    leaves = [r for r in records if r.kind == "leave"]
    rel = [
        r.sender_delta / r.n_alive for r in records if r.n_alive > 0
    ]
    return StabilitySummary(
        n_events=len(records),
        n_joins=len(joins),
        n_leaves=len(leaves),
        max_join_own_disk_delta=max((r.own_disk_delta_max for r in joins), default=0),
        max_join_receiver_delta=max((r.receiver_delta_max for r in joins), default=0),
        max_leave_receiver_delta=max(
            (r.receiver_delta_max for r in leaves), default=0
        ),
        max_sender_delta=max((r.sender_delta for r in records), default=0.0),
        max_sender_delta_relative=max(rel, default=0.0),
        always_connected=all(r.connected for r in records),
        n_repaired_edges=sum(len(r.repaired_edges) for r in records),
    )


def removal_report(
    topology: Topology, index: int, *, rtol: float = RTOL, atol: float = ATOL
) -> dict:
    """Remove a node; report interference of survivors under both measures.

    Note that removal may disconnect the topology — the report includes a
    ``connected_after`` flag so callers can decide whether to repair.
    Survivor arrays are indexed in the *new* (compacted) numbering.
    """
    after = topology.remove_node(index)
    before_vec = node_interference(topology, rtol=rtol, atol=atol)
    keep = np.ones(topology.n, dtype=bool)
    keep[index] = False
    return {
        "receiver_before": before_vec[keep],
        "receiver_after": node_interference(after, rtol=rtol, atol=atol),
        "sender_before": sender_interference(topology, rtol=rtol, atol=atol),
        "sender_after": sender_interference(after, rtol=rtol, atol=atol),
        "connected_after": after.is_connected(),
        "after": after,
    }
