"""Localized (distributed-style) computation of the interference measure.

A practically important property of the receiver-centric measure that the
paper leaves implicit: **every interferer is a UDG neighbour**. In any
subtopology of the unit disk graph, radii never exceed the unit range, so
a node ``u`` covering ``v`` satisfies ``|u, v| <= r_u <= unit`` — i.e.
``u`` is within ``v``'s own transmission range. A node can therefore
compute its exact interference from one-hop information: the positions of
its UDG neighbours plus each neighbour's chosen radius (two-hop topology
knowledge, the same information XTC-class algorithms already exchange).

:func:`localized_interference` implements exactly that message-passing
view — each node sees only its UDG adjacency list — and is tested to agree
with the global kernel on every UDG subtopology.
"""

from __future__ import annotations

import numpy as np

from repro.interference.receiver import ATOL, RTOL
from repro.model.topology import Topology


def localized_interference(
    udg: Topology,
    topology: Topology,
    *,
    rtol: float = RTOL,
    atol: float = ATOL,
) -> np.ndarray:
    """Per-node interference computed from one-hop UDG neighbourhoods only.

    Parameters
    ----------
    udg:
        The unit disk graph (defines who can possibly hear whom).
    topology:
        The chosen subtopology (must be a subgraph of ``udg``); its derived
        radii are the "advertised transmission powers".

    Raises ``ValueError`` if ``topology`` is not a UDG subgraph — then the
    one-hop locality argument does not apply.
    """
    if topology.n != udg.n or not np.array_equal(topology.positions, udg.positions):
        raise ValueError("topology and udg must share the node set")
    if not topology.is_subgraph_of(udg):
        raise ValueError(
            "topology is not a subgraph of the UDG; interferers may then be "
            "out of one-hop range and the localized computation is unsound"
        )
    pos = udg.positions
    radii = topology.radii
    counts = np.zeros(udg.n, dtype=np.int64)
    for v in range(udg.n):
        # node v interrogates only its own UDG neighbourhood
        for u in udg.neighbors(v):
            d = float(np.hypot(*(pos[u] - pos[v])))
            if d <= radii[u] * (1.0 + rtol) + atol:
                counts[v] += 1
    return counts


def message_rounds_required() -> int:
    """Communication rounds for every node to know its exact interference.

    Round 1: each node learns its chosen radius (local). Round 2: nodes
    broadcast (position, radius) to UDG neighbours. The count is then a
    local computation — 2 rounds, independent of network size.
    """
    return 2
