"""Traffic-weighted interference in the spirit of Meyer auf de Heide et al. [11].

[11] defines interference relative to current network traffic: a node
suffers in proportion to how much traffic the nodes covering it emit. The
paper deliberately moves to a traffic-*independent* measure; we keep this
weighted variant as a bridge between the static measure and the packet
simulator — with unit weights it reduces exactly to Definition 3.1.
"""

from __future__ import annotations

import numpy as np

from repro.interference.receiver import ATOL, RTOL
from repro.model.topology import Topology


def traffic_interference(
    topology: Topology,
    loads,
    *,
    rtol: float = RTOL,
    atol: float = ATOL,
) -> np.ndarray:
    """Per-node interference weighted by per-node transmit loads.

    ``loads`` is a length-``n`` non-negative vector (e.g. packets per slot
    each node sources). Node ``v`` accumulates ``loads[u]`` for every other
    node ``u`` whose disk covers ``v``. With ``loads = 1`` this equals
    :func:`repro.interference.node_interference`.
    """
    loads = np.asarray(loads, dtype=np.float64)
    if loads.shape != (topology.n,):
        raise ValueError(f"loads must have shape ({topology.n},)")
    if np.any(loads < 0):
        raise ValueError("loads must be non-negative")
    pos = topology.positions
    r_eff = topology.radii * (1.0 + rtol) + atol
    out = np.zeros(topology.n, dtype=np.float64)
    for u in range(topology.n):
        if loads[u] == 0:
            continue
        d = np.hypot(*(pos - pos[u]).T)
        covered = d <= r_eff[u]
        covered[u] = False
        out[covered] += loads[u]
    return out
