"""Incrementally maintained receiver-centric interference.

Recomputing ``I(v)`` from scratch costs O(n^2); topology-search algorithms
(A_exp's scan line, the 2-D local search of :mod:`repro.extensions`) change
one radius at a time, which only moves coverage inside a single annulus.
:class:`InterferenceTracker` maintains per-node coverage counts under
radius changes in O(n) per update, in both directions (growth *and*
shrinkage, unlike the one-shot bookkeeping inside ``a_exp``).

The tracker is deliberately radius-centric: per the model reduction used
throughout this library (see ``repro.exact``), interference depends on the
edge set only through each node's farthest-neighbour radius.
"""

from __future__ import annotations

import numpy as np

from repro import obs
from repro.interference.receiver import ATOL, RTOL
from repro.model.topology import Topology
from repro.utils import check_positions, check_radii


class InterferenceTracker:
    """Coverage counts over a fixed point set with mutable radii.

    Parameters
    ----------
    positions:
        ``(n, 2)`` node coordinates (fixed for the tracker's lifetime).
    radii:
        Optional initial radius vector (defaults to all zeros).
    """

    def __init__(self, positions, radii=None, *, rtol: float = RTOL, atol: float = ATOL):
        self.positions = check_positions(positions)
        self.n = self.positions.shape[0]
        self._rtol = float(rtol)
        self._atol = float(atol)
        self._radii = np.zeros(self.n, dtype=np.float64)
        self._counts = np.zeros(self.n, dtype=np.int64)
        #: nodes with at least one incident edge (radius-0 via an edge to a
        #: coincident node still covers that node; radius-0 with no edge
        #: covers nobody)
        self._active = np.zeros(self.n, dtype=bool)
        if radii is not None:
            radii = check_radii(radii, self.n)
            for u in range(self.n):
                if radii[u] > 0:
                    self.set_radius(u, float(radii[u]))

    # -- queries ---------------------------------------------------------
    @property
    def radii(self) -> np.ndarray:
        return self._radii.copy()

    def node_interference(self) -> np.ndarray:
        """Current per-node interference vector (a copy)."""
        return self._counts.copy()

    def graph_interference(self) -> int:
        return int(self._counts.max()) if self.n else 0

    def interference_of(self, v: int) -> int:
        return int(self._counts[v])

    # -- updates -----------------------------------------------------------
    def _covered_by(self, u: int, radius: float, active: bool) -> np.ndarray:
        if not active:
            return np.zeros(self.n, dtype=bool)
        d = np.hypot(
            self.positions[:, 0] - self.positions[u, 0],
            self.positions[:, 1] - self.positions[u, 1],
        )
        mask = d <= radius * (1.0 + self._rtol) + self._atol
        mask[u] = False
        return mask

    def set_radius(self, u: int, radius: float) -> None:
        """Set ``r_u`` to an arbitrary non-negative value; O(n)."""
        if radius < 0:
            raise ValueError("radius must be non-negative")
        obs.count("tracker.updates")
        old = self._covered_by(u, self._radii[u], self._active[u])
        new = self._covered_by(u, radius, True)
        self._counts[new & ~old] += 1
        self._counts[old & ~new] -= 1
        self._radii[u] = radius
        self._active[u] = True

    def deactivate(self, u: int) -> None:
        """Drop ``u`` to an edge-less state (covers nobody)."""
        obs.count("tracker.updates")
        old = self._covered_by(u, self._radii[u], self._active[u])
        self._counts[old] -= 1
        self._radii[u] = 0.0
        self._active[u] = False

    def grow_to(self, u: int, radius: float) -> None:
        """Raise ``r_u`` to ``radius`` if larger (no-op otherwise)."""
        if not self._active[u] or radius > self._radii[u]:
            self.set_radius(u, radius)

    def peek_max_after(self, changes) -> int:
        """Hypothetical ``I(G)`` after applying ``changes`` without mutating.

        ``changes`` is an iterable of ``(node, new_radius)`` pairs (later
        entries override earlier ones for the same node). O(n) per change.
        """
        obs.count("tracker.peeks")
        counts = self._counts.copy()
        pending: dict[int, float] = {}
        for u, r in changes:
            if r < 0:
                raise ValueError("radius must be non-negative")
            pending[int(u)] = float(r)
        for u, r in pending.items():
            old = self._covered_by(u, self._radii[u], self._active[u])
            new = self._covered_by(u, r, True)
            counts[new & ~old] += 1
            counts[old & ~new] -= 1
        return int(counts.max()) if counts.size else 0

    # -- bulk -----------------------------------------------------------------
    @classmethod
    def from_topology(cls, topology: Topology, **kwargs) -> "InterferenceTracker":
        tracker = cls(topology.positions, **kwargs)
        radii = topology.radii
        degrees = topology.degrees
        for u in range(topology.n):
            if degrees[u] > 0:
                tracker.set_radius(u, float(radii[u]))
        return tracker

    def load_radii(self, radii, active=None) -> None:
        """Replace the whole radius vector (O(n^2) total)."""
        radii = check_radii(radii, self.n)
        if active is None:
            active = radii > 0
        for u in range(self.n):
            if active[u]:
                self.set_radius(u, float(radii[u]))
            else:
                self.deactivate(u)

    def copy(self) -> "InterferenceTracker":
        out = InterferenceTracker.__new__(InterferenceTracker)
        out.positions = self.positions
        out.n = self.n
        out._rtol = self._rtol
        out._atol = self._atol
        out._radii = self._radii.copy()
        out._counts = self._counts.copy()
        out._active = self._active.copy()
        return out
