"""Sender-centric edge-coverage interference (Burkhart et al. [2]).

The baseline measure the paper argues against. The coverage of an edge
``e = {u, v}`` is the number of nodes lying in ``D(u, |uv|) or D(v, |uv|)``
— the nodes affected when ``u`` and ``v`` communicate over ``e``. The
interference of a topology is an aggregate (max by default) of edge
coverages.

Endpoints themselves are always inside both disks; by default they are
*excluded* from the count so an isolated short edge in an empty region has
coverage 0 (set ``include_endpoints=True`` for the convention that counts
them, which shifts every coverage by exactly 2).
"""

from __future__ import annotations

import numpy as np

from repro.interference.receiver import ATOL, RTOL
from repro.model.topology import Topology


def edge_coverage(
    topology: Topology,
    *,
    include_endpoints: bool = False,
    rtol: float = RTOL,
    atol: float = ATOL,
) -> np.ndarray:
    """Coverage ``Cov(e)`` of every edge, aligned with ``topology.edges``."""
    pos = topology.positions
    edges = topology.edges
    m = edges.shape[0]
    out = np.zeros(m, dtype=np.int64)
    if m == 0:
        return out
    lengths = topology.edge_lengths
    thresh = lengths * (1.0 + rtol) + atol
    for k in range(m):
        u, v = edges[k]
        du = pos - pos[u]
        dv = pos - pos[v]
        in_u = np.hypot(du[:, 0], du[:, 1]) <= thresh[k]
        in_v = np.hypot(dv[:, 0], dv[:, 1]) <= thresh[k]
        covered = in_u | in_v
        if not include_endpoints:
            covered[u] = False
            covered[v] = False
        out[k] = int(covered.sum())
    return out


def sender_interference(
    topology: Topology,
    *,
    agg: str = "max",
    include_endpoints: bool = False,
    rtol: float = RTOL,
    atol: float = ATOL,
) -> float:
    """Aggregate sender-centric interference of a topology.

    ``agg`` is ``"max"`` (the measure of [2]), ``"mean"`` or ``"sum"``.
    Returns 0 for an edge-free topology.
    """
    cov = edge_coverage(
        topology, include_endpoints=include_endpoints, rtol=rtol, atol=atol
    )
    if cov.size == 0:
        return 0.0
    if agg == "max":
        return float(cov.max())
    if agg == "mean":
        return float(cov.mean())
    if agg == "sum":
        return float(cov.sum())
    raise ValueError(f"unknown agg {agg!r}")
