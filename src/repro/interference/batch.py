"""Fused batch interference kernel — the ``method="batch"`` tier.

The scalar grid kernel answers one disk query per Python iteration; at
n >= 10^4 the per-query interpreter overhead (dict probes, per-node array
slicing) dominates the arithmetic. This module answers *all* queries of an
instance — or of a whole micro-batch of instances — in fused structured-
array passes over the CSR cell layout of
:class:`repro.geometry.spatial.GridIndex` (float64 SoA positions, cell
buckets derived from one ``argsort``): window enumeration, candidate
expansion and the ``hypot`` coverage predicate are each a single
vectorized operation over every (query, candidate) pair at once.

Equivalence contract: the predicate is byte-for-byte the brute kernel's
(``hypot(dx, dy) <= r_u * (1 + rtol) + atol``), so ``batch == grid ==
brute == naive`` bit-for-bit on every instance family (asserted by the
property suites).

Backends
--------
The default backend is pure numpy (zero new dependencies). When `numba`
is importable, an optional JIT backend replaces the per-chunk expansion
with one compiled loop nest over the same CSR arrays — same IEEE
arithmetic, bit-identical counts. Selection:

- ``REPRO_BATCH_BACKEND=numpy`` forces the numpy path;
- ``REPRO_BATCH_BACKEND=numba`` requires numba (raises if missing);
- unset/``auto``: numba when importable, else numpy. A numba backend
  that fails to import or compile degrades to numpy and bumps the
  ``interference.batch.numba_fallback`` counter — the zero-dependency
  contract holds either way.
"""

from __future__ import annotations

import os

import numpy as np

from repro import obs
from repro.geometry.spatial import BatchQuery, GridIndex

__all__ = [
    "HAVE_NUMBA",
    "active_backend",
    "batch_covered_counts",
    "node_interference_many",
]


def _probe_numba() -> bool:
    try:  # pragma: no cover - exercised only where numba is installed
        import numba  # noqa: F401
    except Exception:
        return False
    return True


#: Whether the optional numba backend is importable in this environment.
HAVE_NUMBA = _probe_numba()

_NUMBA_KERNEL = None


def active_backend() -> str:
    """The backend the batch kernel will use: ``"numpy"`` or ``"numba"``.

    Resolution order: ``$REPRO_BATCH_BACKEND`` (``numpy`` / ``numba`` /
    ``auto``), then autodetection.
    """
    forced = os.environ.get("REPRO_BATCH_BACKEND", "auto").lower()
    if forced == "numpy":
        return "numpy"
    if forced == "numba":
        if not HAVE_NUMBA:
            raise RuntimeError(
                "REPRO_BATCH_BACKEND=numba but numba is not importable"
            )
        return "numba"
    if forced not in ("", "auto"):
        raise ValueError(
            f"unknown REPRO_BATCH_BACKEND {forced!r}; "
            "use numpy, numba or auto"
        )
    return "numba" if HAVE_NUMBA else "numpy"


def _numba_kernel():  # pragma: no cover - requires numba installed
    """Compile (once) and return the JIT covered-counts kernel."""
    global _NUMBA_KERNEL
    if _NUMBA_KERNEL is None:
        from numba import njit

        @njit(cache=True)
        def kernel(
            px, py, order, cell_ids, lo_x, hi_x, lo_y, hi_y, ncols, r_eff
        ):
            n = px.shape[0]
            counts = np.zeros(n, dtype=np.int64)
            for u in range(n):
                r = r_eff[u]
                x = px[u]
                y = py[u]
                for cy in range(lo_y[u], hi_y[u] + 1):
                    base = cy * ncols
                    for cx in range(lo_x[u], hi_x[u] + 1):
                        cell = base + cx
                        s = np.searchsorted(cell_ids, cell, side="left")
                        e = np.searchsorted(cell_ids, cell, side="right")
                        for t in range(s, e):
                            v = order[t]
                            if v == u:
                                continue
                            d = np.hypot(px[v] - x, py[v] - y)
                            if d <= r:
                                counts[v] += 1
            return counts

        _NUMBA_KERNEL = kernel
    return _NUMBA_KERNEL


def batch_covered_counts(index: BatchQuery, r_eff: np.ndarray) -> np.ndarray:
    """``counts[v] = |{u != v : d(u, v) <= r_eff[u]}|`` in one fused pass.

    ``index`` is any :class:`repro.geometry.spatial.BatchQuery` holding
    the instance's positions; ``r_eff`` is the per-node effective disk
    radius (tolerances already applied). This is the receiver-centric
    interference vector of the indexed point set. :class:`GridIndex`
    gets the fast CSR/numba internals; other ``BatchQuery``
    implementations run through their public ``query_pairs``, with
    identical results (the predicate is the contract).
    """
    n = len(index)
    counts = np.zeros(n, dtype=np.int64)
    if n == 0:
        return counts
    if not isinstance(index, GridIndex):
        qq, hits = index.query_pairs(index.positions, r_eff)
        keep = qq != hits
        counts += np.bincount(hits[keep], minlength=n)
        return counts
    backend = active_backend()
    if backend == "numba":  # pragma: no cover - requires numba installed
        try:
            lo_x, hi_x, lo_y, hi_y = index._query_windows(
                index.positions, r_eff
            )
            return _numba_kernel()(
                np.ascontiguousarray(index.positions[:, 0]),
                np.ascontiguousarray(index.positions[:, 1]),
                index._order,
                index._cell_ids,
                lo_x, hi_x, lo_y, hi_y,
                np.int64(index._ncols),
                np.asarray(r_eff, dtype=np.float64),
            )
        except Exception:
            obs.count("interference.batch.numba_fallback")
    for qq, hits in index._batch_hits(index.positions, r_eff):
        keep = qq != hits
        counts += np.bincount(hits[keep], minlength=n)
    return counts


def _fused_windows(pos, r_eff, origin, cell, base, ncols, max_cx, max_cy):
    """Per-point clamped windows in a *namespaced* flat-cell space."""
    span = r_eff[:, None]
    lo = np.floor((pos - span - origin) / cell)
    hi = np.floor((pos + span - origin) / cell)
    lo_x = np.maximum(lo[:, 0].astype(np.int64), 0)
    lo_y = np.maximum(lo[:, 1].astype(np.int64), 0)
    hi_x = np.minimum(hi[:, 0].astype(np.int64), max_cx)
    hi_y = np.minimum(hi[:, 1].astype(np.int64), max_cy)
    return lo_x, hi_x, lo_y, hi_y


def node_interference_many(
    topologies, *, rtol: float | None = None, atol: float | None = None
) -> list[np.ndarray]:
    """Per-node interference vectors for many instances, fused.

    The instances of one serve micro-batch are concatenated into a single
    float64 SoA with per-instance namespaced cell ids (one global argsort,
    one candidate expansion, one ``hypot`` pass, one segmented bincount),
    so a whole coalesced batch costs one array pass instead of a Python
    loop over scalar kernel calls. Results are bit-identical to calling
    :func:`repro.interference.receiver.node_interference` per instance
    (any method — the kernels agree bit-for-bit by contract).

    Instances the grid cannot prune (degenerate or high-coverage, the
    same tests the grid kernel applies) are computed with the chunked
    brute kernel instead, still inside this one call.
    """
    from repro.interference import receiver

    if rtol is None:
        rtol = receiver.RTOL
    if atol is None:
        atol = receiver.ATOL
    topologies = list(topologies)
    results: list[np.ndarray | None] = [None] * len(topologies)
    fused: list[int] = []
    preps: dict[int, float] = {}
    total_n = 0
    for i, topo in enumerate(topologies):
        if topo.n == 0:
            results[i] = np.empty(0, dtype=np.int64)
            continue
        cell = receiver._grid_cell_size(
            topo.positions,
            topo.radii,
            topo.radii * (1.0 + rtol) + atol,
            topo.n,
            counter_prefix="interference.batch_many",
        )
        if cell is None:
            results[i] = receiver._interference_brute(topo, rtol, atol)
            continue
        preps[i] = cell
        fused.append(i)
        total_n += topo.n
    if not fused:
        return [r for r in results]  # type: ignore[misc]

    with obs.span(
        "interference.node_many", instances=len(fused), n=total_n
    ):
        obs.count("interference.method.batch_many")
        # build the namespaced SoA: per instance an own origin/cell/ncols,
        # flat ids offset into disjoint ranges so candidates never cross
        # instances, then ONE argsort + CSR over the whole micro-batch
        pos_parts, reff_parts = [], []
        flat_parts, win_parts = [], []
        offsets = [0]
        base = 0
        for i in fused:
            topo = topologies[i]
            pos = topo.positions
            r_eff = topo.radii * (1.0 + rtol) + atol
            cell = preps[i]
            origin = pos.min(axis=0)
            cells = np.floor((pos - origin) / cell).astype(np.int64)
            max_cx = int(cells[:, 0].max())
            max_cy = int(cells[:, 1].max())
            ncols = max_cx + 2
            flat_parts.append(base + cells[:, 1] * ncols + cells[:, 0])
            lo_x, hi_x, lo_y, hi_y = _fused_windows(
                pos, r_eff, origin, cell, base, ncols, max_cx, max_cy
            )
            win_parts.append((base, ncols, lo_x, hi_x, lo_y, hi_y))
            pos_parts.append(pos)
            reff_parts.append(r_eff)
            base += ncols * (max_cy + 2)
            offsets.append(offsets[-1] + topo.n)
        allpos = np.concatenate(pos_parts, axis=0)
        allreff = np.concatenate(reff_parts)
        allflat = np.concatenate(flat_parts)
        order = np.argsort(allflat, kind="stable")
        sorted_ids = allflat[order]

        # expand (query, cell) pairs across every instance at once
        lo_x = np.concatenate([w[2] for w in win_parts])
        hi_x = np.concatenate([w[3] for w in win_parts])
        lo_y = np.concatenate([w[4] for w in win_parts])
        hi_y = np.concatenate([w[5] for w in win_parts])
        bases = np.concatenate(
            [np.full(topologies[i].n, w[0], dtype=np.int64)
             for i, w in zip(fused, win_parts)]
        )
        strides = np.concatenate(
            [np.full(topologies[i].n, w[1], dtype=np.int64)
             for i, w in zip(fused, win_parts)]
        )
        wx = np.maximum(hi_x - lo_x + 1, 0)
        wy = np.maximum(hi_y - lo_y + 1, 0)
        area = wx * wy
        total = int(area.sum())
        counts = np.zeros(allpos.shape[0], dtype=np.int64)
        if total:
            reps = np.repeat(np.arange(area.size), area)
            k = np.arange(total, dtype=np.int64) - np.repeat(
                np.cumsum(area) - area, area
            )
            wyq = wy[reps]
            cells = (
                bases[reps]
                + (lo_y[reps] + k % wyq) * strides[reps]
                + (lo_x[reps] + k // wyq)
            )
            if base <= max(64 * total_n, 1 << 20):
                # dense per-cell lookup (same trick as GridIndex._dense_spans)
                ccnt = np.bincount(allflat, minlength=base)
                cstart = np.cumsum(ccnt) - ccnt
                s = cstart[cells]
                cnt = ccnt[cells]
            else:
                s = np.searchsorted(sorted_ids, cells, side="left")
                e = np.searchsorted(sorted_ids, cells, side="right")
                cnt = e - s
            nz = cnt > 0
            s, cnt, reps = s[nz], cnt[nz], reps[nz]
            ctotal = int(cnt.sum())
            if ctotal:
                qq = np.repeat(reps, cnt)
                t = np.arange(ctotal, dtype=np.int64) + np.repeat(
                    s - (np.cumsum(cnt) - cnt), cnt
                )
                cand = order[t]
                d = np.hypot(
                    allpos[cand, 0] - allpos[qq, 0],
                    allpos[cand, 1] - allpos[qq, 1],
                )
                keep = (d <= allreff[qq]) & (qq != cand)
                counts = np.bincount(
                    cand[keep], minlength=allpos.shape[0]
                )
        for j, i in enumerate(fused):
            results[i] = counts[offsets[j] : offsets[j + 1]]
    return [r for r in results]  # type: ignore[misc]
