"""Interference measures — the paper's core contribution plus baselines.

- :mod:`repro.interference.receiver` — the paper's receiver-centric measure
  (Definitions 3.1/3.2): how many other nodes can disturb a given node.
- :mod:`repro.interference.sender` — the sender-centric edge-coverage
  measure of Burkhart et al. [2], reimplemented as the baseline the paper
  argues against.
- :mod:`repro.interference.robustness` — node addition/removal deltas under
  both measures (the Figure 1 robustness argument).
- :mod:`repro.interference.traffic` — a traffic-weighted variant in the
  spirit of Meyer auf de Heide et al. [11].
"""

from repro.interference.batch import node_interference_many
from repro.interference.receiver import (
    average_interference,
    coverage_counts,
    graph_interference,
    node_interference,
    node_interference_naive,
)
from repro.interference.incremental import InterferenceTracker
from repro.interference.localized import localized_interference
from repro.interference.sender import (
    edge_coverage,
    sender_interference,
)
from repro.interference.robustness import (
    AdditionReport,
    StabilityRecord,
    StabilitySummary,
    addition_report,
    removal_report,
    stability_summary,
)
from repro.interference.traffic import traffic_interference

__all__ = [
    "node_interference",
    "node_interference_many",
    "node_interference_naive",
    "graph_interference",
    "average_interference",
    "coverage_counts",
    "InterferenceTracker",
    "localized_interference",
    "edge_coverage",
    "sender_interference",
    "AdditionReport",
    "addition_report",
    "removal_report",
    "StabilityRecord",
    "StabilitySummary",
    "stability_summary",
    "traffic_interference",
]
