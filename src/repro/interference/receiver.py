"""Receiver-centric interference (Definitions 3.1 and 3.2).

Given a topology ``G' = (V, E')`` with derived radii ``r_u`` (distance to
the farthest neighbour), the interference of node ``v`` is::

    I(v) = |{ u in V \\ {v} : v in D(u, r_u) }|

i.e. the number of *other* nodes whose transmission disk covers ``v`` —
"by how many other nodes can v be disturbed". The graph interference is
``I(G') = max_v I(v)``.

Floating point: coverage tests use ``d(u, v) <= r_u * (1 + rtol) + atol``
with tiny default tolerances so that exact geometric constructions (e.g.
the exponential chain, where a radius equals a node distance exactly) are
classified consistently.

Kernels follow the HPC guides: ``method="brute"`` is a blocked, fully
vectorized O(n^2) pass; ``method="grid"`` probes the spatial index one
node at a time; ``method="batch"`` (:mod:`repro.interference.batch`)
answers every disk query in fused array passes over the grid's CSR
layout — the default above :data:`AUTO_BATCH_MIN_N` nodes;
``node_interference_naive`` is the pure-Python reference used in tests
and performance benchmarks. All kernels share one coverage predicate and
agree bit-for-bit on every instance family (the property suites assert
it), including degenerate ones: a zero-radius node still covers nodes at
distance exactly zero, in every kernel.
"""

from __future__ import annotations

import math

import numpy as np

from repro import obs
from repro.geometry.spatial import GridIndex
from repro.interference.batch import batch_covered_counts
from repro.model.topology import Topology

#: Default relative tolerance for disk-coverage tests.
RTOL = 1e-9
#: Default absolute tolerance for disk-coverage tests. Zero on purpose: the
#: adversarial instances (normalized exponential chains) have inter-node
#: gaps far below any fixed absolute epsilon, and radii/distances are
#: computed by the same hypot kernel so exact-equality cases match bitwise.
ATOL = 0.0

#: Row/column block edge for the O(n^2) kernels. Blocking BOTH axes keeps
#: the peak transient at ~3 float64 blocks (~25 MB) regardless of n; the
#: old row-only chunking materialized a ``(chunk, n, 2)`` diff — ~1.6 GB
#: per chunk at n = 10^5, defeating the chunking's purpose.
_CHUNK = 1024

#: ``method="auto"`` switches from the vectorized O(n^2) kernel to the
#: fused batch kernel above this node count. Calibrated on the
#: constant-density instances of ``benchmarks/bench_batch_kernels.py``
#: (EMST over ``random_udg_connected``, Linux/x86-64, numpy 2.x): the
#: kernels tie at n ~ 128 and batch wins beyond — 2x at n = 256, 64x at
#: n = 4096 (see docs/PERFORMANCE.md for the measured table). Density
#: pathologies above the threshold are handled inside the batch kernel,
#: which falls back to brute when the grid cannot prune (see
#: ``GRID_COVERAGE_FALLBACK``).
AUTO_BATCH_MIN_N = 192

#: The scalar-grid / brute crossover (``method="grid"`` is still the
#: right tier for incremental one-disk-at-a-time workloads; ``auto`` now
#: prefers the batch tier, which is faster than scalar grid at every n).
#: Kept calibrated for callers that pick ``method="grid"`` explicitly.
AUTO_GRID_MIN_N = 1024

#: The grid/batch kernels clamp their cell size so each axis has at most
#: ``GRID_CELLS_PER_AXIS_SCALE * sqrt(n)`` cells (~16n cells total):
#: radii spanning many orders of magnitude (exponential chains) otherwise
#: pick a median-radius cell so small that a single span-scale query
#: enumerates astronomically many cells.
GRID_CELLS_PER_AXIS_SCALE = 4.0

#: Fall back to the brute kernel when the average query disk's bounding
#: box covers more than this fraction of the instance extent — the grid
#: cannot prune such workloads and only adds per-cell overhead on top of
#: the same point scans.
GRID_COVERAGE_FALLBACK = 0.25


def node_interference(
    topology: Topology,
    *,
    method: str = "auto",
    rtol: float = RTOL,
    atol: float = ATOL,
) -> np.ndarray:
    """Per-node receiver-centric interference vector ``I(v)`` (int64).

    ``method`` is ``"brute"`` (vectorized O(n^2), blocked), ``"grid"``
    (spatial index, scalar per-node queries), ``"batch"`` (fused
    array-at-a-time queries over the grid CSR layout, optional numba
    backend) or ``"auto"`` (brute below ``AUTO_BATCH_MIN_N`` nodes, batch
    above; the grid-backed kernels degrade gracefully to brute on
    instances they cannot prune).
    """
    n = topology.n
    if n == 0:
        return np.empty(0, dtype=np.int64)
    if method == "auto":
        method = "batch" if n > AUTO_BATCH_MIN_N else "brute"
    if method not in ("brute", "grid", "batch"):
        raise ValueError(f"unknown method {method!r}")
    with obs.span("interference.node", n=n, method=method):
        obs.count(f"interference.method.{method}")
        if method == "brute":
            return _interference_brute(topology, rtol, atol)
        if method == "grid":
            return _interference_grid(topology, rtol, atol)
        return _interference_batch(topology, rtol, atol)


def _interference_brute(topology: Topology, rtol: float, atol: float) -> np.ndarray:
    pos = topology.positions
    r_eff = topology.radii * (1.0 + rtol) + atol
    n = pos.shape[0]
    x = np.ascontiguousarray(pos[:, 0])
    y = np.ascontiguousarray(pos[:, 1])
    counts = np.zeros(n, dtype=np.int64)
    for rs in range(0, n, _CHUNK):
        re = min(rs + _CHUNK, n)
        for cs in range(0, n, _CHUNK):
            ce = min(cs + _CHUNK, n)
            # rows: potential interferers u; cols: victims v. Per-axis
            # deltas (never a 3-D diff) keep the transient at block size.
            dx = x[rs:re, None] - x[None, cs:ce]
            dy = y[rs:re, None] - y[None, cs:ce]
            d = np.hypot(dx, dy)
            covered = d <= r_eff[rs:re, None]
            if rs == cs:
                # never count self-interference
                idx = np.arange(re - rs)
                covered[idx, idx] = False
            counts[cs:ce] += covered.sum(axis=0)
    return counts


def _grid_cell_size(
    pos: np.ndarray,
    radii: np.ndarray,
    r_eff: np.ndarray,
    n: int,
    *,
    counter_prefix: str = "interference.grid",
) -> float | None:
    """Cell size for the grid-backed kernels, or ``None`` when the grid
    cannot prune the instance and the caller should use brute instead.

    Shared by the scalar grid kernel, the batch kernel and the fused
    multi-instance kernel so every tier makes identical fallback choices.
    """
    positive = radii[radii > 0]
    spans = pos.max(axis=0) - pos.min(axis=0)
    span = float(spans.max())
    if positive.size == 0 or span <= 0.0:
        # no transmitters, or all points coincident: nothing for a grid to
        # prune — the vectorized pass is both correct and cheapest
        obs.count(f"{counter_prefix}.fallback_degenerate")
        return None
    # Median positive radius is a good cell size for homogeneous radii, but
    # degenerates when radii span many orders of magnitude (exponential
    # chains): clamp the implied cell count so a span-scale query can never
    # enumerate more than O(n) cells.
    cell = float(np.median(positive))
    min_cell = span / max(GRID_CELLS_PER_AXIS_SCALE * math.sqrt(n), 1.0)
    cell = min(max(cell, min_cell), span)
    # If the average query disk's bounding box covers a large fraction of
    # the instance, every query scans nearly all points regardless of cell
    # size; the brute kernel does the same scans vectorized.
    frac = np.ones(n, dtype=np.float64)
    for axis in range(2):
        if spans[axis] > 0.0:
            frac *= np.minimum(2.0 * r_eff / spans[axis], 1.0)
    if float(frac.mean()) > GRID_COVERAGE_FALLBACK:
        obs.count(f"{counter_prefix}.fallback_coverage")
        return None
    return cell


def _interference_grid(topology: Topology, rtol: float, atol: float) -> np.ndarray:
    pos = topology.positions
    radii = topology.radii
    r_eff = radii * (1.0 + rtol) + atol
    n = topology.n
    cell = _grid_cell_size(pos, radii, r_eff, n)
    if cell is None:
        return _interference_brute(topology, rtol, atol)
    index = GridIndex(pos, cell_size=cell)
    counts = np.zeros(n, dtype=np.int64)
    for u in range(n):
        # NB: zero-radius nodes are still transmitters — they cover nodes
        # at distance exactly 0 (coincident), the same ``d <= r_eff``
        # predicate every other kernel applies. Skipping them made grid
        # disagree with brute/naive on coincident-node instances.
        hits = index.query_point(u, float(r_eff[u]))
        counts[hits] += 1
    return counts


def _interference_batch(topology: Topology, rtol: float, atol: float) -> np.ndarray:
    pos = topology.positions
    radii = topology.radii
    r_eff = radii * (1.0 + rtol) + atol
    n = topology.n
    cell = _grid_cell_size(
        pos, radii, r_eff, n, counter_prefix="interference.batch"
    )
    if cell is None:
        return _interference_brute(topology, rtol, atol)
    index = GridIndex(pos, cell_size=cell)
    return batch_covered_counts(index, r_eff)


def node_interference_naive(
    topology: Topology, *, rtol: float = RTOL, atol: float = ATOL
) -> np.ndarray:
    """Pure-Python O(n^2) reference implementation (oracle/benchmark)."""
    pos = topology.positions
    radii = topology.radii
    n = topology.n
    counts = np.zeros(n, dtype=np.int64)
    for v in range(n):
        c = 0
        for u in range(n):
            if u == v:
                continue
            d = math.hypot(pos[u, 0] - pos[v, 0], pos[u, 1] - pos[v, 1])
            if d <= radii[u] * (1.0 + rtol) + atol:
                c += 1
        counts[v] = c
    return counts


def graph_interference(
    topology: Topology,
    *,
    method: str = "auto",
    rtol: float = RTOL,
    atol: float = ATOL,
) -> int:
    """``I(G') = max_v I(v)`` (Definition 3.2); 0 for the empty network.

    All options are keyword-only and validated here (a typo such as
    ``rtoll=`` raises ``TypeError`` instead of being silently swallowed
    by a ``**kwargs`` passthrough).
    """
    vec = node_interference(topology, method=method, rtol=rtol, atol=atol)
    return int(vec.max()) if vec.size else 0


def average_interference(
    topology: Topology,
    *,
    method: str = "auto",
    rtol: float = RTOL,
    atol: float = ATOL,
) -> float:
    """Mean of ``I(v)`` over all nodes — the average-case companion measure.

    The paper optimizes the maximum (Definition 3.2); the literature also
    studies the average, which by the double-counting identity equals the
    average *footprint* (nodes covered per disk). 0.0 for the empty
    network. Options are keyword-only and validated (see
    :func:`graph_interference`).
    """
    vec = node_interference(topology, method=method, rtol=rtol, atol=atol)
    return float(vec.mean()) if vec.size else 0.0


def coverage_counts(topology: Topology, *, rtol: float = RTOL, atol: float = ATOL):
    """Pairs ``(interferers, covered)``: for each node, how many others it
    is disturbed by (``I(v)``) and how many others its own disk covers.

    The second vector is the node's "footprint" — useful for diagnosing
    which nodes dominate interference (hubs in the highway constructions).
    """
    pos = topology.positions
    r_eff = topology.radii * (1.0 + rtol) + atol
    n = topology.n
    x = np.ascontiguousarray(pos[:, 0])
    y = np.ascontiguousarray(pos[:, 1])
    interferers = np.zeros(n, dtype=np.int64)
    covered = np.zeros(n, dtype=np.int64)
    for rs in range(0, n, _CHUNK):
        re = min(rs + _CHUNK, n)
        for cs in range(0, n, _CHUNK):
            ce = min(cs + _CHUNK, n)
            dx = x[rs:re, None] - x[None, cs:ce]
            dy = y[rs:re, None] - y[None, cs:ce]
            d = np.hypot(dx, dy)
            cov = d <= r_eff[rs:re, None]
            if rs == cs:
                idx = np.arange(re - rs)
                cov[idx, idx] = False
            interferers[cs:ce] += cov.sum(axis=0)
            covered[rs:re] += cov.sum(axis=1)
    return interferers, covered
