"""Receiver-centric interference (Definitions 3.1 and 3.2).

Given a topology ``G' = (V, E')`` with derived radii ``r_u`` (distance to
the farthest neighbour), the interference of node ``v`` is::

    I(v) = |{ u in V \\ {v} : v in D(u, r_u) }|

i.e. the number of *other* nodes whose transmission disk covers ``v`` —
"by how many other nodes can v be disturbed". The graph interference is
``I(G') = max_v I(v)``.

Floating point: coverage tests use ``d(u, v) <= r_u * (1 + rtol) + atol``
with tiny default tolerances so that exact geometric constructions (e.g.
the exponential chain, where a radius equals a node distance exactly) are
classified consistently.

Kernels follow the HPC guides: the default is a chunked, fully vectorized
O(n^2) pass; ``method="grid"`` uses the spatial index for large sparse
instances; ``node_interference_naive`` is the pure-Python reference used in
tests and performance benchmarks.
"""

from __future__ import annotations

import math

import numpy as np

from repro import obs
from repro.geometry.spatial import GridIndex
from repro.model.topology import Topology

#: Default relative tolerance for disk-coverage tests.
RTOL = 1e-9
#: Default absolute tolerance for disk-coverage tests. Zero on purpose: the
#: adversarial instances (normalized exponential chains) have inter-node
#: gaps far below any fixed absolute epsilon, and radii/distances are
#: computed by the same hypot kernel so exact-equality cases match bitwise.
ATOL = 0.0

_CHUNK = 1024

#: ``method="auto"`` switches from the vectorized O(n^2) kernel to the grid
#: kernel above this node count. Calibrated on the constant-density
#: instances of ``benchmarks/bench_perf_kernels.py`` (EMST over
#: ``random_udg_connected``, Linux/x86-64, numpy 1.26): brute wins up to
#: n ~ 500 (2ms @ 250, 8ms @ 500), the kernels tie around n ~ 700-1000
#: (grid 20ms vs brute 35ms @ 1000) and grid wins decisively beyond
#: (77ms vs 550ms @ 4000, 167ms vs 2480ms @ 8000). 1024 sits just above
#: the measured tie so dense small instances keep the cheaper vectorized
#: pass; density pathologies above the threshold are handled inside
#: ``_interference_grid``, which falls back to brute when the grid cannot
#: prune (see ``GRID_COVERAGE_FALLBACK``).
AUTO_GRID_MIN_N = 1024

#: The grid kernel clamps its cell size so each axis has at most
#: ``GRID_CELLS_PER_AXIS_SCALE * sqrt(n)`` cells (~16n cells total):
#: radii spanning many orders of magnitude (exponential chains) otherwise
#: pick a median-radius cell so small that a single span-scale query
#: enumerates astronomically many cells.
GRID_CELLS_PER_AXIS_SCALE = 4.0

#: Fall back to the brute kernel when the average query disk's bounding
#: box covers more than this fraction of the instance extent — the grid
#: cannot prune such workloads and only adds per-cell Python overhead on
#: top of the same point scans.
GRID_COVERAGE_FALLBACK = 0.25


def node_interference(
    topology: Topology,
    *,
    method: str = "auto",
    rtol: float = RTOL,
    atol: float = ATOL,
) -> np.ndarray:
    """Per-node receiver-centric interference vector ``I(v)`` (int64).

    ``method`` is ``"brute"`` (vectorized O(n^2), chunked), ``"grid"``
    (spatial index, near-linear for bounded density) or ``"auto"``
    (brute below ``AUTO_GRID_MIN_N`` nodes, grid above; the grid kernel
    itself degrades gracefully to brute on instances it cannot prune).
    """
    n = topology.n
    if n == 0:
        return np.empty(0, dtype=np.int64)
    if method == "auto":
        method = "grid" if n > AUTO_GRID_MIN_N else "brute"
    if method not in ("brute", "grid"):
        raise ValueError(f"unknown method {method!r}")
    with obs.span("interference.node", n=n, method=method):
        obs.count(f"interference.method.{method}")
        if method == "brute":
            return _interference_brute(topology, rtol, atol)
        return _interference_grid(topology, rtol, atol)


def _interference_brute(topology: Topology, rtol: float, atol: float) -> np.ndarray:
    pos = topology.positions
    r_eff = topology.radii * (1.0 + rtol) + atol
    n = pos.shape[0]
    counts = np.zeros(n, dtype=np.int64)
    for start in range(0, n, _CHUNK):
        stop = min(start + _CHUNK, n)
        # rows: potential interferers u in [start, stop); cols: victims v
        diff = pos[start:stop, None, :] - pos[None, :, :]
        d = np.hypot(diff[..., 0], diff[..., 1])
        covered = d <= r_eff[start:stop, None]
        # never count self-interference
        idx = np.arange(start, stop)
        covered[idx - start, idx] = False
        counts += covered.sum(axis=0)
    return counts


def _interference_grid(topology: Topology, rtol: float, atol: float) -> np.ndarray:
    pos = topology.positions
    radii = topology.radii
    r_eff = radii * (1.0 + rtol) + atol
    n = topology.n
    positive = radii[radii > 0]
    spans = pos.max(axis=0) - pos.min(axis=0)
    span = float(spans.max())
    if positive.size == 0 or span <= 0.0:
        # no transmitters, or all points coincident: nothing for a grid to
        # prune — the vectorized pass is both correct and cheapest
        obs.count("interference.grid.fallback_degenerate")
        return _interference_brute(topology, rtol, atol)
    # Median positive radius is a good cell size for homogeneous radii, but
    # degenerates when radii span many orders of magnitude (exponential
    # chains): clamp the implied cell count so a span-scale query can never
    # enumerate more than O(n) cells.
    cell = float(np.median(positive))
    min_cell = span / max(GRID_CELLS_PER_AXIS_SCALE * math.sqrt(n), 1.0)
    cell = min(max(cell, min_cell), span)
    # If the average query disk's bounding box covers a large fraction of
    # the instance, every query scans nearly all points regardless of cell
    # size; the brute kernel does the same scans vectorized.
    frac = np.ones(n, dtype=np.float64)
    for axis in range(2):
        if spans[axis] > 0.0:
            frac *= np.minimum(2.0 * r_eff / spans[axis], 1.0)
    if float(frac.mean()) > GRID_COVERAGE_FALLBACK:
        obs.count("interference.grid.fallback_coverage")
        return _interference_brute(topology, rtol, atol)
    index = GridIndex(pos, cell_size=cell)
    counts = np.zeros(n, dtype=np.int64)
    for u in range(n):
        if radii[u] <= 0 and atol <= 0:
            continue
        hits = index.query_point(u, float(r_eff[u]))
        counts[hits] += 1
    return counts


def node_interference_naive(
    topology: Topology, *, rtol: float = RTOL, atol: float = ATOL
) -> np.ndarray:
    """Pure-Python O(n^2) reference implementation (oracle/benchmark)."""
    import math

    pos = topology.positions
    radii = topology.radii
    n = topology.n
    counts = np.zeros(n, dtype=np.int64)
    for v in range(n):
        c = 0
        for u in range(n):
            if u == v:
                continue
            d = math.hypot(pos[u, 0] - pos[v, 0], pos[u, 1] - pos[v, 1])
            if d <= radii[u] * (1.0 + rtol) + atol:
                c += 1
        counts[v] = c
    return counts


def graph_interference(
    topology: Topology,
    *,
    method: str = "auto",
    rtol: float = RTOL,
    atol: float = ATOL,
) -> int:
    """``I(G') = max_v I(v)`` (Definition 3.2); 0 for the empty network.

    All options are keyword-only and validated here (a typo such as
    ``rtoll=`` raises ``TypeError`` instead of being silently swallowed
    by a ``**kwargs`` passthrough).
    """
    vec = node_interference(topology, method=method, rtol=rtol, atol=atol)
    return int(vec.max()) if vec.size else 0


def average_interference(
    topology: Topology,
    *,
    method: str = "auto",
    rtol: float = RTOL,
    atol: float = ATOL,
) -> float:
    """Mean of ``I(v)`` over all nodes — the average-case companion measure.

    The paper optimizes the maximum (Definition 3.2); the literature also
    studies the average, which by the double-counting identity equals the
    average *footprint* (nodes covered per disk). 0.0 for the empty
    network. Options are keyword-only and validated (see
    :func:`graph_interference`).
    """
    vec = node_interference(topology, method=method, rtol=rtol, atol=atol)
    return float(vec.mean()) if vec.size else 0.0


def coverage_counts(topology: Topology, *, rtol: float = RTOL, atol: float = ATOL):
    """Pairs ``(interferers, covered)``: for each node, how many others it
    is disturbed by (``I(v)``) and how many others its own disk covers.

    The second vector is the node's "footprint" — useful for diagnosing
    which nodes dominate interference (hubs in the highway constructions).
    """
    pos = topology.positions
    r_eff = topology.radii * (1.0 + rtol) + atol
    n = topology.n
    interferers = np.zeros(n, dtype=np.int64)
    covered = np.zeros(n, dtype=np.int64)
    for start in range(0, n, _CHUNK):
        stop = min(start + _CHUNK, n)
        diff = pos[start:stop, None, :] - pos[None, :, :]
        d = np.hypot(diff[..., 0], diff[..., 1])
        cov = d <= r_eff[start:stop, None]
        idx = np.arange(start, stop)
        cov[idx - start, idx] = False
        interferers += cov.sum(axis=0)
        covered[start:stop] = cov.sum(axis=1)
    return interferers, covered
