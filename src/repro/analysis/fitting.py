"""Curve fitting for asymptotic claims.

The experiments check *shapes*, not constants: "A_exp is Theta(sqrt(n))"
becomes "the log-log slope of I against n is ~0.5 and a c*sqrt(n) fit has
high R^2".
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class PowerLawFit:
    """``y ~ c * x**exponent`` fitted in log-log space."""

    c: float
    exponent: float
    r_squared: float

    def predict(self, x) -> np.ndarray:
        return self.c * np.asarray(x, dtype=np.float64) ** self.exponent


def _validate_xy(x, y) -> tuple[np.ndarray, np.ndarray]:
    x = np.asarray(x, dtype=np.float64)
    y = np.asarray(y, dtype=np.float64)
    if x.shape != y.shape or x.ndim != 1:
        raise ValueError("x and y must be 1-D arrays of equal length")
    if x.size < 2:
        raise ValueError("need at least two points")
    return x, y


def fit_power_law(x, y) -> PowerLawFit:
    """Least-squares fit of ``log y = log c + e * log x``.

    Requires strictly positive data. ``r_squared`` is computed in log
    space.
    """
    x, y = _validate_xy(x, y)
    if np.any(x <= 0) or np.any(y <= 0):
        raise ValueError("power-law fit requires positive data")
    lx, ly = np.log(x), np.log(y)
    slope, intercept = np.polyfit(lx, ly, 1)
    resid = ly - (slope * lx + intercept)
    ss_res = float(np.sum(resid**2))
    ss_tot = float(np.sum((ly - ly.mean()) ** 2))
    r2 = 1.0 if ss_tot == 0 else 1.0 - ss_res / ss_tot
    return PowerLawFit(c=float(np.exp(intercept)), exponent=float(slope), r_squared=r2)


def loglog_slope(x, y) -> float:
    """Slope of the log-log regression (the empirical growth exponent)."""
    return fit_power_law(x, y).exponent


def fit_sqrt(x, y) -> tuple[float, float]:
    """Least-squares fit of ``y ~ c * sqrt(x)``; returns ``(c, r_squared)``.

    ``r_squared`` is computed against the raw data (not log space), so a
    genuinely linear or constant series scores poorly.
    """
    x, y = _validate_xy(x, y)
    if np.any(x < 0):
        raise ValueError("sqrt fit requires non-negative x")
    s = np.sqrt(x)
    denom = float(np.sum(s * s))
    if denom == 0:
        raise ValueError("degenerate x")
    c = float(np.sum(s * y) / denom)
    resid = y - c * s
    ss_tot = float(np.sum((y - y.mean()) ** 2))
    r2 = 1.0 - float(np.sum(resid**2)) / ss_tot if ss_tot > 0 else 1.0
    return c, r2
