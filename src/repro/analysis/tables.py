"""ASCII table rendering for experiment output (no plotting stack needed)."""

from __future__ import annotations

from collections.abc import Sequence


def _fmt(value) -> str:
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        if value != value:  # NaN
            return "nan"
        if value in (float("inf"), float("-inf")):
            return "inf" if value > 0 else "-inf"
        if value == int(value) and abs(value) < 1e15:
            return f"{int(value)}"
        return f"{value:.4g}"
    return str(value)


def format_table(
    headers: Sequence[str], rows: Sequence[Sequence], *, title: str | None = None
) -> str:
    """Render rows as a fixed-width ASCII table.

    Every row must match the header length; numbers are right-aligned,
    text left-aligned.
    """
    cells = [[_fmt(v) for v in row] for row in rows]
    for row in cells:
        if len(row) != len(headers):
            raise ValueError("row length does not match headers")
    widths = [
        max(len(h), *(len(r[i]) for r in cells)) if cells else len(h)
        for i, h in enumerate(headers)
    ]
    numeric = [
        all(_is_numberish(r[i]) for r in cells) if cells else False
        for i in range(len(headers))
    ]

    def line(row, pad=" "):
        parts = []
        for i, cell in enumerate(row):
            parts.append(cell.rjust(widths[i]) if numeric[i] else cell.ljust(widths[i]))
        return "| " + " | ".join(parts) + " |"

    sep = "+-" + "-+-".join("-" * w for w in widths) + "-+"
    out = []
    if title:
        out.append(title)
    out.append(sep)
    out.append(line(list(headers)))
    out.append(sep)
    out.extend(line(r) for r in cells)
    out.append(sep)
    return "\n".join(out)


def _is_numberish(s: str) -> bool:
    try:
        float(s)
        return True
    except ValueError:
        return s == "nan"
