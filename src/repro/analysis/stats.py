"""Small summary-statistics helpers used by the experiment harness."""

from __future__ import annotations

import numpy as np


def summarize(values) -> dict[str, float]:
    """min / median / mean / max / std of a 1-D sample (NaNs dropped)."""
    arr = np.asarray(values, dtype=np.float64)
    arr = arr[~np.isnan(arr)]
    if arr.size == 0:
        return {k: float("nan") for k in ("min", "median", "mean", "max", "std")}
    return {
        "min": float(arr.min()),
        "median": float(np.median(arr)),
        "mean": float(arr.mean()),
        "max": float(arr.max()),
        "std": float(arr.std()),
    }
