"""Analysis helpers: asymptotic fits, summary statistics, ASCII tables."""

from repro.analysis.fitting import fit_power_law, fit_sqrt, loglog_slope
from repro.analysis.stats import summarize
from repro.analysis.tables import format_table

__all__ = [
    "fit_power_law",
    "fit_sqrt",
    "loglog_slope",
    "summarize",
    "format_table",
]
