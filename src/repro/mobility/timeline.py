"""Topology maintenance along a mobility trajectory.

``TopologyTimeline`` re-runs a topology-control algorithm on every
position frame, recording the interference time series (both measures)
and the per-step edge churn — how many links the algorithm rewires as
nodes move. Low churn matters as much as low interference: every rewired
link is control traffic.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.interference.receiver import graph_interference
from repro.interference.sender import sender_interference
from repro.model.topology import Topology
from repro.model.udg import unit_disk_graph


def edge_churn(prev: Topology, cur: Topology) -> int:
    """Number of edges present in exactly one of two same-n topologies."""
    if prev.n != cur.n:
        raise ValueError("topologies must share the node count")
    a = {tuple(e) for e in prev.edges}
    b = {tuple(e) for e in cur.edges}
    return len(a ^ b)


@dataclass(frozen=True)
class TimelineResult:
    times: np.ndarray
    receiver_interference: np.ndarray
    sender_interference: np.ndarray
    churn: np.ndarray  # per step (length len(times) - 1)
    connected: np.ndarray
    meta: dict = field(default_factory=dict)


class TopologyTimeline:
    """Run a topology-control algorithm over a sequence of position frames.

    Parameters
    ----------
    algorithm:
        Callable mapping a UDG :class:`Topology` to a subtopology (any
        registered baseline, or e.g. ``lambda udg: udg``).
    unit:
        UDG transmission range.
    """

    def __init__(self, algorithm, *, unit: float = 1.0):
        self.algorithm = algorithm
        self.unit = float(unit)

    def run(self, frames: np.ndarray, *, dt: float = 1.0) -> TimelineResult:
        """Evaluate every ``(n, 2)`` frame of a ``(T, n, 2)`` trajectory."""
        frames = np.asarray(frames, dtype=np.float64)
        if frames.ndim != 3 or frames.shape[2] != 2:
            raise ValueError("frames must have shape (T, n, 2)")
        recv, send, conn, churn = [], [], [], []
        prev: Topology | None = None
        for frame in frames:
            udg = unit_disk_graph(frame, unit=self.unit)
            topo = self.algorithm(udg)
            recv.append(graph_interference(topo))
            send.append(sender_interference(topo))
            conn.append(topo.is_connected() == udg.is_connected())
            if prev is not None:
                churn.append(edge_churn(prev, topo))
            prev = topo
        return TimelineResult(
            times=np.arange(frames.shape[0], dtype=np.float64) * dt,
            receiver_interference=np.array(recv, dtype=np.int64),
            sender_interference=np.array(send, dtype=np.float64),
            churn=np.array(churn, dtype=np.int64),
            connected=np.array(conn, dtype=bool),
            meta={"unit": self.unit},
        )
