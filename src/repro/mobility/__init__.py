"""Node mobility: trajectories and topology maintenance over time.

Ad-hoc networks are mobile (Section 1); the robustness argument for the
receiver-centric measure is ultimately about how the *measured quantity*
behaves while the node set and positions drift. This package provides a
random-waypoint mobility model and helpers that re-run a topology-control
algorithm along a trajectory, reporting interference stability and
topology churn.
"""

from repro.mobility.waypoint import RandomWaypointModel
from repro.mobility.timeline import TopologyTimeline, edge_churn

__all__ = ["RandomWaypointModel", "TopologyTimeline", "edge_churn"]
