"""Random waypoint mobility.

Each node independently picks a uniform destination in the arena, moves
toward it at a speed drawn from ``[v_min, v_max]``, pauses, and repeats —
the standard ad-hoc-network mobility benchmark. Positions are sampled at
fixed time steps via :meth:`RandomWaypointModel.positions_at` /
:meth:`~RandomWaypointModel.trajectory`.
"""

from __future__ import annotations

import numpy as np

from repro.utils import as_generator


class RandomWaypointModel:
    """Random waypoint trajectories for ``n`` nodes in a square arena.

    Parameters
    ----------
    n:
        Number of nodes.
    side:
        Arena side length (positions stay inside ``[0, side]^2``).
    v_min, v_max:
        Speed range (distance per unit time); ``v_min > 0`` avoids the
        well-known speed-decay degeneracy of the model.
    pause:
        Pause time at each waypoint.
    """

    def __init__(
        self,
        n: int,
        *,
        side: float = 10.0,
        v_min: float = 0.05,
        v_max: float = 0.2,
        pause: float = 0.0,
        seed=None,
    ):
        if n < 1:
            raise ValueError("n must be >= 1")
        if side <= 0:
            raise ValueError("side must be positive")
        if not 0 < v_min <= v_max:
            raise ValueError("need 0 < v_min <= v_max")
        if pause < 0:
            raise ValueError("pause must be non-negative")
        self.n = int(n)
        self.side = float(side)
        self.v_min = float(v_min)
        self.v_max = float(v_max)
        self.pause = float(pause)
        self.rng = as_generator(seed)
        self.time = 0.0
        self._pos = self.rng.uniform(0.0, side, size=(n, 2))
        self._dest = self.rng.uniform(0.0, side, size=(n, 2))
        self._speed = self.rng.uniform(v_min, v_max, size=n)
        self._pause_left = np.zeros(n)

    def step(self, dt: float) -> np.ndarray:
        """Advance all nodes by ``dt``; returns the new positions (a copy)."""
        if dt < 0:
            raise ValueError("dt must be non-negative")
        remaining = np.full(self.n, float(dt))
        while np.any(remaining > 1e-12):
            for u in np.nonzero(remaining > 1e-12)[0]:
                t = remaining[u]
                if self._pause_left[u] > 0:
                    used = min(t, self._pause_left[u])
                    self._pause_left[u] -= used
                    remaining[u] -= used
                    if self._pause_left[u] <= 0:
                        self._new_leg(u)
                    continue
                vec = self._dest[u] - self._pos[u]
                dist = float(np.hypot(*vec))
                travel = self._speed[u] * t
                if travel >= dist:
                    self._pos[u] = self._dest[u]
                    time_used = dist / self._speed[u] if self._speed[u] > 0 else t
                    remaining[u] -= time_used
                    self._pause_left[u] = self.pause
                    if self.pause == 0:
                        self._new_leg(u)
                else:
                    self._pos[u] += vec / dist * travel
                    remaining[u] = 0.0
        self.time += dt
        return self._pos.copy()

    def _new_leg(self, u: int) -> None:
        self._dest[u] = self.rng.uniform(0.0, self.side, size=2)
        self._speed[u] = self.rng.uniform(self.v_min, self.v_max)

    def positions_at(self) -> np.ndarray:
        """Current positions (a copy)."""
        return self._pos.copy()

    def trajectory(self, n_steps: int, dt: float) -> np.ndarray:
        """``(n_steps + 1, n, 2)`` positions sampled every ``dt`` (includes t=0)."""
        if n_steps < 0:
            raise ValueError("n_steps must be >= 0")
        frames = [self.positions_at()]
        for _ in range(n_steps):
            frames.append(self.step(dt))
        return np.stack(frames)
