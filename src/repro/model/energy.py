"""Transmission-energy cost models for a topology.

The standard path-loss model charges a node with radius ``r`` a transmit
power proportional to ``r**alpha`` with ``alpha`` in [2, 6] (free space 2,
typical outdoor 3-4). These are the quantities topology control trades
against interference.
"""

from __future__ import annotations

import numpy as np

from repro.model.topology import Topology


def total_transmit_energy(topology: Topology, *, alpha: float = 2.0) -> float:
    """Sum over nodes of ``r_u ** alpha`` (total network transmit power)."""
    if alpha <= 0:
        raise ValueError("alpha must be positive")
    return float(np.sum(topology.radii**alpha))


def max_transmit_radius(topology: Topology) -> float:
    """Largest per-node radius (max transmit power level in the network)."""
    if topology.n == 0:
        return 0.0
    return float(topology.radii.max())
