"""The ``Topology`` abstraction: a point set plus a chosen symmetric edge set.

Per Section 3 of the paper, a topology-control output is an undirected
subgraph of the unit disk graph. Each node ``u`` then transmits with the
power needed to reach its farthest neighbour, giving it the radius
``r_u = max_{v in N_u} |u, v|`` (zero for isolated nodes). All interference
measures are functions of the topology through these radii.
"""

from __future__ import annotations

from functools import cached_property

import numpy as np

from repro.graphs.core import Graph
from repro.graphs.traversal import is_connected as _graph_connected
from repro.utils import check_edge_array, check_positions


class Topology:
    """Immutable point set + symmetric edge set with derived radii.

    Parameters
    ----------
    positions:
        ``(n, 2)`` node coordinates (1-D arrays are lifted to y = 0).
    edges:
        ``(m, 2)`` array-like of node index pairs; canonicalised and
        de-duplicated.

    Notes
    -----
    Instances are treated as immutable: all "mutating" operations return new
    topologies, and derived quantities (radii, adjacency, lengths) are
    cached on first use.
    """

    def __init__(self, positions, edges=()):
        self.positions = check_positions(positions)
        self.n = self.positions.shape[0]
        self.edges = check_edge_array(edges, self.n)
        self.edges.setflags(write=False)
        self.positions.setflags(write=False)

    # -- factories ----------------------------------------------------------
    @classmethod
    def empty(cls, positions) -> "Topology":
        """Edge-free topology over the given points."""
        return cls(positions, ())

    @classmethod
    def from_graph(cls, positions, graph: Graph) -> "Topology":
        return cls(positions, graph.edge_array())

    # -- derived geometry ----------------------------------------------------
    @cached_property
    def edge_lengths(self) -> np.ndarray:
        """Euclidean length of each row of :attr:`edges`."""
        if self.edges.shape[0] == 0:
            return np.empty(0, dtype=np.float64)
        d = self.positions[self.edges[:, 0]] - self.positions[self.edges[:, 1]]
        return np.hypot(d[:, 0], d[:, 1])

    @cached_property
    def radii(self) -> np.ndarray:
        """Per-node transmission radius ``r_u`` (distance to farthest neighbour).

        Isolated nodes get radius 0 — they transmit nothing and cover
        nobody, matching the paper's convention.
        """
        r = np.zeros(self.n, dtype=np.float64)
        if self.edges.shape[0]:
            lengths = self.edge_lengths
            np.maximum.at(r, self.edges[:, 0], lengths)
            np.maximum.at(r, self.edges[:, 1], lengths)
        r.setflags(write=False)
        return r

    @cached_property
    def degrees(self) -> np.ndarray:
        deg = np.zeros(self.n, dtype=np.int64)
        if self.edges.shape[0]:
            np.add.at(deg, self.edges[:, 0], 1)
            np.add.at(deg, self.edges[:, 1], 1)
        deg.setflags(write=False)
        return deg

    @cached_property
    def _adjacency(self) -> list[frozenset[int]]:
        adj: list[set[int]] = [set() for _ in range(self.n)]
        for u, v in self.edges:
            adj[u].add(int(v))
            adj[v].add(int(u))
        return [frozenset(s) for s in adj]

    # -- queries --------------------------------------------------------------
    @property
    def n_edges(self) -> int:
        return self.edges.shape[0]

    def neighbors(self, u: int) -> frozenset[int]:
        return self._adjacency[u]

    def has_edge(self, u: int, v: int) -> bool:
        return v in self._adjacency[u]

    def max_degree(self) -> int:
        return int(self.degrees.max()) if self.n else 0

    def as_graph(self, *, weighted: bool = True) -> Graph:
        """Convert to :class:`repro.graphs.Graph` (weights = edge lengths)."""
        if weighted:
            return Graph.from_edge_array(self.n, self.edges, self.edge_lengths)
        return Graph.from_edge_array(self.n, self.edges)

    def is_connected(self) -> bool:
        return _graph_connected(self.as_graph(weighted=False))

    def is_subgraph_of(self, other: "Topology") -> bool:
        """True iff every edge of ``self`` also appears in ``other``."""
        if self.n != other.n:
            return False
        mine = {tuple(e) for e in self.edges}
        theirs = {tuple(e) for e in other.edges}
        return mine <= theirs

    def contains_edges(self, edges) -> bool:
        """True iff every row of ``edges`` is an edge of this topology."""
        arr = check_edge_array(edges, self.n)
        theirs = {tuple(e) for e in self.edges}
        return all(tuple(e) in theirs for e in arr)

    # -- derived topologies ----------------------------------------------------
    def with_edges(self, extra) -> "Topology":
        """New topology with ``extra`` edges unioned in."""
        arr = check_edge_array(extra, self.n)
        return Topology(self.positions, np.concatenate([self.edges, arr], axis=0))

    def without_edges(self, drop) -> "Topology":
        """New topology with the given edges removed (missing edges ignored)."""
        arr = check_edge_array(drop, self.n)
        dropset = {tuple(e) for e in arr}
        keep = [e for e in self.edges if tuple(e) not in dropset]
        return Topology(self.positions, np.array(keep, dtype=np.int64).reshape(-1, 2))

    def add_node(self, position, attach_to=()) -> "Topology":
        """New topology with one extra node connected to ``attach_to``.

        The new node gets index ``n``; existing edges are preserved. This is
        the elementary operation of the robustness experiments (Figure 1).
        """
        pos = np.concatenate(
            [self.positions, np.asarray(position, dtype=np.float64).reshape(1, 2)]
        )
        new_edges = [(int(a), self.n) for a in attach_to]
        all_edges = list(map(tuple, self.edges)) + new_edges
        return Topology(pos, np.array(all_edges, dtype=np.int64).reshape(-1, 2))

    def remove_node(self, index: int) -> "Topology":
        """New topology with node ``index`` (and its edges) deleted.

        Remaining nodes are renumbered to stay contiguous (indices above
        ``index`` shift down by one).
        """
        if not (0 <= index < self.n):
            raise ValueError("index out of range")
        keep = np.ones(self.n, dtype=bool)
        keep[index] = False
        remap = np.cumsum(keep) - 1
        rows = [
            (remap[u], remap[v])
            for u, v in self.edges
            if u != index and v != index
        ]
        return Topology(
            self.positions[keep],
            np.array(rows, dtype=np.int64).reshape(-1, 2),
        )

    def __eq__(self, other) -> bool:
        if not isinstance(other, Topology):
            return NotImplemented
        return (
            self.n == other.n
            and np.array_equal(self.positions, other.positions)
            and np.array_equal(self.edges, other.edges)
        )

    def __hash__(self):
        raise TypeError("Topology is unhashable (compare with ==)")

    def __repr__(self) -> str:
        return f"Topology(n={self.n}, m={self.n_edges})"
