"""Network model: unit disk graphs, topologies with derived radii, energy."""

from repro.model.topology import Topology
from repro.model.udg import unit_disk_graph, udg_max_degree
from repro.model.energy import max_transmit_radius, total_transmit_energy

__all__ = [
    "Topology",
    "unit_disk_graph",
    "udg_max_degree",
    "total_transmit_energy",
    "max_transmit_radius",
]
