"""Unit disk graph construction.

The UDG ``G = (V, E)`` has an edge between every pair at Euclidean distance
at most the unit range (Clark, Colbourn & Johnson [3]). Two kernels are
provided: a brute-force vectorized O(n^2) pass (fast for n up to a few
thousand) and a grid-index pass that is near-linear for bounded-density
instances; ``method="auto"`` picks by instance size.
"""

from __future__ import annotations

from repro.geometry.points import pairwise_within
from repro.geometry.spatial import GridIndex
from repro.model.topology import Topology
from repro.utils import check_positions

#: Above this node count ``method="auto"`` switches to the grid kernel.
_AUTO_GRID_THRESHOLD = 3000


def unit_disk_graph(
    positions, *, unit: float = 1.0, method: str = "auto"
) -> Topology:
    """Build the unit disk graph over ``positions`` as a :class:`Topology`.

    Parameters
    ----------
    positions:
        ``(n, 2)`` points (1-D highway arrays accepted).
    unit:
        Maximum transmission range (edge iff distance <= ``unit``).
    method:
        ``"brute"`` (vectorized O(n^2)), ``"grid"`` (spatial index), or
        ``"auto"``.
    """
    pos = check_positions(positions)
    if unit <= 0:
        raise ValueError("unit must be positive")
    if method == "auto":
        method = "grid" if pos.shape[0] > _AUTO_GRID_THRESHOLD else "brute"
    if method == "brute":
        edges = pairwise_within(pos, unit)
    elif method == "grid":
        edges = GridIndex(pos, cell_size=unit).pairs_within(unit)
    else:
        raise ValueError(f"unknown method {method!r}")
    return Topology(pos, edges)


def udg_max_degree(positions, *, unit: float = 1.0) -> int:
    """Maximum node degree Delta of the unit disk graph.

    Delta upper-bounds the receiver-centric interference of *any* subgraph
    topology (Section 3) and parametrises algorithm A_gen.
    """
    return unit_disk_graph(positions, unit=unit).max_degree()
