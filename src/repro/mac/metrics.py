"""MAC-run metrics: fairness, delay percentiles, and the static link.

The headline statistic of the ``mac_contention`` experiment lives here:
the Spearman rank correlation between the paper's *static* per-node
interference ``I(v)`` and the *dynamic* per-node collision rate a MAC
run actually measured. A positive, significant correlation is the
empirical form of "the receiver-centric measure predicts contention".
"""

from __future__ import annotations

import numpy as np

from repro.mac.engine import MacResult
from repro.model.topology import Topology
from repro.sim.metrics import collision_interference_correlation


def jain_fairness(values) -> float:
    """Jain's fairness index ``(sum x)^2 / (n * sum x^2)`` over the
    non-NaN entries; 1 is perfectly fair, ``1/n`` maximally unfair.
    NaN when nothing valid or all-zero."""
    x = np.asarray(values, dtype=np.float64)
    x = x[~np.isnan(x)]
    if x.size == 0 or np.any(x < 0):
        return float("nan")
    sq = float(np.sum(x * x))
    if sq == 0.0:
        return float("nan")
    return float(np.sum(x)) ** 2 / (x.size * sq)


def interference_collision_spearman(
    topology: Topology, result: MacResult
) -> tuple[float, float]:
    """Spearman rank correlation of static ``I(v)`` vs the run's measured
    per-receiver collision rate. Returns ``(rho, p_value)``; degenerate
    inputs give ``(nan, nan)`` (see
    :func:`repro.sim.metrics.collision_interference_correlation`)."""
    return collision_interference_correlation(
        topology, result.collision_rate, method="spearman"
    )


def summarize(topology: Topology, result: MacResult) -> dict:
    """Strict-JSON scalar summary of one run (the experiment row shape)."""
    rho, pval = interference_collision_spearman(topology, result)
    pooled = result.delay_percentiles()
    return {
        "n": int(topology.n),
        "n_slots": int(result.n_slots),
        "arrivals": int(result.arrivals.sum()),
        "delivered": int(result.delivered.sum()),
        "dropped_queue": int(result.dropped_queue.sum()),
        "dropped_retry": int(result.dropped_retry.sum()),
        "lost": int(result.lost.sum()),
        "attempts": int(result.attempts.sum()),
        "retransmissions": int(result.retransmissions.sum()),
        "deferrals": int(result.deferrals.sum()),
        "collisions": int(result.rx_collision.sum()),
        "throughput": float(result.throughput.sum()),
        "offered": float(result.offered.sum()),
        "mean_collision_rate": _nan_to_none(
            float(np.nanmean(result.collision_rate))
            if np.any(~np.isnan(result.collision_rate))
            else float("nan")
        ),
        "fairness": _nan_to_none(jain_fairness(result.throughput)),
        "delay_p50": _nan_to_none(pooled["p50"]),
        "delay_p95": _nan_to_none(pooled["p95"]),
        "delay_p99": _nan_to_none(pooled["p99"]),
        "spearman_rho": _nan_to_none(rho),
        "spearman_p": _nan_to_none(pval),
        "conservation_ok": bool(result.conservation_ok),
    }


def _nan_to_none(x: float):
    """Strict JSON has no NaN; degenerate statistics serialize as null."""
    return None if isinstance(x, float) and np.isnan(x) else x
