"""MAC-layer contention suite over the paper's topologies.

The dynamic counterpart of the static receiver-centric interference
measure: a pluggable backoff-policy zoo (:data:`BACKOFF_POLICIES`), a
saturated slotted-ALOHA engine bitwise-compatible with the deprecated
``repro.sim.backoff.BebAlohaSimulator``, and a queued slotted-ALOHA/CSMA
engine with traffic sources, duty cycles, ack/retransmit and an
SINR-threshold capture effect. See ``docs/MAC.md``.
"""

from repro.mac.engine import MacConfig, MacResult, MacSimulator
from repro.mac.metrics import (
    interference_collision_spearman,
    jain_fairness,
    summarize,
)
from repro.mac.policies import (
    BACKOFF_POLICIES,
    AsbBackoff,
    BackoffPolicy,
    BackoffState,
    BebBackoff,
    EbebBackoff,
    EiedBackoff,
    FibonacciBackoff,
    UniformBackoff,
    make_policy,
    registered_policies,
)
from repro.mac.saturated import SaturatedAlohaSimulator, SaturatedResult

__all__ = [
    "BACKOFF_POLICIES",
    "AsbBackoff",
    "BackoffPolicy",
    "BackoffState",
    "BebBackoff",
    "EbebBackoff",
    "EiedBackoff",
    "FibonacciBackoff",
    "MacConfig",
    "MacResult",
    "MacSimulator",
    "SaturatedAlohaSimulator",
    "SaturatedResult",
    "UniformBackoff",
    "interference_collision_spearman",
    "jain_fairness",
    "make_policy",
    "registered_policies",
    "summarize",
]
