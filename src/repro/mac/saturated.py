"""Saturated slotted ALOHA under any registered backoff policy.

The saturation setting of the legacy :class:`repro.sim.backoff.
BebAlohaSimulator`, generalized over :data:`repro.mac.BACKOFF_POLICIES`:
every node with at least one neighbour is permanently backlogged and
addresses a uniformly random neighbour; a reception fails iff a second
concurrent transmitter covers the receiver or the receiver is itself
transmitting (disk model, no capture).

The slot loop reproduces the legacy simulator's RNG draw order exactly —
one ``integers(nbrs)`` receiver draw and one ``integers(window)`` wait
draw per attempt, in ascending sender order — so the BEB policy run from
the same seed is *bitwise identical* to the deprecated class (the
differential test in ``tests/test_sim_backoff.py`` holds this line).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro import obs
from repro.interference.receiver import RTOL
from repro.mac.policies import BackoffPolicy, BackoffState, make_policy
from repro.model.topology import Topology
from repro.utils import as_generator

#: EWMA weight of the per-node channel-busy estimate fed to adaptive
#: policies (ASB); one value per slot, sample = "some other transmitter's
#: disk covered me this slot".
BUSY_EWMA_ALPHA = 0.1


@dataclass(frozen=True)
class SaturatedResult:
    """Per-node tallies of one saturated-ALOHA run.

    Field-compatible with the legacy ``BebResult`` (which is now an alias
    of this class): ``retransmissions`` counts attempts beyond the first
    per *delivered* packet, ``mean_cw`` is the contention window observed
    at delivery time.
    """

    n_slots: int
    attempts: np.ndarray
    deliveries: np.ndarray
    #: per node: retransmissions (attempts beyond the first per packet)
    retransmissions: np.ndarray
    #: per node: mean contention window observed at delivery time
    mean_cw: np.ndarray
    meta: dict = field(default_factory=dict)

    @property
    def retransmissions_per_delivery(self) -> np.ndarray:
        with np.errstate(invalid="ignore", divide="ignore"):
            return np.where(
                self.deliveries > 0, self.retransmissions / self.deliveries, np.nan
            )


class SaturatedAlohaSimulator:
    """Saturated slotted ALOHA with a pluggable backoff policy.

    Parameters
    ----------
    topology:
        Communication topology; transmissions use its derived radii.
    policy:
        Backoff-policy name from :data:`repro.mac.BACKOFF_POLICIES` or a
        configured :class:`~repro.mac.policies.BackoffPolicy` instance.
        Extra keyword arguments configure a named policy, e.g.
        ``SaturatedAlohaSimulator(t, policy="beb", cw_max=64)``.
    """

    def __init__(
        self,
        topology: Topology,
        *,
        policy: str | BackoffPolicy = "beb",
        **policy_kwargs,
    ):
        self.topology = topology
        self.policy = make_policy(policy, **policy_kwargs)
        n = topology.n
        self._neighbors = [
            np.array(sorted(topology.neighbors(u)), dtype=np.int64)
            for u in range(n)
        ]
        pos = topology.positions
        diff = pos[:, None, :] - pos[None, :, :]
        d = np.hypot(diff[..., 0], diff[..., 1])
        self._covers = d <= (topology.radii * (1.0 + RTOL))[:, None]
        np.fill_diagonal(self._covers, False)

    def run(self, n_slots: int, *, seed=None) -> SaturatedResult:
        if n_slots < 0:
            raise ValueError("n_slots must be >= 0")
        policy = self.policy
        rng = as_generator(seed)
        n = self.topology.n
        active = self.topology.degrees > 0
        cw = np.full(n, policy.initial_window(), dtype=np.int64)
        wait = np.zeros(n, dtype=np.int64)
        for u in range(n):
            if active[u]:
                wait[u] = rng.integers(cw[u])
        attempts = np.zeros(n, dtype=np.int64)
        deliveries = np.zeros(n, dtype=np.int64)
        retransmissions = np.zeros(n, dtype=np.int64)
        pending_retx = np.zeros(n, dtype=np.int64)  # failures on current packet
        cw_sum = np.zeros(n, dtype=np.float64)
        busy = np.zeros(n, dtype=np.float64)

        with obs.span(
            "mac.saturated", policy=policy.name, n=n, slots=n_slots
        ) as sp:
            for _ in range(n_slots):
                tx_mask = active & (wait == 0)
                wait[active & (wait > 0)] -= 1
                senders = np.nonzero(tx_mask)[0]
                if senders.size == 0:
                    busy *= 1.0 - BUSY_EWMA_ALPHA
                    continue
                attempts[senders] += 1
                cover_count = self._covers[senders].sum(axis=0)
                for u in senders:
                    nbrs = self._neighbors[u]
                    v = int(nbrs[rng.integers(nbrs.size)])
                    success = (not tx_mask[v]) and cover_count[v] == 1
                    if success:
                        deliveries[u] += 1
                        retransmissions[u] += pending_retx[u]
                        cw_sum[u] += cw[u]
                        pending_retx[u] = 0
                    else:
                        pending_retx[u] += 1
                    cw[u] = policy.next_window(
                        int(pending_retx[u]),
                        BackoffState(window=int(cw[u]), busy=float(busy[u])),
                    )
                    wait[u] = rng.integers(cw[u])
                # busy sample: covered by another transmitter's disk (the
                # covers diagonal is False, so self-coverage never counts)
                busy += BUSY_EWMA_ALPHA * ((cover_count > 0) - busy)
            obs.count("mac.attempts", int(attempts.sum()))
            obs.count("mac.delivered", int(deliveries.sum()))
            sp.set(
                attempts=int(attempts.sum()), delivered=int(deliveries.sum())
            )
        with np.errstate(invalid="ignore", divide="ignore"):
            mean_cw = np.where(deliveries > 0, cw_sum / deliveries, np.nan)
        return SaturatedResult(
            n_slots=n_slots,
            attempts=attempts,
            deliveries=deliveries,
            retransmissions=retransmissions,
            mean_cw=mean_cw,
            meta={
                "policy": policy.name,
                "cw_min": policy.cw_min,
                "cw_max": policy.cw_max,
            },
        )
