"""The backoff-policy zoo: pluggable contention-window update rules.

A backoff policy answers one question: *given how the last attempt went,
how large should the next contention window be?* The MAC engines
(:mod:`repro.mac.saturated`, :mod:`repro.mac.engine`) draw the actual
wait uniformly from ``[0, window)`` — the policy itself is a **pure**
function of its inputs and owns no random state, so two engines running
the same policy from the same seed are bitwise identical.

Contract
--------
``next_window(attempt, state) -> int`` where

- ``attempt`` is the number of *consecutive failed* transmissions of the
  current head-of-line packet: ``0`` means the last attempt succeeded
  (the decrease/reset direction), ``k >= 1`` means the packet has now
  failed ``k`` times in a row (the increase direction);
- ``state`` is a :class:`BackoffState` carrying the window the policy
  returned last time and a channel-busy estimate in ``[0, 1]`` (the
  adaptive input of ASB; the other policies ignore it).

The returned window is always clamped to ``[cw_min, cw_max]``. Policies
are frozen keyword-only dataclasses, so configurations hash, compare and
serialize cleanly through the sweep runner.

The family ported here (BEB, EIED, Fibonacci/EFB, EBEB, ASB) is the
backoff-strategy zoo of the LoRaWAN contention simulations referenced in
SNIPPETS.md, re-expressed as pure update rules.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = [
    "BACKOFF_POLICIES",
    "BackoffPolicy",
    "BackoffState",
    "UniformBackoff",
    "BebBackoff",
    "EiedBackoff",
    "FibonacciBackoff",
    "EbebBackoff",
    "AsbBackoff",
    "make_policy",
    "registered_policies",
]


@dataclass(frozen=True)
class BackoffState:
    """Engine-side inputs to a window update.

    ``window`` is the contention window currently in force (the value the
    policy returned last, or ``initial_window()`` for a fresh node).
    ``busy`` is the node's channel-busy estimate in ``[0, 1]`` — an EWMA
    of "some other transmitter covered me this slot" maintained by the
    engine; only adaptive policies read it.
    """

    window: int
    busy: float = 0.0


@dataclass(frozen=True, kw_only=True)
class BackoffPolicy:
    """Base class: window bounds, clamping, and the pure update contract."""

    cw_min: int = 2
    cw_max: int = 1024

    def __post_init__(self):
        if not 1 <= self.cw_min <= self.cw_max:
            raise ValueError("need 1 <= cw_min <= cw_max")

    @property
    def name(self) -> str:
        """Registry name of this policy (class attribute ``_name``)."""
        return getattr(type(self), "_name", type(self).__name__)

    def initial_window(self) -> int:
        return self.cw_min

    def next_window(self, attempt: int, state: BackoffState) -> int:
        raise NotImplementedError

    def _clamp(self, window: float) -> int:
        return int(min(max(int(window), self.cw_min), self.cw_max))


@dataclass(frozen=True, kw_only=True)
class UniformBackoff(BackoffPolicy):
    """Fixed window: every wait is uniform over the same ``[0, window)``.

    The no-memory baseline of the zoo (the LoRaWAN scripts' default when
    all strategy flags are off, window 16).
    """

    _name = "uniform"
    window: int = 16

    def __post_init__(self):
        super().__post_init__()
        if self.window < 1:
            raise ValueError("window must be >= 1")

    def initial_window(self) -> int:
        return self.window

    def next_window(self, attempt: int, state: BackoffState) -> int:
        return self.window


@dataclass(frozen=True, kw_only=True)
class BebBackoff(BackoffPolicy):
    """Binary exponential backoff: ``min(cw_min * 2**k, cw_max)``.

    The classic 802.x rule — double on every consecutive failure, reset
    to ``cw_min`` on success. Stateless given the failure streak, so the
    closed form is exact.
    """

    _name = "beb"

    def next_window(self, attempt: int, state: BackoffState) -> int:
        if attempt == 0:
            return self.cw_min
        # 2**attempt can overflow no int here (python ints), but cap the
        # exponent so pathological streaks stay O(1)
        exponent = min(attempt, (self.cw_max // max(self.cw_min, 1)).bit_length())
        return self._clamp(self.cw_min * (1 << exponent))


@dataclass(frozen=True, kw_only=True)
class EiedBackoff(BackoffPolicy):
    """Exponential increase / exponential decrease.

    Failure multiplies the window by ``r_up``; success *divides* it by
    ``r_down`` instead of resetting — the window remembers recent
    congestion across packets. The LoRaWAN family uses ``r_up = 2``,
    ``r_down = sqrt(2)``.
    """

    _name = "eied"
    r_up: float = 2.0
    r_down: float = 2.0**0.5

    def __post_init__(self):
        super().__post_init__()
        if self.r_up <= 1.0 or self.r_down <= 1.0:
            raise ValueError("r_up and r_down must exceed 1")

    def next_window(self, attempt: int, state: BackoffState) -> int:
        if attempt == 0:
            return self._clamp(state.window / self.r_down)
        return self._clamp(state.window * self.r_up)


def _next_fibonacci(n: int) -> int:
    """Smallest Fibonacci number strictly greater than ``n``."""
    a, b = 1, 1
    while b <= n:
        a, b = b, a + b
    return b


def _prev_fibonacci(n: int) -> int:
    """Largest Fibonacci number strictly smaller than ``n`` (min 1)."""
    a, b = 1, 1
    while b < n:
        a, b = b, a + b
    return max(a, 1)


@dataclass(frozen=True, kw_only=True)
class FibonacciBackoff(BackoffPolicy):
    """Enhanced Fibonacci backoff (EFB): walk the Fibonacci sequence.

    Failure advances the window to the next Fibonacci number, success
    retreats to the previous one — growth ratio tends to the golden
    ratio phi ~ 1.618, gentler than BEB's 2 but still exponential.
    Exact integer Fibonacci (no float approximation).
    """

    _name = "fibonacci"

    def next_window(self, attempt: int, state: BackoffState) -> int:
        if attempt == 0:
            return self._clamp(_prev_fibonacci(state.window))
        return self._clamp(_next_fibonacci(state.window))


@dataclass(frozen=True, kw_only=True)
class EbebBackoff(BackoffPolicy):
    """Enhanced BEB: double on failure, *halve* (not reset) on success.

    Keeps congestion memory like EIED but with symmetric powers of two;
    equivalently EIED with ``r_up = r_down = 2``.
    """

    _name = "ebeb"

    def next_window(self, attempt: int, state: BackoffState) -> int:
        if attempt == 0:
            return self._clamp(state.window // 2)
        return self._clamp(state.window * 2)


@dataclass(frozen=True, kw_only=True)
class AsbBackoff(BackoffPolicy):
    """Adaptively scaled backoff: the step size tracks observed load.

    The multiplicative factor is ``s = 1 + gamma * busy`` where ``busy``
    is the engine's channel-busy EWMA: on an idle channel the window
    creeps by ±1 (additive), under saturation it moves by the full
    ``1 + gamma`` factor. Movement is guaranteed monotone — a failure
    never shrinks the window, a success never grows it.
    """

    _name = "asb"
    gamma: float = 4.0

    def __post_init__(self):
        super().__post_init__()
        if self.gamma <= 0:
            raise ValueError("gamma must be positive")

    def next_window(self, attempt: int, state: BackoffState) -> int:
        busy = min(max(float(state.busy), 0.0), 1.0)
        scale = 1.0 + self.gamma * busy
        if attempt == 0:
            return self._clamp(min(state.window - 1, round(state.window / scale)))
        return self._clamp(max(state.window + 1, round(state.window * scale)))


#: Registry: policy name -> frozen kw-only config class. The MAC engines,
#: the ``mac_contention`` experiment and the CLI resolve names here.
BACKOFF_POLICIES: dict[str, type[BackoffPolicy]] = {
    cls._name: cls
    for cls in (
        UniformBackoff,
        BebBackoff,
        EiedBackoff,
        FibonacciBackoff,
        EbebBackoff,
        AsbBackoff,
    )
}


def registered_policies() -> tuple[str, ...]:
    """Registered backoff-policy names, sorted."""
    return tuple(sorted(BACKOFF_POLICIES))


def make_policy(policy: str | BackoffPolicy, **kwargs) -> BackoffPolicy:
    """Resolve ``policy`` to a configured instance.

    A :class:`BackoffPolicy` instance passes through unchanged (extra
    kwargs are then rejected); a string is looked up in
    :data:`BACKOFF_POLICIES` and constructed with ``kwargs``.
    """
    if isinstance(policy, BackoffPolicy):
        if kwargs:
            raise TypeError("kwargs only apply when policy is a name")
        return policy
    try:
        cls = BACKOFF_POLICIES[policy]
    except (KeyError, TypeError):
        raise ValueError(
            f"unknown backoff policy {policy!r}; known: {registered_policies()}"
        ) from None
    return cls(**kwargs)
