"""Slotted contention engine: traffic, queues, backoff, capture, acks.

The dynamic-workload counterpart of the static receiver-centric measure:
time is slotted, each node runs an open-loop traffic source into a
bounded FIFO queue, and the head-of-line packet contends for the channel
under a pluggable backoff policy (:data:`repro.mac.BACKOFF_POLICIES`).
Reception is resolved per slot under one of two physical models:

- ``capture="disk"`` — a reception at ``v`` fails iff a second
  concurrent transmitter's disk covers ``v`` (exactly what the paper's
  ``I(v)`` counts in the worst case), or ``v`` is itself transmitting;
- ``capture="sinr"`` — the SINR-threshold capture effect: a reception
  survives concurrent transmitters as long as
  ``P_u g(u,v) / (N + sum_w P_w g(w,v)) >= beta``, with the same
  power/path-loss conventions as :mod:`repro.sim.sinr` (minimum power
  closing the farthest link at threshold, times a link-budget margin).

With ``mode="csma"`` a node senses before transmitting and defers
(counted, with a fresh backoff draw) while any *audible* transmission
started in an earlier slot is still on the air — carrier sensing is
receiver-blind, so hidden-terminal collisions persist exactly where the
receiver-centric measure predicts contention. Sensing needs
``tx_slots >= 2`` to observe anything: with single-slot packets every
transmission starts and ends inside one slot and ``csma`` degenerates to
slotted ALOHA.

Delay accounting is coordinated-omission-free: the per-packet delay is
measured from source *arrival* (the open-loop source enqueues on its own
schedule, regardless of queue state) to delivery, so a congested queue
cannot hide latency by slowing its own measurement clock. Percentiles
over these delays use the same nearest-rank methodology as
:mod:`repro.serve.loadgen`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from repro import obs
from repro.interference.receiver import RTOL
from repro.mac.policies import BackoffPolicy, BackoffState, make_policy
from repro.model.topology import Topology
from repro.sim.engine import Simulator  # noqa: F401  (re-exported substrate)
from repro.utils import as_generator

from repro.mac.saturated import BUSY_EWMA_ALPHA

TRAFFIC_KINDS = ("bernoulli", "poisson", "saturated")
CAPTURE_KINDS = ("disk", "sinr")
MAC_MODES = ("aloha", "csma")


@dataclass(frozen=True, kw_only=True)
class MacConfig:
    """Frozen engine configuration (everything except topology + policy).

    ``load`` is the per-node offered load in *packets per slot*: the
    Bernoulli per-slot probability, or the Poisson mean of arrivals per
    slot (``traffic="poisson"`` may deliver several arrivals in one
    slot). ``traffic="saturated"`` ignores ``load`` and keeps every node
    permanently backlogged. ``duty_cycle`` caps airtime LoRa-style: after
    every transmission the node stays silent for
    ``ceil(tx_slots * (1/duty_cycle - 1))`` slots. ``ack=True`` models
    instantaneous out-of-band acknowledgements — the sender learns each
    outcome and retransmits up to ``max_retries`` failures before
    dropping; ``ack=False`` is fire-and-forget (one attempt per packet,
    loss shows up only at receivers).
    """

    traffic: str = "poisson"
    load: float = 0.05
    queue_limit: int = 8
    mode: str = "aloha"
    tx_slots: int = 1
    duty_cycle: float = 1.0
    ack: bool = True
    max_retries: int = 7
    capture: str = "disk"
    alpha: float = 3.0
    beta: float = 1.5
    noise: float = 1.0
    margin: float = 2.0

    def __post_init__(self):
        if self.traffic not in TRAFFIC_KINDS:
            raise ValueError(f"traffic must be one of {TRAFFIC_KINDS}")
        if self.mode not in MAC_MODES:
            raise ValueError(f"mode must be one of {MAC_MODES}")
        if self.capture not in CAPTURE_KINDS:
            raise ValueError(f"capture must be one of {CAPTURE_KINDS}")
        if self.load < 0:
            raise ValueError("load must be non-negative")
        if self.queue_limit < 1:
            raise ValueError("queue_limit must be >= 1")
        if self.tx_slots < 1:
            raise ValueError("tx_slots must be >= 1")
        if not 0 < self.duty_cycle <= 1:
            raise ValueError("duty_cycle must lie in (0, 1]")
        if self.max_retries < 0:
            raise ValueError("max_retries must be >= 0")
        if self.alpha <= 0 or self.beta <= 0 or self.noise <= 0:
            raise ValueError("alpha, beta and noise must be positive")
        if self.margin < 1:
            raise ValueError("margin must be >= 1")

    @property
    def silence_slots(self) -> int:
        """Post-transmission hold-off implied by the duty cycle."""
        return int(math.ceil(self.tx_slots * (1.0 / self.duty_cycle - 1.0)))


@dataclass(frozen=True)
class MacResult:
    """Per-node tallies and delays of one contention run.

    Offered-load conservation holds exactly for every node::

        arrivals == delivered + dropped_queue + dropped_retry + lost
                    + queued_end

    (``queued_end`` includes the head-of-line packet still in service at
    the horizon; ``lost`` is only nonzero in fire-and-forget mode,
    ``ack=False``, where a corrupted packet is simply gone).
    """

    n_slots: int
    #: packets generated by each node's source (including ones dropped at
    #: a full queue)
    arrivals: np.ndarray
    #: packets delivered end-to-end (acknowledged receptions)
    delivered: np.ndarray
    #: packets dropped on arrival at a full queue
    dropped_queue: np.ndarray
    #: packets dropped after exceeding the retry cap
    dropped_retry: np.ndarray
    #: fire-and-forget (``ack=False``) packets transmitted but corrupted
    lost: np.ndarray
    #: transmissions started
    attempts: np.ndarray
    #: attempts beyond the first per delivered packet
    retransmissions: np.ndarray
    #: carrier-sense deferrals (csma mode)
    deferrals: np.ndarray
    #: receptions addressed to each node, by outcome
    rx_ok: np.ndarray
    rx_collision: np.ndarray
    rx_busy: np.ndarray
    #: packets still queued (head included) at the horizon
    queued_end: np.ndarray
    #: per node: delays (slots, arrival -> delivery inclusive) of its
    #: delivered packets, in delivery order
    delays: tuple = ()
    meta: dict = field(default_factory=dict)

    @property
    def throughput(self) -> np.ndarray:
        """Per node: delivered packets per slot."""
        return self.delivered / max(self.n_slots, 1)

    @property
    def offered(self) -> np.ndarray:
        """Per node: generated packets per slot."""
        return self.arrivals / max(self.n_slots, 1)

    @property
    def collision_rate(self) -> np.ndarray:
        """Per receiver: fraction of addressed receptions lost to
        interference. Half-duplex (receiver-busy) losses are excluded
        from the denominator — they are a MAC property, not an
        interference one. NaN where never addressed."""
        addressed = self.rx_ok + self.rx_collision
        with np.errstate(invalid="ignore", divide="ignore"):
            return np.where(addressed > 0, self.rx_collision / addressed, np.nan)

    @property
    def conservation_ok(self) -> bool:
        """Exact per-node offered-load conservation (see class docs)."""
        accounted = (
            self.delivered
            + self.dropped_queue
            + self.dropped_retry
            + self.lost
            + self.queued_end
        )
        return bool(np.array_equal(self.arrivals, accounted))

    def pooled_delays(self) -> np.ndarray:
        """All delivered-packet delays, pooled across nodes (unsorted)."""
        if not self.delays:
            return np.zeros(0, dtype=np.int64)
        return np.concatenate([np.asarray(d, dtype=np.int64) for d in self.delays])

    def delay_percentiles(self, qs=(50, 95, 99)) -> dict[str, float]:
        """Nearest-rank percentiles of the pooled delay distribution,
        same methodology as ``repro.serve.loadgen`` (NaN when nothing
        was delivered)."""
        from repro.serve.loadgen import percentile

        pooled = sorted(self.pooled_delays().tolist())
        return {f"p{q:g}": float(percentile(pooled, q)) for q in qs}


class MacSimulator:
    """Slotted contention engine over a fixed topology.

    Parameters
    ----------
    topology:
        Communication topology; transmissions use its derived radii.
    policy:
        Backoff-policy name from :data:`repro.mac.BACKOFF_POLICIES` or a
        configured instance (``policy_kwargs`` configure a named policy).
    config:
        Engine options; see :class:`MacConfig`.
    """

    def __init__(
        self,
        topology: Topology,
        *,
        policy: str | BackoffPolicy = "beb",
        config: MacConfig | None = None,
        **policy_kwargs,
    ):
        self.topology = topology
        self.policy = make_policy(policy, **policy_kwargs)
        self.config = config if config is not None else MacConfig()
        if not isinstance(self.config, MacConfig):
            raise TypeError("config must be a MacConfig")
        n = topology.n
        self._neighbors = [
            np.array(sorted(topology.neighbors(u)), dtype=np.int64)
            for u in range(n)
        ]
        pos = topology.positions
        diff = pos[:, None, :] - pos[None, :, :]
        d = np.hypot(diff[..., 0], diff[..., 1])
        self._covers = d <= (topology.radii * (1.0 + RTOL))[:, None]
        np.fill_diagonal(self._covers, False)
        if self.config.capture == "sinr":
            cfg = self.config
            self._power = (
                cfg.margin
                * cfg.beta
                * cfg.noise
                * np.maximum(topology.radii, 1e-300) ** cfg.alpha
            )
            self._power[topology.degrees == 0] = 0.0
            d_inf = d.copy()
            np.fill_diagonal(d_inf, np.inf)
            self._gain = d_inf**-cfg.alpha

    def run(self, n_slots: int, *, seed=None) -> MacResult:
        if n_slots < 0:
            raise ValueError("n_slots must be >= 0")
        cfg = self.config
        policy = self.policy
        rng = as_generator(seed)
        n = self.topology.n
        active = self.topology.degrees > 0

        queues: list[list[int]] = [[] for _ in range(n)]
        window = np.full(n, policy.initial_window(), dtype=np.int64)
        wait = np.zeros(n, dtype=np.int64)
        streak = np.zeros(n, dtype=np.int64)  # consecutive head failures
        silence = np.zeros(n, dtype=np.int64)
        busy = np.zeros(n, dtype=np.float64)
        tx_left = np.zeros(n, dtype=np.int64)
        tx_recv = np.full(n, -1, dtype=np.int64)
        tx_interf = np.zeros(n, dtype=bool)
        tx_busy_rx = np.zeros(n, dtype=bool)

        arrivals = np.zeros(n, dtype=np.int64)
        delivered = np.zeros(n, dtype=np.int64)
        dropped_queue = np.zeros(n, dtype=np.int64)
        dropped_retry = np.zeros(n, dtype=np.int64)
        lost = np.zeros(n, dtype=np.int64)
        attempts = np.zeros(n, dtype=np.int64)
        retransmissions = np.zeros(n, dtype=np.int64)
        deferrals = np.zeros(n, dtype=np.int64)
        rx_ok = np.zeros(n, dtype=np.int64)
        rx_collision = np.zeros(n, dtype=np.int64)
        rx_busy = np.zeros(n, dtype=np.int64)
        delays: list[list[int]] = [[] for _ in range(n)]

        for u in range(n):
            if active[u]:
                wait[u] = rng.integers(window[u])

        with obs.span(
            "mac.run",
            policy=policy.name,
            mode=cfg.mode,
            traffic=cfg.traffic,
            capture=cfg.capture,
            n=n,
            slots=n_slots,
        ) as sp:
            for t in range(n_slots):
                # -- 1. arrivals (open loop: sources never look at queues)
                if cfg.traffic == "bernoulli":
                    fresh = (rng.random(n) < cfg.load).astype(np.int64)
                elif cfg.traffic == "poisson":
                    fresh = rng.poisson(cfg.load, n)
                else:  # saturated: refill empty queues
                    fresh = np.zeros(n, dtype=np.int64)
                    for u in range(n):
                        if active[u] and not queues[u]:
                            fresh[u] = 1
                fresh[~active] = 0
                for u in np.nonzero(fresh)[0]:
                    k = int(fresh[u])
                    arrivals[u] += k
                    room = cfg.queue_limit - len(queues[u])
                    take = min(k, max(room, 0))
                    queues[u].extend([t] * take)
                    dropped_queue[u] += k - take

                # -- 2. carrier sense + transmission starts
                ongoing = tx_left > 0
                if cfg.mode == "csma" and ongoing.any():
                    audible = self._covers[ongoing].any(axis=0)
                else:
                    audible = None
                for u in range(n):
                    if not active[u] or tx_left[u] > 0 or not queues[u]:
                        continue
                    if silence[u] > 0:
                        silence[u] -= 1
                        continue
                    if wait[u] > 0:
                        wait[u] -= 1
                        continue
                    if audible is not None and audible[u]:
                        deferrals[u] += 1
                        wait[u] = 1 + rng.integers(window[u])
                        continue
                    nbrs = self._neighbors[u]
                    v = int(nbrs[rng.integers(nbrs.size)])
                    attempts[u] += 1
                    tx_left[u] = cfg.tx_slots
                    tx_recv[u] = v
                    tx_interf[u] = False
                    tx_busy_rx[u] = False

                # -- 3. per-slot interference resolution
                senders = np.nonzero(tx_left > 0)[0]
                if senders.size:
                    tx_mask = tx_left > 0
                    if cfg.capture == "disk":
                        cover_count = self._covers[senders].sum(axis=0)
                        for u in senders:
                            v = tx_recv[u]
                            if tx_mask[v]:
                                tx_busy_rx[u] = True
                            hit = cover_count[v] - (1 if self._covers[u, v] else 0)
                            if hit > 0:
                                tx_interf[u] = True
                    else:  # sinr capture
                        rx_power = self._power[senders] @ self._gain[senders]
                        for u in senders:
                            v = tx_recv[u]
                            if tx_mask[v]:
                                tx_busy_rx[u] = True
                                continue
                            signal = self._power[u] * self._gain[u, v]
                            interference = rx_power[v] - signal
                            sinr = signal / (cfg.noise + interference)
                            if sinr < cfg.beta:
                                tx_interf[u] = True
                        cover_count = self._covers[senders].sum(axis=0)
                    busy += BUSY_EWMA_ALPHA * ((cover_count > 0) - busy)
                else:
                    busy *= 1.0 - BUSY_EWMA_ALPHA

                # -- 4. transmission ends: acks, retries, window updates
                for u in senders:
                    tx_left[u] -= 1
                    if tx_left[u] > 0:
                        continue
                    v = int(tx_recv[u])
                    tx_recv[u] = -1
                    corrupted = tx_interf[u] or tx_busy_rx[u]
                    if tx_busy_rx[u]:
                        rx_busy[v] += 1
                    elif tx_interf[u]:
                        rx_collision[v] += 1
                    else:
                        rx_ok[v] += 1
                    silence[u] = cfg.silence_slots
                    state = BackoffState(
                        window=int(window[u]), busy=float(busy[u])
                    )
                    if not cfg.ack:
                        # fire-and-forget: one attempt per packet, the
                        # sender never learns the outcome
                        if not corrupted:
                            delivered[u] += 1
                            delays[u].append(t - queues[u][0] + 1)
                        else:
                            lost[u] += 1
                        queues[u].pop(0)
                        window[u] = policy.next_window(0, state)
                    elif not corrupted:
                        delivered[u] += 1
                        retransmissions[u] += int(streak[u])
                        delays[u].append(t - queues[u][0] + 1)
                        queues[u].pop(0)
                        streak[u] = 0
                        window[u] = policy.next_window(0, state)
                    else:
                        streak[u] += 1
                        window[u] = policy.next_window(int(streak[u]), state)
                        if streak[u] > cfg.max_retries:
                            dropped_retry[u] += 1
                            queues[u].pop(0)
                            streak[u] = 0
                    if queues[u]:
                        wait[u] = rng.integers(window[u])

            queued_end = np.array(
                [len(q) for q in queues], dtype=np.int64
            )
            obs.count("mac.slots", n_slots)
            obs.count("mac.attempts", int(attempts.sum()))
            obs.count("mac.delivered", int(delivered.sum()))
            obs.count("mac.collisions", int(rx_collision.sum()))
            obs.count(
                "mac.drops", int(dropped_queue.sum() + dropped_retry.sum())
            )
            if deferrals.any():
                obs.count("mac.deferrals", int(deferrals.sum()))
            sp.set(
                attempts=int(attempts.sum()),
                delivered=int(delivered.sum()),
                collisions=int(rx_collision.sum()),
            )

        return MacResult(
            n_slots=n_slots,
            arrivals=arrivals,
            delivered=delivered,
            dropped_queue=dropped_queue,
            dropped_retry=dropped_retry,
            lost=lost,
            attempts=attempts,
            retransmissions=retransmissions,
            deferrals=deferrals,
            rx_ok=rx_ok,
            rx_collision=rx_collision,
            rx_busy=rx_busy,
            queued_end=queued_end,
            delays=tuple(np.array(d, dtype=np.int64) for d in delays),
            meta={
                "policy": policy.name,
                "mode": cfg.mode,
                "traffic": cfg.traffic,
                "capture": cfg.capture,
                "load": cfg.load,
            },
        )
